(* sit_batch — non-interactive schema integration.

   Consumes ECR DDL files plus one or more session scripts (see
   Integrate.Script for the directive format) and emits the integrated
   schema (DDL), the generated mappings and a summary.  With several
   --script options the sessions are independent integration jobs over
   the same component schemas; --jobs N runs them on a domain pool, and
   each job's output is buffered and printed in script order, so the
   interleaving never depends on the schedule. *)

exception Session_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Session_error s)) fmt

(* One integration session: replay [directives] against [schemas] and
   return everything the session prints.  Pure apart from the optional
   file outputs, which the driver only allows in single-script runs. *)
let run_session ~schemas ~directives ~out_ddl ~out_dot ~name ~analyse
    ~save_dict ~save_result ~data ~updates ~queries ~global_queries () =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  let ws =
    List.fold_left
      (fun ws s -> Integrate.Workspace.add_schema s ws)
      Integrate.Workspace.empty schemas
  in
  let ws =
    match Integrate.Script.apply directives ws with
    | Ok ws -> ws
    | Error (Integrate.Script.Object_conflict (_, _, conflict) as e) ->
        fail "%s%s"
          (Tui.Canvas.to_string (Tui.Screens.conflict_resolution conflict))
          (Integrate.Script.apply_error_to_string e)
    | Error e -> fail "%s" (Integrate.Script.apply_error_to_string e)
  in
  if analyse then
    List.iter
      (fun issue -> pr "analysis: %s\n" (Integrate.Analysis.to_string issue))
      (Integrate.Analysis.analyse ws);
  (match save_dict with
  | Some path -> Dictionary.save path ws
  | None -> ());
  let result = Integrate.Workspace.integrate ?name ws in
  Buffer.add_string buf (Ddl.Printer.to_string result.Integrate.Result.schema);
  pr "\n%s\n" (Integrate.Result.summary result);
  List.iter (fun w -> pr "warning: %s\n" w) result.Integrate.Result.warnings;
  pr "\n%s"
    (Format.asprintf "%a@." Integrate.Mapping.pp result.Integrate.Result.mapping);
  (match out_ddl with
  | Some path -> Ddl.Printer.save path [ result.Integrate.Result.schema ]
  | None -> ());
  (match out_dot with
  | Some path -> Ecr.Dot.save path result.Integrate.Result.schema
  | None -> ());
  (match save_result with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Dictionary.result_to_string ws result))
  | None -> ());
  (* ---- optional: operational data and translated requests ---------- *)
  if data <> None || updates <> [] || queries <> [] || global_queries <> []
  then begin
    let stores =
      match data with
      | Some path -> Instance.Loader.load_file ~schemas path
      | None -> List.map (fun s -> (s, Instance.Store.create s)) schemas
    in
    let merged, report =
      Query.Migrate.run result.Integrate.Result.mapping
        ~integrated:result.Integrate.Result.schema stores
    in
    pr "\nmigrated instance: %d entities in, %d out (%d fused), %d links\n"
      report.Query.Migrate.entities_in report.Query.Migrate.entities_out
      report.Query.Migrate.fused report.Query.Migrate.links_out;
    List.iter
      (fun v -> pr "integrity: %s\n" (Instance.Store.violation_to_string v))
      (Instance.Store.check merged);
    let find_view view_name =
      match
        List.find_opt
          (fun s -> Ecr.Name.to_string (Ecr.Schema.name s) = view_name)
          schemas
      with
      | Some s -> s
      | None -> fail "unknown view %s" view_name
    in
    let merged = ref merged in
    List.iter
      (fun spec ->
        match String.index_opt spec ':' with
        | None -> fail "--update expects \"<view>: <update>\", got %s" spec
        | Some i ->
            let view_name = String.trim (String.sub spec 0 i) in
            let text = String.sub spec (i + 1) (String.length spec - i - 1) in
            let view = find_view view_name in
            let op = Query.Parser.update_of_string text in
            let op' =
              Query.Update.to_integrated result.Integrate.Result.mapping ~view op
            in
            pr "\nview update  : [%s] %s\n" view_name
              (Query.Update.to_string op);
            pr "translated   : %s\n" (Query.Update.to_string op');
            let merged', n = Query.Update.apply op' !merged in
            merged := merged';
            pr "(%d entities affected)\n" n)
      updates;
    let merged = !merged in
    List.iter
      (fun spec ->
        (* "<view>: <query text>" *)
        match String.index_opt spec ':' with
        | None -> fail "--query expects \"<view>: <query>\", got %s" spec
        | Some i ->
            let view_name = String.trim (String.sub spec 0 i) in
            let text = String.sub spec (i + 1) (String.length spec - i - 1) in
            let view = find_view view_name in
            let q = Query.Parser.query_of_string text in
            let q', back =
              Query.Rewrite.to_integrated result.Integrate.Result.mapping
                ~view q
            in
            pr "\nview query   : [%s] %s\n" view_name (Query.Ast.to_string q);
            pr "translated   : %s\n" (Query.Ast.to_string q');
            let rows = back (Query.Eval.run q' merged) in
            List.iter (fun r -> pr "  %s\n" (Query.Eval.row_to_string r)) rows;
            pr "(%d rows)\n" (List.length rows))
      queries;
    List.iter
      (fun text ->
        let q = Query.Parser.query_of_string text in
        pr "\nglobal query : %s\n" (Query.Ast.to_string q);
        List.iter
          (fun part ->
            pr "  unfolds to [%s] %s\n"
              (Ecr.Name.to_string part.Query.Rewrite.component)
              (Query.Ast.to_string part.Query.Rewrite.query))
          (Query.Rewrite.to_components result.Integrate.Result.mapping
             ~integrated:result.Integrate.Result.schema q);
        let rows =
          Query.Rewrite.run_global result.Integrate.Result.mapping
            ~integrated:result.Integrate.Result.schema
            ~stores:
              (List.map (fun (s, st) -> (Ecr.Schema.name s, st)) stores)
            q
        in
        List.iter (fun r -> pr "  %s\n" (Query.Eval.row_to_string r)) rows;
        pr "(%d rows)\n" (List.length rows))
      global_queries
  end;
  Buffer.contents buf

let hard_fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let run files scripts jobs out_ddl out_dot name analyse save_dict save_result
    data updates queries global_queries metrics =
  if List.length scripts > 1 then begin
    let reject what = function
      | Some _ ->
          hard_fail "%s cannot be combined with multiple --script jobs" what
      | None -> ()
    in
    reject "--out" out_ddl;
    reject "--dot" out_dot;
    reject "--save-dict" save_dict;
    reject "--save-result" save_result;
    reject "--metrics" metrics
  end;
  if metrics <> None then begin
    Obs.enable ();
    Obs.reset ()
  end;
  let schemas = List.concat_map Ddl.Parser.schemas_of_file files in
  List.iter
    (fun s ->
      match Ecr.Schema.validate s with
      | [] -> ()
      | errors ->
          List.iter
            (fun e -> prerr_endline (Ecr.Schema.error_to_string e))
            errors;
          exit 2)
    schemas;
  let jobs_of_scripts =
    (* parse every script up front, sequentially: parse errors are
       reported in script order, before any session runs *)
    match scripts with
    | [] -> [ [] ]
    | paths -> (
        try List.map Integrate.Script.parse_file paths
        with Integrate.Script.Parse_error _ as e ->
          hard_fail "%s" (Integrate.Script.parse_error_to_string e))
  in
  let outputs =
    try
      Par.with_pool ~jobs @@ fun pool ->
      Par.map pool
        (fun directives ->
          run_session ~schemas ~directives ~out_ddl ~out_dot ~name ~analyse
            ~save_dict ~save_result ~data ~updates ~queries ~global_queries ())
        jobs_of_scripts
    with Session_error msg -> hard_fail "%s" msg
  in
  List.iteri
    (fun i output ->
      if i > 0 then print_string "\n========\n\n";
      print_string output)
    outputs;
  match metrics with
  | None -> ()
  | Some path ->
      let meta =
        [
          ("tool", Obs.Json.String "sit_batch");
          ( "files",
            Obs.Json.List (List.map (fun f -> Obs.Json.String f) files) );
        ]
      in
      (try Obs.Report.write ~meta path
       with Sys_error msg ->
         Printf.eprintf "cannot write metrics report: %s\n" msg;
         exit 1);
      Printf.eprintf "metrics report written to %s\n" path

open Cmdliner

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"ECR DDL files.")

let scripts =
  Arg.(
    value
    & opt_all file []
    & info [ "s"; "script" ] ~docv:"SCRIPT"
        ~doc:
          "Session script (equiv/object/rel/name directives).  Repeatable: \
           each script is an independent integration job over the same \
           schemas, and outputs are printed in script order.")

let jobs =
  Arg.(
    value
    & opt int (Par.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run up to $(docv) script jobs in parallel on a domain pool \
           (default: \\$SIT_JOBS, or 1).  Output order is independent of \
           $(docv).")

let out_ddl =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"OUT" ~doc:"Write the integrated schema as DDL to $(docv).")

let out_dot =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"DOT" ~doc:"Write the integrated schema as Graphviz to $(docv).")

let integrated_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Name of the integrated schema.")

let analyse =
  let doc = "Report schema-analysis incompatibilities before integrating." in
  Arg.(value & flag & info [ "analyse" ] ~doc)

let save_dict =
  let doc = "Save the workspace as a data dictionary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "save-dict" ] ~docv:"DICT" ~doc)

let data =
  let doc = "Instance data file (see Instance.Loader for the format)." in
  Arg.(value & opt (some file) None & info [ "data" ] ~docv:"DATA" ~doc)

let queries =
  let doc =
    "Run a view query against the migrated instance; format \"<view>: \
     <query>\".  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let global_queries =
  let doc =
    "Run a query against the integrated schema by unfolding it onto the \
     component instances.  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "g"; "global" ] ~docv:"QUERY" ~doc)

let save_result =
  let doc =
    "Save the full dictionary including the integrated schema and the \
     generated mappings to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "save-result" ] ~docv:"DICT" ~doc)

let updates =
  let doc =
    "Apply a view update to the migrated instance before querying; format \
     \"<view>: <update>\".  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "u"; "update" ] ~docv:"UPDATE" ~doc)

let metrics =
  let doc =
    "Enable the observability layer for the whole run and write its JSON \
     report (per-phase spans, counters, query-latency histograms) to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics" ] ~docv:"REPORT" ~doc)

let cmd =
  Cmd.v
    (Cmd.info "sit_batch" ~version:"1.0.0"
       ~doc:"batch schema integration from DDL files and session scripts")
    Term.(
      const run $ files $ scripts $ jobs $ out_ddl $ out_dot $ integrated_name
      $ analyse $ save_dict $ save_result $ data $ updates $ queries
      $ global_queries $ metrics)

let () = exit (Cmd.eval cmd)
