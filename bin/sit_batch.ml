(* sit_batch — non-interactive schema integration.

   Consumes ECR DDL files plus a session script and emits the integrated
   schema (DDL), the generated mappings and a summary.  The script
   format, one directive per line ('#' comments):

     equiv  <schema.object.attr>  <schema.object.attr>
     object <schema.object> <code> <schema.object>
     rel    <schema.rel>    <code> <schema.rel>
     name   <schema.structure> <schema.structure> <IntegratedName>

   where <code> is the paper's assertion code: 1 equals, 2 contained-in,
   3 contains, 4 disjoint-integrable, 5 may-be, 0 disjoint-nonintegrable. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

type directive =
  | Equiv of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Object_assertion of Ecr.Qname.t * Integrate.Assertion.t * Ecr.Qname.t
  | Rel_assertion of Ecr.Qname.t * Integrate.Assertion.t * Ecr.Qname.t
  | Rename of Ecr.Qname.t * Ecr.Qname.t * string

let parse_qattr s =
  match String.split_on_char '.' s with
  | [ a; b; c ] -> Ecr.Qname.Attr.v a b c
  | _ -> fail "malformed qualified attribute: %s" s

let parse_qname s =
  match String.split_on_char '.' s with
  | [ a; b ] -> Ecr.Qname.v a b
  | _ -> fail "malformed qualified name: %s" s

let parse_code s =
  match Option.bind (int_of_string_opt s) Integrate.Assertion.of_code with
  | Some a -> a
  | None -> fail "unknown assertion code: %s" s

let parse_script path =
  let ic = open_in path in
  let directives = ref [] in
  (try
     let lineno = ref 0 in
     while true do
       incr lineno;
       let line = input_line ic in
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       match
         String.split_on_char ' ' (String.trim line)
         |> List.filter (fun s -> s <> "")
       with
       | [] -> ()
       | [ "equiv"; a; b ] ->
           directives := Equiv (parse_qattr a, parse_qattr b) :: !directives
       | [ "object"; a; code; b ] ->
           directives :=
             Object_assertion (parse_qname a, parse_code code, parse_qname b)
             :: !directives
       | [ "rel"; a; code; b ] ->
           directives :=
             Rel_assertion (parse_qname a, parse_code code, parse_qname b)
             :: !directives
       | [ "name"; a; b; forced ] ->
           directives := Rename (parse_qname a, parse_qname b, forced) :: !directives
       | _ -> fail "%s:%d: unparseable directive: %s" path !lineno line
     done
   with End_of_file -> close_in ic);
  List.rev !directives

let run files script out_ddl out_dot name analyse save_dict save_result data
    updates queries global_queries metrics =
  if metrics <> None then begin
    Obs.enable ();
    Obs.reset ()
  end;
  let schemas = List.concat_map Ddl.Parser.schemas_of_file files in
  List.iter
    (fun s ->
      match Ecr.Schema.validate s with
      | [] -> ()
      | errors ->
          List.iter
            (fun e -> prerr_endline (Ecr.Schema.error_to_string e))
            errors;
          exit 2)
    schemas;
  let directives = match script with Some p -> parse_script p | None -> [] in
  let ws =
    List.fold_left
      (fun ws s -> Integrate.Workspace.add_schema s ws)
      Integrate.Workspace.empty schemas
  in
  let ws =
    List.fold_left
      (fun ws d ->
        match d with
        | Equiv (a, b) -> Integrate.Workspace.declare_equivalent a b ws
        | Object_assertion (a, assertion, b) -> (
            match Integrate.Workspace.assert_object a assertion b ws with
            | Ok ws -> ws
            | Error conflict ->
                print_string
                  (Tui.Canvas.to_string (Tui.Screens.conflict_resolution conflict));
                fail "conflicting assertion between %s and %s"
                  (Ecr.Qname.to_string a) (Ecr.Qname.to_string b))
        | Rel_assertion (a, assertion, b) -> (
            match Integrate.Workspace.assert_relationship a assertion b ws with
            | Ok ws -> ws
            | Error _ ->
                fail "conflicting relationship assertion between %s and %s"
                  (Ecr.Qname.to_string a) (Ecr.Qname.to_string b))
        | Rename (a, b, forced) ->
            Integrate.Workspace.set_naming
              (Integrate.Naming.with_override a b forced
                 (Integrate.Workspace.naming ws))
              ws)
      ws directives
  in
  if analyse then
    List.iter
      (fun issue ->
        Printf.printf "analysis: %s\n" (Integrate.Analysis.to_string issue))
      (Integrate.Analysis.analyse ws);
  (match save_dict with
  | Some path -> Dictionary.save path ws
  | None -> ());
  let result = Integrate.Workspace.integrate ?name ws in
  print_string (Ddl.Printer.to_string result.Integrate.Result.schema);
  print_newline ();
  print_endline (Integrate.Result.summary result);
  List.iter (fun w -> Printf.printf "warning: %s\n" w) result.Integrate.Result.warnings;
  print_newline ();
  Format.printf "%a@." Integrate.Mapping.pp result.Integrate.Result.mapping;
  (match out_ddl with
  | Some path -> Ddl.Printer.save path [ result.Integrate.Result.schema ]
  | None -> ());
  (match out_dot with
  | Some path -> Ecr.Dot.save path result.Integrate.Result.schema
  | None -> ());
  (match save_result with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Dictionary.result_to_string ws result))
  | None -> ());
  (* ---- optional: operational data and translated requests ---------- *)
  if data <> None || updates <> [] || queries <> [] || global_queries <> []
  then begin
    let stores =
      match data with
      | Some path -> Instance.Loader.load_file ~schemas path
      | None -> List.map (fun s -> (s, Instance.Store.create s)) schemas
    in
    let merged, report =
      Query.Migrate.run result.Integrate.Result.mapping
        ~integrated:result.Integrate.Result.schema stores
    in
    Printf.printf
      "\nmigrated instance: %d entities in, %d out (%d fused), %d links\n"
      report.Query.Migrate.entities_in report.Query.Migrate.entities_out
      report.Query.Migrate.fused report.Query.Migrate.links_out;
    List.iter
      (fun v ->
        Printf.printf "integrity: %s\n" (Instance.Store.violation_to_string v))
      (Instance.Store.check merged);
    let merged = ref merged in
    List.iter
      (fun spec ->
        match String.index_opt spec ':' with
        | None -> fail "--update expects \"<view>: <update>\", got %s" spec
        | Some i ->
            let view_name = String.trim (String.sub spec 0 i) in
            let text = String.sub spec (i + 1) (String.length spec - i - 1) in
            let view =
              match
                List.find_opt
                  (fun s -> Ecr.Name.to_string (Ecr.Schema.name s) = view_name)
                  schemas
              with
              | Some s -> s
              | None -> fail "unknown view %s" view_name
            in
            let op = Query.Parser.update_of_string text in
            let op' =
              Query.Update.to_integrated result.Integrate.Result.mapping ~view op
            in
            Printf.printf "\nview update  : [%s] %s\n" view_name
              (Query.Update.to_string op);
            Printf.printf "translated   : %s\n" (Query.Update.to_string op');
            let merged', n = Query.Update.apply op' !merged in
            merged := merged';
            Printf.printf "(%d entities affected)\n" n)
      updates;
    let merged = !merged in
    List.iter
      (fun spec ->
        (* "<view>: <query text>" *)
        match String.index_opt spec ':' with
        | None -> fail "--query expects \"<view>: <query>\", got %s" spec
        | Some i ->
            let view_name = String.trim (String.sub spec 0 i) in
            let text = String.sub spec (i + 1) (String.length spec - i - 1) in
            let view =
              match
                List.find_opt
                  (fun s ->
                    Ecr.Name.to_string (Ecr.Schema.name s) = view_name)
                  schemas
              with
              | Some s -> s
              | None -> fail "unknown view %s" view_name
            in
            let q = Query.Parser.query_of_string text in
            let q', back =
              Query.Rewrite.to_integrated result.Integrate.Result.mapping
                ~view q
            in
            Printf.printf "\nview query   : [%s] %s\n" view_name
              (Query.Ast.to_string q);
            Printf.printf "translated   : %s\n" (Query.Ast.to_string q');
            let rows = back (Query.Eval.run q' merged) in
            List.iter
              (fun r -> Printf.printf "  %s\n" (Query.Eval.row_to_string r))
              rows;
            Printf.printf "(%d rows)\n" (List.length rows))
      queries;
    List.iter
      (fun text ->
        let q = Query.Parser.query_of_string text in
        Printf.printf "\nglobal query : %s\n" (Query.Ast.to_string q);
        List.iter
          (fun part ->
            Printf.printf "  unfolds to [%s] %s\n"
              (Ecr.Name.to_string part.Query.Rewrite.component)
              (Query.Ast.to_string part.Query.Rewrite.query))
          (Query.Rewrite.to_components result.Integrate.Result.mapping
             ~integrated:result.Integrate.Result.schema q);
        let rows =
          Query.Rewrite.run_global result.Integrate.Result.mapping
            ~integrated:result.Integrate.Result.schema
            ~stores:
              (List.map
                 (fun (s, st) -> (Ecr.Schema.name s, st))
                 stores)
            q
        in
        List.iter
          (fun r -> Printf.printf "  %s\n" (Query.Eval.row_to_string r))
          rows;
        Printf.printf "(%d rows)\n" (List.length rows))
      global_queries
  end;
  match metrics with
  | None -> ()
  | Some path ->
      let meta =
        [
          ("tool", Obs.Json.String "sit_batch");
          ( "files",
            Obs.Json.List (List.map (fun f -> Obs.Json.String f) files) );
        ]
      in
      (try Obs.Report.write ~meta path
       with Sys_error msg ->
         Printf.eprintf "cannot write metrics report: %s\n" msg;
         exit 1);
      Printf.eprintf "metrics report written to %s\n" path

open Cmdliner

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"ECR DDL files.")

let script =
  Arg.(
    value
    & opt (some file) None
    & info [ "s"; "script" ] ~docv:"SCRIPT" ~doc:"Session script (equiv/object/rel/name directives).")

let out_ddl =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"OUT" ~doc:"Write the integrated schema as DDL to $(docv).")

let out_dot =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"DOT" ~doc:"Write the integrated schema as Graphviz to $(docv).")

let integrated_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Name of the integrated schema.")

let analyse =
  let doc = "Report schema-analysis incompatibilities before integrating." in
  Arg.(value & flag & info [ "analyse" ] ~doc)

let save_dict =
  let doc = "Save the workspace as a data dictionary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "save-dict" ] ~docv:"DICT" ~doc)

let data =
  let doc = "Instance data file (see Instance.Loader for the format)." in
  Arg.(value & opt (some file) None & info [ "data" ] ~docv:"DATA" ~doc)

let queries =
  let doc =
    "Run a view query against the migrated instance; format \"<view>: \
     <query>\".  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let global_queries =
  let doc =
    "Run a query against the integrated schema by unfolding it onto the \
     component instances.  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "g"; "global" ] ~docv:"QUERY" ~doc)

let save_result =
  let doc =
    "Save the full dictionary including the integrated schema and the \
     generated mappings to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "save-result" ] ~docv:"DICT" ~doc)

let updates =
  let doc =
    "Apply a view update to the migrated instance before querying; format \
     \"<view>: <update>\".  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "u"; "update" ] ~docv:"UPDATE" ~doc)

let metrics =
  let doc =
    "Enable the observability layer for the whole run and write its JSON \
     report (per-phase spans, counters, query-latency histograms) to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics" ] ~docv:"REPORT" ~doc)

let cmd =
  Cmd.v
    (Cmd.info "sit_batch" ~version:"1.0.0"
       ~doc:"batch schema integration from DDL files and a session script")
    Term.(
      const run $ files $ script $ out_ddl $ out_dot $ integrated_name
      $ analyse $ save_dict $ save_result $ data $ updates $ queries
      $ global_queries $ metrics)

let () = exit (Cmd.eval cmd)
