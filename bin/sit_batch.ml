(* sit_batch — non-interactive schema integration.

   Consumes ECR DDL files plus one or more session scripts (see
   Integrate.Script for the directive format) and emits the integrated
   schema (DDL), the generated mappings and a summary.  With several
   --script options the sessions are independent integration jobs over
   the same component schemas; --jobs N runs them on a domain pool, and
   each job's output is buffered and printed in script order, so the
   interleaving never depends on the schedule. *)

exception Session_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Session_error s)) fmt

(* One integration session: replay [directives] against [schemas] and
   return everything the session prints.  Pure apart from the optional
   file outputs, which the driver only allows in single-script runs.

   With [~journal] the session is write-ahead logged: every schema
   addition and directive is appended as one op record before the next
   one runs, so a killed run resumes from its journal (--resume) by
   replaying the recovered prefix and skipping that many ops.  The
   inputs must be unchanged between the runs — ops are skipped by
   position. *)
let run_session ~schemas ~directives ~out_ddl ~out_dot ~name ~analyse
    ~save_dict ~save_result ~data ~updates ~queries ~global_queries
    ?journal () =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  (* A bad --update/--query/--global directive is reported and skipped;
     the remaining directives still run and the session's exit status
     turns non-zero only at the very end. *)
  let directive_errors = ref 0 in
  let catching label f =
    try f () with
    | Query.Parser.Error msg ->
        incr directive_errors;
        pr "error: %s: parse error: %s\n" label msg
    | Query.Rewrite.Unmapped msg ->
        incr directive_errors;
        pr "error: %s: unmapped: %s\n" label msg
    | Query.Eval.Error msg ->
        incr directive_errors;
        pr "error: %s: evaluation error: %s\n" label msg
    | Query.Update.Error msg ->
        incr directive_errors;
        pr "error: %s: update error: %s\n" label msg
    | Session_error msg ->
        incr directive_errors;
        pr "error: %s: %s\n" label msg
  in
  let ws =
    let start, base, jopt =
      match journal with
      | None -> (0, Integrate.Workspace.empty, None)
      | Some (j, recovery) ->
          (recovery.Journal.seq, recovery.Journal.workspace, Some j)
    in
    let items =
      List.map (fun s -> `Schema s) schemas
      @ List.map (fun d -> `Directive d) directives
    in
    if start > List.length items then
      fail
        "--resume: the journal records %d operations but the inputs only \
         define %d — did the DDL files or the script change?"
        start (List.length items);
    let ws, _ =
      List.fold_left
        (fun (ws, i) item ->
          if i < start then (ws, i + 1) (* already replayed from the journal *)
          else begin
            let ws =
              match item with
              | `Schema s -> Integrate.Workspace.add_schema s ws
              | `Directive d -> (
                  match Integrate.Script.apply_one d ws with
                  | Ok ws -> ws
                  | Error
                      (Integrate.Script.Object_conflict (_, _, conflict) as e)
                    ->
                      fail "%s%s"
                        (Tui.Canvas.to_string
                           (Tui.Screens.conflict_resolution conflict))
                        (Integrate.Script.apply_error_to_string e)
                  | Error e ->
                      fail "%s" (Integrate.Script.apply_error_to_string e))
            in
            (match jopt with
            | Some j ->
                let op =
                  match item with
                  | `Schema s -> Integrate.Op.Add_schema s
                  | `Directive d -> Integrate.Op.of_directive d
                in
                Journal.append ~after:ws j op
            | None -> ());
            (ws, i + 1)
          end)
        (base, 0) items
    in
    ws
  in
  if analyse then
    List.iter
      (fun issue -> pr "analysis: %s\n" (Integrate.Analysis.to_string issue))
      (Integrate.Analysis.analyse ws);
  (match save_dict with
  | Some path -> Dictionary.save path ws
  | None -> ());
  let result = Integrate.Workspace.integrate ?name ws in
  Buffer.add_string buf (Ddl.Printer.to_string result.Integrate.Result.schema);
  pr "\n%s\n" (Integrate.Result.summary result);
  List.iter (fun w -> pr "warning: %s\n" w) result.Integrate.Result.warnings;
  pr "\n%s"
    (Format.asprintf "%a@." Integrate.Mapping.pp result.Integrate.Result.mapping);
  (match out_ddl with
  | Some path -> Ddl.Printer.save path [ result.Integrate.Result.schema ]
  | None -> ());
  (match out_dot with
  | Some path -> Ecr.Dot.save path result.Integrate.Result.schema
  | None -> ());
  (match save_result with
  | Some path ->
      (* temp + rename: a crash mid-dump never leaves a torn dictionary
         (but never rename over a non-regular file like /dev/null) *)
      let regular =
        match (Unix.lstat path).Unix.st_kind with
        | Unix.S_REG -> true
        | _ -> false
        | exception Unix.Unix_error _ -> true
      in
      let target = if regular then path ^ ".tmp" else path in
      let oc = open_out target in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Dictionary.result_to_string ws result));
      if target <> path then Sys.rename target path
  | None -> ());
  (* ---- optional: operational data and translated requests ---------- *)
  if data <> None || updates <> [] || queries <> [] || global_queries <> []
  then begin
    let stores =
      match data with
      | Some path -> (
          try Instance.Loader.load_file ~schemas path
          with Instance.Loader.Error _ as e ->
            fail "%s" (Instance.Loader.error_to_string e))
      | None -> List.map (fun s -> (s, Instance.Store.create s)) schemas
    in
    let merged, report =
      Query.Migrate.run result.Integrate.Result.mapping
        ~integrated:result.Integrate.Result.schema stores
    in
    pr "\nmigrated instance: %d entities in, %d out (%d fused), %d links\n"
      report.Query.Migrate.entities_in report.Query.Migrate.entities_out
      report.Query.Migrate.fused report.Query.Migrate.links_out;
    List.iter
      (fun v -> pr "integrity: %s\n" (Instance.Store.violation_to_string v))
      (Instance.Store.check merged);
    let find_view view_name =
      match
        List.find_opt
          (fun s -> Ecr.Name.to_string (Ecr.Schema.name s) = view_name)
          schemas
      with
      | Some s -> s
      | None -> fail "unknown view %s" view_name
    in
    let merged = ref merged in
    List.iter
      (fun spec ->
        catching (Printf.sprintf "--update %s" spec) @@ fun () ->
        match String.index_opt spec ':' with
        | None -> fail "--update expects \"<view>: <update>\", got %s" spec
        | Some i ->
            let view_name = String.trim (String.sub spec 0 i) in
            let text = String.sub spec (i + 1) (String.length spec - i - 1) in
            let view = find_view view_name in
            let op = Query.Parser.update_of_string text in
            let op' =
              Query.Update.to_integrated result.Integrate.Result.mapping ~view op
            in
            pr "\nview update  : [%s] %s\n" view_name
              (Query.Update.to_string op);
            pr "translated   : %s\n" (Query.Update.to_string op');
            let merged', n = Query.Update.apply op' !merged in
            merged := merged';
            pr "(%d entities affected)\n" n)
      updates;
    let merged = !merged in
    List.iter
      (fun spec ->
        catching (Printf.sprintf "--query %s" spec) @@ fun () ->
        (* "<view>: <query text>" *)
        match String.index_opt spec ':' with
        | None -> fail "--query expects \"<view>: <query>\", got %s" spec
        | Some i ->
            let view_name = String.trim (String.sub spec 0 i) in
            let text = String.sub spec (i + 1) (String.length spec - i - 1) in
            let view = find_view view_name in
            let q = Query.Parser.query_of_string text in
            let q', back =
              Query.Rewrite.to_integrated result.Integrate.Result.mapping
                ~view q
            in
            pr "\nview query   : [%s] %s\n" view_name (Query.Ast.to_string q);
            pr "translated   : %s\n" (Query.Ast.to_string q');
            let rows = back (Query.Eval.run q' merged) in
            List.iter (fun r -> pr "  %s\n" (Query.Eval.row_to_string r)) rows;
            pr "(%d rows)\n" (List.length rows))
      queries;
    List.iter
      (fun text ->
        catching (Printf.sprintf "--global %s" text) @@ fun () ->
        let q = Query.Parser.query_of_string text in
        pr "\nglobal query : %s\n" (Query.Ast.to_string q);
        List.iter
          (fun part ->
            pr "  unfolds to [%s] %s\n"
              (Ecr.Name.to_string part.Query.Rewrite.component)
              (Query.Ast.to_string part.Query.Rewrite.query))
          (Query.Rewrite.to_components result.Integrate.Result.mapping
             ~integrated:result.Integrate.Result.schema q);
        let rows =
          Query.Rewrite.run_global result.Integrate.Result.mapping
            ~integrated:result.Integrate.Result.schema
            ~stores:
              (List.map (fun (s, st) -> (Ecr.Schema.name s, st)) stores)
            q
        in
        List.iter (fun r -> pr "  %s\n" (Query.Eval.row_to_string r)) rows;
        pr "(%d rows)\n" (List.length rows))
      global_queries
  end;
  (match journal with
  | Some (j, _) ->
      (* the session completed: leave one compact snapshot behind *)
      Journal.compact j ws;
      Journal.close j
  | None -> ());
  (Buffer.contents buf, !directive_errors = 0)

let hard_fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let run files scripts jobs out_ddl out_dot name analyse save_dict save_result
    data updates queries global_queries metrics journal_dir resume =
  if List.length scripts > 1 then begin
    let reject what = function
      | Some _ ->
          hard_fail "%s cannot be combined with multiple --script jobs" what
      | None -> ()
    in
    reject "--out" out_ddl;
    reject "--dot" out_dot;
    reject "--save-dict" save_dict;
    reject "--save-result" save_result;
    reject "--metrics" metrics;
    reject "--journal" journal_dir
  end;
  if resume && journal_dir = None then
    hard_fail "--resume requires --journal DIR";
  if metrics <> None then begin
    Obs.enable ();
    Obs.reset ()
  end;
  let schemas = List.concat_map Ddl.Parser.schemas_of_file files in
  List.iter
    (fun s ->
      match Ecr.Schema.validate s with
      | [] -> ()
      | errors ->
          List.iter
            (fun e -> prerr_endline (Ecr.Schema.error_to_string e))
            errors;
          exit 2)
    schemas;
  let jobs_of_scripts =
    (* parse every script up front, sequentially: parse errors are
       reported in script order, before any session runs *)
    match scripts with
    | [] -> [ [] ]
    | paths -> (
        try List.map Integrate.Script.parse_file paths
        with Integrate.Script.Parse_error _ as e ->
          hard_fail "%s" (Integrate.Script.parse_error_to_string e))
  in
  let journal =
    match journal_dir with
    | None -> None
    | Some dir ->
        (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
         with Unix.Unix_error (e, _, _) ->
           hard_fail "cannot create journal directory %s: %s" dir
             (Unix.error_message e));
        let path = Filename.concat dir "session.journal" in
        let recovery, j = Journal.open_ path in
        if (not resume) && recovery.Journal.seq > 0 then
          hard_fail
            "journal %s already records %d operation(s): pass --resume to \
             continue that run, or remove the file to start over"
            path recovery.Journal.seq;
        Some (j, recovery)
  in
  let outputs =
    try
      Par.with_pool ~jobs @@ fun pool ->
      Par.map pool
        (fun directives ->
          run_session ~schemas ~directives ~out_ddl ~out_dot ~name ~analyse
            ~save_dict ~save_result ~data ~updates ~queries ~global_queries
            ?journal ())
        jobs_of_scripts
    with Session_error msg -> hard_fail "%s" msg
  in
  List.iteri
    (fun i (output, _) ->
      if i > 0 then print_string "\n========\n\n";
      print_string output)
    outputs;
  (match metrics with
  | None -> ()
  | Some path ->
      let meta =
        [
          ("tool", Obs.Json.String "sit_batch");
          ( "files",
            Obs.Json.List (List.map (fun f -> Obs.Json.String f) files) );
        ]
      in
      (try Obs.Report.write ~meta path
       with Sys_error msg ->
         Printf.eprintf "cannot write metrics report: %s\n" msg;
         exit 1);
      Printf.eprintf "metrics report written to %s\n" path);
  (* bad directives were already reported inline; finish the whole
     script first, then fail the run *)
  if List.exists (fun (_, ok) -> not ok) outputs then exit 1

open Cmdliner

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"ECR DDL files.")

let scripts =
  Arg.(
    value
    & opt_all file []
    & info [ "s"; "script" ] ~docv:"SCRIPT"
        ~doc:
          "Session script (equiv/object/rel/name directives).  Repeatable: \
           each script is an independent integration job over the same \
           schemas, and outputs are printed in script order.")

let jobs =
  Arg.(
    value
    & opt int (Par.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run up to $(docv) script jobs in parallel on a domain pool \
           (default: \\$SIT_JOBS, or 1).  Output order is independent of \
           $(docv).")

let out_ddl =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"OUT" ~doc:"Write the integrated schema as DDL to $(docv).")

let out_dot =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"DOT" ~doc:"Write the integrated schema as Graphviz to $(docv).")

let integrated_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Name of the integrated schema.")

let analyse =
  let doc = "Report schema-analysis incompatibilities before integrating." in
  Arg.(value & flag & info [ "analyse" ] ~doc)

let save_dict =
  let doc = "Save the workspace as a data dictionary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "save-dict" ] ~docv:"DICT" ~doc)

let data =
  let doc = "Instance data file (see Instance.Loader for the format)." in
  Arg.(value & opt (some file) None & info [ "data" ] ~docv:"DATA" ~doc)

let queries =
  let doc =
    "Run a view query against the migrated instance; format \"<view>: \
     <query>\".  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let global_queries =
  let doc =
    "Run a query against the integrated schema by unfolding it onto the \
     component instances.  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "g"; "global" ] ~docv:"QUERY" ~doc)

let save_result =
  let doc =
    "Save the full dictionary including the integrated schema and the \
     generated mappings to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "save-result" ] ~docv:"DICT" ~doc)

let updates =
  let doc =
    "Apply a view update to the migrated instance before querying; format \
     \"<view>: <update>\".  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "u"; "update" ] ~docv:"UPDATE" ~doc)

let metrics =
  let doc =
    "Enable the observability layer for the whole run and write its JSON \
     report (per-phase spans, counters, query-latency histograms) to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics" ] ~docv:"REPORT" ~doc)

let journal_dir =
  let doc =
    "Write-ahead journal the session to $(docv)/session.journal (crash \
     safety; single-script runs only).  A killed run continues with \
     $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)

let resume =
  let doc =
    "Resume the session recorded in the $(b,--journal) directory: replay \
     its longest valid prefix, then continue with the remaining \
     operations.  The DDL files and script must be the ones the journal \
     was started with."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let cmd =
  Cmd.v
    (Cmd.info "sit_batch" ~version:"1.0.0"
       ~doc:"batch schema integration from DDL files and session scripts")
    Term.(
      const run $ files $ scripts $ jobs $ out_ddl $ out_dot $ integrated_name
      $ analyse $ save_dict $ save_result $ data $ updates $ queries
      $ global_queries $ metrics $ journal_dir $ resume)

let () = exit (Cmd.eval cmd)
