(* sit — the Schema Integration Tool, interactively.

   Reproduces the menu/form tool of Sheth, Larson, Cornelio & Navathe
   (ICDE 1988).  Component schemas can be pre-loaded from ECR DDL files
   given on the command line; everything else happens through the
   screens, exactly as in the paper: schema collection, attribute
   equivalence specification, assertion specification with conflict
   resolution, and browsing of the integrated schema. *)

let load_file ws file =
  if Filename.check_suffix file ".sitd" then
    (* a data dictionary: schemas plus a recorded session *)
    Dictionary.merge ws (Dictionary.load file)
  else
    let schemas = Ddl.Parser.schemas_of_file file in
    List.fold_left
      (fun ws s ->
        match Ecr.Schema.validate s with
        | [] -> Integrate.Workspace.add_schema s ws
        | errors ->
            List.iter
              (fun e ->
                Printf.eprintf "%s: %s\n" file (Ecr.Schema.error_to_string e))
              errors;
            exit 2)
      ws schemas

(* With --journal, the whole session is write-ahead logged: a snapshot
   of the starting workspace (recovered session plus any files given on
   the command line), then one record per screen mutation.  On the next
   start the journal offers to resume; recovery replays the longest
   valid prefix, so a crash — even mid-write — costs at most the last
   keystroke.  See lib/journal and docs/ROBUSTNESS.md. *)
let run files save analyse journal_path =
  let workspace =
    List.fold_left load_file Integrate.Workspace.empty files
  in
  let workspace, journal =
    match journal_path with
    | None -> (workspace, None)
    | Some path ->
        let recovery, j = Journal.open_ path in
        let workspace =
          if recovery.Journal.seq > 0 then begin
            Printf.printf
              "journal %s holds a previous session (%d operation(s)%s).\n\
               Resume it? [y/N] "
              path recovery.Journal.seq
              (if recovery.Journal.truncated_bytes > 0 then
                 Printf.sprintf ", %d torn byte(s) discarded"
                   recovery.Journal.truncated_bytes
               else "");
            flush stdout;
            let answer = try input_line stdin with End_of_file -> "" in
            if String.lowercase_ascii (String.trim answer) = "y" then
              (* recovered session first, command-line files on top *)
              List.fold_left load_file recovery.Journal.workspace files
            else begin
              Journal.reset j;
              workspace
            end
          end
          else workspace
        in
        (* baseline snapshot: the journal is self-contained from here *)
        Journal.checkpoint j workspace;
        (workspace, Some j)
  in
  if analyse then
    List.iter
      (fun issue ->
        Printf.printf "analysis: %s\n" (Integrate.Analysis.to_string issue))
      (Integrate.Analysis.analyse workspace);
  let record =
    match journal with
    | None -> fun _ _ -> ()
    | Some j -> fun op after -> Journal.append ~after j op
  in
  let final = Tui.Session.run ~workspace ~record Tui.Session.stdio in
  (match journal with
  | None -> ()
  | Some j ->
      (* a clean exit leaves one compact snapshot behind *)
      Journal.compact j final;
      Journal.close j;
      Printf.printf "session journaled to %s\n" (Journal.path j));
  match save with
  | Some path ->
      Dictionary.save path final;
      Printf.printf "session saved to %s\n" path
  | None -> ()

open Cmdliner

let files =
  let doc =
    "ECR DDL files (or .sitd data dictionaries) to pre-load into the \
     workspace."
  in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

let save =
  let doc = "Save the final workspace as a data dictionary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let analyse =
  let doc = "Report schema-analysis incompatibilities before starting." in
  Arg.(value & flag & info [ "analyse" ] ~doc)

let journal =
  let doc =
    "Write-ahead journal every workspace mutation to $(docv) (crash \
     safety).  If $(docv) already holds a session, offer to resume it."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "interactive schema and view integration tool (ECR model)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "An interactive tool that assists database designers and \
         administrators (DDAs) in integrating component schemas expressed \
         in the Entity-Category-Relationship model into a single \
         integrated schema, following the four-phase methodology of \
         Sheth, Larson, Cornelio and Navathe (ICDE 1988): schema \
         collection, schema analysis (attribute equivalences), assertion \
         specification with automatic derivation and conflict detection, \
         and integration with generated mappings.";
    ]
  in
  Cmd.v
    (Cmd.info "sit" ~version:"1.0.0" ~doc ~man)
    Term.(const run $ files $ save $ analyse $ journal)

let () = exit (Cmd.eval cmd)
