(* sit_scenario — render a seeded federation scenario to files.

   Emits everything sit_serve needs to replay the scenario (component
   DDL, session script, instance data, op schedule) plus a summary of
   the generated federation, and fails when the scenario's own
   integration misses a ground-truth same-concept pair — the scripted
   session must always recover the generator's truth.

     sit_scenario --seed 11 --schemas 8 --out /tmp/scn11 *)

let run seed schemas concepts population views storm evolve rounds out =
  let params =
    {
      Workload.Scenario.seed;
      schemas;
      concepts;
      population;
      views;
      storm;
      evolve;
      rounds;
    }
  in
  let t = Workload.Scenario.generate params in
  let files = Workload.Scenario.write_files ~dir:out t in
  Printf.printf "scenario seed=%d: %d schemas, %d directives, %d views, %d ops in %d phases (checkpoint %d)\n"
    seed
    (List.length t.Workload.Scenario.schemas)
    (List.length t.Workload.Scenario.directives)
    (List.length t.Workload.Scenario.views)
    (Workload.Scenario.ops_total t)
    (List.length t.Workload.Scenario.schedule)
    t.Workload.Scenario.checkpoint;
  List.iter
    (fun (n, f) ->
      Printf.printf "  %-8s %s\n" n (Workload.Scenario.flavor_to_string f))
    t.Workload.Scenario.flavors;
  Printf.printf "  files: %s %s %s %s %s\n" files.Workload.Scenario.ddl
    files.Workload.Scenario.script files.Workload.Scenario.data
    files.Workload.Scenario.schedule files.Workload.Scenario.reads;
  let missed = Workload.Scenario.missed_true_pairs t in
  let truth = List.length t.Workload.Scenario.gen.Workload.Generator.true_pairs in
  Printf.printf "  ground truth: %d/%d same-concept pairs recovered\n"
    (truth - List.length missed)
    truth;
  if missed <> [] then begin
    List.iter
      (fun (a, b) ->
        Printf.eprintf "sit_scenario: MISSED %s ~ %s\n" (Ecr.Qname.to_string a)
          (Ecr.Qname.to_string b))
      missed;
    exit 1
  end

open Cmdliner

let int_opt names v doc = Arg.(value & opt int v & info names ~docv:"N" ~doc)
let seed = int_opt [ "seed" ] 42 "PRNG seed; every artefact is a pure function of the parameters."
let schemas = int_opt [ "schemas" ] 8 "Component schemas in the federation."
let concepts = int_opt [ "concepts" ] 16 "Object concepts in the ground-truth universe."
let population = int_opt [ "population" ] 200 "Entity tags shared by the universe."
let views = int_opt [ "views" ] 6 "Materialized views defined by the schedule."
let storm = int_opt [ "storm" ] 36 "Read-only frames per query-storm phase."
let evolve = int_opt [ "evolve" ] 9 "Update frames per evolve phase."
let rounds = int_opt [ "rounds" ] 2 "Evolve/barrier/storm rounds."

let out =
  Arg.(
    value
    & opt string "scenario.out"
    & info [ "o"; "out" ] ~docv:"DIR"
        ~doc:"Output directory (created if missing).")

let cmd =
  Cmd.v
    (Cmd.info "sit_scenario" ~version:"1.0.0"
       ~doc:"render a seeded federation scenario (docs/SCENARIOS.md) to files")
    Term.(
      const run $ seed $ schemas $ concepts $ population $ views $ storm
      $ evolve $ rounds $ out)

let () = exit (Cmd.eval cmd)
