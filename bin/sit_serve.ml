(* sit_serve — query-serving daemon over one integrated-schema session.

   Server mode loads component DDL files plus an integration session
   script, builds the integrated schema, migrates instance data, and
   serves queries/updates over the line-delimited JSON protocol in
   docs/SERVING.md:

     sit_serve sc1.ddl sc2.ddl --script session.sit --data inst.dat \
       --listen 127.0.0.1:7401 --jobs 4

   Drive mode (--drive ADDR) is the matching load client: it replays
   query specs over several concurrent connections and checks that
   identical frames always receive identical response bytes. *)

let hard_fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let parse_addr s =
  match Server.Wire.addr_of_string s with
  | Ok a -> a
  | Error e -> hard_fail "bad address %S: %s" s e

(* ---- drive mode --------------------------------------------------- *)

let split_view_spec what spec =
  match String.index_opt spec ':' with
  | None -> hard_fail "%s expects \"<view>: <text>\", got %s" what spec
  | Some i ->
      ( String.trim (String.sub spec 0 i),
        String.sub spec (i + 1) (String.length spec - i - 1) )

let parse_endpoints = function
  | None -> None
  | Some s ->
      let eps =
        String.split_on_char ',' s
        |> List.filter (fun x -> String.trim x <> "")
        |> List.map (fun x -> parse_addr (String.trim x))
      in
      (match eps with
      | [] -> hard_fail "--endpoints: no addresses in %S" s
      | _ -> ());
      Some eps

let drive addr endpoints timeout_ms conns requests queries global_queries
    mat_views proto =
  let specs =
    List.map
      (fun spec ->
        let view, text = split_view_spec "--query" spec in
        Server.Wire.request_to_line ~view ~text "query")
      queries
    @ List.map
        (fun text -> Server.Wire.request_to_line ~text "query")
        global_queries
    @ List.map
        (fun view -> Server.Wire.request_to_line ~view "query")
        mat_views
  in
  (match specs with
  | [] -> hard_fail "--drive needs at least one --query, --global or --mat spec"
  | _ -> ());
  let pool = Array.of_list specs in
  let n = max requests (Array.length pool) in
  let frames = Array.init n (fun i -> pool.(i mod Array.length pool)) in
  let protos =
    match proto with
    | "both" -> [ Server.Wire.Json; Server.Wire.Bin ]
    | p -> (
        match Server.Wire.proto_of_string p with
        | Some p -> [ p ]
        | None -> hard_fail "--proto expects json, bin or both, got %s" p)
  in
  let all_stats =
    List.map
      (fun p ->
        let stats =
          Server.Client.drive ~proto:p ?endpoints ?timeout_ms ~addr ~conns
            ~frames ()
        in
        Format.printf "%s: %a@."
          (Server.Wire.proto_to_string p)
          Server.Client.pp_drive_stats stats;
        stats)
      protos
  in
  (* health probe after the run: the daemon must still be answering —
     with --endpoints, any surviving endpoint will do *)
  let health_addr =
    match endpoints with
    | Some eps ->
        let rec first = function
          | [] -> addr
          | e :: rest -> (
              match Server.Client.connect e with
              | c ->
                  Server.Client.close c;
                  e
              | exception Server.Client.Connection_error _ -> first rest)
        in
        first eps
    | None -> addr
  in
  let c = Server.Client.connect health_addr in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      let resp = Server.Client.request c "health" in
      if not (Server.Client.is_ok resp) then hard_fail "health check failed");
  List.iter
    (fun (stats : Server.Client.drive_stats) ->
      if stats.Server.Client.mismatches > 0 then exit 1;
      if stats.Server.Client.ok = 0 && stats.Server.Client.sent > 0 then exit 1)
    all_stats

(* ---- scenario schedules ------------------------------------------- *)

(* A schedule file (Workload.Scenario syntax) replaces the --query specs:
   phases replay in order, serial phases on one connection, storm phases
   fanned over --conns.  --phases LO:HI selects a half-open phase range —
   the crash-resume harness replays a prefix, restarts the daemon, then
   replays the suffix. *)

let load_phases file phases_spec =
  let text = In_channel.with_open_bin file In_channel.input_all in
  match Workload.Scenario.parse_schedule text with
  | Error e -> hard_fail "%s: %s" file e
  | Ok (phases, _checkpoint) ->
      let n = List.length phases in
      let lo, hi =
        match phases_spec with
        | None -> (0, n)
        | Some s -> (
            let int what v =
              match int_of_string_opt v with
              | Some i -> i
              | None -> hard_fail "--phases: %s bound %S is not a number" what v
            in
            match String.split_on_char ':' s with
            | [ a; b ] ->
                ( (if a = "" then 0 else int "lower" a),
                  if b = "" then n else int "upper" b )
            | _ -> hard_fail "--phases expects LO:HI, got %s" s)
      in
      if lo < 0 || hi > n || lo > hi then
        hard_fail "--phases %d:%d out of range (schedule has %d phases)" lo hi n;
      List.filteri (fun i _ -> lo <= i && i < hi) phases

let write_transcript out text =
  match out with
  | None | Some "-" -> print_string text
  | Some path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc

let drive_schedule addr endpoints timeout_ms conns proto schedule phases_spec
    transcript_out =
  let phases = load_phases schedule phases_spec in
  let proto =
    match proto with
    | "both" ->
        (* Schedules mutate server state, so a second leg against the same
           daemon replays from evolved state and trivially diverges.  The
           differential harness starts a fresh daemon per leg instead. *)
        hard_fail
          "--proto both needs a fresh server per leg; drive each schedule \
           leg with --proto json or --proto bin against its own daemon"
    | p -> (
        match Server.Wire.proto_of_string p with
        | Some p -> p
        | None -> hard_fail "--proto expects json or bin, got %s" p)
  in
  let play ~storm frames =
    Server.Client.play ~proto ?endpoints ?timeout_ms ~addr
      ~conns:(if storm then conns else 1)
      frames
  in
  write_transcript transcript_out (Workload.Scenario.transcript ~play phases)

(* ---- server mode -------------------------------------------------- *)

(* --view NAME[@POLICY][:BASE]=QUERY, e.g.
   --view "honors@eager:sc1=select Name from Student where GPA >= 3.5" *)
let parse_view_def spec =
  match String.index_opt spec '=' with
  | None -> hard_fail "--view expects NAME[@POLICY][:BASE]=QUERY, got %s" spec
  | Some i ->
      let head = String.trim (String.sub spec 0 i) in
      let source = String.sub spec (i + 1) (String.length spec - i - 1) in
      let head, base =
        match String.index_opt head ':' with
        | None -> (head, None)
        | Some j ->
            ( String.trim (String.sub head 0 j),
              Some
                (String.trim
                   (String.sub head (j + 1) (String.length head - j - 1))) )
      in
      let name, policy =
        match String.index_opt head '@' with
        | None -> (head, None)
        | Some j -> (
            let p =
              String.trim (String.sub head (j + 1) (String.length head - j - 1))
            in
            match Server.View.policy_of_string p with
            | Some pol -> (String.trim (String.sub head 0 j), Some pol)
            | None ->
                hard_fail "--view: unknown policy %S (eager, lazy or manual)" p)
      in
      if name = "" then hard_fail "--view: empty view name in %s" spec;
      (name, policy, base, source)

let serve files script data name journal listen jobs queue deadline_ms cache
    metrics view_defs follow ack_replicas compact_every schedule phases_spec
    transcript_out =
  (match files with
  | [] -> hard_fail "no DDL files given (pass at least one schema file)"
  | _ -> ());
  if metrics <> None then begin
    Obs.enable ();
    Obs.reset ()
  end;
  let setup =
    { Server.schema_files = files; script; data; journal; name }
  in
  match Server.load_session setup with
  | Error msg -> hard_fail "%s" msg
  | Ok session -> (
      let repl =
        {
          Server.default_repl with
          role =
            (match follow with
            | None -> Server.Leader
            | Some a -> Server.Follower (parse_addr a));
          ack_replicas;
          compact_every;
        }
      in
      let cfg =
        {
          (Server.default_config listen) with
          jobs;
          queue;
          deadline_ms;
          cache;
          repl;
        }
      in
      match Server.create session cfg with
      | Error msg -> hard_fail "%s" msg
      | Ok t -> (
          List.iter
            (fun spec ->
              let vname, policy, base, source = parse_view_def spec in
              match Server.define_view t ~name:vname ?base ?policy source with
              | Ok () -> ()
              | Error msg -> hard_fail "--view %s: %s" vname msg)
            view_defs;
          match schedule with
          | Some file ->
              (* offline mode: replay the schedule in-process through the
                 same dispatch a connection uses, emit the transcript and
                 exit without ever accepting a connection — the reference
                 leg of the differential harness *)
              let phases = load_phases file phases_spec in
              let play ~storm:_ frames = Array.map (Server.exec t) frames in
              let text = Workload.Scenario.transcript ~play phases in
              Server.stop t;
              write_transcript transcript_out text
          | None ->
          let stop _ = Server.request_stop t in
          List.iter
            (fun s ->
              try Sys.set_signal s (Sys.Signal_handle stop)
              with Invalid_argument _ | Sys_error _ -> ())
            [ Sys.sigterm; Sys.sigint ];
          (match Server.port t with
          | Some p -> Printf.eprintf "sit_serve: listening on port %d\n%!" p
          | None ->
              Printf.eprintf "sit_serve: listening on %s\n%!"
                (Server.Wire.addr_to_string listen));
          Server.serve t;
          let s = Server.stats t in
          Printf.eprintf
            "sit_serve: drained; %d requests (%d ok, %d errors, %d \
             overloaded), cache %d hits / %d misses\n\
             %!"
            s.Server.requests s.Server.ok s.Server.errors s.Server.overloaded
            s.Server.cache_hits s.Server.cache_misses;
          (match metrics with
          | None -> ()
          | Some path ->
              let meta = [ ("tool", Obs.Json.String "sit_serve") ] in
              (try Obs.Report.write ~meta path
               with Sys_error msg ->
                 Printf.eprintf "cannot write metrics report: %s\n" msg;
                 exit 1);
              Printf.eprintf "metrics report written to %s\n" path)))

let run files script data name journal listen jobs queue deadline_ms cache
    metrics view_defs follow ack_replicas compact_every drive_addr endpoints
    timeout_ms conns requests queries global_queries mat_views proto schedule
    phases_spec transcript_out =
  let endpoints = parse_endpoints endpoints in
  match (drive_addr, schedule) with
  | Some addr, Some file ->
      drive_schedule (parse_addr addr) endpoints timeout_ms conns proto file
        phases_spec transcript_out
  | Some addr, None ->
      drive (parse_addr addr) endpoints timeout_ms conns requests queries
        global_queries mat_views proto
  | None, _ ->
      serve files script data name journal (parse_addr listen) jobs queue
        deadline_ms cache metrics view_defs follow ack_replicas compact_every
        schedule phases_spec transcript_out

open Cmdliner

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"ECR DDL files.")

let script =
  Arg.(
    value
    & opt (some file) None
    & info [ "s"; "script" ] ~docv:"SCRIPT"
        ~doc:"Integration session script (equiv/object/rel/name directives).")

let data =
  Arg.(
    value
    & opt (some file) None
    & info [ "data" ] ~docv:"DATA"
        ~doc:"Instance data file (see Instance.Loader for the format).")

let integrated_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Name of the integrated schema.")

let journal_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Write-ahead journal the setup session to $(docv)/serve.journal; \
           a restart resumes from it automatically.")

let listen =
  Arg.(
    value
    & opt string "127.0.0.1:7401"
    & info [ "l"; "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: $(b,unix:PATH), $(b,HOST:PORT) or $(b,:PORT) \
           (TCP port 0 asks the kernel for a free port).")

let jobs =
  Arg.(
    value
    & opt int (Par.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute requests on a domain pool of $(docv) workers (default: \
           \\$SIT_JOBS, or 1).")

let queue =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Maximum in-flight data requests; beyond it requests are answered \
           $(b,overloaded) immediately (backpressure, not buffering).")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline; requests past it are answered \
           $(b,deadline_exceeded).  A frame's own $(b,deadline_ms) field \
           overrides this.")

let cache =
  Arg.(
    value
    & opt int 128
    & info [ "cache" ] ~docv:"N"
        ~doc:"Rewrite-plan LRU capacity (0 disables the cache).")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"REPORT"
        ~doc:
          "Enable the observability layer and write its JSON report (per-op \
           latency histograms, server.* counters) to $(docv) on shutdown.")

let view_defs =
  Arg.(
    value
    & opt_all string []
    & info [ "view" ] ~docv:"DEF"
        ~doc:
          "Define a materialized view at startup; format \
           $(b,NAME[@POLICY][:BASE]=QUERY) where POLICY is eager, lazy \
           (default) or manual and BASE is the component view the query is \
           written against (omit it for an integrated-schema query).  \
           Repeatable.")

let follow =
  Arg.(
    value
    & opt (some string) None
    & info [ "follow" ] ~docv:"LEADER"
        ~doc:
          "Serve as a replication follower of the leader at $(docv) \
           (docs/ROBUSTNESS.md): tail its journal stream, apply it locally, \
           serve reads, and answer every write with a $(b,not_leader) \
           redirect to $(docv).")

let ack_replicas =
  Arg.(
    value
    & opt int 0
    & info [ "ack-replicas" ] ~docv:"N"
        ~doc:
          "Leader only: hold each write's response until $(docv) followers \
           have acknowledged it (0 = asynchronous replication).")

let compact_every =
  Arg.(
    value
    & opt int 0
    & info [ "compact-every" ] ~docv:"N"
        ~doc:
          "Leader only: every $(docv) acknowledged writes, snapshot the \
           serving state to the journal directory and truncate the covered \
           replication-log prefix (docs/ROBUSTNESS.md \"Log growth\").  0 \
           disables automatic compaction; the $(b,repl_compact) operation \
           triggers one on demand.")

let drive_addr =
  Arg.(
    value
    & opt (some string) None
    & info [ "drive" ] ~docv:"ADDR"
        ~doc:
          "Client mode: load-test the daemon at $(docv) with the given \
           --query/--global specs instead of serving.")

let endpoints =
  Arg.(
    value
    & opt (some string) None
    & info [ "endpoints" ] ~docv:"A,B,C"
        ~doc:
          "Drive mode: comma-separated endpoint list for client failover — \
           each worker walks the list on connection failures and chases \
           $(b,not_leader) redirects, so a load run survives a dying \
           server.")

let timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Drive mode: per-attempt socket timeout; a stalled endpoint \
           counts as a connection failure (and fails over under \
           --endpoints).")

let conns =
  Arg.(
    value
    & opt int 4
    & info [ "conns" ] ~docv:"N"
        ~doc:"Concurrent connections in --drive mode.")

let requests =
  Arg.(
    value
    & opt int 1000
    & info [ "requests" ] ~docv:"N"
        ~doc:"Total frames to send in --drive mode (specs are cycled).")

let queries =
  Arg.(
    value
    & opt_all string []
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:
          "Drive-mode view query; format \"<view>: <query>\".  Repeatable.")

let global_queries =
  Arg.(
    value
    & opt_all string []
    & info [ "g"; "global" ] ~docv:"QUERY"
        ~doc:"Drive-mode global query against the integrated schema.  \
              Repeatable.")

let mat_views =
  Arg.(
    value
    & opt_all string []
    & info [ "mat" ] ~docv:"NAME"
        ~doc:
          "Drive-mode materialized read: a $(b,query) frame naming the view \
           $(docv) with no query text.  Repeatable.")

let proto =
  Arg.(
    value
    & opt string "json"
    & info [ "proto" ] ~docv:"PROTO"
        ~doc:
          "Drive-mode wire protocol: $(b,json) (line-delimited), $(b,bin) \
           (length-prefixed binary frames, docs/WIRE.md), or $(b,both) to \
           replay the workload over each in turn.")

let schedule =
  Arg.(
    value
    & opt (some file) None
    & info [ "schedule" ] ~docv:"FILE"
        ~doc:
          "Scenario schedule file (docs/SCENARIOS.md).  In server mode the \
           schedule is executed $(b,offline): in-process, no socket, \
           transcript out, exit.  With --drive it replaces the --query \
           specs: phases replay in order, serial phases on one connection, \
           storm phases over --conns.")

let phases_spec =
  Arg.(
    value
    & opt (some string) None
    & info [ "phases" ] ~docv:"LO:HI"
        ~doc:
          "Half-open phase range of the schedule to replay (default all); \
           either bound may be omitted.  The crash-resume harness replays \
           $(b,0:K), restarts the daemon, then replays $(b,K:).")

let transcript_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "transcript" ] ~docv:"OUT"
        ~doc:
          "Write the normalized schedule transcript to $(docv) (default \
           stdout).  Transcripts are byte-comparable across offline/served, \
           json/bin, SIT_JOBS and crash-resume legs.")

let cmd =
  Cmd.v
    (Cmd.info "sit_serve" ~version:"1.0.0"
       ~doc:
         "query-serving daemon over an integrated-schema session (and its \
          load-test client)")
    Term.(
      const run $ files $ script $ data $ integrated_name $ journal_dir
      $ listen $ jobs $ queue $ deadline_ms $ cache $ metrics $ view_defs
      $ follow $ ack_replicas $ compact_every $ drive_addr $ endpoints
      $ timeout_ms_arg
      $ conns $ requests $ queries $ global_queries $ mat_views $ proto
      $ schedule $ phases_spec $ transcript_out)

let () = exit (Cmd.eval cmd)
