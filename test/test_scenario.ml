(* Differential end-to-end harness for Workload.Scenario (the scenario
   factory): one seeded federation scenario is rendered to files, loaded
   the way bin/sit_serve loads it, and replayed through every execution
   leg the stack offers.  All legs must produce byte-identical
   transcripts:

   - offline in-process execution (Server.exec), SIT_JOBS-style pool
     size 1 — the reference, with ground-truth invariants checked at
     every barrier phase (views fresh, materialized extents equal to
     from-scratch recomputation);
   - offline execution with a wider pool;
   - the JSON wire protocol through a real daemon;
   - the binary wire protocol through a real daemon;
   - a daemon killed at the checkpoint phase and restarted from its
     journal, replaying the schedule suffix.

   Plus the torn-journal ladder: the journaled setup session is crashed
   at a ladder of byte budgets (Journal.For_testing.write_limit) and
   each resumed load must converge to the uninterrupted session. *)

module Scn = Workload.Scenario

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* Small but structurally complete: heterogeneous flavors, 3 views,
   every phase kind, and a checkpoint — while keeping each leg well
   under a second. *)
let params =
  {
    Scn.seed = 7;
    schemas = 4;
    concepts = 8;
    population = 48;
    views = 3;
    storm = 8;
    evolve = 4;
    rounds = 1;
  }

let scn = lazy (Scn.generate params)

let fresh_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sit_scn_%s_%d_%d" tag (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let rendered =
  lazy
    (let dir = fresh_dir "files" in
     Scn.write_files ~dir (Lazy.force scn))

let setup ?journal () =
  let files = Lazy.force rendered in
  {
    Server.schema_files = [ files.Scn.ddl ];
    script = Some files.Scn.script;
    data = Some files.Scn.data;
    journal;
    name = Some "G";
  }

(* The schedule is read back from the rendered file, as sit_serve does,
   so the differential legs also cover the schedule round-trip. *)
let phases_and_checkpoint =
  lazy
    (let files = Lazy.force rendered in
     let text =
       In_channel.with_open_bin files.Scn.schedule In_channel.input_all
     in
     match Scn.parse_schedule text with
     | Ok (phases, ck) -> (phases, ck)
     | Error e -> Alcotest.fail e)

let load ?journal () =
  match Server.load_session (setup ?journal ()) with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let local = Server.Wire.Tcp ("127.0.0.1", 0)

let config ~jobs =
  { (Server.default_config local) with Server.jobs; queue = 256 }

let with_offline ~jobs f =
  match Server.create (load ()) (config ~jobs) with
  | Error e -> Alcotest.fail e
  | Ok t -> Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let offline_play t ~storm:_ frames = Array.map (Server.exec t) frames

let rows_bytes rows =
  String.concat "\n" (List.map Query.Eval.row_to_string rows)

(* The ground-truth invariant at a barrier phase: every view fresh, and
   every materialized extent byte-identical to from-scratch evaluation
   of its definition against the live merged store. *)
let check_barrier t label =
  Server.For_testing.with_state t (fun merged views ->
      let names = Server.View.names views in
      if names = [] then Alcotest.fail (label ^ ": no views registered");
      List.iter
        (fun v ->
          match Server.View.For_testing.raw_rows views v with
          | None -> Alcotest.fail (label ^ ": missing view " ^ v)
          | Some (rows, fresh) ->
              if not fresh then
                Alcotest.fail (label ^ ": view " ^ v ^ " stale after barrier");
              let q =
                match Server.View.definition views v with
                | Some q -> q
                | None -> Alcotest.fail (label ^ ": no definition for " ^ v)
              in
              check Alcotest.string
                (label ^ ": " ^ v ^ " extent = recompute")
                (rows_bytes (Query.Eval.run q merged))
                (rows_bytes rows))
        names)

(* The reference transcript: offline, pool of one, barrier invariants
   checked as the schedule passes each barrier phase. *)
let reference =
  lazy
    (with_offline ~jobs:1 (fun t ->
         let phases, _ = Lazy.force phases_and_checkpoint in
         let barriers = (Lazy.force scn).Scn.barriers in
         let parts =
           List.mapi
             (fun i p ->
               let part = Scn.transcript ~play:(offline_play t) [ p ] in
               if List.mem i barriers then
                 check_barrier t (Printf.sprintf "barrier %d (%s)" i p.Scn.label);
               part)
             phases
         in
         String.concat "" parts))

let with_served f =
  match Server.start (load ()) (config ~jobs:2) with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let addr =
        match Server.port t with
        | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
        | None -> Alcotest.fail "no bound port"
      in
      Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f addr)

let served_play proto addr ~storm frames =
  Server.Client.play ~proto ~addr ~conns:(if storm then 4 else 1) frames

(* ---- scenario structure ------------------------------------------- *)

let structure_tests =
  [
    tc "generate is a pure function of params" (fun () ->
        let a = Lazy.force scn and b = Scn.generate params in
        check Alcotest.string "script" a.Scn.script_text b.Scn.script_text;
        check Alcotest.string "schedule" (Scn.schedule_to_string a)
          (Scn.schedule_to_string b));
    tc "ground truth fully recovered, federation heterogeneous" (fun () ->
        let t = Lazy.force scn in
        check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "no missed true pairs" []
          (List.map
             (fun (a, b) -> (Ecr.Qname.to_string a, Ecr.Qname.to_string b))
             (Scn.missed_true_pairs t));
        check Alcotest.bool "at least one non-native flavor" true
          (List.exists (fun (_, f) -> f <> Scn.Ecr_native) t.Scn.flavors);
        check Alcotest.bool "some schemas stay native" true
          (List.exists (fun (_, f) -> f = Scn.Ecr_native) t.Scn.flavors));
    tc "schedule covers the whole lifecycle" (fun () ->
        let t = Lazy.force scn in
        let labels = List.map (fun p -> p.Scn.label) t.Scn.schedule in
        List.iter
          (fun l ->
            check Alcotest.bool (l ^ " phase present") true
              (List.exists
                 (fun l' ->
                   String.length l' >= String.length l
                   && String.sub l' 0 (String.length l) = l)
                 labels))
          [ "define"; "storm"; "evolve"; "barrier"; "checkpoint"; "drain" ];
        check Alcotest.bool "checkpoint phase is indexed" true
          (t.Scn.checkpoint >= 0
          && t.Scn.checkpoint < List.length t.Scn.schedule);
        check Alcotest.bool "ops_total counts every frame" true
          (Scn.ops_total t
          = List.fold_left
              (fun n p -> n + List.length p.Scn.frames)
              0 t.Scn.schedule));
    tc "rendered schedule parses back identically" (fun () ->
        let t = Lazy.force scn in
        match Scn.parse_schedule (Scn.schedule_to_string t) with
        | Error e -> Alcotest.fail e
        | Ok (phases, ck) ->
            check Alcotest.int "checkpoint" t.Scn.checkpoint ck;
            check Alcotest.int "phase count"
              (List.length t.Scn.schedule)
              (List.length phases);
            List.iter2
              (fun a b ->
                check Alcotest.string "label" a.Scn.label b.Scn.label;
                check Alcotest.bool "kind" a.Scn.storm b.Scn.storm;
                check
                  (Alcotest.list Alcotest.string)
                  ("frames of " ^ a.Scn.label) a.Scn.frames b.Scn.frames)
              t.Scn.schedule phases);
    tc "parse_schedule rejects malformed schedules" (fun () ->
        let bad input what =
          match Scn.parse_schedule input with
          | Ok _ -> Alcotest.fail ("accepted " ^ what)
          | Error _ -> ()
        in
        bad "{\"id\":\"f1\"}\n" "a frame before any phase";
        bad "!phase p0 sideways\n" "an unknown phase kind";
        bad "!phase\n" "a header missing its fields");
    tc "normalize_response zeroes only the ms field" (fun () ->
        check Alcotest.string "ms zeroed"
          "{\"ok\":true,\"refreshed\":\"sv0\",\"ms\":0}"
          (Scn.normalize_response
             "{\"ok\":true,\"refreshed\":\"sv0\",\"ms\":12.75}");
        let fixed = "{\"ok\":true,\"slept_ms\":5,\"rows\":3}" in
        check Alcotest.string "other fields untouched" fixed
          (Scn.normalize_response fixed));
  ]

(* ---- differential legs -------------------------------------------- *)

let leg_tests =
  [
    tc "reference leg succeeds and holds barrier invariants" (fun () ->
        let t = Lazy.force reference in
        check Alcotest.bool "transcript nonempty" true (String.length t > 0);
        (* every frame answered: one response line per op + one header
           line per phase *)
        let lines =
          List.length
            (String.split_on_char '\n' t |> List.filter (fun l -> l <> ""))
        in
        let s = Lazy.force scn in
        check Alcotest.int "every frame answered"
          (Scn.ops_total s + List.length s.Scn.schedule)
          lines);
    tc "offline wide pool matches the jobs=1 reference" (fun () ->
        with_offline ~jobs:4 (fun t ->
            let phases, _ = Lazy.force phases_and_checkpoint in
            check Alcotest.string "transcript" (Lazy.force reference)
              (Scn.transcript ~play:(offline_play t) phases)));
    tc "served JSON leg matches the offline reference" (fun () ->
        with_served (fun addr ->
            let phases, _ = Lazy.force phases_and_checkpoint in
            check Alcotest.string "transcript" (Lazy.force reference)
              (Scn.transcript
                 ~play:(served_play Server.Wire.Json addr)
                 phases)));
    tc "served binary leg matches the offline reference" (fun () ->
        with_served (fun addr ->
            let phases, _ = Lazy.force phases_and_checkpoint in
            check Alcotest.string "transcript" (Lazy.force reference)
              (Scn.transcript ~play:(served_play Server.Wire.Bin addr)
                 phases)));
    tc "daemon killed at the checkpoint resumes byte-identically" (fun () ->
        let phases, ck = Lazy.force phases_and_checkpoint in
        check Alcotest.bool "schedule has a checkpoint" true (ck >= 0);
        let journal = fresh_dir "resume" in
        let split lo hi = List.filteri (fun i _ -> lo <= i && i < hi) phases in
        let run_leg range =
          match Server.start (load ~journal ()) (config ~jobs:2) with
          | Error e -> Alcotest.fail e
          | Ok t ->
              let addr =
                match Server.port t with
                | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
                | None -> Alcotest.fail "no bound port"
              in
              Fun.protect
                ~finally:(fun () -> Server.stop t)
                (fun () ->
                  Scn.transcript
                    ~play:(served_play Server.Wire.Json addr)
                    range)
        in
        let prefix = run_leg (split 0 ck) in
        (* the daemon is gone; a fresh one resumes from the journal *)
        let suffix = run_leg (split ck (List.length phases)) in
        check Alcotest.string "prefix + suffix = uninterrupted"
          (Lazy.force reference) (prefix ^ suffix));
  ]

(* ---- torn setup journal ------------------------------------------- *)

(* One fingerprint of everything a setup session determines: the
   integrated schema and the fully-migrated instance. *)
let session_fingerprint (s : Server.session) =
  let r = s.Server.migration in
  Printf.sprintf "%s\n%s\n%d/%d fused %d links %d/%d"
    (Ddl.Printer.to_string s.Server.result.Integrate.Result.schema)
    (Instance.Loader.to_string s.Server.result.Integrate.Result.schema
       s.Server.initial_merged)
    r.Query.Migrate.entities_in r.Query.Migrate.entities_out
    r.Query.Migrate.fused r.Query.Migrate.links_in r.Query.Migrate.links_out

let crash_tests =
  [
    tc "torn setup journal: every byte budget resumes to the same session"
      (fun () ->
        let expected = session_fingerprint (load ()) in
        (* measure the full setup-journal size via a budget that never
           trips: write_limit is decremented by every journal byte *)
        let total =
          let dir = fresh_dir "measure" in
          Journal.For_testing.write_limit := Some max_int;
          let s = load ~journal:dir () in
          let remaining =
            match !Journal.For_testing.write_limit with
            | Some r -> r
            | None -> Alcotest.fail "write_limit hook cleared"
          in
          Journal.For_testing.write_limit := None;
          check Alcotest.string "journaled setup = plain setup" expected
            (session_fingerprint s);
          max_int - remaining
        in
        check Alcotest.bool "journal is nonempty" true (total > 64);
        let rungs = 14 in
        let budgets =
          [ 1; 8; total - 1; total ]
          @ List.init rungs (fun i -> (i + 1) * total / (rungs + 1))
        in
        List.iter
          (fun budget ->
            let dir = fresh_dir "torn" in
            Journal.For_testing.write_limit := Some budget;
            (match Server.load_session (setup ~journal:dir ()) with
            | Ok _ | Error _ -> ()
            | exception Journal.For_testing.Crash -> ());
            Journal.For_testing.write_limit := None;
            check Alcotest.string
              (Printf.sprintf "budget %d: resumed session converges" budget)
              expected
              (session_fingerprint (load ~journal:dir ())))
          budgets);
  ]

let () =
  Alcotest.run "scenario"
    [
      ("structure", structure_tests);
      ("differential", leg_tests);
      ("torn-journal", crash_tests);
    ]
