(* Integrate.Script: session-script parsing (positioned errors, no
   channel leaks) and directive replay. *)

open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let write_script lines =
  let path = Filename.temp_file "sit_script" ".sit" in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  path

let with_script lines f =
  let path = write_script lines in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let open_fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let parse_tests =
  [
    tc "parses directives in order, skipping comments and blanks" (fun () ->
        with_script
          [
            "# header comment";
            "";
            "equiv sc1.Student.Name sc2.Grad_student.Name";
            "object sc1.Department 1 sc2.Department  # trailing comment";
            "rel sc1.Majors 5 sc2.Major_in";
            "name sc1.Student sc2.Faculty Person";
          ]
        @@ fun path ->
        match Script.parse_file path with
        | [ Script.Equiv _; Object_assertion (_, a, _); Rel_assertion (_, m, _);
            Rename (_, _, forced) ] ->
            check Alcotest.bool "code 1" true (a = Assertion.Equal);
            check Alcotest.bool "code 5" true (m = Assertion.May_be);
            check Alcotest.string "forced name" "Person" forced
        | ds -> Alcotest.failf "unexpected parse: %d directives" (List.length ds));
    tc "parse error reports file and line" (fun () ->
        with_script [ "# one"; ""; "equiv a.b.c d.e.f"; "object only two" ]
        @@ fun path ->
        match Script.parse_file path with
        | _ -> Alcotest.fail "expected Parse_error"
        | exception (Script.Parse_error { file; line; message } as e) ->
            check Alcotest.string "file" path file;
            check Alcotest.int "line counts comments and blanks" 4 line;
            check Alcotest.bool "message names the directive" true
              (String.length message > 0);
            let rendered = Script.parse_error_to_string e in
            check Alcotest.string "file:line prefix"
              (Printf.sprintf "%s:4: " path)
              (String.sub rendered 0 (String.length path + 4)));
    tc "malformed qualified names are positioned too" (fun () ->
        with_script [ "equiv notqualified alsonot" ] @@ fun path ->
        (match Script.parse_file path with
        | _ -> Alcotest.fail "expected Parse_error"
        | exception Script.Parse_error { line; _ } ->
            check Alcotest.int "line 1" 1 line);
        with_script [ "object sc1.A 9 sc2.B" ] @@ fun path ->
        match Script.parse_file path with
        | _ -> Alcotest.fail "expected Parse_error"
        | exception Script.Parse_error { message; _ } ->
            check Alcotest.string "bad code" "unknown assertion code: 9" message);
    tc "failed parses do not leak channels" (fun () ->
        (* warm up any lazily allocated descriptors, then the count must
           be stable across many mid-file failures *)
        with_script [ "equiv a.b.c d.e.f"; "broken" ] @@ fun path ->
        (try ignore (Script.parse_file path) with Script.Parse_error _ -> ());
        let before = open_fd_count () in
        for _ = 1 to 50 do
          try ignore (Script.parse_file path)
          with Script.Parse_error _ -> ()
        done;
        check Alcotest.int "fd count stable" before (open_fd_count ()));
    tc "missing file raises Sys_error, not Parse_error" (fun () ->
        match Script.parse_file "/nonexistent/script.sit" with
        | _ -> Alcotest.fail "expected Sys_error"
        | exception Sys_error _ -> ());
  ]

let apply_tests =
  [
    tc "apply replays onto a workspace" (fun () ->
        let ws =
          List.fold_left
            (fun ws s -> Workspace.add_schema s ws)
            Workspace.empty
            [ Workload.Paper.sc1; Workload.Paper.sc2 ]
        in
        let directives =
          [
            Script.Equiv
              ( Ecr.Qname.Attr.v "sc1" "Department" "Name",
                Ecr.Qname.Attr.v "sc2" "Department" "Name" );
            Script.Object_assertion
              ( Ecr.Qname.v "sc1" "Department",
                Assertion.Equal,
                Ecr.Qname.v "sc2" "Department" );
          ]
        in
        match Script.apply directives ws with
        | Ok ws ->
            check Alcotest.int "one object fact" 1
              (List.length (Workspace.object_facts ws))
        | Error e -> Alcotest.fail (Script.apply_error_to_string e));
    tc "apply stops at the first rejected assertion" (fun () ->
        let ws =
          List.fold_left
            (fun ws s -> Workspace.add_schema s ws)
            Workspace.empty
            [ Workload.Paper.sc1; Workload.Paper.sc2 ]
        in
        let dept1 = Ecr.Qname.v "sc1" "Department"
        and dept2 = Ecr.Qname.v "sc2" "Department" in
        let directives =
          [
            Script.Object_assertion (dept1, Assertion.Equal, dept2);
            Script.Object_assertion
              (dept1, Assertion.Disjoint_nonintegrable, dept2);
          ]
        in
        match Script.apply directives ws with
        | Ok _ -> Alcotest.fail "expected a conflict"
        | Error (Script.Object_conflict (a, b, _) as e) ->
            check Alcotest.bool "pair reported" true
              (Ecr.Qname.equal a dept1 && Ecr.Qname.equal b dept2);
            check Alcotest.bool "message mentions the pair" true
              (String.length (Script.apply_error_to_string e) > 0)
        | Error _ -> Alcotest.fail "wrong conflict kind");
  ]

let () =
  Alcotest.run "script" [ ("parse", parse_tests); ("apply", apply_tests) ]
