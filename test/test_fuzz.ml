(* DDL robustness fuzzing: mutate well-formed example schemas with
   random byte edits, truncations and insertions (seeded Workload.Prng,
   so every run is reproducible) and assert the lexer/parser contract —
   a mutated input either still parses or raises a positioned
   [Ddl.Parser.Error]; it never escapes with another exception, hangs,
   or reports a nonsense position. *)

open Alcotest

let tc name f = test_case name `Quick f

(* The corpus: the paper's four example schemas plus one handwritten
   text exercising the rest of the grammar (roles, enum domains,
   categories with several parents, attribute-less bodies). *)
let corpus =
  List.map Ddl.Printer.to_string
    [ Workload.Paper.sc1; Workload.Paper.sc2; Workload.Paper.sc3;
      Workload.Paper.sc4 ]
  @ [
      "schema extra {\n\
      \  entity Person { Name : char key; Level : enum(low,mid,high); }\n\
      \  entity Course;\n\
      \  category Tutor of Person, Course { Rate : real; }\n\
      \  relationship Teaches (who:Person(1,N), Course(0,N)) { Hours : int; }\n\
       }\n";
    ]

(* Random printable-or-nasty byte: the structural characters the
   grammar cares about are over-represented so mutations actually hit
   interesting parse states. *)
let random_byte g =
  let nasty = "{}();:,.-\"'\\\x00\xff\n " in
  if Workload.Prng.bool g 0.4 then nasty.[Workload.Prng.int g (String.length nasty)]
  else Char.chr (Workload.Prng.int g 256)

let mutate g src =
  let n = String.length src in
  match Workload.Prng.int g 4 with
  | 0 ->
      (* truncate at a random offset: a torn file *)
      String.sub src 0 (Workload.Prng.int g (n + 1))
  | 1 ->
      (* overwrite a few bytes *)
      let b = Bytes.of_string src in
      for _ = 0 to Workload.Prng.int g 8 do
        if n > 0 then Bytes.set b (Workload.Prng.int g n) (random_byte g)
      done;
      Bytes.to_string b
  | 2 ->
      (* insert a short random run *)
      let at = Workload.Prng.int g (n + 1) in
      let run = String.init (1 + Workload.Prng.int g 6) (fun _ -> random_byte g) in
      String.sub src 0 at ^ run ^ String.sub src at (n - at)
  | _ ->
      (* single-bit flip *)
      if n = 0 then src
      else begin
        let b = Bytes.of_string src in
        let at = Workload.Prng.int g n in
        Bytes.set b at (Char.chr (Char.code src.[at] lxor (1 lsl Workload.Prng.int g 8)));
        Bytes.to_string b
      end

(* The contract under test. *)
let check_outcome input =
  match Ddl.Parser.schemas_of_string input with
  | _ -> () (* a benign mutation (e.g. inside a comment) may still parse *)
  | exception Ddl.Parser.Error (msg, line, col) ->
      check bool
        (Printf.sprintf "position of %S is sane (%d:%d)" msg line col)
        true
        (line >= 0 && col >= 0);
      check bool "message is not empty" true (String.length msg > 0)
  | exception e ->
      Alcotest.failf "unhandled %s for input %S" (Printexc.to_string e) input

let fuzz_tests =
  [
    tc "5000 seeded mutations never escape the Error contract" (fun () ->
        let g = Workload.Prng.create 0xF0221 in
        for _ = 1 to 5000 do
          let src = Workload.Prng.pick g corpus in
          check_outcome (mutate g src)
        done);
    tc "deeper mutation stacks (up to 5 rounds)" (fun () ->
        let g = Workload.Prng.create 0xF0222 in
        for _ = 1 to 1000 do
          let src = ref (Workload.Prng.pick g corpus) in
          for _ = 1 to 1 + Workload.Prng.int g 5 do
            src := mutate g !src
          done;
          check_outcome !src
        done);
    tc "adversarial inputs raise positioned errors" (fun () ->
        List.iter
          (fun input ->
            match Ddl.Parser.schemas_of_string input with
            | _ -> Alcotest.failf "accepted %S" input
            | exception Ddl.Parser.Error (_, line, col) ->
                check bool
                  (Printf.sprintf "%S positioned at %d:%d" input line col)
                  true
                  (line >= 1 && col >= 1)
            | exception e ->
                Alcotest.failf "unhandled %s for %S" (Printexc.to_string e)
                  input)
          [
            (* lexer: integer overflow must not escape as Failure *)
            "schema s { relationship R (E(99999999999999999999999,1)); }";
            "99999999999999999999999";
            (* parser: only enum takes a value list *)
            "schema s { entity E { A : color(red,blue); } }";
            (* duplicate structures are a schema-construction error with
               the schema's own position *)
            "schema s { entity E; entity E; }";
            (* plain syntax errors *)
            "schema s { entity E { A : ; } }";
            "schema s {";
            "schema s { relationship R (E(1,0)); }";
            "schema 3 { }";
          ]);
    tc "empty and whitespace-only inputs parse to no schemas" (fun () ->
        List.iter
          (fun input ->
            match Ddl.Parser.schemas_of_string input with
            | [] -> ()
            | _ -> Alcotest.failf "expected no schemas for %S" input
            | exception e ->
                Alcotest.failf "unhandled %s for %S" (Printexc.to_string e)
                  input)
          [ ""; " \t\n"; "-- just a comment\n" ]);
  ]

let () = Alcotest.run "fuzz" [ ("ddl-fuzz", fuzz_tests) ]
