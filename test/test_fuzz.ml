(* DDL robustness fuzzing: mutate well-formed example schemas with
   random byte edits, truncations and insertions (seeded Workload.Prng,
   so every run is reproducible) and assert the lexer/parser contract —
   a mutated input either still parses or raises a positioned
   [Ddl.Parser.Error]; it never escapes with another exception, hangs,
   or reports a nonsense position. *)

open Alcotest

let tc name f = test_case name `Quick f

(* The corpus: the paper's four example schemas plus one handwritten
   text exercising the rest of the grammar (roles, enum domains,
   categories with several parents, attribute-less bodies). *)
let corpus =
  List.map Ddl.Printer.to_string
    [ Workload.Paper.sc1; Workload.Paper.sc2; Workload.Paper.sc3;
      Workload.Paper.sc4 ]
  @ [
      "schema extra {\n\
      \  entity Person { Name : char key; Level : enum(low,mid,high); }\n\
      \  entity Course;\n\
      \  category Tutor of Person, Course { Rate : real; }\n\
      \  relationship Teaches (who:Person(1,N), Course(0,N)) { Hours : int; }\n\
       }\n";
    ]

(* Random printable-or-nasty byte: the structural characters the
   grammar cares about are over-represented so mutations actually hit
   interesting parse states. *)
let random_byte g =
  let nasty = "{}();:,.-\"'\\\x00\xff\n " in
  if Workload.Prng.bool g 0.4 then nasty.[Workload.Prng.int g (String.length nasty)]
  else Char.chr (Workload.Prng.int g 256)

let mutate g src =
  let n = String.length src in
  match Workload.Prng.int g 4 with
  | 0 ->
      (* truncate at a random offset: a torn file *)
      String.sub src 0 (Workload.Prng.int g (n + 1))
  | 1 ->
      (* overwrite a few bytes *)
      let b = Bytes.of_string src in
      for _ = 0 to Workload.Prng.int g 8 do
        if n > 0 then Bytes.set b (Workload.Prng.int g n) (random_byte g)
      done;
      Bytes.to_string b
  | 2 ->
      (* insert a short random run *)
      let at = Workload.Prng.int g (n + 1) in
      let run = String.init (1 + Workload.Prng.int g 6) (fun _ -> random_byte g) in
      String.sub src 0 at ^ run ^ String.sub src at (n - at)
  | _ ->
      (* single-bit flip *)
      if n = 0 then src
      else begin
        let b = Bytes.of_string src in
        let at = Workload.Prng.int g n in
        Bytes.set b at (Char.chr (Char.code src.[at] lxor (1 lsl Workload.Prng.int g 8)));
        Bytes.to_string b
      end

(* The contract under test. *)
let check_outcome input =
  match Ddl.Parser.schemas_of_string input with
  | _ -> () (* a benign mutation (e.g. inside a comment) may still parse *)
  | exception Ddl.Parser.Error (msg, line, col) ->
      check bool
        (Printf.sprintf "position of %S is sane (%d:%d)" msg line col)
        true
        (line >= 0 && col >= 0);
      check bool "message is not empty" true (String.length msg > 0)
  | exception e ->
      Alcotest.failf "unhandled %s for input %S" (Printexc.to_string e) input

let fuzz_tests =
  [
    tc "5000 seeded mutations never escape the Error contract" (fun () ->
        let g = Workload.Prng.create 0xF0221 in
        for _ = 1 to 5000 do
          let src = Workload.Prng.pick g corpus in
          check_outcome (mutate g src)
        done);
    tc "deeper mutation stacks (up to 5 rounds)" (fun () ->
        let g = Workload.Prng.create 0xF0222 in
        for _ = 1 to 1000 do
          let src = ref (Workload.Prng.pick g corpus) in
          for _ = 1 to 1 + Workload.Prng.int g 5 do
            src := mutate g !src
          done;
          check_outcome !src
        done);
    tc "adversarial inputs raise positioned errors" (fun () ->
        List.iter
          (fun input ->
            match Ddl.Parser.schemas_of_string input with
            | _ -> Alcotest.failf "accepted %S" input
            | exception Ddl.Parser.Error (_, line, col) ->
                check bool
                  (Printf.sprintf "%S positioned at %d:%d" input line col)
                  true
                  (line >= 1 && col >= 1)
            | exception e ->
                Alcotest.failf "unhandled %s for %S" (Printexc.to_string e)
                  input)
          [
            (* lexer: integer overflow must not escape as Failure *)
            "schema s { relationship R (E(99999999999999999999999,1)); }";
            "99999999999999999999999";
            (* parser: only enum takes a value list *)
            "schema s { entity E { A : color(red,blue); } }";
            (* duplicate structures are a schema-construction error with
               the schema's own position *)
            "schema s { entity E; entity E; }";
            (* plain syntax errors *)
            "schema s { entity E { A : ; } }";
            "schema s {";
            "schema s { relationship R (E(1,0)); }";
            "schema 3 { }";
          ]);
    tc "empty and whitespace-only inputs parse to no schemas" (fun () ->
        List.iter
          (fun input ->
            match Ddl.Parser.schemas_of_string input with
            | [] -> ()
            | _ -> Alcotest.failf "expected no schemas for %S" input
            | exception e ->
                Alcotest.failf "unhandled %s for %S" (Printexc.to_string e)
                  input)
          [ ""; " \t\n"; "-- just a comment\n" ]);
  ]

(* ---- binary wire-frame fuzzing ------------------------------------ *)

(* The decoder contract (docs/WIRE.md): [Wire.decode_bin] on arbitrary
   bytes either returns a decoded frame or a human-readable [Error] —
   never any exception, never an unbounded allocation, never an accept
   of a frame that does not round-trip. *)
module Wire = Server.Wire
module Json = Obs.Json

let sample_values =
  [
    Json.Null;
    Json.Bool true;
    Json.Int (-42);
    Json.Int max_int;
    Json.Float 3.25;
    Json.Float nan;
    Json.String "";
    Json.String "héllo\nworld\x00";
    Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
    Json.Obj [ ("op", Json.String "query"); ("deadline_ms", Json.Int 50) ];
    Json.Obj
      [
        ( "rows",
          Json.List
            [ Json.Obj [ ("Name", Json.String "Ann"); ("GPA", Json.Float 3.9) ] ]
        );
        ("count", Json.Int 1);
      ];
  ]

let frame_corpus =
  List.concat_map
    (fun v -> [ Wire.encode_bin Wire.Request v; Wire.encode_bin Wire.Response v ])
    sample_values

let decode_contract input =
  match Wire.decode_bin input with
  | Ok (kind, v) ->
      (* an accepted frame must re-encode to the very same bytes: the
         encoding has no redundancy, so decode is injective *)
      check string "accepted frames round-trip" input (Wire.encode_bin kind v)
  | Error e -> check bool "error message is not empty" true (String.length e > 0)
  | exception e ->
      Alcotest.failf "decode_bin raised %s on %d bytes" (Printexc.to_string e)
        (String.length input)

let bin_fuzz_tests =
  [
    tc "well-formed frames round-trip through encode/decode" (fun () ->
        List.iter
          (fun frame ->
            match Wire.decode_bin frame with
            | Ok (kind, v) ->
                check string "identical bytes" frame (Wire.encode_bin kind v)
            | Error e -> Alcotest.failf "rejected a well-formed frame: %s" e)
          frame_corpus);
    tc "5000 seeded frame mutations never escape Ok/Error" (fun () ->
        let g = Workload.Prng.create 0xB14A9 in
        for _ = 1 to 5000 do
          decode_contract (mutate g (Workload.Prng.pick g frame_corpus))
        done);
    tc "truncations at every byte are rejected or consistent" (fun () ->
        List.iter
          (fun frame ->
            for k = 0 to String.length frame - 1 do
              (* every proper prefix must be an Error: the length prefix
                 no longer matches the body *)
              match Wire.decode_bin (String.sub frame 0 k) with
              | Error _ -> ()
              | Ok _ -> Alcotest.failf "accepted a %d-byte truncation" k
            done)
          frame_corpus);
    tc "adversarial prefixes and tags are typed errors" (fun () ->
        let reject input reason =
          match Wire.decode_bin input with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %s" reason
        in
        (* oversized length prefix: must be rejected before allocation *)
        reject "\xff\xff\xff\xff\x01\x00" "a 4 GiB length prefix";
        reject "\x7f\xff\xff\xff\x01\x00" "a 2 GiB length prefix";
        (* length prefix exceeding max_frame by one *)
        let over = Wire.max_frame + 1 in
        let hdr =
          String.init 4 (fun i ->
              Char.chr ((over lsr ((3 - i) * 8)) land 0xff))
        in
        (match Wire.bin_length hdr with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "bin_length accepted max_frame+1");
        (* bad frame type *)
        reject "\x00\x00\x00\x02\x03\x00" "frame type 0x03";
        (* bad value tag *)
        reject "\x00\x00\x00\x02\x01\x7f" "value tag 0x7f";
        (* list claiming more elements than bytes remain *)
        reject "\x00\x00\x00\x06\x01\x06\xff\xff\xff\xff" "a 4G-element list";
        (* string overrunning the frame *)
        reject "\x00\x00\x00\x07\x01\x05\x00\x00\x00\x10x" "an overrunning string";
        (* trailing bytes after a complete value *)
        reject "\x00\x00\x00\x03\x01\x00\x00" "trailing bytes";
        (* empty body: no frame-type byte *)
        reject "\x00\x00\x00\x00" "an empty body");
    tc "deep nesting is bounded, not a stack overflow" (fun () ->
        (* 100k nested single-element lists: tag 0x06 + count 1, repeated *)
        let depth = 100_000 in
        let b = Buffer.create (5 * depth + 16) in
        for _ = 1 to depth do
          Buffer.add_string b "\x06\x00\x00\x00\x01"
        done;
        Buffer.add_char b '\x00';
        let body = "\x01" ^ Buffer.contents b in
        let hdr =
          String.init 4 (fun i ->
              Char.chr ((String.length body lsr ((3 - i) * 8)) land 0xff))
        in
        match Wire.decode_bin (hdr ^ body) with
        | Error _ -> () (* rejected at the depth limit: the contract *)
        | Ok _ -> Alcotest.fail "accepted 100k-deep nesting"
        | exception e ->
            Alcotest.failf "raised %s on deep nesting" (Printexc.to_string e));
  ]

let () =
  Alcotest.run "fuzz"
    [ ("ddl-fuzz", fuzz_tests); ("wire-fuzz", bin_fuzz_tests) ]
