(* Fault-injection harness for the session journal.

   The single invariant under test: for ANY damaged journal file,
   recovery equals replaying the longest surviving valid record prefix
   through [Workspace] — same dictionary text, byte-identical integrated
   DDL — and never raises.  We record a real session (the paper's
   worked example plus schema edits, separations, retractions and a
   naming pin), note the byte offset where every record ends, then
   attack the file three ways:

   - truncation at every record boundary and at sampled mid-record
     offsets (a torn final write);
   - single-bit flips at sampled offsets (media corruption — CRC must
     catch it and recovery must fall back to the records before it);
   - torn writes at arbitrary byte budgets via
     [Journal.For_testing.write_limit] (a crash mid-[write]), followed
     by a resume that completes the session and must converge on the
     exact same final state.

   The Makefile's crash-test target runs this binary under both
   SIT_JOBS=1 and the full core count. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
module Op = Integrate.Op
module Ws = Integrate.Workspace

(* ------------------------------------------------------------------ *)
(* The recorded session: 24 ops covering every constructor.            *)

let session : Op.t list =
  let q = Ecr.Qname.v and qa = Ecr.Qname.Attr.v in
  [ Op.Add_schema Workload.Paper.sc1; Op.Add_schema Workload.Paper.sc2 ]
  @ List.map (fun (a, b) -> Op.Declare_equivalent (a, b)) Workload.Paper.equivalences
  @ List.map (fun (a, c, b) -> Op.Assert_object (a, c, b)) Workload.Paper.object_assertions
  @ List.map
      (fun (a, c, b) -> Op.Assert_relationship (a, c, b))
      Workload.Paper.relationship_assertions
  @ [
      Op.Rename (q "sc1" "Majors", q "sc2" "Major_in", "E_Stud_Majo");
      Op.Add_schema Workload.Paper.sc3;
      (* change of mind: separate a declared pair, then re-declare it *)
      Op.Separate_attribute (qa "sc1" "Student" "GPA");
      Op.Declare_equivalent (qa "sc1" "Student" "GPA", qa "sc2" "Grad_student" "GPA");
      (* retract a fact and re-assert it *)
      (let a, _, b = List.hd Workload.Paper.object_assertions in
       Op.Retract_object (a, b));
      (let a, c, b = List.hd Workload.Paper.object_assertions in
       Op.Assert_object (a, c, b));
      Op.Remove_schema (Ecr.Name.v "sc3");
    ]

let n_ops = List.length session

(* [prefix k] = the workspace after the first [k] ops — the oracle every
   recovery is compared against. *)
let prefix =
  let arr = Array.make (n_ops + 1) Ws.empty in
  List.iteri (fun i op -> arr.(i + 1) <- Op.apply op arr.(i)) session;
  fun k -> arr.(k)

let dict ws = Dictionary.to_string ws

(* The full fingerprint: dictionary text plus the integrated schema's
   printed DDL (when there is anything to integrate).  Byte equality
   here is the issue's "byte-identical integrated output". *)
let fingerprint ws =
  let integrated =
    if List.length (Ws.schemas ws) >= 2 then
      Ddl.Printer.to_string (Ws.integrate ws).Integrate.Result.schema
    else "(nothing to integrate)"
  in
  dict ws ^ "\n=== integrated ===\n" ^ integrated

let expect_fp = Array.init (n_ops + 1) (fun k -> fingerprint (prefix k))
let expect_dict = Array.init (n_ops + 1) (fun k -> dict (prefix k))

(* ------------------------------------------------------------------ *)
(* Plumbing.                                                           *)

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sit_journal_test_%d_%d.sitj" (Unix.getpid ()) !n)

let with_path f =
  let path = fresh_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let file_size path = (Unix.stat path).Unix.st_size

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

(* Records the whole session into [path] with no checkpoints, returning
   the boundary map: [(end_offset, ops_so_far)] for every record, with
   the 8-byte header as boundary [(8, 0)]. *)
let record_session path =
  let recovery, j = Journal.open_ ~fsync:Never ~checkpoint_every:max_int path in
  check Alcotest.int "fresh journal is empty" 0 recovery.Journal.seq;
  let boundaries = ref [ (file_size path, 0) ] in
  List.iteri
    (fun i op ->
      Journal.append j op;
      boundaries := (file_size path, i + 1) :: !boundaries)
    session;
  Journal.close j;
  List.rev !boundaries

(* Survivors of damage at byte [b]: the record containing [b] dies, so
   the oracle is the latest boundary at or before [b].  Damage inside
   the magic header kills everything. *)
let survivors boundaries b =
  List.fold_left
    (fun acc (size, k) -> if size <= b then Int.max acc k else acc)
    0 boundaries

let boundary_at boundaries b =
  List.fold_left
    (fun acc (size, _) -> if size <= b && size > acc then size else acc)
    0 boundaries
  |> fun s -> if b < 8 then 0 else s

let check_recovery ~what ~full b expected_k r =
  let ws = r.Journal.workspace in
  check Alcotest.int (Printf.sprintf "%s@%d: seq" what b) expected_k r.Journal.seq;
  if full then
    check Alcotest.string
      (Printf.sprintf "%s@%d: fingerprint" what b)
      expect_fp.(expected_k) (fingerprint ws)
  else
    check Alcotest.string
      (Printf.sprintf "%s@%d: dictionary" what b)
      expect_dict.(expected_k) (dict ws)

(* ------------------------------------------------------------------ *)
(* 1. Truncation.                                                      *)

let truncation_tests =
  [
    tc "truncation at every record boundary recovers that exact prefix" (fun () ->
        with_path (fun path ->
            let boundaries = record_session path in
            let data = read_file path in
            with_path (fun victim ->
                List.iter
                  (fun (size, k) ->
                    write_file victim (String.sub data 0 size);
                    let r = Journal.recover victim in
                    check Alcotest.int
                      (Printf.sprintf "clean cut @%d drops nothing" size)
                      0 r.Journal.truncated_bytes;
                    (* full fingerprint: integrated output is byte-identical *)
                    check_recovery ~what:"truncate" ~full:true size k r)
                  boundaries)));
    tc "truncation at every mid-record byte falls back to the prior record"
      (fun () ->
        with_path (fun path ->
            let boundaries = record_session path in
            let data = read_file path in
            let n = String.length data in
            with_path (fun victim ->
                let b = ref 0 in
                while !b < n do
                  write_file victim (String.sub data 0 !b);
                  let r = Journal.recover victim in
                  let k = survivors boundaries !b in
                  check Alcotest.int
                    (Printf.sprintf "torn tail measured @%d" !b)
                    (!b - boundary_at boundaries !b)
                    r.Journal.truncated_bytes;
                  check_recovery ~what:"mid-truncate" ~full:false !b k r;
                  b := !b + 7
                done)));
    tc "empty, missing and garbage files recover to the empty session"
      (fun () ->
        with_path (fun path ->
            List.iter
              (fun data ->
                write_file path data;
                let r = Journal.recover path in
                check Alcotest.int "no ops" 0 r.Journal.seq;
                check Alcotest.string "empty workspace" expect_dict.(0)
                  (dict r.Journal.workspace))
              [ ""; "garbage"; "SITJRNL1"; "SITJRNL0" ^ String.make 100 'x' ];
            Sys.remove path;
            let r = Journal.recover path in
            check Alcotest.int "missing file" 0 r.Journal.seq));
  ]

(* ------------------------------------------------------------------ *)
(* 2. Single-bit flips.                                                *)

let bitflip_tests =
  [
    tc "a flipped bit anywhere truncates recovery at that record" (fun () ->
        with_path (fun path ->
            let boundaries = record_session path in
            let data = read_file path in
            let n = String.length data in
            with_path (fun victim ->
                let b = ref 0 and bit = ref 0 in
                while !b < n do
                  let buf = Bytes.of_string data in
                  Bytes.set buf !b
                    (Char.chr (Char.code data.[!b] lxor (1 lsl !bit)));
                  write_file victim (Bytes.to_string buf);
                  let r = Journal.recover victim in
                  check_recovery ~what:"bitflip" ~full:false !b
                    (survivors boundaries !b) r;
                  (* everything from the flipped record on is discarded *)
                  check Alcotest.int
                    (Printf.sprintf "tail dropped @%d" !b)
                    (n - boundary_at boundaries !b)
                    r.Journal.truncated_bytes;
                  bit := (!bit + 3) mod 8;
                  b := !b + 11
                done)));
    tc "open_ truncates the corrupt tail so new appends extend the prefix"
      (fun () ->
        with_path (fun path ->
            let boundaries = record_session path in
            let data = read_file path in
            (* flip a bit a third of the way in *)
            let b = String.length data / 3 in
            let buf = Bytes.of_string data in
            Bytes.set buf b (Char.chr (Char.code data.[b] lxor 0x10));
            write_file path (Bytes.to_string buf);
            let k = survivors boundaries b in
            let recovery, j =
              Journal.open_ ~fsync:Never ~checkpoint_every:max_int path
            in
            check Alcotest.int "recovered prefix" k recovery.Journal.seq;
            (* replay the lost suffix of the session *)
            List.iteri
              (fun i op -> if i >= k then Journal.append j op)
              session;
            Journal.close j;
            let r = Journal.recover path in
            check_recovery ~what:"repair" ~full:true b n_ops r));
  ]

(* ------------------------------------------------------------------ *)
(* 3. Torn writes (crash mid-write via the For_testing hook).          *)

let record_until_crash path budget =
  Journal.For_testing.write_limit := Some budget;
  Fun.protect
    ~finally:(fun () -> Journal.For_testing.write_limit := None)
    (fun () ->
      let _, j = Journal.open_ ~fsync:Never ~checkpoint_every:max_int path in
      let written = ref 0 in
      (try
         List.iter
           (fun op ->
             Journal.append j op;
             incr written)
           session
       with Journal.For_testing.Crash -> ());
      (* a crashed process never closes cleanly; just drop the handle *)
      (try Journal.close j with Journal.For_testing.Crash -> ());
      !written)

let torn_write_tests =
  [
    tc "every write budget recovers the fully-written prefix, then resumes"
      (fun () ->
        (* boundary map from one clean recording gives the exact record
           sizes; the header is written outside the budget hook *)
        let boundaries = with_path record_session in
        let total = List.fold_left (fun a (s, _) -> Int.max a s) 0 boundaries - 8 in
        let budgets =
          (* exact record edges, their neighbours, and a byte stride *)
          List.concat_map (fun (s, _) -> [ s - 8; s - 7; s - 9 ]) boundaries
          @ List.init ((total / 23) + 1) (fun i -> i * 23)
          |> List.filter (fun b -> b >= 0 && b <= total)
          |> List.sort_uniq compare
        in
        List.iter
          (fun budget ->
            with_path (fun path ->
                let written = record_until_crash path budget in
                (* the op count whose records fit the budget entirely *)
                let k = survivors boundaries (budget + 8) in
                check Alcotest.bool
                  (Printf.sprintf "budget %d: appends stop at the crash" budget)
                  true (written = k || written = n_ops);
                let r = Journal.recover path in
                check_recovery ~what:"torn" ~full:false budget k r;
                check Alcotest.int
                  (Printf.sprintf "budget %d: torn bytes measured" budget)
                  (Int.min budget total - (boundary_at boundaries (budget + 8) - 8))
                  r.Journal.truncated_bytes;
                (* resume: reopen, finish the session, converge exactly *)
                let recovery, j =
                  Journal.open_ ~fsync:Never ~checkpoint_every:max_int path
                in
                check Alcotest.int "resume sees the same prefix" k
                  recovery.Journal.seq;
                List.iteri
                  (fun i op -> if i >= k then Journal.append j op)
                  session;
                Journal.close j;
                let r = Journal.recover path in
                check Alcotest.int "completed" n_ops r.Journal.seq;
                check Alcotest.string
                  (Printf.sprintf "budget %d: resumed session converges" budget)
                  expect_dict.(n_ops)
                  (dict r.Journal.workspace)))
          budgets;
        (* the full fingerprint once, on the last resumed journal *)
        with_path (fun path ->
            let _ = record_until_crash path (total / 2) in
            let recovery, j =
              Journal.open_ ~fsync:Never ~checkpoint_every:max_int path
            in
            List.iteri
              (fun i op -> if i >= recovery.Journal.seq then Journal.append j op)
              session;
            Journal.close j;
            check_recovery ~what:"resumed" ~full:true (total / 2) n_ops
              (Journal.recover path)));
    tc "a crash mid-checkpoint loses no ops" (fun () ->
        with_path (fun path ->
            let _, j = Journal.open_ ~fsync:Never ~checkpoint_every:max_int path in
            List.iter (fun op -> Journal.append j op) session;
            let before = file_size path in
            (* let 10 bytes of the snapshot record through, then crash *)
            Journal.For_testing.write_limit := Some 10;
            (try Journal.checkpoint j (prefix n_ops)
             with Journal.For_testing.Crash -> ());
            Journal.For_testing.write_limit := None;
            (try Journal.close j with Journal.For_testing.Crash -> ());
            check Alcotest.bool "snapshot is torn" true (file_size path > before);
            let r = Journal.recover path in
            check_recovery ~what:"torn-snap" ~full:true before n_ops r));
  ]

(* ------------------------------------------------------------------ *)
(* 4. Snapshots and compaction.                                        *)

(* Record with an explicit checkpoint every 5 ops, so the file mixes op
   and snapshot records; the boundary map still tags every record end
   with the number of ops baked in at that point. *)
let record_with_checkpoints path =
  let _, j = Journal.open_ ~fsync:Never ~checkpoint_every:max_int path in
  let boundaries = ref [ (file_size path, 0) ] in
  List.iteri
    (fun i op ->
      Journal.append j op;
      boundaries := (file_size path, i + 1) :: !boundaries;
      if (i + 1) mod 5 = 0 then begin
        Journal.checkpoint j (prefix (i + 1));
        boundaries := (file_size path, i + 1) :: !boundaries
      end)
    session;
  Journal.close j;
  List.rev !boundaries

let snapshot_tests =
  [
    tc "snapshots are equivalent to the op prefix they replace" (fun () ->
        with_path (fun path ->
            let boundaries = record_with_checkpoints path in
            let data = read_file path in
            with_path (fun victim ->
                (* truncate at every boundary: recovery must match the
                   pure-op oracle whether it lands on a snap or an op *)
                List.iter
                  (fun (size, k) ->
                    write_file victim (String.sub data 0 size);
                    check_recovery ~what:"snap-truncate" ~full:false size k
                      (Journal.recover victim))
                  boundaries;
                (* and bit flips inside snapshot records fall back too *)
                let n = String.length data in
                let b = ref 5 in
                while !b < n do
                  let buf = Bytes.of_string data in
                  Bytes.set buf !b
                    (Char.chr (Char.code data.[!b] lxor 0x01));
                  write_file victim (Bytes.to_string buf);
                  check_recovery ~what:"snap-bitflip" ~full:false !b
                    (survivors boundaries !b)
                    (Journal.recover victim);
                  b := !b + 31
                done)));
    tc "automatic checkpointing (checkpoint_every) changes nothing" (fun () ->
        with_path (fun path ->
            let _, j = Journal.open_ ~fsync:Never ~checkpoint_every:4 path in
            List.iteri
              (fun i op -> Journal.append ~after:(prefix (i + 1)) j op)
              session;
            Journal.close j;
            let r = Journal.recover path in
            check Alcotest.bool "snapshots were written" true
              (r.Journal.records > n_ops);
            check_recovery ~what:"auto-ckpt" ~full:true 0 n_ops r));
    tc "compaction shrinks the file to one snapshot, same state" (fun () ->
        with_path (fun path ->
            let _, j = Journal.open_ ~fsync:Never ~checkpoint_every:max_int path in
            List.iter (fun op -> Journal.append j op) session;
            let before = file_size path in
            Journal.compact j (prefix n_ops);
            let after = file_size path in
            check Alcotest.bool "file shrank" true (after < before);
            (* the journal stays appendable after compaction *)
            Journal.append j (Op.Add_schema Workload.Paper.sc3);
            Journal.close j;
            let r = Journal.recover path in
            check Alcotest.int "records: snap + one op" 2 r.Journal.records;
            check Alcotest.string "state carried over"
              (dict (Op.apply (Op.Add_schema Workload.Paper.sc3) (prefix n_ops)))
              (dict r.Journal.workspace)));
    tc "reset empties the journal" (fun () ->
        with_path (fun path ->
            let _, j = Journal.open_ ~fsync:Never path in
            List.iter (fun op -> Journal.append j op) session;
            Journal.reset j;
            check Alcotest.int "seq back to zero" 0 (Journal.seq j);
            Journal.close j;
            let r = Journal.recover path in
            check Alcotest.int "no records" 0 r.Journal.records;
            check Alcotest.string "empty" expect_dict.(0) (dict r.Journal.workspace)));
  ]

(* ------------------------------------------------------------------ *)
(* 5. Fsync policies and observability.                                *)

let policy_tests =
  [
    tc "all fsync policies produce the same bytes and the same recovery"
      (fun () ->
        let dump policy =
          with_path (fun path ->
              let _, j = Journal.open_ ~fsync:policy ~checkpoint_every:max_int path in
              List.iter (fun op -> Journal.append j op) session;
              Journal.close j;
              let r = Journal.recover path in
              check_recovery ~what:"policy" ~full:false 0 n_ops r;
              read_file path)
        in
        let never = dump Journal.Never in
        check Alcotest.string "Always writes identical bytes" never
          (dump Journal.Always);
        check Alcotest.string "Every 3 writes identical bytes" never
          (dump (Journal.Every 3)));
    tc "journal.* counters account for appends, fsyncs and recovery"
      (fun () ->
        Obs.disable ();
        Obs.reset ();
        Obs.enable ();
        Fun.protect
          ~finally:(fun () ->
            Obs.disable ();
            Obs.reset ())
          (fun () ->
            with_path (fun path ->
                let _, j =
                  Journal.open_ ~fsync:Journal.Always ~checkpoint_every:max_int
                    path
                in
                List.iter (fun op -> Journal.append j op) session;
                Journal.close j;
                let v name = List.assoc name (Obs.Counter.all ()) in
                check Alcotest.int "appends" n_ops (v "journal.appends");
                check Alcotest.bool "fsyncs >= one per op" true
                  (v "journal.fsyncs" >= n_ops);
                (* recovery of a damaged file feeds the recovery counters *)
                let data = read_file path in
                write_file path (String.sub data 0 (String.length data - 3));
                let r = Journal.recover path in
                check Alcotest.int "recovered records" r.Journal.records
                  (v "journal.recovered_records");
                check Alcotest.bool "truncated bytes counted" true
                  (v "journal.truncated_bytes" >= r.Journal.truncated_bytes))));
  ]

(* ------------------------------------------------------------------ *)
(* 6. Concurrency: the journal under racing appenders.                 *)

let concurrency_tests =
  [
    tc "concurrent appends: dense seqs, valid file, exactly-once in-order \
        subscriber delivery"
      (fun () ->
        (* 4 threads hammer one journal with Rename ops tagged by
           (thread, i); a subscriber records the delivery order.  The
           mutex must give (a) a seq equal to the total op count, (b) a
           file that recovers completely with no truncation, and (c)
           each op delivered to the subscriber exactly once, with each
           thread's ops in its own program order (the total order is
           schedule-dependent; per-thread order is not). *)
        with_path (fun path ->
            let threads = 4 and per = 50 in
            let _, j =
              Journal.open_ ~fsync:Journal.Never ~checkpoint_every:max_int path
            in
            let seen = ref [] in
            let seen_mu = Mutex.create () in
            Journal.subscribe j (fun op ->
                Mutex.protect seen_mu (fun () -> seen := op :: !seen));
            let op_of k i =
              Integrate.Op.Rename
                ( Ecr.Qname.v "sc1" (Printf.sprintf "T%d" k),
                  Ecr.Qname.v "sc2" (Printf.sprintf "I%d" i),
                  Printf.sprintf "N%dx%d" k i )
            in
            let worker k () =
              for i = 0 to per - 1 do
                Journal.append j (op_of k i)
              done
            in
            let ts = List.init threads (fun k -> Thread.create (worker k) ()) in
            List.iter Thread.join ts;
            let total = threads * per in
            check Alcotest.int "seq counts every append" total (Journal.seq j);
            Journal.close j;
            let r = Journal.recover path in
            check Alcotest.int "every record recovers" total r.Journal.records;
            check Alcotest.int "no torn tail" 0 r.Journal.truncated_bytes;
            let deliveries = List.rev !seen in
            check Alcotest.int "subscriber saw every op exactly once" total
              (List.length deliveries);
            (* exactly-once: no duplicates among the tagged ops *)
            let tags =
              List.map
                (fun op ->
                  match op with
                  | Integrate.Op.Rename (_, _, tag) -> tag
                  | _ -> Alcotest.fail "unexpected op in stream")
                deliveries
            in
            check Alcotest.int "no duplicate deliveries" total
              (List.length (List.sort_uniq String.compare tags));
            (* per-thread program order is preserved in the total order *)
            for k = 0 to threads - 1 do
              let mine =
                List.filter_map
                  (fun tag ->
                    match
                      Scanf.sscanf_opt tag "N%dx%d" (fun a b -> (a, b))
                    with
                    | Some (k', i) when k' = k -> Some i
                    | _ -> None)
                  tags
              in
              check
                Alcotest.(list int)
                (Printf.sprintf "thread %d delivered in order" k)
                (List.init per Fun.id) mine
            done));
    tc "append racing close never corrupts; losers get a clean error"
      (fun () ->
        with_path (fun path ->
            let _, j =
              Journal.open_ ~fsync:Journal.Never ~checkpoint_every:max_int path
            in
            let op =
              Integrate.Op.Rename
                (Ecr.Qname.v "a" "b", Ecr.Qname.v "c" "d", "e")
            in
            let failures = Atomic.make 0 in
            let appender () =
              for _ = 1 to 200 do
                try Journal.append j op
                with Invalid_argument _ -> Atomic.incr failures
              done
            in
            let closer () =
              Thread.delay 0.002;
              Journal.close j
            in
            let ts =
              [ Thread.create appender (); Thread.create appender ();
                Thread.create closer () ]
            in
            List.iter Thread.join ts;
            (* whatever was appended before the close is a fully valid
               prefix — the close cannot tear a record *)
            let r = Journal.recover path in
            check Alcotest.int "no torn tail from racing close" 0
              r.Journal.truncated_bytes));
  ]

let () =
  Alcotest.run "journal"
    [
      ("truncation", truncation_tests);
      ("bit-flips", bitflip_tests);
      ("torn-writes", torn_write_tests);
      ("snapshots", snapshot_tests);
      ("policies", policy_tests);
      ("concurrency", concurrency_tests);
    ]
