(* Cross-cutting regression tests that do not fit one module suite. *)

open Ecr
module S = Instance.Store
module V = Instance.Value

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let cardinality_tests =
  [
    tc "pass-through minima relax when the node gains foreign extents" (fun () ->
        (* sc2's Works demands (1,N) of its departments; after merging
           departments with sc1's, the integrated class also carries
           sc1 departments that sc2 never governed, so the minimum
           relaxes to 0 while the maximum stays *)
        let r = Workload.Paper.integrate_sc1_sc2 () in
        match Schema.find_relationship (Name.v "Works") r.Integrate.Result.schema with
        | Some rel ->
            check (Alcotest.list Alcotest.string) "cards" [ "(1,N)"; "(0,N)" ]
              (List.map
                 (fun p -> Cardinality.to_string p.Relationship.card)
                 rel.Relationship.participants)
        | None -> Alcotest.fail "Works missing");
    tc "single-schema relationships keep their minima" (fun () ->
        (* no merging at all: nothing relaxes *)
        let r =
          match
            Integrate.Pipeline.quick Workload.Paper.sc1 Workload.Paper.sc3
              ~equivalences:[] ~object_assertions:[] ()
          with
          | Ok r -> r
          | Error _ -> Alcotest.fail "no conflict expected"
        in
        match Schema.find_relationship (Name.v "Majors") r.Integrate.Result.schema with
        | Some rel ->
            check Alcotest.string "(1,1) kept" "(1,1)"
              (Cardinality.to_string
                 (List.hd rel.Relationship.participants).Relationship.card)
        | None -> Alcotest.fail "Majors missing");
  ]

let workspace_tests =
  [
    tc "integrate_pair ignores the third schema" (fun () ->
        let ws =
          Integrate.Workspace.(
            add_schema Workload.Paper.sc3
              (add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty)))
        in
        let r =
          Integrate.Workspace.integrate_pair ~name:"pairwise" (Name.v "sc1")
            (Name.v "sc2") ws
        in
        check Alcotest.bool "no Instructor" false
          (Schema.mem (Name.v "Instructor") r.Integrate.Result.schema));
    tc "integrate_pair unknown schema raises" (fun () ->
        Alcotest.check_raises "not found" Not_found (fun () ->
            ignore
              (Integrate.Workspace.integrate_pair (Name.v "nope") (Name.v "sc1")
                 Integrate.Workspace.empty)));
  ]

let dot_tests =
  [
    tc "integrated schemas export to dot" (fun () ->
        let r = Workload.Paper.integrate_sc1_sc2 () in
        let dot = Dot.to_dot r.Integrate.Result.schema in
        check Alcotest.bool "digraph" true (Util.contains ~needle:"digraph" dot);
        check Alcotest.bool "isa edges" true (Util.contains ~needle:"isa" dot);
        check Alcotest.bool "diamond relationships" true
          (Util.contains ~needle:"diamond" dot);
        check Alcotest.bool "derived node present" true
          (Util.contains ~needle:"D_Stud_Facu" dot));
  ]

let loader_tests =
  [
    tc "relationship arity mismatch is reported with a line" (fun () ->
        let text = "instance sc1 {\n  Student { } as s\n  Majors (s)\n}" in
        match
          Instance.Loader.load_string ~schemas:[ Workload.Paper.sc1 ] text
        with
        | exception (Instance.Loader.Error { line; _ } as e) ->
            check Alcotest.int "line 3" 3 line;
            check Alcotest.bool ":3:" true
              (Util.contains ~needle:":3:" (Instance.Loader.error_to_string e))
        | _ -> Alcotest.fail "expected error");
  ]

let session_tests =
  [
    tc "equivalence task records classes through the screens" (fun () ->
        let ws =
          Integrate.Workspace.(
            add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        let script =
          [
            "2" (* task: equivalence for object classes *);
            "sc1";
            "sc2";
            "Student" (* object of first schema *);
            "Grad_student" (* object of second *);
            "a" (* add a pair *);
            "Name";
            "Name";
            "e" (* leave the editor *);
            "n" (* no other pair *);
            "e" (* main menu: exit *);
          ]
        in
        let io, _ = Tui.Session.scripted script in
        let final = Tui.Session.run ~workspace:ws io in
        check Alcotest.bool "equivalence recorded" true
          (Integrate.Equivalence.equivalent
             (Qname.Attr.v "sc1" "Student" "Name")
             (Qname.Attr.v "sc2" "Grad_student" "Name")
             (Integrate.Workspace.equivalence final)));
    tc "assertion task records assertions through the screens" (fun () ->
        let ws =
          Integrate.Workspace.(
            add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        let script =
          [ "3"; "sc1"; "sc2"; "1 1" (* pair #1 := equals *); "e"; "e" ]
        in
        let io, _ = Tui.Session.scripted script in
        let final = Tui.Session.run ~workspace:ws io in
        check Alcotest.int "one fact" 1
          (List.length (Integrate.Workspace.object_facts final)));
    tc "retract-and-modify through the assertion screen" (fun () ->
        let ws =
          Integrate.Workspace.(
            add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        (* answer pair #1 as equals, then change it to disjoint *)
        let script = [ "3"; "sc1"; "sc2"; "1 1"; "r 1"; "1 0"; "e"; "e" ] in
        let io, _ = Tui.Session.scripted script in
        let final = Tui.Session.run ~workspace:ws io in
        (match Integrate.Workspace.object_facts final with
        | [ (_, a, _) ] ->
            check Alcotest.bool "now disjoint" true
              (a = Integrate.Assertion.Disjoint_nonintegrable)
        | facts -> Alcotest.failf "expected one fact, got %d" (List.length facts)));
    tc "scrolling the assertion screen does not lose answers" (fun () ->
        let ws =
          Integrate.Workspace.(
            add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        let script = [ "3"; "sc1"; "sc2"; "s"; "1 1"; "e"; "e" ] in
        let io, _ = Tui.Session.scripted script in
        let final = Tui.Session.run ~workspace:ws io in
        check Alcotest.int "one fact" 1
          (List.length (Integrate.Workspace.object_facts final)));
  ]

let strategy_tests =
  [
    tc "binary ladder over the company databases stays valid" (fun () ->
        let session = Workload.Domains.company in
        let outcome =
          Integrate.Strategy.binary_ladder session.Workload.Domains.schemas
            (Workload.Domains.dda session)
        in
        check Alcotest.int "two steps" 2 outcome.Integrate.Strategy.steps;
        check (Alcotest.list Alcotest.string) "valid" []
          (List.map Schema.error_to_string
             (Schema.validate outcome.Integrate.Strategy.result.Integrate.Result.schema)));
  ]

let update_store_tests =
  [
    tc "remove_links filters by predicate" (fun () ->
        let st = S.create Workload.Paper.sc1 in
        let st, ann = S.insert (Name.v "Student") (S.tuple [ ("Name", V.str "Ann") ]) st in
        let st, cs = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st in
        let st = S.relate (Name.v "Majors") [ ann; cs ] (S.tuple [ ("Since", V.date 2020 1 1) ]) st in
        let st = S.relate (Name.v "Majors") [ ann; cs ] (S.tuple [ ("Since", V.date 2021 1 1) ]) st in
        let st =
          S.remove_links (Name.v "Majors")
            (fun l ->
              not
                (V.equal
                   (Option.value ~default:V.Null
                      (Name.Map.find_opt (Name.v "Since") l.S.values))
                   (V.date 2020 1 1)))
            st
        in
        check Alcotest.int "one left" 1 (List.length (S.links (Name.v "Majors") st)));
    tc "remove_entity cascades to links" (fun () ->
        let st = S.create Workload.Paper.sc1 in
        let st, ann = S.insert (Name.v "Student") Name.Map.empty st in
        let st, cs = S.insert (Name.v "Department") Name.Map.empty st in
        let st = S.relate (Name.v "Majors") [ ann; cs ] Name.Map.empty st in
        let st = S.remove_entity ann st in
        check Alcotest.int "entity gone" 0 (S.cardinality_of (Name.v "Student") st);
        check Alcotest.int "link gone" 0 (List.length (S.links (Name.v "Majors") st)));
  ]

let () =
  Alcotest.run "misc"
    [
      ("cardinality-relaxation", cardinality_tests);
      ("workspace", workspace_tests);
      ("dot", dot_tests);
      ("loader", loader_tests);
      ("session", session_tests);
      ("strategies", strategy_tests);
      ("store-removal", update_store_tests);
    ]
