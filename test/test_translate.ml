(* Tests for the relational / hierarchical -> ECR translation. *)

open Ecr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let payroll =
  {
    Translate.Relational.db_name = "payroll";
    relations =
      [
        Translate.Relational.relation ~pk:[ "dno" ] "dept"
          [ ("dno", "int", false); ("dname", "char", false) ];
        Translate.Relational.relation ~pk:[ "ssn" ]
          ~fks:[ Translate.Relational.fk [ "dno" ] "dept" [ "dno" ] ]
          "emp"
          [ ("ssn", "char", false); ("name", "char", false); ("dno", "int", false) ];
        Translate.Relational.relation ~pk:[ "ssn" ]
          ~fks:[ Translate.Relational.fk [ "ssn" ] "emp" [ "ssn" ] ]
          "manager"
          [ ("ssn", "char", false); ("bonus", "real", true) ];
        Translate.Relational.relation ~pk:[ "ssn"; "pno" ]
          ~fks:
            [
              Translate.Relational.fk [ "ssn" ] "emp" [ "ssn" ];
              Translate.Relational.fk [ "pno" ] "project" [ "pno" ];
            ]
          "assign"
          [ ("ssn", "char", false); ("pno", "int", false); ("hours", "real", true) ];
        Translate.Relational.relation ~pk:[ "pno" ] "project"
          [ ("pno", "int", false); ("pname", "char", false) ];
      ];
  }

let relational_tests =
  [
    tc "classification" (fun () ->
        let find n = List.find (fun r -> r.Translate.Relational.rel_name = n) payroll.relations in
        check Alcotest.bool "dept entity" true
          (Translate.Relational.classify payroll (find "dept") = `Entity);
        check Alcotest.bool "emp entity" true
          (Translate.Relational.classify payroll (find "emp") = `Entity);
        check Alcotest.bool "manager category" true
          (Translate.Relational.classify payroll (find "manager") = `Category "emp");
        check Alcotest.bool "assign relationship" true
          (match Translate.Relational.classify payroll (find "assign") with
          | `Relationship [ "emp"; "project" ] -> true
          | _ -> false));
    tc "translation shape" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        check Alcotest.int "entities" 3 (List.length (Schema.entities s));
        check Alcotest.int "categories" 1 (List.length (Schema.categories s));
        check Alcotest.int "relationships" 2 (List.length (Schema.relationships s));
        check (Alcotest.list Alcotest.string) "no validation errors" []
          (List.map Schema.error_to_string (Schema.validate s)));
    tc "category drops inherited keys, keeps local attrs" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_object (Name.v "manager") s with
        | Some oc ->
            check (Alcotest.list Alcotest.string) "local only" [ "bonus" ]
              (List.map
                 (fun a -> Name.to_string a.Attribute.name)
                 oc.Object_class.attributes)
        | None -> Alcotest.fail "missing manager");
    tc "fk relationship cardinality follows nullability" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_relationship (Name.v "emp_dept") s with
        | Some r -> (
            match Relationship.participant_for (Name.v "emp") r with
            | Some p ->
                check Alcotest.string "mandatory" "(1,1)"
                  (Cardinality.to_string p.Relationship.card)
            | None -> Alcotest.fail "emp not participating")
        | None -> Alcotest.fail "missing emp_dept");
    tc "fk columns removed from the entity" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_object (Name.v "emp") s with
        | Some oc ->
            check Alcotest.bool "dno gone" true
              (Attribute.find (Name.v "dno") oc.Object_class.attributes = None)
        | None -> Alcotest.fail "missing emp");
    tc "m:n keeps descriptive attributes" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_relationship (Name.v "assign") s with
        | Some r ->
            check (Alcotest.list Alcotest.string) "hours" [ "hours" ]
              (List.map (fun a -> Name.to_string a.Attribute.name) r.Relationship.attributes)
        | None -> Alcotest.fail "missing assign");
    tc "missing fk target raises" (fun () ->
        let bad =
          {
            Translate.Relational.db_name = "bad";
            relations =
              [
                Translate.Relational.relation ~pk:[ "a" ]
                  ~fks:[ Translate.Relational.fk [ "b" ] "ghost" [ "x" ] ]
                  "r"
                  [ ("a", "int", false); ("b", "int", true) ];
              ];
          }
        in
        match Translate.Relational.to_ecr bad with
        | exception Translate.Relational.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
  ]

let hdb =
  {
    Translate.Hierarchical.hdb_name = "personnel";
    records =
      [
        Translate.Hierarchical.record "department"
          [ ("dno", "int", true); ("dname", "char", false) ];
        Translate.Hierarchical.record ~parent:"department" "employee"
          [ ("ssn", "char", true); ("name", "char", false) ];
        Translate.Hierarchical.record ~parent:"employee" ~virtual_parent:"project"
          "task"
          [ ("tno", "int", true) ];
        Translate.Hierarchical.record "project" [ ("pno", "int", true) ];
      ];
  }

let hierarchical_tests =
  [
    tc "records become entities" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        check Alcotest.int "entities" 4 (List.length (Schema.entities s));
        check (Alcotest.list Alcotest.string) "valid" []
          (List.map Schema.error_to_string (Schema.validate s)));
    tc "physical arc is (1,1) on the child" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        match Schema.find_relationship (Name.v "department_employee") s with
        | Some r -> (
            match Relationship.participant_for (Name.v "employee") r with
            | Some p ->
                check Alcotest.string "(1,1)" "(1,1)"
                  (Cardinality.to_string p.Relationship.card)
            | None -> Alcotest.fail "employee missing")
        | None -> Alcotest.fail "missing arc");
    tc "virtual arc is (0,1) on the child" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        match Schema.find_relationship (Name.v "project_task_v") s with
        | Some r -> (
            match Relationship.participant_for (Name.v "task") r with
            | Some p ->
                check Alcotest.string "(0,1)" "(0,1)"
                  (Cardinality.to_string p.Relationship.card)
            | None -> Alcotest.fail "task missing")
        | None -> Alcotest.fail "missing virtual arc");
    tc "sequence field becomes the key" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        match Schema.find_object (Name.v "employee") s with
        | Some oc -> (
            match Attribute.find (Name.v "ssn") oc.Object_class.attributes with
            | Some a -> check Alcotest.bool "key" true a.Attribute.key
            | None -> Alcotest.fail "missing ssn")
        | None -> Alcotest.fail "missing employee");
    tc "missing parent raises" (fun () ->
        let bad =
          {
            Translate.Hierarchical.hdb_name = "bad";
            records = [ Translate.Hierarchical.record ~parent:"ghost" "r" [] ];
          }
        in
        match Translate.Hierarchical.to_ecr bad with
        | exception Translate.Hierarchical.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
    tc "translated schemas integrate (end-to-end sanity)" (fun () ->
        (* both translations feed the integration pipeline without
           modification, as section 4 of the paper proposes *)
        let rel = Translate.Relational.to_ecr payroll in
        let hier = Translate.Hierarchical.to_ecr hdb in
        let result, _ =
          Integrate.Protocol.run ~name:"fed" [ rel; hier ]
            (Integrate.Dda.of_assertion_list
               ~equivalences:
                 [
                   ( Qname.Attr.v "payroll" "emp" "ssn",
                     Qname.Attr.v "personnel" "employee" "ssn" );
                 ]
               [
                 ( Qname.v "payroll" "emp",
                   Integrate.Assertion.Equal,
                   Qname.v "personnel" "employee" );
               ])
        in
        check (Alcotest.list Alcotest.string) "valid integrated schema" []
          (List.map Schema.error_to_string
             (Schema.validate result.Integrate.Result.schema)))
  ]

(* ---- generator-seeded round-trip properties -----------------------

   The scenario factory (Workload.Scenario) feeds generated component
   schemas through [of_ecr] and back through [to_ecr] to make a
   federation heterogeneous without disturbing the generator's ground
   truth.  These properties pin down the exact round-trip contract the
   mlis document, over the same schema population the scenarios use. *)

let seeds = [ 7; 19; 42 ]

let gen_schemas ?(subset = 0.25) ?(overlap = 0.15) seed =
  let params =
    {
      Workload.Generator.default_params with
      seed;
      schemas = 3;
      concepts = 10;
      subset_fraction = subset;
      overlap_fraction = overlap;
    }
  in
  (Workload.Generator.generate params).Workload.Generator.schemas

(* One printable signature per structure; [cat_keys]/[cards] toggle the
   two deltas the relational round trip is allowed. *)
let attrs_sig ~keys attrs =
  String.concat ";"
    (List.map
       (fun (a : Attribute.t) ->
         Printf.sprintf "%s:%s%s"
           (Name.to_string a.Attribute.name)
           (Domain.to_string a.Attribute.domain)
           (if keys && a.Attribute.key then "!" else ""))
       attrs)

let obj_sig ~cat_keys (oc : Object_class.t) =
  let keys = Object_class.is_entity oc || cat_keys in
  Printf.sprintf "%c %s(%s) [%s]"
    (Object_class.kind_letter oc)
    (Name.to_string oc.Object_class.name)
    (String.concat ","
       (List.map Name.to_string (Object_class.parents oc)))
    (attrs_sig ~keys oc.Object_class.attributes)

let rel_sig ~cards (r : Relationship.t) =
  Printf.sprintf "R %s(%s) [%s]"
    (Name.to_string r.Relationship.name)
    (String.concat ","
       (List.map
          (fun (p : Relationship.participant) ->
            Name.to_string p.Relationship.obj
            ^
            if cards then Cardinality.to_string p.Relationship.card else "")
          r.Relationship.participants))
    (attrs_sig ~keys:true r.Relationship.attributes)

let schema_sig ~cat_keys ~cards s =
  Name.to_string (Schema.name s)
  :: List.map (obj_sig ~cat_keys) (Schema.objects s)
  @ List.map (rel_sig ~cards) (Schema.relationships s)

let roundtrip_tests =
  [
    tc "relational round trip reproduces generated schemas" (fun () ->
        (* exactly, minus the two documented deltas: category key flags
           are dropped, cardinalities collapse to (0,N) *)
        List.iter
          (fun seed ->
            List.iter
              (fun s ->
                let s' =
                  Translate.Relational.to_ecr (Translate.Relational.of_ecr s)
                in
                check (Alcotest.list Alcotest.string)
                  (Printf.sprintf "seed %d: %s" seed
                     (Name.to_string (Schema.name s)))
                  (schema_sig ~cat_keys:false ~cards:false s)
                  (schema_sig ~cat_keys:false ~cards:false s');
                check (Alcotest.list Alcotest.string)
                  (Printf.sprintf "seed %d: %s valid" seed
                     (Name.to_string (Schema.name s)))
                  []
                  (List.map Schema.error_to_string (Schema.validate s')))
              (gen_schemas seed))
          seeds);
    tc "hierarchical round trip reifies relationships exactly" (fun () ->
        (* flat universes (no subset/overlap categories): every entity
           survives exactly; every binary relationship R between A and B
           comes back as an entity R plus a physical arc A_R — (1,1) on
           R, (0,N) on A — and a virtual arc B_R_v — (0,1) on R, (0,N)
           on B — the IMS logical-child idiom *)
        List.iter
          (fun seed ->
            List.iter
              (fun s ->
                let s' =
                  Translate.Hierarchical.to_ecr
                    (Translate.Hierarchical.of_ecr s)
                in
                check (Alcotest.list Alcotest.string) "valid" []
                  (List.map Schema.error_to_string (Schema.validate s'));
                List.iter
                  (fun (oc : Object_class.t) ->
                    match Schema.find_object oc.Object_class.name s' with
                    | None ->
                        Alcotest.fail
                          ("lost entity "
                          ^ Name.to_string oc.Object_class.name)
                    | Some oc' ->
                        check Alcotest.string
                          (Name.to_string oc.Object_class.name ^ " exact")
                          (obj_sig ~cat_keys:true oc)
                          (obj_sig ~cat_keys:true oc'))
                  (Schema.entities s);
                let rels = Schema.relationships s in
                List.iter
                  (fun (r : Relationship.t) ->
                    let rn = Name.to_string r.Relationship.name in
                    let a, b =
                      match r.Relationship.participants with
                      | [ a; b ] ->
                          ( Name.to_string a.Relationship.obj,
                            Name.to_string b.Relationship.obj )
                      | _ -> Alcotest.fail (rn ^ ": generator rels are binary")
                    in
                    (match Schema.find_object r.Relationship.name s' with
                    | None -> Alcotest.fail (rn ^ " not reified")
                    | Some rc ->
                        check Alcotest.bool (rn ^ " reified as entity") true
                          (Object_class.is_entity rc);
                        check Alcotest.string (rn ^ " carries its attrs")
                          (attrs_sig ~keys:true r.Relationship.attributes)
                          (attrs_sig ~keys:true rc.Object_class.attributes));
                    let arc name child card =
                      match Schema.find_relationship (Name.v name) s' with
                      | None -> Alcotest.fail ("missing arc " ^ name)
                      | Some arc -> (
                          match
                            Relationship.participant_for (Name.v child) arc
                          with
                          | None -> Alcotest.fail (name ^ ": child missing")
                          | Some p ->
                              check Alcotest.string (name ^ " child card")
                                card
                                (Cardinality.to_string p.Relationship.card))
                    in
                    arc (a ^ "_" ^ rn) rn "(1,1)";
                    arc (b ^ "_" ^ rn ^ "_v") rn "(0,1)")
                  rels;
                check Alcotest.int "structure count"
                  (List.length (Schema.entities s) + (3 * List.length rels))
                  (Schema.size s'))
              (gen_schemas ~subset:0.0 ~overlap:0.0 seed))
          seeds);
  ]

let () =
  Alcotest.run "translate"
    [
      ("relational", relational_tests);
      ("hierarchical", hierarchical_tests);
      ("roundtrip", roundtrip_tests);
    ]
