(* Tests for materialized views (lib/view) and their serving-tier
   integration: the incremental-vs-recompute differential property over
   random update interleavings, the journal op-stream subscription,
   wire-protocol fields, stale reads under the manual policy,
   refresh-under-load, and crash-resume of the view catalog. *)

open Ecr
module S = Instance.Store
module V = Instance.Value
module Json = Obs.Json

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ---- fixtures: the paper's sc1+sc2 session with instances --------- *)

let sc1_store () =
  let st = S.create Workload.Paper.sc1 in
  let student name gpa = S.tuple [ ("Name", V.str name); ("GPA", V.real gpa) ] in
  let st, ann = S.insert (Name.v "Student") (student "Ann" 3.9) st in
  let st, ben = S.insert (Name.v "Student") (student "Ben" 2.5) st in
  let st, cyd = S.insert (Name.v "Student") (student "Cyd" 3.2) st in
  let st, cs = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st in
  let st, ee = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "EE") ]) st in
  let since y = S.tuple [ ("Since", V.date y 9 1) ] in
  let st = S.relate (Name.v "Majors") [ ann; cs ] (since 2020) st in
  let st = S.relate (Name.v "Majors") [ ben; ee ] (since 2021) st in
  let st = S.relate (Name.v "Majors") [ cyd; cs ] (since 2022) st in
  st

let sc2_store () =
  let st = S.create Workload.Paper.sc2 in
  let st, _ =
    S.insert (Name.v "Grad_student")
      (S.tuple
         [
           ("Name", V.str "Ann"); ("GPA", V.real 3.9); ("Support_type", V.str "RA");
         ])
      st
  in
  let st, _ =
    S.insert (Name.v "Faculty")
      (S.tuple [ ("Name", V.str "Dr. Lee"); ("Rank", V.str "Assoc") ])
      st
  in
  st

let fresh_session ?journal_dir () =
  let result = Workload.Paper.integrate_sc1_sc2 () in
  Server.make_session ?journal_dir ~result
    ~stores:
      [ (Workload.Paper.sc1, sc1_store ()); (Workload.Paper.sc2, sc2_store ()) ]
    ()

let session = lazy (fresh_session ())
let local = Server.Wire.Tcp ("127.0.0.1", 0)

let with_server ?(session = Lazy.force session) ?(jobs = 2) ?(queue = 64)
    ?deadline_ms ?(cache = 128) ?(debug = false) f =
  let cfg =
    {
      Server.listen = local;
      jobs;
      queue;
      deadline_ms;
      cache;
      debug;
      repl = Server.default_repl;
    }
  in
  match Server.start session cfg with
  | Error msg -> Alcotest.fail ("server failed to start: " ^ msg)
  | Ok t ->
      let addr =
        match Server.port t with
        | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
        | None -> Alcotest.fail "no bound port"
      in
      Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t addr)

let with_client addr f =
  let c = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)

let rows_bytes rows = String.concat "\n" (List.map Query.Eval.row_to_string rows)

(* ---- the differential property ------------------------------------ *)

(* After every step of a random interleaving of inserts, modifies,
   deletes, refreshes and reads, each view that claims to be fresh must
   hold an extent byte-identical to from-scratch evaluation of its
   defining query — the module's correctness anchor. *)
let differential_test () =
  let session = Lazy.force session in
  let mapping = session.Server.result.Integrate.Result.mapping in
  let sc1 = Workload.Paper.sc1 in
  let integrated text =
    fst
      (Query.Rewrite.to_integrated mapping ~view:sc1
         (Query.Parser.query_of_string text))
  in
  let cat = View.create () in
  let store = ref session.Server.initial_merged in
  let define name policy text =
    match
      View.define cat ~name ~policy ~source:text ~query:(integrated text)
        ~post:(fun r -> r)
        !store
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  in
  define "e" View.Eager "select Name from Student where GPA >= 3.0";
  define "l" View.Lazy "select Name, GPA from Student";
  define "m" View.Manual "select Name from Student where GPA >= 3.5";
  define "j" View.Eager
    "select Name from Student via Majors to Department select Name";
  let names = [ "e"; "l"; "m"; "j" ] in
  let check_consistent step =
    List.iter
      (fun v ->
        match View.For_testing.raw_rows cat v with
        | None -> Alcotest.fail ("missing view " ^ v)
        | Some (rows, fresh) ->
            if fresh then
              let q =
                match View.definition cat v with
                | Some q -> q
                | None -> Alcotest.fail "no definition"
              in
              check Alcotest.string
                (Printf.sprintf "step %d: %s byte-identical" step v)
                (rows_bytes (Query.Eval.run q !store))
                (rows_bytes rows))
      names
  in
  let rng = Random.State.make [| 0x5EED; 22 |] in
  let apply_update u =
    let u' = Query.Update.to_integrated mapping ~view:sc1 u in
    let st, _ = Query.Update.apply u' !store in
    store := st;
    View.notify_update cat u' !store
  in
  let students = ref [ "Ann"; "Ben"; "Cyd" ] in
  let counter = ref 0 in
  let random_gpa () = float (Random.State.int rng 41) /. 10. in
  for step = 1 to 300 do
    (match Random.State.int rng 100 with
    | n when n < 35 ->
        incr counter;
        let nm = Printf.sprintf "S%d" !counter in
        students := nm :: !students;
        apply_update
          (Query.Update.insert "Student"
             [ ("Name", V.str nm); ("GPA", V.real (random_gpa ())) ])
    | n when n < 50 -> (
        match !students with
        | [] -> ()
        | l ->
            let nm = List.nth l (Random.State.int rng (List.length l)) in
            apply_update
              (Query.Update.modify "Student"
                 ~where:(Query.Ast.atom "Name" Query.Ast.Eq (V.str nm))
                 [ ("GPA", V.real (random_gpa ())) ]))
    | n when n < 62 -> (
        match !students with
        | [] -> ()
        | l ->
            let i = Random.State.int rng (List.length l) in
            let nm = List.nth l i in
            students := List.filteri (fun k _ -> k <> i) l;
            apply_update
              (Query.Update.delete "Student"
                 ~where:(Query.Ast.atom "Name" Query.Ast.Eq (V.str nm))))
    | n when n < 80 -> (
        let v = List.nth names (Random.State.int rng (List.length names)) in
        match View.refresh cat v !store with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e)
    | _ -> (
        let v = List.nth names (Random.State.int rng (List.length names)) in
        match View.read cat v !store with
        | Error e -> Alcotest.fail e
        | Ok (rows, fresh) ->
            (* identity post: a fresh read IS the from-scratch answer *)
            if fresh then
              let q =
                match View.definition cat v with
                | Some q -> q
                | None -> Alcotest.fail "no definition"
              in
              check Alcotest.string
                (Printf.sprintf "step %d: %s read matches eval" step v)
                (rows_bytes (Query.Eval.run q !store))
                (rows_bytes rows)));
    check_consistent step
  done;
  (* force the stragglers fresh and re-verify everything *)
  List.iter
    (fun v ->
      match View.refresh cat v !store with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    names;
  check_consistent 301;
  (* the cheap path must actually have been exercised *)
  let total f = List.fold_left (fun acc i -> acc + f i) 0 (View.infos cat) in
  check Alcotest.bool "delta appends happened" true
    (total (fun i -> i.View.delta_appends) > 0);
  check Alcotest.bool "stale marks happened" true
    (total (fun i -> i.View.stale_marks) > 0)

let catalog_tests =
  [
    tc "incremental maintenance is byte-identical to recompute"
      differential_test;
    tc "define rejects duplicates; drop forgets" (fun () ->
        let session = Lazy.force session in
        let store = session.Server.initial_merged in
        let cat = View.create () in
        let q = Query.Parser.query_of_string "select * from Faculty" in
        let define name =
          View.define cat ~name ~policy:View.Lazy ~source:"select * from Faculty"
            ~query:q
            ~post:(fun r -> r)
            store
        in
        (match define "a" with Ok () -> () | Error e -> Alcotest.fail e);
        (match define "a" with
        | Error e ->
            check Alcotest.bool "duplicate name named" true
              (Util.contains ~needle:"already exists" e)
        | Ok () -> Alcotest.fail "duplicate name accepted");
        (match define "b" with
        | Error e ->
            check Alcotest.bool "duplicate shape names the holder" true
              (Util.contains ~needle:"a" e)
        | Ok () -> Alcotest.fail "duplicate shape accepted");
        check Alcotest.bool "drop" true (View.drop cat "a");
        check Alcotest.bool "drop unknown" false (View.drop cat "a");
        (match define "b" with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("shape free after drop: " ^ e)));
    tc "ill-typed definitions are rejected" (fun () ->
        let session = Lazy.force session in
        let cat = View.create () in
        match
          View.define cat ~name:"bad" ~policy:View.Eager
            ~source:"select Nope from Student"
            ~query:(Query.Parser.query_of_string "select Nope from Student")
            ~post:(fun r -> r)
            session.Server.initial_merged
        with
        | Ok () -> Alcotest.fail "ill-typed definition accepted"
        | Error _ -> ());
  ]

(* ---- journal op-stream subscription ------------------------------- *)

let subscription_tests =
  [
    tc "subscribe sees every appended op, in order" (fun () ->
        let path = Filename.temp_file "sit_sub" ".journal" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let _, j = Journal.open_ path in
            let seen = ref [] in
            Journal.subscribe j (fun op -> seen := op :: !seen);
            Journal.append j (Integrate.Op.Add_schema Workload.Paper.sc1);
            Journal.append j
              (Integrate.Op.Remove_schema (Schema.name Workload.Paper.sc1));
            Journal.close j;
            match List.rev !seen with
            | [ Integrate.Op.Add_schema _; Integrate.Op.Remove_schema _ ] -> ()
            | ops ->
                Alcotest.failf "expected 2 ops in order, got %d"
                  (List.length ops)));
    tc "an op-stream event invalidates every materialized extent"
      (fun () ->
        let path = Filename.temp_file "sit_sub" ".journal" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let session = Lazy.force session in
            let cat = View.create () in
            (match
               View.define cat ~name:"v" ~policy:View.Eager
                 ~source:"select * from Faculty"
                 ~query:(Query.Parser.query_of_string "select * from Faculty")
                 ~post:(fun r -> r)
                 session.Server.initial_merged
             with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            let _, j = Journal.open_ path in
            (* the maintenance hook: schema-level mutations mark every
               view stale pending the rebuild's notify_reset *)
            Journal.subscribe j (View.notify_op cat);
            Journal.append j (Integrate.Op.Add_schema Workload.Paper.sc2);
            Journal.close j;
            (match View.For_testing.raw_rows cat "v" with
            | Some (_, fresh) -> check Alcotest.bool "stale" false fresh
            | None -> Alcotest.fail "view lost");
            let dropped =
              View.notify_reset cat session.Server.initial_merged
            in
            check Alcotest.(list string) "nothing dropped" [] dropped;
            match View.For_testing.raw_rows cat "v" with
            | Some (_, fresh) -> check Alcotest.bool "fresh again" true fresh
            | None -> Alcotest.fail "view lost"));
  ]

(* ---- wire-protocol fields ----------------------------------------- *)

let wire_tests =
  [
    tc "define_view fields parse and serialize" (fun () ->
        let line =
          Server.Wire.request_to_line ~view:"honors" ~text:"select * from S"
            ~base:"sc1" ~policy:"eager" "define_view"
        in
        match Server.Wire.request_of_line line with
        | Error (_, msg) -> Alcotest.fail msg
        | Ok r ->
            check Alcotest.string "op" "define_view" r.Server.Wire.op;
            check Alcotest.(option string) "view" (Some "honors")
              r.Server.Wire.view;
            check Alcotest.(option string) "base" (Some "sc1")
              r.Server.Wire.base;
            check Alcotest.(option string) "policy" (Some "eager")
              r.Server.Wire.policy);
    tc "ill-typed base/policy fields are bad_request" (fun () ->
        List.iter
          (fun line ->
            match Server.Wire.request_of_line line with
            | Error (Server.Wire.Bad_request, _) -> ()
            | Error (c, _) ->
                Alcotest.failf "wrong code %s" (Server.Wire.code_to_string c)
            | Ok _ -> Alcotest.failf "accepted %s" line)
          [
            {|{"op":"define_view","base":3}|};
            {|{"op":"define_view","policy":["eager"]}|};
          ]);
    tc "the op registry covers the view operations" (fun () ->
        List.iter
          (fun op ->
            check Alcotest.bool op true (List.mem op Server.Wire.ops))
          [ "define_view"; "drop_view"; "refresh_view"; "view_stats" ]);
  ]

(* ---- serving-tier behaviour --------------------------------------- *)

let response c ?view ?text ?base ?policy op =
  let resp = Server.Client.request c ?view ?text ?base ?policy op in
  if not (Server.Client.is_ok resp) then
    Alcotest.failf "request %s failed: %s" op
      (Option.value ~default:"?" (Server.Client.error_code resp));
  resp

let error_code_of c ?view ?text ?base ?policy op =
  let resp = Server.Client.request c ?view ?text ?base ?policy op in
  if Server.Client.is_ok resp then Alcotest.failf "request %s succeeded" op;
  Option.value ~default:"?" (Server.Client.error_code resp)

let fresh_of resp =
  match Json.member "fresh" resp with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail "no fresh flag"

let rows_of resp =
  match Json.member "rows" resp with
  | Some rows -> Json.to_string rows
  | None -> Alcotest.fail "no rows"

let server_tests =
  [
    tc "manual views serve stale honestly; refresh recovers" (fun () ->
        with_server ~session:(fresh_session ()) (fun _t addr ->
            with_client addr (fun c ->
                ignore
                  (response c ~view:"hi" ~base:"sc1" ~policy:"manual"
                     ~text:"select Name from Student where GPA >= 3.5"
                     "define_view");
                let before = response c ~view:"hi" "query" in
                check Alcotest.bool "fresh at definition" true
                  (fresh_of before);
                (* an insert is delta-appended even under manual policy;
                   a modify is what marks the extent stale *)
                ignore
                  (response c ~view:"sc1"
                     ~text:"update Student set GPA = 1.0 where Name = 'Ann'"
                     "update");
                let stale = response c ~view:"hi" "query" in
                check Alcotest.bool "served stale" false (fresh_of stale);
                check Alcotest.string "stale extent unchanged"
                  (rows_of before) (rows_of stale);
                ignore (response c ~view:"hi" "refresh_view");
                let after = response c ~view:"hi" "query" in
                check Alcotest.bool "fresh after refresh" true (fresh_of after);
                check Alcotest.bool "refresh saw the update" true
                  (rows_of after <> rows_of before))));
    tc "lazy views never serve stale; deltas keep eager views fresh"
      (fun () ->
        with_server ~session:(fresh_session ()) (fun _t addr ->
            with_client addr (fun c ->
                ignore
                  (response c ~view:"lz" ~base:"sc1" ~policy:"lazy"
                     ~text:"select Name, GPA from Student" "define_view");
                ignore
                  (response c ~view:"eg" ~base:"sc1" ~policy:"eager"
                     ~text:"select Name from Student where GPA >= 3.0"
                     "define_view");
                ignore
                  (response c ~view:"sc1"
                     ~text:"insert into Student { Name = 'New', GPA = 3.4 }"
                     "update");
                ignore
                  (response c ~view:"sc1"
                     ~text:"update Student set GPA = 1.0 where Name = 'Ann'"
                     "update");
                List.iter
                  (fun v ->
                    let got = response c ~view:v "query" in
                    check Alcotest.bool (v ^ " fresh") true (fresh_of got))
                  [ "lz"; "eg" ];
                (* byte-identity through the wire: the materialized rows
                   must equal dropping the view and evaluating *)
                let q = "select Name, GPA from Student" in
                let mat = response c ~view:"sc1" ~text:q "query" in
                ignore (response c ~view:"lz" "drop_view");
                let eval = response c ~view:"sc1" ~text:q "query" in
                check Alcotest.string "materialized == evaluated"
                  (rows_of eval) (rows_of mat))));
    tc "definition errors are typed" (fun () ->
        with_server ~session:(fresh_session ()) (fun _t addr ->
            with_client addr (fun c ->
                check Alcotest.string "component-name collision" "bad_request"
                  (error_code_of c ~view:"sc1" ~text:"select * from Faculty"
                     "define_view");
                check Alcotest.string "unknown base" "unknown_view"
                  (error_code_of c ~view:"v" ~base:"sc9"
                     ~text:"select * from Faculty" "define_view");
                check Alcotest.string "bad policy" "bad_request"
                  (error_code_of c ~view:"v" ~policy:"sometimes"
                     ~text:"select * from Faculty" "define_view");
                check Alcotest.string "parse error" "parse_error"
                  (error_code_of c ~view:"v" ~text:"select from where"
                     "define_view");
                check Alcotest.string "unknown drop" "unknown_view"
                  (error_code_of c ~view:"nope" "drop_view");
                check Alcotest.string "unknown refresh" "unknown_view"
                  (error_code_of c ~view:"nope" "refresh_view");
                check Alcotest.string "unknown materialized read"
                  "unknown_view"
                  (error_code_of c ~view:"nope" "query");
                check Alcotest.string
                  "component view without q still needs q" "bad_request"
                  (error_code_of c ~view:"sc1" "query"))));
    tc "stats and health report the catalog" (fun () ->
        with_server ~session:(fresh_session ()) (fun _t addr ->
            with_client addr (fun c ->
                ignore
                  (response c ~view:"v1" ~base:"sc1" ~policy:"manual"
                     ~text:"select Name from Student" "define_view");
                ignore
                  (response c ~view:"sc1"
                     ~text:"delete from Student where Name = 'Ben'" "update");
                let stats = response c "view_stats" in
                (match Json.member "views" stats with
                | Some (Json.List [ v ]) ->
                    check
                      Alcotest.(option string)
                      "name"
                      (Some "v1")
                      (match Json.member "name" v with
                      | Some (Json.String s) -> Some s
                      | _ -> None);
                    check Alcotest.bool "stale after delete" true
                      (Json.member "fresh" v = Some (Json.Bool false))
                | _ -> Alcotest.fail "expected one view");
                let health = response c "health" in
                match Json.find [ "views"; "stale" ] health with
                | Some (Json.Int n) -> check Alcotest.int "stale count" 1 n
                | _ -> Alcotest.fail "no views section in health")));
    tc "reads refresh correctly while the pool is under load" (fun () ->
        with_server ~session:(fresh_session ()) ~jobs:2 ~debug:true
          (fun _t addr ->
            with_client addr (fun c ->
                ignore
                  (response c ~view:"lz" ~base:"sc1" ~policy:"lazy"
                     ~text:"select Name, GPA from Student" "define_view");
                (* keep one pool domain busy the whole time *)
                let sleeper =
                  Thread.create
                    (fun () ->
                      with_client addr (fun s ->
                          ignore
                            (Server.Client.roundtrip s
                               (Server.Wire.request_to_line ~text:"400" "sleep"))))
                    ()
                in
                let writers =
                  List.init 2 (fun w ->
                      Thread.create
                        (fun () ->
                          with_client addr (fun wc ->
                              for i = 1 to 10 do
                                ignore
                                  (response wc ~view:"sc1"
                                     ~text:
                                       (Printf.sprintf
                                          "insert into Student { Name = \
                                           'W%d_%d', GPA = 3.1 }"
                                          w i)
                                     "update")
                              done))
                        ())
                in
                let readers =
                  List.init 2 (fun _ ->
                      Thread.create
                        (fun () ->
                          with_client addr (fun rc ->
                              for _ = 1 to 15 do
                                let got = response rc ~view:"lz" "query" in
                                check Alcotest.bool "always fresh" true
                                  (fresh_of got)
                              done))
                        ())
                in
                List.iter Thread.join (writers @ readers @ [ sleeper ]);
                (* quiesced: materialized must equal a plain evaluation *)
                let q = "select Name, GPA from Student" in
                let mat = response c ~view:"sc1" ~text:q "query" in
                ignore (response c ~view:"lz" "drop_view");
                let eval = response c ~view:"sc1" ~text:q "query" in
                check Alcotest.string "consistent after load" (rows_of eval)
                  (rows_of mat))));
    tc "the view catalog survives a restart via its journal" (fun () ->
        let dir =
          let base = Filename.temp_file "sit_views" "" in
          Sys.remove base;
          Unix.mkdir base 0o755;
          base
        in
        let rm_rf () =
          Array.iter
            (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
            (try Sys.readdir dir with Sys_error _ -> [||]);
          try Unix.rmdir dir with Unix.Unix_error _ -> ()
        in
        Fun.protect ~finally:rm_rf (fun () ->
            let bytes1 =
              with_server ~session:(fresh_session ~journal_dir:dir ())
                (fun _t addr ->
                  with_client addr (fun c ->
                      ignore
                        (response c ~view:"keep" ~base:"sc1" ~policy:"eager"
                           ~text:"select Name from Student where GPA >= 3.0"
                           "define_view");
                      ignore
                        (response c ~view:"gone" ~base:"sc1"
                           ~text:"select Name from Department" "define_view");
                      ignore (response c ~view:"gone" "drop_view");
                      rows_of (response c ~view:"keep" "query")))
            in
            (* a new process over the same journal dir resumes the
               catalog: the kept view answers identically, the dropped
               one stays dropped *)
            with_server ~session:(fresh_session ~journal_dir:dir ())
              (fun _t addr ->
                with_client addr (fun c ->
                    let got = response c ~view:"keep" "query" in
                    check Alcotest.bool "fresh after resume" true
                      (fresh_of got);
                    check Alcotest.string "same bytes after resume" bytes1
                      (rows_of got);
                    check Alcotest.string "dropped stays dropped"
                      "unknown_view"
                      (error_code_of c ~view:"gone" "query")))));
  ]

let () =
  Alcotest.run "view"
    [
      ("catalog", catalog_tests);
      ("op-stream", subscription_tests);
      ("wire", wire_tests);
      ("serving", server_tests);
    ]
