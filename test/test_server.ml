(* Tests for the query-serving daemon (lib/server): protocol plumbing,
   concurrency vs. offline equivalence, backpressure, deadlines, drain;
   plus regression tests for this PR's error-path bugfixes (integration
   strategies on degenerate pools, conflict diagnostics, sit_batch
   surviving bad directives). *)

open Ecr
module S = Instance.Store
module V = Instance.Value
module Json = Obs.Json

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ---- fixtures: the paper's sc1+sc2 session with instances --------- *)

let sc1_store () =
  let st = S.create Workload.Paper.sc1 in
  let student name gpa = S.tuple [ ("Name", V.str name); ("GPA", V.real gpa) ] in
  let st, ann = S.insert (Name.v "Student") (student "Ann" 3.9) st in
  let st, ben = S.insert (Name.v "Student") (student "Ben" 2.5) st in
  let st, cyd = S.insert (Name.v "Student") (student "Cyd" 3.2) st in
  let st, cs = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st in
  let st, ee = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "EE") ]) st in
  let since y = S.tuple [ ("Since", V.date y 9 1) ] in
  let st = S.relate (Name.v "Majors") [ ann; cs ] (since 2020) st in
  let st = S.relate (Name.v "Majors") [ ben; ee ] (since 2021) st in
  let st = S.relate (Name.v "Majors") [ cyd; cs ] (since 2022) st in
  st

let sc2_store () =
  let st = S.create Workload.Paper.sc2 in
  let st, _ =
    S.insert (Name.v "Grad_student")
      (S.tuple
         [
           ("Name", V.str "Ann"); ("GPA", V.real 3.9); ("Support_type", V.str "RA");
         ])
      st
  in
  let st, _ =
    S.insert (Name.v "Faculty")
      (S.tuple [ ("Name", V.str "Dr. Lee"); ("Rank", V.str "Assoc") ])
      st
  in
  st

let session =
  lazy
    (let result = Workload.Paper.integrate_sc1_sc2 () in
     Server.make_session ~result
       ~stores:
         [
           (Workload.Paper.sc1, sc1_store ()); (Workload.Paper.sc2, sc2_store ());
         ]
       ())

let local = Server.Wire.Tcp ("127.0.0.1", 0)

(* Starts a server, runs [f] against its address, always stops it. *)
let with_server ?(jobs = 2) ?(queue = 64) ?deadline_ms ?(cache = 128)
    ?(debug = false) f =
  let cfg =
    {
      Server.listen = local;
      jobs;
      queue;
      deadline_ms;
      cache;
      debug;
      repl = Server.default_repl;
    }
  in
  match Server.start (Lazy.force session) cfg with
  | Error msg -> Alcotest.fail ("server failed to start: " ^ msg)
  | Ok t ->
      let addr =
        match Server.port t with
        | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
        | None -> Alcotest.fail "no bound port"
      in
      Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t addr)

let with_client addr f =
  let c = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)

(* the workload: view queries on both components plus a global query *)
let view_frames =
  [
    ("sc1", "select Name, GPA from Student where GPA > 3.0");
    ("sc1", "select Name from Department");
    ("sc2", "select Name from Faculty");
    ("sc2", "select Name, GPA from Grad_student");
  ]

let global_frames = [ "select Name from Student"; "select Rank from Faculty" ]

let frames () =
  List.map
    (fun (view, text) -> Server.Wire.request_to_line ~view ~text "query")
    view_frames
  @ List.map (fun text -> Server.Wire.request_to_line ~text "query") global_frames

(* The reference answer, computed offline (no server, single thread)
   through exactly the public query API a non-serving client uses. *)
let offline_response_for ~view ~text =
  let session = Lazy.force session in
  let mapping = session.Server.result.Integrate.Result.mapping in
  let q = Query.Parser.query_of_string text in
  let rows =
    match view with
    | Some view_name ->
        let view =
          List.find
            (fun s -> Name.to_string (Schema.name s) = view_name)
            session.Server.schemas
        in
        let q', back = Query.Rewrite.to_integrated mapping ~view q in
        back (Query.Eval.run q' session.Server.initial_merged)
    | None ->
        Query.Rewrite.run_global mapping
          ~integrated:session.Server.result.Integrate.Result.schema
          ~stores:
            (List.map
               (fun (s, st) -> (Schema.name s, st))
               session.Server.component_stores)
          q
  in
  Server.Wire.ok_line
    [
      ("rows", Server.Wire.rows_to_json rows);
      ("count", Json.Int (List.length rows));
    ]

let server_tests =
  [
    tc "responses are byte-identical to offline evaluation" (fun () ->
        with_server (fun _t addr ->
            with_client addr (fun c ->
                List.iter
                  (fun (view, text) ->
                    let got =
                      Server.Client.roundtrip c
                        (Server.Wire.request_to_line ~view ~text "query")
                    in
                    check Alcotest.string text
                      (offline_response_for ~view:(Some view) ~text)
                      got)
                  view_frames;
                List.iter
                  (fun text ->
                    let got =
                      Server.Client.roundtrip c
                        (Server.Wire.request_to_line ~text "query")
                    in
                    check Alcotest.string text
                      (offline_response_for ~view:None ~text)
                      got)
                  global_frames)));
    tc "concurrent load: 4 connections, 1k requests, zero divergence"
      (fun () ->
        with_server ~jobs:4 (fun t addr ->
            let pool = Array.of_list (frames ()) in
            let load = Array.init 1200 (fun i -> pool.(i mod Array.length pool)) in
            let stats = Server.Client.drive ~addr ~conns:4 ~frames:load () in
            check Alcotest.int "all answered" 1200 stats.Server.Client.sent;
            check Alcotest.int "all ok" 1200 stats.Server.Client.ok;
            check Alcotest.int "no divergent responses" 0
              stats.Server.Client.mismatches;
            (* every response must equal the offline reference, not just
               agree with the other connections *)
            with_client addr (fun c ->
                List.iter
                  (fun (view, text) ->
                    check Alcotest.string text
                      (offline_response_for ~view:(Some view) ~text)
                      (Server.Client.roundtrip c
                         (Server.Wire.request_to_line ~view ~text "query")))
                  view_frames);
            let s = Server.stats t in
            check Alcotest.bool "plan cache was hit" true
              (s.Server.cache_hits > 0);
            check Alcotest.bool "plan cache misses bounded by shapes" true
              (s.Server.cache_misses <= List.length (frames ()))));
    tc "malformed and failing frames never kill the daemon" (fun () ->
        with_server (fun _t addr ->
            with_client addr (fun c ->
                let code line =
                  let resp = Server.Client.roundtrip c line in
                  match Json.of_string resp with
                  | Ok v ->
                      check Alcotest.bool line false (Server.Client.is_ok v);
                      Option.value ~default:"?" (Server.Client.error_code v)
                  | Error e -> Alcotest.fail ("unparseable response: " ^ e)
                in
                check Alcotest.string "garbage" "bad_frame" (code "garbage");
                check Alcotest.string "non-object" "bad_frame" (code "[1,2]");
                check Alcotest.string "no op" "bad_request" (code "{}");
                check Alcotest.string "unknown op" "unknown_op"
                  (code {|{"op":"zap"}|});
                check Alcotest.string "missing q" "bad_request"
                  (code {|{"op":"query","view":"sc1"}|});
                check Alcotest.string "unknown view" "unknown_view"
                  (code {|{"op":"query","view":"sc9","q":"select Name from Student"}|});
                check Alcotest.string "syntax error" "parse_error"
                  (code {|{"op":"query","view":"sc1","q":"select from where"}|});
                check Alcotest.string "unmapped" "unmapped"
                  (code
                     {|{"op":"query","view":"sc1","q":"select Rank from Faculty"}|});
                check Alcotest.string "update error" "parse_error"
                  (code {|{"op":"update","view":"sc1","u":"insert garbage"}|});
                (* ... and the very same connection still gets answers *)
                let view, text = List.hd view_frames in
                check Alcotest.string "daemon still serving"
                  (offline_response_for ~view:(Some view) ~text)
                  (Server.Client.roundtrip c
                     (Server.Wire.request_to_line ~view ~text "query")))));
    tc "bounded queue answers overloaded, not buffered" (fun () ->
        with_server ~jobs:1 ~queue:1 ~debug:true (fun t addr ->
            with_client addr (fun slow ->
                with_client addr (fun fast ->
                    (* occupy the only queue slot without waiting *)
                    let sleeper =
                      Thread.create
                        (fun () ->
                          Server.Client.roundtrip slow
                            (Server.Wire.request_to_line ~text:"400" "sleep"))
                        ()
                    in
                    Thread.delay 0.1;
                    let resp =
                      Server.Client.request fast ~view:"sc1"
                        ~text:"select Name from Student" "query"
                    in
                    check Alcotest.bool "rejected" false
                      (Server.Client.is_ok resp);
                    check
                      Alcotest.(option string)
                      "overloaded" (Some "overloaded")
                      (Server.Client.error_code resp);
                    (* control ops bypass the bound *)
                    check Alcotest.bool "health still ok" true
                      (Server.Client.is_ok (Server.Client.request fast "health"));
                    Thread.join sleeper;
                    (* slot free again: the same request now succeeds *)
                    check Alcotest.bool "accepted after drain" true
                      (Server.Client.is_ok
                         (Server.Client.request fast ~view:"sc1"
                            ~text:"select Name from Student" "query"));
                    let s = Server.stats t in
                    check Alcotest.bool "overloaded counted" true
                      (s.Server.overloaded >= 1)))));
    tc "per-request deadline answers deadline_exceeded" (fun () ->
        with_server ~debug:true (fun t addr ->
            with_client addr (fun c ->
                let resp =
                  Server.Client.request c ~text:"300" ~deadline_ms:50 "sleep"
                in
                check
                  Alcotest.(option string)
                  "deadline" (Some "deadline_exceeded")
                  (Server.Client.error_code resp);
                (* without a deadline the same op completes *)
                check Alcotest.bool "no deadline" true
                  (Server.Client.is_ok
                     (Server.Client.request c ~text:"10" "sleep"));
                check Alcotest.bool "counted" true
                  ((Server.stats t).Server.deadline_exceeded >= 1))));
    tc "updates serialize and migrate resets them" (fun () ->
        with_server ~jobs:4 (fun _t addr ->
            with_client addr (fun c ->
                let count () =
                  match
                    Json.member "count"
                      (Server.Client.request c ~view:"sc1"
                         ~text:"select Name from Student" "query")
                  with
                  | Some (Json.Int n) -> n
                  | _ -> Alcotest.fail "no count"
                in
                let before = count () in
                let resp =
                  Server.Client.request c ~view:"sc1"
                    ~text:"insert into Student { Name = 'Zoe', GPA = 3.5 }"
                    "update"
                in
                check Alcotest.bool "update ok" true (Server.Client.is_ok resp);
                check Alcotest.int "one more row" (before + 1) (count ());
                let resp = Server.Client.request c "migrate" in
                check Alcotest.bool "migrate ok" true (Server.Client.is_ok resp);
                check Alcotest.int "updates reset" before (count ()))));
    tc "shutdown drains in-flight requests" (fun () ->
        let cfg =
          {
            Server.listen = local;
            jobs = 2;
            queue = 8;
            deadline_ms = None;
            cache = 16;
            debug = true;
            repl = Server.default_repl;
          }
        in
        match Server.start (Lazy.force session) cfg with
        | Error msg -> Alcotest.fail msg
        | Ok t ->
            let addr =
              match Server.port t with
              | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
              | None -> Alcotest.fail "no bound port"
            in
            let c = Server.Client.connect addr in
            let resp = ref "" in
            let inflight =
              Thread.create
                (fun () ->
                  resp :=
                    Server.Client.roundtrip c
                      (Server.Wire.request_to_line ~text:"300" "sleep"))
                ()
            in
            Thread.delay 0.1;
            (* returns only once drained *)
            Server.stop t;
            Thread.join inflight;
            Server.Client.close c;
            (match Json.of_string !resp with
            | Ok v ->
                check Alcotest.bool "in-flight request was answered" true
                  (Server.Client.is_ok v)
            | Error e -> Alcotest.fail ("drained response unparseable: " ^ e));
            (* the listener is gone *)
            (match Server.Client.connect addr with
            | exception Server.Client.Connection_error _ -> ()
            | c2 ->
                Server.Client.close c2;
                Alcotest.fail "server still accepting after stop");
            (* idempotent: a second stop is a no-op *)
            Server.stop t);
  ]

(* ---- binary protocol ---------------------------------------------- *)

(* One raw binary exchange over [fd]-level primitives, so negotiation
   details (magic echo, framing) are asserted byte-by-byte rather than
   through the client's convenience layer. *)
let raw_connect addr =
  match addr with
  | Server.Wire.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  | Server.Wire.Unix_path _ -> Alcotest.fail "tests use TCP"

let binary_tests =
  [
    tc "negotiation: the magic is echoed byte-for-byte" (fun () ->
        with_server (fun _t addr ->
            let fd, ic, oc = raw_connect addr in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                output_string oc Server.Wire.magic;
                flush oc;
                let ack =
                  really_input_string ic (String.length Server.Wire.magic)
                in
                check Alcotest.string "ack" Server.Wire.magic ack;
                (* and the connection then answers a framed request *)
                output_string oc
                  (Server.Wire.encode_bin Server.Wire.Request
                     (Server.Wire.request_to_json "health"));
                flush oc;
                let hdr = really_input_string ic 4 in
                match Server.Wire.bin_length hdr with
                | Error e -> Alcotest.fail e
                | Ok n -> (
                    let body = really_input_string ic n in
                    match Server.Wire.decode_bin (hdr ^ body) with
                    | Ok (Server.Wire.Response, v) ->
                        check Alcotest.bool "ok" true (Server.Client.is_ok v)
                    | Ok (Server.Wire.Request, _) ->
                        Alcotest.fail "server sent a request frame"
                    | Error e -> Alcotest.fail e))));
    tc "bad magic version is answered with bad_frame and closed" (fun () ->
        with_server (fun _t addr ->
            let fd, ic, oc = raw_connect addr in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                (* right sniff byte, wrong version *)
                output_string oc "\xb5SITB1\x09\x09";
                flush oc;
                let hdr = really_input_string ic 4 in
                match Server.Wire.bin_length hdr with
                | Error e -> Alcotest.fail e
                | Ok n -> (
                    let body = really_input_string ic n in
                    (match Server.Wire.decode_bin (hdr ^ body) with
                    | Ok (Server.Wire.Response, v) ->
                        check
                          Alcotest.(option string)
                          "code" (Some "bad_frame")
                          (Server.Client.error_code v)
                    | _ -> Alcotest.fail "expected an error response frame");
                    (* connection is closed after the error *)
                    match input_char ic with
                    | exception End_of_file -> ()
                    | _ -> Alcotest.fail "connection still open after bad magic"))));
    tc "binary and JSON responses carry identical payloads" (fun () ->
        with_server (fun _t addr ->
            with_client addr (fun cj ->
                let cb = Server.Client.connect ~proto:Server.Wire.Bin addr in
                Fun.protect
                  ~finally:(fun () -> Server.Client.close cb)
                  (fun () ->
                    List.iter
                      (fun line ->
                        check Alcotest.string line
                          (Server.Client.roundtrip cj line)
                          (Server.Client.roundtrip cb line))
                      (frames ())))));
    tc "binary framing errors keep the connection alive" (fun () ->
        with_server (fun _t addr ->
            let fd, ic, oc = raw_connect addr in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                output_string oc Server.Wire.magic;
                flush oc;
                ignore (really_input_string ic (String.length Server.Wire.magic));
                let read_resp () =
                  let hdr = really_input_string ic 4 in
                  match Server.Wire.bin_length hdr with
                  | Error e -> Alcotest.fail e
                  | Ok n -> (
                      let body = really_input_string ic n in
                      match Server.Wire.decode_bin (hdr ^ body) with
                      | Ok (Server.Wire.Response, v) -> v
                      | _ -> Alcotest.fail "expected a response frame")
                in
                (* a complete frame with a bad value tag: answered, not
                   fatal, because the stream stays at a frame boundary *)
                output_string oc "\x00\x00\x00\x02\x01\xff";
                flush oc;
                check
                  Alcotest.(option string)
                  "bad tag" (Some "bad_frame")
                  (Server.Client.error_code (read_resp ()));
                (* same connection still serves *)
                output_string oc
                  (Server.Wire.encode_bin Server.Wire.Request
                     (Server.Wire.request_to_json "health"));
                flush oc;
                check Alcotest.bool "still serving" true
                  (Server.Client.is_ok (read_resp ()));
                (* an oversized length prefix is fatal: error, then EOF *)
                output_string oc "\x7f\xff\xff\xff";
                flush oc;
                check
                  Alcotest.(option string)
                  "oversized" (Some "bad_frame")
                  (Server.Client.error_code (read_resp ()));
                match input_char ic with
                | exception End_of_file -> ()
                | _ -> Alcotest.fail "connection open after oversized prefix")));
    tc "drive runs the same workload over the binary protocol" (fun () ->
        with_server ~jobs:2 (fun _t addr ->
            let pool = Array.of_list (frames ()) in
            let load = Array.init 400 (fun i -> pool.(i mod Array.length pool)) in
            let stats =
              Server.Client.drive ~proto:Server.Wire.Bin ~addr ~conns:4
                ~frames:load ()
            in
            check Alcotest.int "all ok" 400 stats.Server.Client.ok;
            check Alcotest.int "no divergence" 0 stats.Server.Client.mismatches));
  ]

(* ---- regression: strategy error paths ----------------------------- *)

let strategy_tests =
  let weights =
    Heuristics.Resemblance.default_weights Heuristics.Synonyms.default
  in
  [
    tc "binary_balanced on a single schema integrates it alone" (fun () ->
        let out =
          Integrate.Strategy.binary_balanced [ Workload.Paper.sc1 ]
            Integrate.Dda.silent
        in
        check Alcotest.int "no pairwise steps" 0 out.Integrate.Strategy.steps;
        let ladder =
          Integrate.Strategy.binary_ladder [ Workload.Paper.sc1 ]
            Integrate.Dda.silent
        in
        (* the single-schema pool must not be double-counted: same
           effort as the ladder on the same input *)
        check Alcotest.int "same pairs as ladder"
          ladder.Integrate.Strategy.stats.Integrate.Protocol.pairs_presented
          out.Integrate.Strategy.stats.Integrate.Protocol.pairs_presented);
    tc "binary_guided on a single schema integrates it alone" (fun () ->
        let out =
          Integrate.Strategy.binary_guided ~weights [ Workload.Paper.sc1 ]
            Integrate.Dda.silent
        in
        check Alcotest.int "no pairwise steps" 0 out.Integrate.Strategy.steps);
    tc "binary strategies reject an empty pool" (fun () ->
        Alcotest.check_raises "balanced"
          (Invalid_argument "Strategy.binary_balanced: no schemas")
          (fun () ->
            ignore (Integrate.Strategy.binary_balanced [] Integrate.Dda.silent));
        Alcotest.check_raises "guided"
          (Invalid_argument "Strategy.binary_guided: no schemas")
          (fun () ->
            ignore
              (Integrate.Strategy.binary_guided ~weights [] Integrate.Dda.silent)));
    tc "binary strategies complete on an odd-sized pool" (fun () ->
        let w =
          Workload.Generator.generate
            { Workload.Generator.default_params with schemas = 3; seed = 7 }
        in
        let balanced =
          Integrate.Strategy.binary_balanced
            ~register:w.Workload.Generator.register
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        check Alcotest.int "balanced: 2 steps for 3 schemas" 2
          balanced.Integrate.Strategy.steps;
        (* guided must finish every round even when resemblance scoring
           declines to rank the remaining pairs *)
        let guided =
          Integrate.Strategy.binary_guided ~weights
            ~register:w.Workload.Generator.register
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        check Alcotest.int "guided: 2 steps for 3 schemas" 2
          guided.Integrate.Strategy.steps);
    tc "binary_guided completes when no pair is ranked" (fun () ->
        (* weight-free scoring gives best_of nothing to rank: the fixed
           code degrades to pool order instead of silently stopping *)
        let w =
          Workload.Generator.generate
            { Workload.Generator.default_params with schemas = 4; seed = 11 }
        in
        let out =
          Integrate.Strategy.binary_guided ~weights:[]
            ~register:w.Workload.Generator.register
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        check Alcotest.int "3 steps for 4 schemas" 3
          out.Integrate.Strategy.steps);
  ]

(* ---- regression: conflict diagnostics ----------------------------- *)

let q = Qname.v

let conflict_tests =
  [
    tc "conflict_to_string names the pair, assertion and basis" (fun () ->
        let s name cls =
          Schema.make (Name.v name)
            ~objects:[ Object_class.entity (Name.v cls) ]
            ~relationships:[]
        in
        let m =
          Integrate.Assertions.create
            [ s "a" "Employee"; s "b" "Person"; s "c" "Worker" ]
        in
        let ok = function
          | Ok m -> m
          | Error _ -> Alcotest.fail "unexpected conflict"
        in
        let m =
          ok
            (Integrate.Assertions.add (q "a" "Employee")
               Integrate.Assertion.Equal (q "b" "Person") m)
        in
        let m =
          ok
            (Integrate.Assertions.add (q "b" "Person")
               Integrate.Assertion.Equal (q "c" "Worker") m)
        in
        match
          Integrate.Assertions.add (q "c" "Worker")
            Integrate.Assertion.Contained_in (q "a" "Employee") m
        with
        | Ok _ -> Alcotest.fail "conflict missed"
        | Error c ->
            let msg = Integrate.Assertions.conflict_to_string c in
            let has needle =
              check Alcotest.bool
                (Printf.sprintf "%S in %S" needle msg)
                true
                (Util.contains ~needle msg)
            in
            has "c.Worker";
            has "a.Employee";
            has "rejected";
            has "current knowledge");
    tc "workload failwith carries the conflict diagnosis" (fun () ->
        (* Domains.feed-style message assembly: the formatted failure
           must embed the offending pair and the conflict explanation,
           not just "conflict" *)
        let msg =
          Printf.sprintf "unexpected conflict integrating sc1 with sc2: %s"
            (let s name cls =
               Schema.make (Name.v name)
                 ~objects:[ Object_class.entity (Name.v cls) ]
                 ~relationships:[]
             in
             let m = Integrate.Assertions.create [ s "x" "A"; s "y" "B" ] in
             let m =
               match
                 Integrate.Assertions.add (q "x" "A") Integrate.Assertion.Equal
                   (q "y" "B") m
               with
               | Ok m -> m
               | Error _ -> Alcotest.fail "unexpected conflict"
             in
             match
               Integrate.Assertions.add (q "x" "A")
                 Integrate.Assertion.Disjoint_nonintegrable (q "y" "B") m
             with
             | Ok _ -> Alcotest.fail "conflict missed"
             | Error c -> Integrate.Assertions.conflict_to_string c)
        in
        check Alcotest.bool "pair named" true (Util.contains ~needle:"x.A" msg);
        check Alcotest.bool "attempted assertion named" true
          (Util.contains ~needle:"rejected" msg));
  ]

(* ---- regression: sit_batch finishes the script on bad directives -- *)

let sit_batch_tests =
  [
    tc "bad directives are reported, script finishes, exit is non-zero"
      (fun () ->
        let out = Filename.temp_file "sit_batch" ".out" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
          (fun () ->
            (* anchor on the test executable (_build/default/test/...):
               the binary is a sibling, the data files are in the
               source tree three levels up — independent of the cwd
               dune or a direct run picked *)
            let here = Filename.dirname Sys.executable_name in
            let data f =
              Filename.concat here
                (Filename.concat "../../../examples/data" f)
            in
            let cmd =
              Printf.sprintf
                "%s %s %s -s %s --data %s -q 'sc1: select Bogus from' -u \
                 'sc9: insert into X values ()' -q 'sc1: select Name from \
                 Student' > %s 2>&1"
                (Filename.concat here "../bin/sit_batch.exe")
                (data "sc1.ecr") (data "sc2.ecr") (data "paper_session.sit")
                (data "paper_instances.ecd") out
            in
            let rc = Sys.command cmd in
            check Alcotest.bool "non-zero exit" true (rc <> 0);
            let ic = open_in out in
            let text =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            let has needle =
              check Alcotest.bool needle true (Util.contains ~needle text)
            in
            (* both bad directives diagnosed ... *)
            has "error: --query sc1: select Bogus from";
            has "error: --update sc9";
            has "unknown view sc9";
            (* ... and the later good directive still ran *)
            has "view query   : [sc1] select Name from Student";
            has "(2 rows)"));
  ]

let () =
  Alcotest.run "server"
    [
      ("server", server_tests);
      ("binary protocol", binary_tests);
      ("strategy regressions", strategy_tests);
      ("conflict diagnostics", conflict_tests);
      ("sit_batch regressions", sit_batch_tests);
    ]
