(* Tests for the query language: evaluation, rewriting in both
   directions, and instance migration. *)

open Ecr
module S = Instance.Store
module V = Instance.Value

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ---- a populated instance of paper schema sc1 --------------------- *)

let sc1_store () =
  let st = S.create Workload.Paper.sc1 in
  let student name gpa = S.tuple [ ("Name", V.str name); ("GPA", V.real gpa) ] in
  let st, ann = S.insert (Name.v "Student") (student "Ann" 3.9) st in
  let st, ben = S.insert (Name.v "Student") (student "Ben" 2.5) st in
  let st, cyd = S.insert (Name.v "Student") (student "Cyd" 3.2) st in
  let st, cs = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st in
  let st, ee = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "EE") ]) st in
  let since y = S.tuple [ ("Since", V.date y 9 1) ] in
  let st = S.relate (Name.v "Majors") [ ann; cs ] (since 2020) st in
  let st = S.relate (Name.v "Majors") [ ben; ee ] (since 2021) st in
  let st = S.relate (Name.v "Majors") [ cyd; cs ] (since 2022) st in
  st

let eval_tests =
  [
    tc "select all" (fun () ->
        let rows = Query.Eval.run (Query.Ast.query "Student") (sc1_store ()) in
        check Alcotest.int "three students" 3 (List.length rows));
    tc "where filters" (fun () ->
        let rows =
          Query.Eval.run
            Query.Ast.(query "Student" ~where:(atom "GPA" Ge (V.real 3.0)))
            (sc1_store ())
        in
        check Alcotest.int "two" 2 (List.length rows));
    tc "projection keeps only selected columns" (fun () ->
        let rows =
          Query.Eval.run Query.Ast.(query "Student" ~select:[ "Name" ]) (sc1_store ())
        in
        List.iter
          (fun r -> check Alcotest.int "one column" 1 (Name.Map.cardinal r))
          rows);
    tc "boolean connectives" (fun () ->
        let rows =
          Query.Eval.run
            Query.Ast.(
              query "Student"
                ~where:
                  (atom "GPA" Ge (V.real 3.0) &&& not_ (atom "Name" Eq (V.str "Ann"))))
            (sc1_store ())
        in
        check Alcotest.int "only Cyd" 1 (List.length rows));
    tc "join via relationship" (fun () ->
        let rows =
          Query.Eval.run
            Query.Ast.(
              query "Student" ~select:[ "Name" ]
                ~via:
                  (join "Majors" "Department" ~target_select:[ "Name" ]
                     ~where:(atom "Name" Eq (V.str "CS"))))
            (sc1_store ())
        in
        check Alcotest.int "two in CS" 2 (List.length rows);
        List.iter
          (fun r ->
            check Alcotest.bool "has prefixed column" true
              (Name.Map.mem (Name.v "Department_Name") r))
          rows);
    tc "join projects relationship attributes" (fun () ->
        let rows =
          Query.Eval.run
            Query.Ast.(
              query "Student" ~select:[ "Name" ]
                ~via:
                  (join "Majors" "Department" ~rel_select:[ "Since" ]
                     ~target_select:[ "Name" ]))
            (sc1_store ())
        in
        check Alcotest.int "three" 3 (List.length rows);
        List.iter
          (fun r ->
            check Alcotest.bool "Majors_Since column" true
              (match Name.Map.find_opt (Name.v "Majors_Since") r with
              | Some (V.Date _) -> true
              | _ -> false))
          rows);
    tc "unknown relationship attribute raises" (fun () ->
        match
          Query.Eval.run
            Query.Ast.(
              query "Student"
                ~via:(join "Majors" "Department" ~rel_select:[ "Ghost" ]))
            (sc1_store ())
        with
        | exception Query.Eval.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    tc "null comparisons are false" (fun () ->
        let st = S.create Workload.Paper.sc1 in
        let st, _ = S.insert (Name.v "Student") Name.Map.empty st in
        let rows =
          Query.Eval.run
            Query.Ast.(query "Student" ~where:(atom "GPA" Le (V.real 9.9)))
            st
        in
        check Alcotest.int "null fails every cmp" 0 (List.length rows);
        let rows =
          Query.Eval.run
            Query.Ast.(query "Student" ~where:(not_ (atom "GPA" Le (V.real 9.9))))
            st
        in
        check Alcotest.int "negation sees it" 1 (List.length rows));
    tc "unknown class and attribute raise" (fun () ->
        (match Query.Eval.run (Query.Ast.query "Ghost") (sc1_store ()) with
        | exception Query.Eval.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
        match
          Query.Eval.run Query.Ast.(query "Student" ~select:[ "Ghost" ]) (sc1_store ())
        with
        | exception Query.Eval.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    tc "same_answers is order-insensitive but multiset-sensitive" (fun () ->
        let r1 = Query.Eval.row [ ("a", V.int 1) ]
        and r2 = Query.Eval.row [ ("a", V.int 2) ] in
        check Alcotest.bool "perm" true (Query.Eval.same_answers [ r1; r2 ] [ r2; r1 ]);
        check Alcotest.bool "dup" false (Query.Eval.same_answers [ r1; r1 ] [ r1 ]));
    tc "category extent evaluates members of children" (fun () ->
        let st = S.create Workload.Paper.sc4 in
        let st, _ =
          S.insert (Name.v "Grad_student")
            (S.tuple [ ("Name", V.str "Zoe"); ("GPA", V.real 3.5) ])
            st
        in
        let rows = Query.Eval.run (Query.Ast.query "Student") st in
        check Alcotest.int "grad visible as student" 1 (List.length rows));
  ]

(* ---- rewriting ----------------------------------------------------- *)

let paper = lazy (Workload.Paper.integrate_sc1_sc2 ())

let migrated () =
  let r = Lazy.force paper in
  let st1 = sc1_store () in
  let st2 = S.create Workload.Paper.sc2 in
  let st2, alice =
    S.insert (Name.v "Grad_student")
      (S.tuple [ ("Name", V.str "Ann"); ("GPA", V.real 3.9); ("Support_type", V.str "RA") ])
      st2
  in
  let st2, cs2 = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st2 in
  let st2, prof =
    S.insert (Name.v "Faculty")
      (S.tuple [ ("Name", V.str "Dr_X"); ("Rank", V.str "Assoc") ])
      st2
  in
  let st2 = S.relate (Name.v "Major_in") [ alice; cs2 ] (S.tuple [ ("Since", V.date 2020 9 1) ]) st2 in
  let st2 = S.relate (Name.v "Works") [ prof; cs2 ] Name.Map.empty st2 in
  let merged, report =
    Query.Migrate.run r.Integrate.Result.mapping
      ~integrated:r.Integrate.Result.schema
      [ (Workload.Paper.sc1, st1); (Workload.Paper.sc2, st2) ]
  in
  (r, st1, st2, merged, report)

let rewrite_tests =
  [
    tc "view query answers survive rewriting" (fun () ->
        let r, st1, _, merged, _ = migrated () in
        let view_q =
          Query.Ast.(
            query "Student" ~select:[ "Name" ] ~where:(atom "GPA" Ge (V.real 3.0)))
        in
        let q', back =
          Query.Rewrite.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc1 view_q
        in
        check Alcotest.bool "same" true
          (Query.Eval.same_answers (Query.Eval.run view_q st1)
             (back (Query.Eval.run q' merged))));
    tc "joined view query survives rewriting" (fun () ->
        let r, st1, _, merged, _ = migrated () in
        let view_q =
          Query.Ast.(
            query "Student" ~select:[ "Name" ]
              ~via:
                (join "Majors" "Department" ~rel_select:[ "Since" ]
                   ~target_select:[ "Name" ]))
        in
        let q', back =
          Query.Rewrite.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc1 view_q
        in
        check Alcotest.bool "same" true
          (Query.Eval.same_answers (Query.Eval.run view_q st1)
             (back (Query.Eval.run q' merged))));
    tc "rewriting renames classes and attributes" (fun () ->
        let r = Lazy.force paper in
        let q', _ =
          Query.Rewrite.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc1
            Query.Ast.(query "Department" ~select:[ "Name" ])
        in
        check Alcotest.string "class" "E_Department" (Name.to_string q'.Query.Ast.from_class);
        check (Alcotest.list Alcotest.string) "attr" [ "D_Name" ]
          (List.map Name.to_string q'.Query.Ast.select));
    tc "unmapped view class raises" (fun () ->
        let r = Lazy.force paper in
        match
          Query.Rewrite.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc3
            (Query.Ast.query "Instructor")
        with
        | exception Query.Rewrite.Unmapped _ -> ()
        | _ -> Alcotest.fail "expected Unmapped");
    tc "global query unfolds to every contributing component" (fun () ->
        let r = Lazy.force paper in
        let parts =
          Query.Rewrite.to_components r.Integrate.Result.mapping
            ~integrated:r.Integrate.Result.schema
            Query.Ast.(query "D_Stud_Facu" ~select:[ "D_Name" ])
        in
        check
          (Alcotest.slist Alcotest.string String.compare)
          "components"
          [ "sc1"; "sc2"; "sc2" ]
          (List.map (fun p -> Name.to_string p.Query.Rewrite.component) parts));
    tc "global answers match the migrated instance" (fun () ->
        let r, st1, st2, merged, _ = migrated () in
        let gq = Query.Ast.(query "D_Stud_Facu" ~select:[ "D_Name" ]) in
        let direct = Query.Eval.run gq merged in
        let union =
          Query.Rewrite.run_global r.Integrate.Result.mapping
            ~integrated:r.Integrate.Result.schema
            ~stores:[ (Name.v "sc1", st1); (Name.v "sc2", st2) ]
            gq
        in
        check Alcotest.bool "covers" true
          (Query.Rewrite.covers direct union && Query.Rewrite.covers union direct));
    tc "predicates on unmapped attributes become Const false" (fun () ->
        let r = Lazy.force paper in
        let parts =
          Query.Rewrite.to_components r.Integrate.Result.mapping
            ~integrated:r.Integrate.Result.schema
            Query.Ast.(
              query "Student" ~select:[ "D_Name" ]
                ~where:(atom "Support_type" Eq (V.str "RA")))
        in
        let sc1_part =
          List.find
            (fun p -> Name.to_string p.Query.Rewrite.component = "sc1")
            parts
        in
        check Alcotest.bool "const false" true
          (match sc1_part.Query.Rewrite.query.Query.Ast.where with
          | Some (Query.Ast.Const false) -> true
          | _ -> false));
    tc "unfolding skips subclass entries already covered" (fun () ->
        (* personnel models Manager under Employee; when both map into
           the queried class's subtree, Manager's extent is already in
           Employee's answers and must not be read twice *)
        let session = Workload.Domains.company in
        let r = Workload.Domains.integrate ~name:"corp" session in
        let personnel = List.hd session.Workload.Domains.schemas in
        let st = S.create personnel in
        let st, boss =
          S.insert (Name.v "Manager")
            (S.tuple [ ("Emp_no", V.str "E1"); ("Name", V.str "Cyd") ])
            st
        in
        ignore boss;
        let merged_class =
          Option.get
            (Integrate.Mapping.object_target
               (Qname.v "personnel" "Employee")
               r.Integrate.Result.mapping)
        in
        let gq =
          Query.Ast.query (Name.to_string merged_class) ~select:[ "D_Name" ]
        in
        let rows =
          Query.Rewrite.run_global r.Integrate.Result.mapping
            ~integrated:r.Integrate.Result.schema
            ~stores:[ (Name.v "personnel", st) ]
            gq
        in
        check Alcotest.int "one row, not two" 1 (List.length rows);
        match rows with
        | [ row ] ->
            check Alcotest.int "only the requested column" 1
              (Name.Map.cardinal row)
        | _ -> Alcotest.fail "unexpected shape");
    tc "covers tolerates nulls" (fun () ->
        let a = Query.Eval.row [ ("x", V.int 1); ("y", V.Null) ] in
        let b = Query.Eval.row [ ("x", V.int 1); ("y", V.int 2) ] in
        check Alcotest.bool "null sub" true (Query.Rewrite.covers [ b ] [ a ]);
        check Alcotest.bool "mismatch" false
          (Query.Rewrite.covers [ b ] [ Query.Eval.row [ ("x", V.int 9) ] ]));
  ]

let migrate_tests =
  [
    tc "migration fuses equal entities on keys" (fun () ->
        let _, _, _, merged, report = migrated () in
        check Alcotest.int "fused" 2 report.Query.Migrate.fused;
        check Alcotest.int "violations" 0 (List.length (S.check merged)));
    tc "fused entity carries values from both views" (fun () ->
        let _, _, _, merged, _ = migrated () in
        let anns =
          Query.Eval.run
            Query.Ast.(
              query "Grad_student"
                ~where:(atom "D_Name" Eq (V.str "Ann"))
                ~select:[ "D_Name"; "Support_type"; "D_GPA" ])
            merged
        in
        match anns with
        | [ row ] ->
            check Alcotest.bool "support from sc2" true
              (V.equal (V.str "RA") (Name.Map.find (Name.v "Support_type") row));
            check Alcotest.bool "gpa agreed" true
              (V.equal (V.real 3.9) (Name.Map.find (Name.v "D_GPA") row))
        | rows -> Alcotest.failf "expected exactly one Ann, got %d" (List.length rows));
    tc "category memberships preserved" (fun () ->
        let _, _, _, merged, _ = migrated () in
        check Alcotest.int "grads" 1 (S.cardinality_of (Name.v "Grad_student") merged);
        check Alcotest.int "students" 3 (S.cardinality_of (Name.v "Student") merged);
        check Alcotest.int "faculty" 1 (S.cardinality_of (Name.v "Faculty") merged);
        check Alcotest.int "d node" 4 (S.cardinality_of (Name.v "D_Stud_Facu") merged));
    tc "merged relationships deduplicate shared links" (fun () ->
        let _, _, _, merged, report = migrated () in
        check Alcotest.int "links out" 4 report.Query.Migrate.links_out;
        check Alcotest.int "E_Stud_Majo" 3
          (List.length (S.links (Name.v "E_Stud_Majo") merged));
        check Alcotest.int "works" 1 (List.length (S.links (Name.v "Works") merged)));
    tc "migration report is consistent" (fun () ->
        let _, _, _, _, report = migrated () in
        check Alcotest.int "entities in" 8 report.Query.Migrate.entities_in;
        check Alcotest.int "entities out" 6 report.Query.Migrate.entities_out);
  ]

(* ---- instance-level differential over random workloads ------------- *)

(* The paper-example tests above pin rewriting on one hand-built
   instance; these properties check the same contract — a view query
   answered directly against the view's store equals the query rewritten
   to the integrated schema and answered against the migrated instance —
   over randomly generated universes, populations and naming noise. *)

let qtest ?(count = 10) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let wl_params_gen ~flat =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* schemas = int_range 2 3 in
    let* concepts = int_range 5 9 in
    let* noise = float_range 0.0 0.4 in
    return
      {
        Workload.Generator.default_params with
        seed;
        schemas;
        concepts;
        naming_noise = noise;
        population = 60;
        subset_fraction =
          (if flat then 0.0
           else Workload.Generator.default_params.subset_fraction);
        overlap_fraction =
          (if flat then 0.0
           else Workload.Generator.default_params.overlap_fraction);
      })

let wl_params ~flat =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "seed=%d schemas=%d concepts=%d noise=%f"
        p.Workload.Generator.seed p.Workload.Generator.schemas
        p.Workload.Generator.concepts p.Workload.Generator.naming_noise)
    (wl_params_gen ~flat)

let integrate_and_migrate p =
  let w = Workload.Generator.generate p in
  (* exhaustive Phase 2: fusion-by-key needs every true attribute
     equivalence declared, and the heuristic pre-filter legitimately
     misses noisy synonym pairs the ground-truth oracle would confirm *)
  let options =
    { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
  in
  let r, _stats =
    Integrate.Protocol.run ~options w.Workload.Generator.schemas
      w.Workload.Generator.oracle
  in
  let stores = Workload.Generator.populate w in
  let merged, report =
    Query.Migrate.run r.Integrate.Result.mapping
      ~integrated:r.Integrate.Result.schema stores
  in
  (r, stores, merged, report)

let class_queries view oc =
  let class_name = Name.to_string oc.Object_class.name in
  let attrs =
    List.map (fun a -> Name.to_string a.Attribute.name) oc.Object_class.attributes
  in
  let scan = Query.Ast.query class_name ~select:attrs in
  ignore view;
  match List.find_opt (fun a -> a.Attribute.key) oc.Object_class.attributes with
  | None -> [ scan ]
  | Some key ->
      (* a selective filter exercises predicate rewriting too *)
      [
        scan;
        Query.Ast.(
          query class_name ~select:attrs
            ~where:
              (not_
                 (atom (Name.to_string key.Attribute.name) Eq (V.str "e0"))));
      ]

(* Every view query, answered both ways, for one generated workload:
   directly against the view's own store, and rewritten onto the
   integrated schema against the migrated instance. *)
let check_views ~relate p =
  let r, stores, merged, _ = integrate_and_migrate p in
  List.for_all
    (fun (view, st) ->
      List.for_all
        (fun oc ->
          List.for_all
            (fun q ->
              let q', back =
                Query.Rewrite.to_integrated r.Integrate.Result.mapping ~view q
              in
              let direct = Query.Eval.run q st in
              let via = back (Query.Eval.run q' merged) in
              relate ~direct ~via
              || QCheck.Test.fail_reportf
                   "answers diverge for [%s] %s: %d direct vs %d via \
                    integrated"
                   (Name.to_string (Schema.name view))
                   (Query.Ast.to_string q) (List.length direct)
                   (List.length via))
            (class_queries view oc))
        (Schema.objects view))
    stores

let query_differential_tests =
  [
    qtest "view answers are preserved exactly on partitioned universes"
      (wl_params ~flat:true)
      (* disjoint concepts: cross-view classes of one concept share all
         attribute ids, so exhaustive Phase 2 aligns their keys and
         migration fuses every pair — the global answer must equal the
         view answer, as a multiset *)
      (check_views ~relate:(fun ~direct ~via ->
           Query.Eval.same_answers direct via));
    qtest "view answers are covered on general universes"
      (wl_params ~flat:false)
      (* subset/overlap concepts have their own attributes, so their
         keys never correspond and migration rightly cannot fuse them:
         the integrated class may hold more entities than the view saw.
         The sound guarantee is containment — no view answer is lost *)
      (check_views ~relate:(fun ~direct ~via ->
           Query.Rewrite.covers via direct));
    qtest "migration preserves integrity and entity counts"
      (wl_params ~flat:true) (fun p ->
        let _, stores, merged, report = integrate_and_migrate p in
        let entities_in =
          List.fold_left
            (fun n (s, st) ->
              n
              + List.fold_left
                  (fun n oc ->
                    if oc.Object_class.kind = Object_class.Entity_set then
                      n + S.cardinality_of oc.Object_class.name st
                    else n)
                  0 (Schema.objects s))
            0 stores
        in
        (List.length (S.check merged) = 0
        || QCheck.Test.fail_report "integrity violations in migrated store")
        && (report.Query.Migrate.entities_in = entities_in
           || QCheck.Test.fail_reportf "report counts %d entities in, stores hold %d"
                report.Query.Migrate.entities_in entities_in)
        && report.Query.Migrate.entities_out
           = report.Query.Migrate.entities_in - report.Query.Migrate.fused);
  ]

let () =
  Alcotest.run "query"
    [
      ("eval", eval_tests);
      ("rewrite", rewrite_tests);
      ("migrate", migrate_tests);
      ("differential", query_differential_tests);
    ]
