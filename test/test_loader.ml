(* Tests for the instance-data text format. *)

open Ecr
module S = Instance.Store
module V = Instance.Value

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let sample =
  {|
-- the paper's sc1 data
instance sc1 {
  Student { Name = "Ann", GPA = 3.9 } as ann
  Student { Name = "Ben", GPA = 2.5 } as ben
  Department { Name = "CS" } as cs
  Majors (ann, cs) { Since = 2020-09-01 }
  Majors (ben, cs)
}
|}

let load () =
  Instance.Loader.load_string ~schemas:[ Workload.Paper.sc1; Workload.Paper.sc2 ]
    sample

let tests =
  [
    tc "entities and links load" (fun () ->
        match load () with
        | [ (_, st1); (_, st2) ] ->
            check Alcotest.int "students" 2 (S.cardinality_of (Name.v "Student") st1);
            check Alcotest.int "departments" 1
              (S.cardinality_of (Name.v "Department") st1);
            check Alcotest.int "links" 2 (List.length (S.links (Name.v "Majors") st1));
            check Alcotest.int "sc2 empty" 0 (List.length (S.entities st2))
        | _ -> Alcotest.fail "expected two stores");
    tc "values land with types" (fun () ->
        let _, st1 = List.hd (load ()) in
        let anns =
          Query.Eval.run
            Query.Ast.(query "Student" ~where:(atom "Name" Eq (V.str "Ann")))
            st1
        in
        match anns with
        | [ row ] ->
            check Alcotest.bool "gpa real" true
              (V.equal (Name.Map.find (Name.v "GPA") row) (V.real 3.9))
        | _ -> Alcotest.fail "expected one Ann");
    tc "dates parse" (fun () ->
        let _, st1 = List.hd (load ()) in
        match S.links (Name.v "Majors") st1 with
        | { S.values; _ } :: _ ->
            check Alcotest.bool "date" true
              (V.equal
                 (Option.value ~default:V.Null (Name.Map.find_opt (Name.v "Since") values))
                 (V.date 2020 9 1))
        | [] -> Alcotest.fail "no links");
    tc "category classification via 'in'" (fun () ->
        let text =
          "instance sc4 {\n  Student { Name = \"Zoe\" } as zoe\n  in \
           Grad_student: zoe\n}"
        in
        match Instance.Loader.load_string ~schemas:[ Workload.Paper.sc4 ] text with
        | [ (_, st) ] ->
            check Alcotest.int "grad extent" 1
              (S.cardinality_of (Name.v "Grad_student") st)
        | _ -> Alcotest.fail "expected one store");
    tc "round trip through to_string" (fun () ->
        let schema, st = List.hd (load ()) in
        let text = Instance.Loader.to_string schema st in
        match Instance.Loader.load_string ~schemas:[ schema ] text with
        | [ (_, st') ] ->
            check Alcotest.int "same students"
              (S.cardinality_of (Name.v "Student") st)
              (S.cardinality_of (Name.v "Student") st');
            check Alcotest.int "same links"
              (List.length (S.links (Name.v "Majors") st))
              (List.length (S.links (Name.v "Majors") st'));
            (* and answers agree *)
            let q = Query.Ast.query "Student" in
            check Alcotest.bool "same answers" true
              (Query.Eval.same_answers (Query.Eval.run q st) (Query.Eval.run q st'))
        | _ -> Alcotest.fail "expected one store");
    tc "loaded stores satisfy integrity" (fun () ->
        List.iter
          (fun (_, st) ->
            check Alcotest.int "clean" 0 (List.length (S.check st)))
          (load ()));
    tc "errors carry file:line positions and the offending token" (fun () ->
        List.iter
          (fun (text, line, needle) ->
            match
              Instance.Loader.load_string ~file:"bad.ecd"
                ~schemas:[ Workload.Paper.sc1 ] text
            with
            | exception (Instance.Loader.Error { file; line = l; _ } as e) ->
                let msg = Instance.Loader.error_to_string e in
                check Alcotest.string "file" "bad.ecd" file;
                check Alcotest.int ("line of " ^ msg) line l;
                check Alcotest.bool (needle ^ " in " ^ msg) true
                  (Util.contains ~needle msg);
                check Alcotest.bool ("position prefix in " ^ msg) true
                  (Util.contains ~needle:(Printf.sprintf "bad.ecd:%d:" line) msg)
            | _ -> Alcotest.failf "accepted %S" text)
          [
            ("instance nope { }", 1, "unknown schema");
            ("instance sc1 {\n  Ghost { }\n}", 2, "unknown structure");
            ("instance sc1 {\n  Majors (a, b)\n}", 2, "unknown label");
            ("instance sc1 {\n  Student { Name = }\n}", 2, "found '}'");
            ("instance sc1 {\n  Student { Name = 1.2.3 }\n}", 2,
             "malformed number '1.2.3'");
            ("instance sc1 {\n  Student ? { }\n}", 2, "illegal character");
          ]);
    tc "the shipped example data file loads" (fun () ->
        let text =
          {|
instance sc1 {
  Student { Name = "Ann", GPA = 3.9 } as ann
  Department { Name = "CS" } as cs
  Majors (ann, cs) { Since = 2020-09-01 }
}
instance sc2 {
  Grad_student { Name = "Ann", GPA = 3.9, Support_type = "RA" } as ann
  Department { Name = "CS" } as cs
  Major_in (ann, cs) { Since = 2020-09-01 }
  Faculty { Name = "Carol", Rank = "Prof" } as carol
  Works (carol, cs)
}
|}
        in
        let stores =
          Instance.Loader.load_string
            ~schemas:[ Workload.Paper.sc1; Workload.Paper.sc2 ]
            text
        in
        let r = Workload.Paper.integrate_sc1_sc2 () in
        let merged, report =
          Query.Migrate.run r.Integrate.Result.mapping
            ~integrated:r.Integrate.Result.schema stores
        in
        check Alcotest.int "fused" 2 report.Query.Migrate.fused;
        check Alcotest.int "clean" 0 (List.length (S.check merged)));
  ]

let () = Alcotest.run "loader" [ ("loader", tests) ]
