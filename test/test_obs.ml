(* The observability layer: counters, histograms, span nesting, the
   JSON report round-trip, and the guarantee that instrumentation is a
   no-op while the layer is disabled. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* Each test starts from a clean, enabled layer and leaves the layer
   disabled, so suites cannot contaminate each other. *)
let with_fresh f () =
  Obs.disable ();
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let counter_tests =
  [
    tc "accumulates incr and add"
      (with_fresh (fun () ->
           let c = Obs.Counter.make "test.counter_a" in
           Obs.Counter.incr c;
           Obs.Counter.incr c;
           Obs.Counter.add c 40;
           check Alcotest.int "value" 42 (Obs.Counter.value c)));
    tc "make is idempotent: same name, same counter"
      (with_fresh (fun () ->
           let c1 = Obs.Counter.make "test.counter_b" in
           let c2 = Obs.Counter.make "test.counter_b" in
           Obs.Counter.incr c1;
           Obs.Counter.incr c2;
           check Alcotest.int "shared" 2 (Obs.Counter.value c1)));
    tc "reset zeroes but keeps registration"
      (with_fresh (fun () ->
           let c = Obs.Counter.make "test.counter_c" in
           Obs.Counter.add c 7;
           Obs.reset ();
           check Alcotest.int "zeroed" 0 (Obs.Counter.value c);
           check Alcotest.bool "still listed" true
             (List.mem_assoc "test.counter_c" (Obs.Counter.all ()))));
  ]

let histogram_tests =
  [
    tc "tracks count, sum and exact extrema"
      (with_fresh (fun () ->
           let h = Obs.Histogram.make "test.histo_a" in
           List.iter (Obs.Histogram.observe h) [ 0.001; 0.002; 0.004; 0.1 ];
           check Alcotest.int "count" 4 (Obs.Histogram.count h);
           check (Alcotest.float 1e-9) "sum" 0.107 (Obs.Histogram.sum h);
           check (Alcotest.float 1e-9) "min" 0.001 (Obs.Histogram.min_value h);
           check (Alcotest.float 1e-9) "max" 0.1 (Obs.Histogram.max_value h)));
    tc "quantiles are monotone and within bucket error"
      (with_fresh (fun () ->
           let h = Obs.Histogram.make "test.histo_b" in
           for i = 1 to 1000 do
             Obs.Histogram.observe h (float_of_int i *. 1e-5)
           done;
           let p50 = Obs.Histogram.quantile h 0.5 in
           let p90 = Obs.Histogram.quantile h 0.9 in
           let p99 = Obs.Histogram.quantile h 0.99 in
           check Alcotest.bool "p50 <= p90" true (p50 <= p90);
           check Alcotest.bool "p90 <= p99" true (p90 <= p99);
           (* 4 buckets/octave means at most ~19% relative error *)
           check Alcotest.bool "p50 near 5ms" true
             (p50 > 0.005 /. 1.2 && p50 < 0.005 *. 1.2)));
    tc "time observes the elapsed wall clock"
      (with_fresh (fun () ->
           let h = Obs.Histogram.make "test.histo_c" in
           let x = Obs.Histogram.time h (fun () -> 1 + 1) in
           check Alcotest.int "result passthrough" 2 x;
           check Alcotest.int "one observation" 1 (Obs.Histogram.count h)));
    tc "time observes on the exceptional path too"
      (with_fresh (fun () ->
           let h = Obs.Histogram.make "test.histo_d" in
           (try Obs.Histogram.time h (fun () -> failwith "boom")
            with Failure _ -> ());
           check Alcotest.int "observed despite raise" 1
             (Obs.Histogram.count h)));
  ]

let span_name_tree roots =
  (* "a(b,c(d))" shorthand for comparing shapes *)
  let rec go (s : Obs.Span.snapshot) =
    match s.Obs.Span.children with
    | [] -> s.Obs.Span.name
    | cs -> s.Obs.Span.name ^ "(" ^ String.concat "," (List.map go cs) ^ ")"
  in
  String.concat "," (List.map go roots)

let span_tests =
  [
    tc "nesting builds a tree and accumulates counts"
      (with_fresh (fun () ->
           for _ = 1 to 3 do
             Obs.Span.run "outer" (fun () ->
                 Obs.Span.run "inner" (fun () -> ());
                 Obs.Span.run "inner" (fun () -> ()))
           done;
           check Alcotest.string "shape" "outer(inner)"
             (span_name_tree (Obs.Span.roots ()));
           match Obs.Span.roots () with
           | [ outer ] ->
               check Alcotest.int "outer count" 3 outer.Obs.Span.count;
               let inner = List.hd outer.Obs.Span.children in
               check Alcotest.int "inner count" 6 inner.Obs.Span.count;
               check Alcotest.bool "child time within parent" true
                 (inner.Obs.Span.total_s <= outer.Obs.Span.total_s);
               check (Alcotest.float 1e-9) "self = total - children"
                 (outer.Obs.Span.total_s -. inner.Obs.Span.total_s)
                 outer.Obs.Span.self_s
           | roots ->
               Alcotest.failf "expected one root, got %d" (List.length roots)));
    tc "same name at different depths stays distinct"
      (with_fresh (fun () ->
           Obs.Span.run "a" (fun () -> Obs.Span.run "a" (fun () -> ()));
           Obs.Span.run "a" (fun () -> ());
           check Alcotest.string "shape" "a(a)"
             (span_name_tree (Obs.Span.roots ()))));
    tc "span closes when the body raises"
      (with_fresh (fun () ->
           (try Obs.Span.run "explodes" (fun () -> failwith "boom")
            with Failure _ -> ());
           (* the stack unwound: a following span is a sibling, not a child *)
           Obs.Span.run "after" (fun () -> ());
           check Alcotest.string "shape" "after,explodes"
             (span_name_tree (Obs.Span.roots ()))));
    tc "returns the body's value"
      (with_fresh (fun () ->
           check Alcotest.int "value" 7 (Obs.Span.run "v" (fun () -> 7))));
  ]

let json_tests =
  [
    tc "print/parse round-trip"
      (with_fresh (fun () ->
           let v =
             Obs.Json.Obj
               [
                 ("s", Obs.Json.String "a \"quoted\"\n\ttab");
                 ("i", Obs.Json.Int (-42));
                 ("f", Obs.Json.Float 3.25);
                 ("b", Obs.Json.Bool true);
                 ("n", Obs.Json.Null);
                 ( "l",
                   Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]
                 );
               ]
           in
           match Obs.Json.of_string (Obs.Json.to_string v) with
           | Ok v' -> check Alcotest.bool "equal" true (v = v')
           | Error e -> Alcotest.fail e));
    tc "pretty-printed output parses identically"
      (with_fresh (fun () ->
           let v =
             Obs.Json.Obj
               [ ("x", Obs.Json.List [ Obs.Json.Float 1.5; Obs.Json.String "y" ]) ]
           in
           match Obs.Json.of_string (Obs.Json.to_string ~indent:2 v) with
           | Ok v' -> check Alcotest.bool "equal" true (v = v')
           | Error e -> Alcotest.fail e));
    tc "unicode escapes decode to UTF-8"
      (with_fresh (fun () ->
           match Obs.Json.of_string {|"Aé"|} with
           | Ok (Obs.Json.String s) -> check Alcotest.string "decoded" "A\xc3\xa9" s
           | Ok _ -> Alcotest.fail "expected a string"
           | Error e -> Alcotest.fail e));
    tc "report round-trips through the parser"
      (with_fresh (fun () ->
           let c = Obs.Counter.make "test.report_counter" in
           Obs.Counter.add c 5;
           let h = Obs.Histogram.make "test.report_histo" in
           Obs.Histogram.observe h 0.002;
           Obs.Span.run "test.report_span" (fun () ->
               Obs.Span.run "test.report_child" (fun () -> ()));
           let text =
             Obs.Report.to_string ~meta:[ ("k", Obs.Json.String "v") ] ()
           in
           match Obs.Json.of_string text with
           | Error e -> Alcotest.fail e
           | Ok doc ->
               check Alcotest.bool "meta kept" true
                 (Obs.Json.find [ "meta"; "k" ] doc
                 = Some (Obs.Json.String "v"));
               check Alcotest.bool "counter exported" true
                 (Obs.Json.find [ "counters"; "test.report_counter" ] doc
                 = Some (Obs.Json.Int 5));
               (match Obs.Json.find [ "histograms"; "test.report_histo"; "count" ] doc with
               | Some (Obs.Json.Int 1) -> ()
               | _ -> Alcotest.fail "histogram count missing");
               (match Obs.Json.member "spans" doc with
               | Some (Obs.Json.List spans) ->
                   check Alcotest.bool "span present" true
                     (List.exists
                        (fun s ->
                          Obs.Json.member "name" s
                          = Some (Obs.Json.String "test.report_span"))
                        spans)
               | _ -> Alcotest.fail "spans missing");
               (* the report itself re-serialises identically *)
               check Alcotest.bool "stable" true
                 (Obs.Json.to_string doc
                 = Obs.Json.to_string
                     (Result.get_ok (Obs.Json.of_string (Obs.Json.to_string doc))))));
  ]

let disabled_tests =
  [
    tc "disabled instrumentation changes no observable state"
      (with_fresh (fun () ->
           (* create the instruments while enabled, then switch off *)
           let c = Obs.Counter.make "test.disabled_counter" in
           let h = Obs.Histogram.make "test.disabled_histo" in
           Obs.disable ();
           Obs.Counter.incr c;
           Obs.Counter.add c 100;
           Obs.Histogram.observe h 1.0;
           let y = Obs.Histogram.time h (fun () -> 3) in
           let z = Obs.Span.run "test.disabled_span" (fun () -> 4) in
           check Alcotest.int "time passthrough" 3 y;
           check Alcotest.int "span passthrough" 4 z;
           check Alcotest.int "counter untouched" 0 (Obs.Counter.value c);
           check Alcotest.int "histogram untouched" 0 (Obs.Histogram.count h);
           check Alcotest.int "span tree untouched" 0
             (List.length (Obs.Span.roots ()))));
    tc "instrumented pipeline is inert while disabled"
      (with_fresh (fun () ->
           Obs.disable ();
           let pairs = Obs.Counter.make "similarity.pairs_compared" in
           let before = Obs.Counter.value pairs in
           ignore (Workload.Paper.integrate_sc1_sc2 ());
           check Alcotest.int "no pairs recorded" before
             (Obs.Counter.value pairs);
           check Alcotest.int "no spans recorded" 0
             (List.length (Obs.Span.roots ()))));
    tc "enabled pipeline records phases and counters"
      (with_fresh (fun () ->
           ignore (Workload.Paper.integrate_sc1_sc2 ());
           let counters = Obs.Counter.all () in
           let value name =
             Option.value ~default:0 (List.assoc_opt name counters)
           in
           check Alcotest.bool "derived assertions counted" true
             (value "assertions.derived" > 0);
           check Alcotest.bool "facts applied" true
             (value "assertions.facts_applied" > 0);
           check Alcotest.bool "objects out" true
             (value "integrate.objects_out" > 0);
           let roots = Obs.Span.roots () in
           check Alcotest.bool "integrate span present" true
             (List.exists
                (fun (s : Obs.Span.snapshot) -> s.Obs.Span.name = "integrate")
                roots)));
  ]

let () =
  Alcotest.run "obs"
    [
      ("counters", counter_tests);
      ("histograms", histogram_tests);
      ("spans", span_tests);
      ("json", json_tests);
      ("disabled", disabled_tests);
    ]
