(* The interned-name tentpole: the symbol table itself (dense ids,
   idempotence, thread-safety), the representation contract of
   [Ecr.Name] (equality by id, compare still lexicographic), and the
   parser-facing edge cases — duplicate spellings share one id across
   schemas, unicode and empty identifiers are rejected at the parser
   like they always were, never half-interned. *)

open Ecr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* valid identifiers: [A-Za-z_][A-Za-z0-9_]{0,11} *)
let ident_gen =
  QCheck.Gen.(
    let letter =
      oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; return '_' ]
    in
    let body =
      oneof
        [ char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9'; return '_' ]
    in
    map2
      (fun c rest -> String.make 1 c ^ String.concat "" (List.map (String.make 1) rest))
      letter (list_size (int_bound 11) body))

let ident = QCheck.make ~print:(fun s -> s) ident_gen

let table_tests =
  [
    tc "id is idempotent and to_string inverts it" (fun () ->
        List.iter
          (fun s ->
            let i = Intern.id s in
            check Alcotest.int s i (Intern.id s);
            check Alcotest.string s s (Intern.to_string i))
          [ "Student"; "student"; "_"; "GPA"; "a0"; "Student" ]);
    tc "ids are dense: 0 .. count-1 all spell out" (fun () ->
        ignore (Intern.id "density_probe");
        let n = Intern.count () in
        check Alcotest.bool "count positive" true (n > 0);
        for i = 0 to n - 1 do
          let s = Intern.to_string i in
          check Alcotest.int s i (Intern.id s)
        done);
    tc "find never interns; out-of-range ids raise" (fun () ->
        let before = Intern.count () in
        check
          Alcotest.(option int)
          "absent" None
          (Intern.find "never_interned_gb6w2");
        check Alcotest.int "count unchanged" before (Intern.count ());
        Alcotest.check_raises "negative id"
          (Invalid_argument "Intern.to_string: unknown id -1") (fun () ->
            ignore (Intern.to_string (-1)));
        Alcotest.check_raises "beyond count"
          (Invalid_argument
             (Printf.sprintf "Intern.to_string: unknown id %d" (Intern.count ())))
          (fun () -> ignore (Intern.to_string (Intern.count ()))));
    tc "concurrent interning from 4 domains agrees" (fun () ->
        let spellings =
          List.init 200 (fun i -> Printf.sprintf "race_%d" (i mod 50))
        in
        (* Stdlib.Domain: [open Ecr] shadows it with attribute domains *)
        let domains =
          List.init 4 (fun _ ->
              Stdlib.Domain.spawn (fun () ->
                  List.map (fun s -> (s, Intern.id s)) spellings))
        in
        let results = List.map Stdlib.Domain.join domains in
        (* all domains resolved every spelling to the same id, and each
           id spells back out *)
        let reference = List.hd results in
        List.iter
          (fun r -> check Alcotest.bool "same ids everywhere" true (r = reference))
          (List.tl results);
        List.iter
          (fun (s, i) -> check Alcotest.string s s (Intern.to_string i))
          reference);
  ]

let name_tests =
  [
    qtest "of_string round-trips and id is stable"
      ident
      (fun s ->
        let n = Name.of_string s in
        String.equal (Name.to_string n) s
        && Name.id n = Name.id (Name.of_string s)
        && Name.equal n (Name.of_id (Name.id n)));
    qtest "equal agrees with string equality"
      QCheck.(pair ident ident)
      (fun (a, b) ->
        Bool.equal (Name.equal (Name.v a) (Name.v b)) (String.equal a b));
    qtest "compare is still lexicographic (the iteration-order contract)"
      QCheck.(pair ident ident)
      (fun (a, b) ->
        Int.equal
          (Stdlib.compare (Name.compare (Name.v a) (Name.v b)) 0)
          (Stdlib.compare (String.compare a b) 0));
    qtest "Name.Set iterates in spelled-out order"
      QCheck.(list_of_size (QCheck.Gen.int_bound 20) ident)
      (fun ss ->
        let via_set =
          Name.Set.elements (Name.Set.of_list (List.map Name.v ss))
          |> List.map Name.to_string
        in
        via_set = List.sort_uniq String.compare ss);
    qtest "hash is consistent with equal"
      QCheck.(pair ident ident)
      (fun (a, b) ->
        (not (Name.equal (Name.v a) (Name.v b)))
        || Name.hash (Name.v a) = Name.hash (Name.v b));
  ]

(* parser-facing edge cases: interning happens at parse time, so bad
   identifiers must be rejected before they can reach the table *)
let parser_tests =
  [
    tc "duplicate names across schemas share one intern id" (fun () ->
        let schemas =
          Ddl.Parser.schemas_of_string
            "schema one { entity Student { Name : char key; } }\n\
             schema two { entity Student { Name : char; } }\n"
        in
        match schemas with
        | [ s1; s2 ] ->
            let cls s =
              (List.hd (Schema.objects s)).Object_class.name
            in
            check Alcotest.int "same id" (Name.id (cls s1)) (Name.id (cls s2));
            check Alcotest.bool "equal" true (Name.equal (cls s1) (cls s2))
        | _ -> Alcotest.fail "expected two schemas");
    tc "unicode identifiers are rejected with a position" (fun () ->
        List.iter
          (fun src ->
            match Ddl.Parser.schemas_of_string src with
            | _ -> Alcotest.failf "accepted %S" src
            | exception Ddl.Parser.Error (_, line, col) ->
                check Alcotest.bool "positioned" true (line >= 1 && col >= 1)
            | exception e ->
                Alcotest.failf "unhandled %s for %S" (Printexc.to_string e) src)
          [
            "schema s { entity Étudiant; }";
            "schema s { entity E { Prénom : char; } }";
            "schema \xc3\xa9 { }";
          ]);
    tc "empty-name constructions raise Name.Invalid, not pollution"
      (fun () ->
        let before = Intern.count () in
        List.iter
          (fun s ->
            match Name.of_string s with
            | _ -> Alcotest.failf "accepted %S" s
            | exception Name.Invalid bad -> check Alcotest.string "payload" s bad)
          [ ""; "0abc"; "a-b"; "é"; "a b" ];
        check Alcotest.int "nothing was interned" before (Intern.count ()));
  ]

let () =
  Alcotest.run "intern"
    [
      ("symbol table", table_tests);
      ("name representation", name_tests);
      ("parser edges", parser_tests);
    ]
