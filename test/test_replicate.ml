(* Tests for the replication tier (lib/replicate + the server's
   leader/follower wiring): deterministic backoff, the seq-numbered
   replication log (persistence, torn-tail recovery, acks), and
   in-process leader + follower clusters — catch-up, staleness
   observability, not_leader redirects, client failover, semi-sync
   acks with a leader killed mid-read-storm, and leader restart
   replaying its own log.  The out-of-process legs (real daemons,
   kill -9, late-started followers) live in scripts/chaos_test.sh. *)

open Ecr
module S = Instance.Store
module V = Instance.Value
module Json = Obs.Json
module Backoff = Replicate.Backoff
module Log = Replicate.Log

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ---- fixtures: the paper's sc1+sc2 session with instances --------- *)

let sc1_store () =
  let st = S.create Workload.Paper.sc1 in
  let student name gpa = S.tuple [ ("Name", V.str name); ("GPA", V.real gpa) ] in
  let st, ann = S.insert (Name.v "Student") (student "Ann" 3.9) st in
  let st, ben = S.insert (Name.v "Student") (student "Ben" 2.5) st in
  let st, cs =
    S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st
  in
  let since y = S.tuple [ ("Since", V.date y 9 1) ] in
  let st = S.relate (Name.v "Majors") [ ann; cs ] (since 2020) st in
  let st = S.relate (Name.v "Majors") [ ben; cs ] (since 2021) st in
  st

let sc2_store () =
  let st = S.create Workload.Paper.sc2 in
  let st, _ =
    S.insert (Name.v "Grad_student")
      (S.tuple
         [
           ("Name", V.str "Ann"); ("GPA", V.real 3.9); ("Support_type", V.str "RA");
         ])
      st
  in
  st

let fresh_session ?journal_dir () =
  let result = Workload.Paper.integrate_sc1_sc2 () in
  Server.make_session ?journal_dir ~result
    ~stores:
      [ (Workload.Paper.sc1, sc1_store ()); (Workload.Paper.sc2, sc2_store ()) ]
    ()

let local = Server.Wire.Tcp ("127.0.0.1", 0)

let start_server ?journal_dir ?(repl = Server.default_repl) () =
  let cfg =
    {
      Server.listen = local;
      jobs = 2;
      queue = 64;
      deadline_ms = None;
      cache = 16;
      debug = false;
      repl;
    }
  in
  match Server.start (fresh_session ?journal_dir ()) cfg with
  | Error msg -> Alcotest.fail ("server failed to start: " ^ msg)
  | Ok t -> (
      match Server.port t with
      | Some p -> (t, Server.Wire.Tcp ("127.0.0.1", p))
      | None -> Alcotest.fail "no bound port")

let follower_of leader_addr =
  { Server.default_repl with role = Server.Follower leader_addr }

let with_client addr f =
  let c = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)

let int_field name resp =
  match Json.member name resp with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.fail (Printf.sprintf "no %S field in response" name)

let string_field name resp =
  match Json.member name resp with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "no %S field in response" name)

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Polls [f] until it returns true, failing the test after [timeout]. *)
let eventually ?(timeout = 10.) what f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    let base = Filename.temp_file "sit_repl" "" in
    Sys.remove base;
    Unix.mkdir base 0o755;
    incr n;
    base

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let insert_frame i =
  Server.Wire.request_to_line ~view:"sc1"
    ~text:(Printf.sprintf "insert into Student { Name = 'R%d', GPA = 3.0 }" i)
    "update"

let count_frame =
  Server.Wire.request_to_line ~view:"sc1" ~text:"select Name from Student"
    "query"

let count_of resp = int_field "count" resp

let student_count c =
  count_of (Server.Client.request c ~view:"sc1" ~text:"select Name from Student" "query")

(* ------------------------------------------------------------------ *)
(* 1. Backoff.                                                         *)

let backoff_tests =
  [
    tc "delays are deterministic, bounded and capped" (fun () ->
        let p = { Backoff.default with attempts = 8; seed = 7 } in
        let d1 = Backoff.delays p and d2 = Backoff.delays p in
        check Alcotest.(list (float 0.0)) "same policy, same delays" d1 d2;
        check Alcotest.int "attempts-1 delays" 7 (List.length d1);
        List.iteri
          (fun i d ->
            let nominal =
              Float.min p.Backoff.max_ms
                (p.Backoff.base_ms *. (p.Backoff.factor ** float i))
            in
            check Alcotest.bool
              (Printf.sprintf "delay %d in jitter band" i)
              true
              (d <= nominal +. 1e-9
              && d >= (nominal *. (1. -. p.Backoff.jitter)) -. 1e-9))
          d1;
        let unjittered = Backoff.delays { p with jitter = 0. } in
        List.iteri
          (fun i d ->
            let nominal =
              Float.min p.Backoff.max_ms
                (p.Backoff.base_ms *. (p.Backoff.factor ** float i))
            in
            check (Alcotest.float 1e-9)
              (Printf.sprintf "unjittered delay %d is nominal" i)
              nominal d)
          unjittered);
    tc "different seeds give different jitter" (fun () ->
        let p = { Backoff.default with attempts = 6 } in
        check Alcotest.bool "seeds decorrelate" true
          (Backoff.delays { p with seed = 1 } <> Backoff.delays { p with seed = 2 }));
    tc "run retries to success and reports exhaustion" (fun () ->
        let slept = ref [] in
        let sleep d = slept := d :: !slept in
        let calls = ref 0 in
        (match
           Backoff.run ~sleep
             { Backoff.default with attempts = 5 }
             (fun k ->
               incr calls;
               if k < 2 then Error ("fail " ^ string_of_int k) else Ok (k * 10))
         with
        | Ok v ->
            check Alcotest.int "succeeded on third try" 20 v;
            check Alcotest.int "called thrice" 3 !calls;
            check Alcotest.int "slept twice" 2 (List.length !slept)
        | Error _ -> Alcotest.fail "should have succeeded");
        match
          Backoff.run ~sleep
            { Backoff.default with attempts = 3 }
            (fun k -> Error k)
        with
        | Ok _ -> Alcotest.fail "should have failed"
        | Error f ->
            check Alcotest.int "tried the whole budget" 3 f.Backoff.tried;
            check Alcotest.int "last error reported" 2 f.Backoff.last);
    tc "fresh policies decorrelate two default clients" (fun () ->
        (* the regression: clients built with the library default used
           to share seed 0, so a thundering herd retried in lockstep *)
        let p1 = Backoff.fresh () and p2 = Backoff.fresh () in
        check Alcotest.bool "fresh seeds differ" true
          (p1.Backoff.seed <> p2.Backoff.seed);
        check Alcotest.bool "fresh differs from the deterministic default"
          true
          (p1.Backoff.seed <> Backoff.default.Backoff.seed);
        let d1 = Backoff.delays { p1 with attempts = 8 }
        and d2 = Backoff.delays { p2 with attempts = 8 } in
        check Alcotest.bool "two default clients back off on different \
                            schedules" true (d1 <> d2);
        (* everything except the seed is still the default policy *)
        check Alcotest.bool "only the seed is fresh" true
          ({ p1 with seed = 0 } = Backoff.default));
  ]

(* ------------------------------------------------------------------ *)
(* 2. The replication log.                                             *)

let log_tests =
  [
    tc "append/get/from/seq, in memory" (fun () ->
        let l = Log.create () in
        check Alcotest.int "empty" 0 (Log.seq l);
        check Alcotest.int "first seq" 1 (Log.append l "a");
        check Alcotest.int "second seq" 2 (Log.append l "b");
        check Alcotest.int "third seq" 3 (Log.append l "c");
        check Alcotest.(option string) "get 2" (Some "b") (Log.get l 2);
        check Alcotest.(option string) "get 0" None (Log.get l 0);
        check Alcotest.(option string) "get 4" None (Log.get l 4);
        check
          Alcotest.(list (pair int string))
          "from 2" [ (2, "b"); (3, "c") ] (Log.from l 2 ~max:10);
        check
          Alcotest.(list (pair int string))
          "from 1 capped"
          [ (1, "a") ]
          (Log.from l 1 ~max:1);
        Log.close l;
        check Alcotest.bool "append after close raises" true
          (match Log.append l "d" with
          | exception Invalid_argument _ -> true
          | _ -> false));
    tc "wait long-polls until a frame arrives, times out, wakes on close"
      (fun () ->
        let l = Log.create () in
        check Alcotest.bool "timeout on empty" false
          (Log.wait l ~from:1 ~timeout_s:0.05);
        let appender =
          Thread.create
            (fun () ->
              Thread.delay 0.05;
              ignore (Log.append l "x"))
            ()
        in
        check Alcotest.bool "woken by append" true
          (Log.wait l ~from:1 ~timeout_s:5.);
        Thread.join appender;
        let closer =
          Thread.create
            (fun () ->
              Thread.delay 0.05;
              Log.close l)
            ()
        in
        check Alcotest.bool "close wakes waiters with false" false
          (Log.wait l ~from:2 ~timeout_s:5.);
        Thread.join closer);
    tc "acks are monotonic per node; wait_acked counts replicas" (fun () ->
        let l = Log.create () in
        ignore (Log.append l "a");
        ignore (Log.append l "b");
        Log.ack l ~node:"f1" 0;
        Log.ack l ~node:"f2" 0;
        check
          Alcotest.(list (pair string int))
          "registered at 0"
          [ ("f1", 0); ("f2", 0) ]
          (Log.acks l);
        Log.ack l ~node:"f1" 2;
        Log.ack l ~node:"f1" 1;
        check
          Alcotest.(list (pair string int))
          "monotonic"
          [ ("f1", 2); ("f2", 0) ]
          (Log.acks l);
        check Alcotest.int "one node at seq 2" 1 (Log.acked_by l 2);
        check Alcotest.bool "1 replica is enough" true
          (Log.wait_acked l ~seq:2 ~replicas:1 ~timeout_s:0.2);
        check Alcotest.bool "2 replicas times out" false
          (Log.wait_acked l ~seq:2 ~replicas:2 ~timeout_s:0.05);
        let acker =
          Thread.create
            (fun () ->
              Thread.delay 0.05;
              Log.ack l ~node:"f2" 2)
            ()
        in
        check Alcotest.bool "woken when the second ack lands" true
          (Log.wait_acked l ~seq:2 ~replicas:2 ~timeout_s:5.);
        Thread.join acker;
        Log.close l);
    tc "persisted log recovers; a torn tail is truncated, never fatal"
      (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let path = Filename.concat dir "repl.journal" in
            let l = Log.create ~persist:path () in
            ignore (Log.append l "one");
            ignore (Log.append l "two");
            ignore (Log.append l "three");
            Log.close l;
            (* clean reopen: full prefix *)
            let l2 = Log.create ~persist:path () in
            check Alcotest.int "recovered seq" 3 (Log.seq l2);
            check Alcotest.int "no truncation" 0 (Log.truncated_bytes l2);
            check Alcotest.(option string) "frame 3" (Some "three")
              (Log.get l2 3);
            Log.close l2;
            (* tear the tail: cut the last 2 bytes of the file *)
            let data =
              In_channel.with_open_bin path In_channel.input_all
            in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc
                  (String.sub data 0 (String.length data - 2)));
            let l3 = Log.create ~persist:path () in
            check Alcotest.int "longest valid prefix" 2 (Log.seq l3);
            check Alcotest.bool "torn bytes counted" true
              (Log.truncated_bytes l3 > 0);
            (* the log keeps appending over the healed tail *)
            check Alcotest.int "next seq continues the prefix" 3
              (Log.append l3 "three'");
            Log.close l3;
            let l4 = Log.create ~persist:path () in
            check Alcotest.(option string) "healed frame persisted"
              (Some "three'") (Log.get l4 3);
            Log.close l4));
    tc "truncate sheds a prefix; reads clamp to base_seq" (fun () ->
        let l = Log.create () in
        for i = 1 to 6 do
          ignore (Log.append l (Printf.sprintf "f%d" i))
        done;
        check Alcotest.int "four frames dropped" 4 (Log.truncate l 4);
        check Alcotest.int "base moved" 4 (Log.base_seq l);
        check Alcotest.int "seq unchanged" 6 (Log.seq l);
        check Alcotest.(option string) "below the base is gone" None
          (Log.get l 1);
        check Alcotest.(option string) "at the base is gone" None (Log.get l 4);
        check Alcotest.(option string) "first retained frame" (Some "f5")
          (Log.get l 5);
        check Alcotest.(option string) "last frame" (Some "f6") (Log.get l 6);
        (* a pull from inside the truncated prefix clamps to the suffix *)
        check
          Alcotest.(list (pair int string))
          "from 1 clamps to base+1"
          [ (5, "f5"); (6, "f6") ]
          (Log.from l 1 ~max:10);
        check
          Alcotest.(list (pair int string))
          "from 5 capped" [ (5, "f5") ] (Log.from l 5 ~max:1);
        check Alcotest.(list (pair int string)) "past the tip" []
          (Log.from l 7 ~max:10);
        (* wait is satisfied by seq, not by frame availability *)
        check Alcotest.bool "wait below the base returns immediately" true
          (Log.wait l ~from:3 ~timeout_s:0.2);
        check Alcotest.int "re-truncating below the base drops nothing" 0
          (Log.truncate l 2);
        check Alcotest.int "truncation clamps to the tip" 2 (Log.truncate l 100);
        check Alcotest.int "base clamped to seq" 6 (Log.base_seq l);
        check Alcotest.(list (pair int string)) "nothing retained" []
          (Log.from l 1 ~max:10);
        (* appends continue the dense numbering over the hole *)
        check Alcotest.int "append continues the numbering" 7 (Log.append l "f7");
        check Alcotest.(option string) "new frame readable" (Some "f7")
          (Log.get l 7);
        Log.close l);
    tc "a truncated log persists its base across reopen" (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let path = Filename.concat dir "repl.journal" in
            let l = Log.create ~persist:path () in
            for i = 1 to 4 do
              ignore (Log.append l (Printf.sprintf "f%d" i))
            done;
            check Alcotest.int "dropped" 2 (Log.truncate l 2);
            Log.close l;
            let l2 = Log.create ~persist:path () in
            check Alcotest.int "base recovered from the header" 2
              (Log.base_seq l2);
            check Alcotest.int "seq recovered" 4 (Log.seq l2);
            check Alcotest.(option string) "suffix frame readable" (Some "f3")
              (Log.get l2 3);
            check Alcotest.(option string) "truncated frame stays gone" None
              (Log.get l2 2);
            check Alcotest.int "appends resume after the suffix" 5
              (Log.append l2 "f5");
            Log.close l2;
            (* a torn tail after a truncation still recovers the base *)
            let data = In_channel.with_open_bin path In_channel.input_all in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc
                  (String.sub data 0 (String.length data - 2)));
            let l3 = Log.create ~persist:path () in
            check Alcotest.int "base survives a torn tail" 2 (Log.base_seq l3);
            check Alcotest.int "longest valid suffix" 4 (Log.seq l3);
            check Alcotest.bool "torn bytes counted" true
              (Log.truncated_bytes l3 > 0);
            Log.close l3));
    tc "acks expire past the liveness window" (fun () ->
        let l = Log.create ~liveness_s:0.4 () in
        ignore (Log.append l "a");
        ignore (Log.append l "b");
        Log.ack l ~node:"f1" 1;
        Log.ack l ~node:"f2" 2;
        check
          Alcotest.(list (pair string int))
          "both live"
          [ ("f1", 1); ("f2", 2) ]
          (Log.acks l);
        check Alcotest.(option int) "truncation bound is the slowest ack"
          (Some 1) (Log.lowest_live_ack l);
        check Alcotest.int "both count at seq 1" 2 (Log.acked_by l 1);
        Thread.delay 0.6;
        (* f2 keeps pulling, f1 went silent for the whole window *)
        Log.ack l ~node:"f2" 2;
        check
          Alcotest.(list (pair string int))
          "the silent node is pruned"
          [ ("f2", 2) ]
          (Log.acks l);
        check Alcotest.(option int) "the bound no longer pins on the dead node"
          (Some 2) (Log.lowest_live_ack l);
        check Alcotest.int "only the live node counts" 1 (Log.acked_by l 1);
        Thread.delay 0.6;
        check Alcotest.(list (pair string int)) "all gone" [] (Log.acks l);
        check Alcotest.(option int) "no bound without followers" None
          (Log.lowest_live_ack l);
        check Alcotest.int "nobody counts toward a quorum" 0 (Log.acked_by l 1);
        (* a node re-registering after expiry is one entry, not two *)
        Log.ack l ~node:"f2" 0;
        Log.ack l ~node:"f2" 1;
        check
          Alcotest.(list (pair string int))
          "re-registration replaces"
          [ ("f2", 1) ]
          (Log.acks l);
        Log.close l);
  ]

(* ------------------------------------------------------------------ *)
(* 2b. Snapshots (the compaction companion of the log).                *)

module Snap = Replicate.Snapshot

let snapshot_tests =
  [
    tc "save/load round-trips, multi-chunk payloads, retention of two"
      (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            check
              Alcotest.(option (pair int string))
              "empty dir has no snapshot" None (Snap.load ~dir);
            check Alcotest.(list int) "first save retained" [ 5 ]
              (Snap.save ~dir ~seq:5 "five");
            check
              Alcotest.(option (pair int string))
              "round-trip"
              (Some (5, "five"))
              (Snap.load ~dir);
            (* a payload larger than one chunk reassembles exactly *)
            let big =
              String.init 2_500_000 (fun i -> Char.chr (33 + (i * 7 mod 90)))
            in
            check Alcotest.(list int) "retained newest first" [ 9; 5 ]
              (Snap.save ~dir ~seq:9 big);
            (match Snap.load ~dir with
            | Some (9, p) ->
                check Alcotest.bool "multi-chunk payload intact" true
                  (String.equal p big)
            | _ -> Alcotest.fail "big snapshot did not load");
            check Alcotest.(list int) "retention caps at two" [ 12; 9 ]
              (Snap.save ~dir ~seq:12 "twelve");
            check Alcotest.bool "oldest file pruned" false
              (Sys.file_exists (Filename.concat dir "repl.snap.5"));
            check Alcotest.(list int) "disk agrees" [ 12; 9 ]
              (Snap.retained ~dir);
            (* an empty payload is a valid snapshot *)
            ignore (Snap.save ~dir ~seq:13 "");
            check
              Alcotest.(option (pair int string))
              "empty payload round-trips"
              (Some (13, ""))
              (Snap.load ~dir)));
    tc "a torn newest snapshot falls back to the previous" (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            ignore (Snap.save ~dir ~seq:5 "five");
            ignore (Snap.save ~dir ~seq:9 "nine");
            let tear seq =
              let path =
                Filename.concat dir (Printf.sprintf "repl.snap.%d" seq)
              in
              let data = In_channel.with_open_bin path In_channel.input_all in
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc
                    (String.sub data 0 (String.length data - 3)))
            in
            (* the torn tail loses the explicit trailer, so the whole
               file reads invalid — half a state is never installable *)
            tear 9;
            check
              Alcotest.(option (pair int string))
              "fallback to the previous retained snapshot"
              (Some (5, "five"))
              (Snap.load ~dir);
            tear 5;
            check
              Alcotest.(option (pair int string))
              "no valid snapshot left" None (Snap.load ~dir)));
  ]

(* ------------------------------------------------------------------ *)
(* 3. Wire surface.                                                    *)

let wire_tests =
  [
    tc "mutating classifies exactly the replicated ops" (fun () ->
        List.iter
          (fun op ->
            check Alcotest.bool (op ^ " is mutating") true
              (Server.Wire.mutating op))
          [ "update"; "migrate"; "define_view"; "drop_view"; "refresh_view" ];
        List.iter
          (fun op ->
            check Alcotest.bool (op ^ " is not mutating") false
              (Server.Wire.mutating op))
          [
            "query"; "rewrite"; "health"; "metrics"; "stats"; "view_stats";
            "repl_handshake"; "repl_pull"; "repl_frame"; "repl_status";
            "repl_snapshot"; "repl_compact";
          ]);
    tc "the op registry covers the repl operations" (fun () ->
        List.iter
          (fun op ->
            check Alcotest.bool (op ^ " registered") true
              (List.mem op Server.Wire.ops))
          [
            "repl_handshake"; "repl_pull"; "repl_frame"; "repl_status";
            "repl_snapshot"; "repl_compact";
          ]);
    tc "repl request fields roundtrip" (fun () ->
        let line =
          Server.Wire.request_to_line ~seq:7 ~max:32 ~wait_ms:150 ~node:"f1"
            "repl_pull"
        in
        match Server.Wire.request_of_line line with
        | Error _ -> Alcotest.fail "frame did not decode"
        | Ok r ->
            check Alcotest.(option int) "seq" (Some 7) r.Server.Wire.seq;
            check Alcotest.(option int) "max" (Some 32) r.Server.Wire.max;
            check Alcotest.(option int) "wait_ms" (Some 150)
              r.Server.Wire.wait_ms;
            check Alcotest.(option string) "node" (Some "f1")
              r.Server.Wire.node);
    tc "not_leader is a typed code and carries its data" (fun () ->
        check
          Alcotest.(option string)
          "registered" (Some "not_leader")
          (Option.map Server.Wire.code_to_string
             (Server.Wire.code_of_string "not_leader"));
        let line =
          Server.Wire.error_line
            ~data:[ ("leader", Json.String "127.0.0.1:7401") ]
            Server.Wire.Not_leader "redirect"
        in
        match Json.of_string line with
        | Error e -> Alcotest.fail e
        | Ok v ->
            check
              Alcotest.(option string)
              "code" (Some "not_leader") (Server.Client.error_code v);
            check Alcotest.bool "leader field present" true
              (Json.find [ "error"; "leader" ] v
              = Some (Json.String "127.0.0.1:7401")));
  ]

(* ------------------------------------------------------------------ *)
(* 4. The tail loop against a scripted leader.                         *)

module F = Replicate.Follower

(* A transport whose "leader" is a canned two-frame log; [fail_at]
   makes the follower's apply reject that seq forever. *)
let scripted_tail ~fail_at () =
  let progress = F.make_progress () in
  let pulls = ref [] in
  let obj fields = Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields)) in
  let roundtrip () line =
    let v =
      match Json.of_string line with Ok v -> v | Error e -> failwith e
    in
    match Json.member "op" v with
    | Some (Json.String "repl_handshake") -> obj [ ("repl_seq", Json.Int 2) ]
    | Some (Json.String "repl_pull") ->
        let from =
          match Json.member "seq" v with Some (Json.Int s) -> s | _ -> -1
        in
        pulls := from :: !pulls;
        let frames =
          List.filter (fun (s, _) -> s >= from) [ (1, "a"); (2, "b") ]
        in
        obj
          [
            ("repl_seq", Json.Int 2);
            ( "frames",
              Json.List
                (List.map
                   (fun (s, f) ->
                     Json.Obj [ ("seq", Json.Int s); ("frame", Json.String f) ])
                   frames) );
          ]
    | _ -> failwith "unexpected op"
  in
  let th =
    Thread.create
      (fun () ->
        F.run ~node:"t" ~connect:Fun.id ~close:ignore ~roundtrip
          ~apply:(fun s _ -> if s = fail_at then Error "boom" else Ok ())
          ~progress
          ~backoff:
            { Backoff.default with base_ms = 1.; max_ms = 2.; attempts = 1000 }
          ~wait_ms:0 ())
      ()
  in
  (progress, pulls, th)

let follower_tests =
  [
    tc "a frame that fails to apply is never acked past" (fun () ->
        let progress, pulls, th = scripted_tail ~fail_at:2 () in
        (* give the loop several disconnect/reconnect/re-pull rounds *)
        eventually "repeated re-pulls of the failed frame" (fun () ->
            Atomic.get progress.F.apply_errors >= 3);
        F.request_stop progress;
        Thread.join th;
        check Alcotest.int "applied stops before the bad frame" 1
          (Atomic.get progress.F.applied);
        check Alcotest.int "the gap is honest staleness" 1 (F.staleness progress);
        check Alcotest.bool "last_error names the frame" true
          (contains (F.last_error progress) "frame 2");
        (* the ack channel is the pull's [from]: it must never pass the
           frame this node could not apply *)
        check Alcotest.bool "no pull ever acked past the failure" true
          (List.for_all (fun from -> from <= 2) !pulls);
        check Alcotest.bool "the failed seq was re-pulled" true
          (List.length (List.filter (fun from -> from = 2) !pulls) >= 2));
    tc "a clean tail applies everything and acks it" (fun () ->
        let progress, pulls, th = scripted_tail ~fail_at:0 () in
        eventually "catch-up" (fun () -> Atomic.get progress.F.applied = 2);
        (* one more pull carries the ack for seq 2 *)
        eventually "ack pull" (fun () -> List.exists (fun f -> f = 3) !pulls);
        F.request_stop progress;
        Thread.join th;
        check Alcotest.int "no apply errors" 0
          (Atomic.get progress.F.apply_errors);
        check Alcotest.int "no staleness" 0 (F.staleness progress));
  ]

(* ------------------------------------------------------------------ *)
(* 5. Clusters: leader + followers in-process.                         *)

let stop_all ts = List.iter (fun t -> try Server.stop t with _ -> ()) ts

let cluster_tests =
  [
    tc "followers converge and answer byte-identically to the leader"
      (fun () ->
        let leader, laddr = start_server () in
        let f1, a1 = start_server ~repl:(follower_of laddr) () in
        let f2, a2 = start_server ~repl:(follower_of laddr) () in
        Fun.protect
          ~finally:(fun () -> stop_all [ f1; f2; leader ])
          (fun () ->
            with_client laddr (fun c ->
                for i = 1 to 3 do
                  let resp =
                    Server.Client.request c ~view:"sc1"
                      ~text:
                        (Printf.sprintf
                           "insert into Student { Name = 'R%d', GPA = 3.0 }" i)
                      "update"
                  in
                  check Alcotest.bool
                    (Printf.sprintf "update %d ok" i)
                    true (Server.Client.is_ok resp)
                done;
                let resp =
                  Server.Client.request c ~view:"hi" ~base:"sc1"
                    ~text:"select Name from Student where GPA >= 3.5"
                    "define_view"
                in
                check Alcotest.bool "define_view ok" true
                  (Server.Client.is_ok resp));
            (* each follower reports convergence through health *)
            List.iter
              (fun addr ->
                with_client addr (fun c ->
                    eventually "follower catch-up" (fun () ->
                        let h = Server.Client.request c "health" in
                        int_field "applied_seq" h = 4
                        && int_field "staleness_seq" h = 0)))
              [ a1; a2 ];
            (* byte-identity: the same frames answered with the same bytes *)
            let deck =
              [|
                count_frame;
                Server.Wire.request_to_line ~view:"hi" "query";
                Server.Wire.request_to_line
                  ~text:"select Name from Student where GPA >= 3.5" "query";
              |]
            in
            let answers addr =
              with_client addr (fun c ->
                  Array.map (Server.Client.roundtrip c) deck)
            in
            let want = answers laddr in
            List.iter
              (fun addr ->
                let got = answers addr in
                Array.iteri
                  (fun i w ->
                    check Alcotest.string
                      (Printf.sprintf "frame %d byte-identical" i)
                      w got.(i))
                  want)
              [ a1; a2 ];
            (* the leader's status knows both followers *)
            with_client laddr (fun c ->
                let st = Server.Client.request c "repl_status" in
                match Json.member "followers" st with
                | Some (Json.List fs) ->
                    check Alcotest.int "two followers" 2 (List.length fs)
                | _ -> Alcotest.fail "no followers list")));
    tc "a write to a follower answers not_leader with the leader address"
      (fun () ->
        let leader, laddr = start_server () in
        let f1, a1 = start_server ~repl:(follower_of laddr) () in
        Fun.protect
          ~finally:(fun () -> stop_all [ f1; leader ])
          (fun () ->
            with_client a1 (fun c ->
                let resp =
                  Server.Client.request c ~view:"sc1"
                    ~text:"insert into Student { Name = 'Nope', GPA = 1.0 }"
                    "update"
                in
                check Alcotest.bool "rejected" false (Server.Client.is_ok resp);
                check
                  Alcotest.(option string)
                  "typed code" (Some "not_leader")
                  (Server.Client.error_code resp);
                check Alcotest.bool "leader advertised" true
                  (Json.find [ "error"; "leader" ] resp
                  = Some
                      (Json.String (Server.Wire.addr_to_string laddr))));
            (* reads still work on the follower *)
            with_client a1 (fun c ->
                check Alcotest.bool "reads fine" true
                  (Server.Client.is_ok
                     (Server.Client.request c ~view:"sc1"
                        ~text:"select Name from Student" "query")))));
    tc "failover client walks dead endpoints and chases redirects" (fun () ->
        let leader, laddr = start_server () in
        let f1, a1 = start_server ~repl:(follower_of laddr) () in
        Fun.protect
          ~finally:(fun () -> stop_all [ f1; leader ])
          (fun () ->
            let dead = Server.Wire.Tcp ("127.0.0.1", 1) in
            (* first endpoint dead, second a follower: a write must hop
               dead -> follower -> (redirect) -> leader and succeed *)
            let fo =
              Server.Client.failover
                ~retry:{ Backoff.default with base_ms = 1.; seed = 3 }
                [ dead; a1; laddr ]
            in
            Fun.protect
              ~finally:(fun () -> Server.Client.failover_close fo)
              (fun () ->
                let resp =
                  Server.Client.failover_roundtrip fo (insert_frame 99)
                in
                (match Json.of_string resp with
                | Ok v ->
                    check Alcotest.bool "write landed on the leader" true
                      (Server.Client.is_ok v)
                | Error e -> Alcotest.fail e);
                let failovers, redirects = Server.Client.failover_stats fo in
                check Alcotest.bool "walked the dead endpoint" true
                  (failovers >= 1);
                check Alcotest.bool "chased the redirect" true (redirects >= 1));
            (* all endpoints dead: typed Connection_error, not a hang *)
            let all_dead =
              Server.Client.failover
                ~retry:{ Backoff.default with attempts = 3; base_ms = 1. }
                [ dead ]
            in
            check Alcotest.bool "exhaustion raises Connection_error" true
              (match Server.Client.failover_roundtrip all_dead count_frame with
              | exception Server.Client.Connection_error _ -> true
              | _ -> false)));
    tc "semi-sync acks: leader killed mid-storm loses no acknowledged write"
      (fun () ->
        let leader, laddr =
          start_server ~repl:{ Server.default_repl with ack_replicas = 2 } ()
        in
        let f1, a1 = start_server ~repl:(follower_of laddr) () in
        let f2, a2 = start_server ~repl:(follower_of laddr) () in
        Fun.protect
          ~finally:(fun () -> stop_all [ f1; f2; leader ])
          (fun () ->
            let n = 5 in
            with_client laddr (fun c ->
                for i = 1 to n do
                  let resp =
                    match
                      Json.of_string (Server.Client.roundtrip c (insert_frame i))
                    with
                    | Ok v -> v
                    | Error e -> Alcotest.fail e
                  in
                  check Alcotest.bool
                    (Printf.sprintf "write %d acked" i)
                    true (Server.Client.is_ok resp)
                done);
            (* the reference answer, from the leader, before the kill *)
            let reference =
              with_client laddr (fun c -> Server.Client.roundtrip c count_frame)
            in
            (* storm reads through a failover client while the leader
               dies mid-deck: every read must be answered, and answers
               must equal the reference bytes *)
            let fo =
              Server.Client.failover
                ~retry:{ Backoff.default with base_ms = 1.; seed = 11 }
                [ laddr; a1; a2 ]
            in
            Fun.protect
              ~finally:(fun () -> Server.Client.failover_close fo)
              (fun () ->
                let first = Server.Client.failover_roundtrip fo count_frame in
                check Alcotest.string "pre-kill read matches" reference first;
                Server.stop leader;
                for i = 1 to 8 do
                  let resp = Server.Client.failover_roundtrip fo count_frame in
                  check Alcotest.string
                    (Printf.sprintf
                       "post-failover read %d byte-identical to the \
                        acknowledged state"
                       i)
                    reference resp
                done;
                let failovers, _ = Server.Client.failover_stats fo in
                check Alcotest.bool "failed over off the dead leader" true
                  (failovers >= 1))));
    tc "a throttled follower reports staleness honestly, then converges"
      (fun () ->
        let leader, laddr = start_server () in
        let slow, a1 =
          start_server
            ~repl:
              {
                (follower_of laddr) with
                batch = 1;
                throttle_ms = 120;
                wait_ms = 10;
              }
            ()
        in
        Fun.protect
          ~finally:(fun () -> stop_all [ slow; leader ])
          (fun () ->
            (* register: wait until the follower has completed at least
               one handshake (it knows the leader's seq) *)
            with_client a1 (fun c ->
                eventually "follower connected" (fun () ->
                    match
                      Json.member "repl_connected"
                        (Server.Client.request c "health")
                    with
                    | Some (Json.Bool b) -> b
                    | _ -> false));
            with_client laddr (fun c ->
                for i = 1 to 6 do
                  ignore (Server.Client.roundtrip c (insert_frame i))
                done);
            with_client a1 (fun c ->
                (* at 1 frame per >=120 ms the catch-up window is wide
                   open: staleness must be visible... *)
                eventually "staleness observed" (fun () ->
                    int_field "staleness_seq" (Server.Client.request c "health")
                    > 0);
                (* ...and must close *)
                eventually ~timeout:30. "convergence" (fun () ->
                    let h = Server.Client.request c "health" in
                    int_field "applied_seq" h = 6
                    && int_field "staleness_seq" h = 0))));
    tc "a mutation that outlives its deadline is acknowledged and replicated"
      (fun () ->
        let leader, laddr = start_server () in
        let f1, a1 = start_server ~repl:(follower_of laddr) () in
        Fun.protect
          ~finally:(fun () ->
            Server.For_testing.set_delay_after_op_ms 0;
            stop_all [ f1; leader ])
          (fun () ->
            (* every data op now finishes ~150 ms after run_op returns,
               far beyond the 50 ms request deadline *)
            Server.For_testing.set_delay_after_op_ms 150;
            with_client laddr (fun c ->
                (* control: a read across the same latency does miss *)
                check
                  Alcotest.(option string)
                  "read misses its deadline" (Some "deadline_exceeded")
                  (Server.Client.error_code
                     (Server.Client.request c ~view:"sc1"
                        ~text:"select Name from Student" ~deadline_ms:50
                        "query"));
                (* the mutation finished after the same deadline: it
                   changed state, so it must be acknowledged ok and
                   must reach the replication log — anything else
                   diverges followers and the restart replay from the
                   applied state *)
                let resp =
                  Server.Client.request c ~view:"sc1"
                    ~text:"insert into Student { Name = 'Late', GPA = 3.2 }"
                    ~deadline_ms:50 "update"
                in
                check Alcotest.bool "applied mutation acknowledged" true
                  (Server.Client.is_ok resp);
                check Alcotest.int "mutation reached the replication log" 1
                  (int_field "repl_seq" (Server.Client.request c "health")));
            Server.For_testing.set_delay_after_op_ms 0;
            with_client a1 (fun c ->
                eventually "follower applies the late write" (fun () ->
                    int_field "applied_seq" (Server.Client.request c "health")
                    = 1);
                check Alcotest.int "follower serves the late write" 3
                  (student_count c))));
    tc "a follower pointed at a non-leader reports the misconfiguration"
      (fun () ->
        let leader, laddr = start_server () in
        let f1, a1 = start_server ~repl:(follower_of laddr) () in
        (* the misconfiguration: tailing a node that is itself a follower *)
        let f2, a2 = start_server ~repl:(follower_of a1) () in
        Fun.protect
          ~finally:(fun () -> stop_all [ f2; f1; leader ])
          (fun () ->
            with_client a2 (fun c ->
                eventually "refusal surfaces as a named error" (fun () ->
                    let h = Server.Client.request c "health" in
                    contains (string_field "repl_last_error" h) "not a leader");
                (* the refusal carries the real leader's address, so the
                   fix is one config edit away *)
                let st = Server.Client.request c "repl_status" in
                check Alcotest.bool "advertised leader named" true
                  (contains (string_field "last_error" st)
                     (Server.Wire.addr_to_string laddr)))));
    tc "a restarted leader replays its replication log" (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let count1 =
              let leader, laddr = start_server ~journal_dir:dir () in
              Fun.protect
                ~finally:(fun () -> Server.stop leader)
                (fun () ->
                  with_client laddr (fun c ->
                      for i = 1 to 3 do
                        let resp =
                          match
                            Json.of_string
                              (Server.Client.roundtrip c (insert_frame i))
                          with
                          | Ok v -> v
                          | Error e -> Alcotest.fail e
                        in
                        check Alcotest.bool "write ok" true
                          (Server.Client.is_ok resp)
                      done;
                      student_count c))
            in
            (* restart from the same journal dir: the replayed leader
               serves exactly what it last acknowledged *)
            let leader, laddr = start_server ~journal_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Server.stop leader)
              (fun () ->
                with_client laddr (fun c ->
                    check Alcotest.int "state replayed" count1
                      (student_count c);
                    let h = Server.Client.request c "health" in
                    check Alcotest.int "repl_seq recovered" 3
                      (int_field "repl_seq" h)))));
    tc "repl_compact truncates the log; a late follower installs the snapshot"
      (fun () ->
        let dir = fresh_dir () in
        let leader, laddr = start_server ~journal_dir:dir () in
        let fref = ref None in
        Fun.protect
          ~finally:(fun () ->
            (match !fref with Some f -> stop_all [ f ] | None -> ());
            stop_all [ leader ];
            rm_rf dir)
          (fun () ->
            with_client laddr (fun c ->
                (* a manual view goes stale under the writes: its frozen
                   extent is part of the served bytes and must survive
                   the snapshot verbatim *)
                check Alcotest.bool "manual view defined" true
                  (Server.Client.is_ok
                     (Server.Client.request c ~view:"frozen" ~base:"sc1"
                        ~policy:"manual" ~text:"select Name from Student"
                        "define_view"));
                for i = 1 to 3 do
                  check Alcotest.bool
                    (Printf.sprintf "write %d ok" i)
                    true
                    (Server.Client.is_ok
                       (match
                          Json.of_string
                            (Server.Client.roundtrip c (insert_frame i))
                        with
                       | Ok v -> v
                       | Error e -> Alcotest.fail e))
                done;
                let resp = Server.Client.request c "repl_compact" in
                check Alcotest.bool "compact ok" true
                  (Server.Client.is_ok resp);
                check Alcotest.int "snapshot covers the whole log" 4
                  (int_field "snapshot_seq" resp);
                check Alcotest.int "log truncated to the snapshot" 4
                  (int_field "base_seq" resp);
                check Alcotest.int "all four frames shed" 4
                  (int_field "dropped" resp);
                (* a second compaction with no new writes is a no-op *)
                let again = Server.Client.request c "repl_compact" in
                check Alcotest.int "idempotent" 0 (int_field "dropped" again);
                (* the shed prefix is gone from the serving surface *)
                let pruned =
                  match
                    Json.of_string
                      (Server.Client.roundtrip c
                         (Server.Wire.request_to_line ~seq:2 "repl_frame"))
                  with
                  | Ok v -> v
                  | Error e -> Alcotest.fail e
                in
                check Alcotest.bool "pruned frame refused" false
                  (Server.Client.is_ok pruned);
                let h = Server.Client.request c "health" in
                check Alcotest.int "health base_seq" 4 (int_field "base_seq" h);
                check Alcotest.int "health snapshot_seq" 4
                  (int_field "snapshot_seq" h));
            (* a fresh follower starts below the base: it cannot tail
               the truncated prefix and must take the snapshot leg *)
            let f1, a1 = start_server ~repl:(follower_of laddr) () in
            fref := Some f1;
            with_client a1 (fun c ->
                eventually "snapshot install + catch-up" (fun () ->
                    let h = Server.Client.request c "health" in
                    int_field "applied_seq" h = 4
                    && int_field "staleness_seq" h = 0);
                check Alcotest.bool "the catch-up went through a snapshot"
                  true
                  (int_field "snapshot_installs"
                     (Server.Client.request c "health")
                  >= 1));
            (* byte identity, including the stale manual view *)
            let deck =
              [| count_frame; Server.Wire.request_to_line ~view:"frozen" "query" |]
            in
            let answers addr =
              with_client addr (fun c ->
                  Array.map (Server.Client.roundtrip c) deck)
            in
            let want = answers laddr and got = answers a1 in
            Array.iteri
              (fun i w ->
                check Alcotest.string
                  (Printf.sprintf "frame %d byte-identical after install" i)
                  w got.(i))
              want;
            (* and the follower keeps tailing past the snapshot *)
            with_client laddr (fun c ->
                ignore (Server.Client.roundtrip c (insert_frame 9)));
            with_client a1 (fun c ->
                eventually "tail resumes after the snapshot" (fun () ->
                    int_field "applied_seq" (Server.Client.request c "health")
                    = 5);
                check Alcotest.int "post-snapshot write served" 6
                  (student_count c))));
    tc "compact_every compacts on the write path; late joiners converge"
      (fun () ->
        let leader, laddr =
          start_server
            ~repl:{ Server.default_repl with compact_every = 3 }
            ()
        in
        let fref = ref None in
        Fun.protect
          ~finally:(fun () ->
            (match !fref with Some f -> stop_all [ f ] | None -> ());
            stop_all [ leader ])
          (fun () ->
            with_client laddr (fun c ->
                for i = 1 to 7 do
                  ignore (Server.Client.roundtrip c (insert_frame i))
                done;
                let h = Server.Client.request c "health" in
                check Alcotest.bool "auto-compaction ran" true
                  (int_field "snapshot_seq" h >= 6);
                check Alcotest.bool "log prefix shed" true
                  (int_field "base_seq" h >= 3));
            let f1, a1 = start_server ~repl:(follower_of laddr) () in
            fref := Some f1;
            with_client a1 (fun c ->
                eventually "late joiner converges through the snapshot"
                  (fun () ->
                    let h = Server.Client.request c "health" in
                    int_field "applied_seq" h = 7
                    && int_field "staleness_seq" h = 0);
                check Alcotest.bool "snapshot leg taken" true
                  (int_field "snapshot_installs"
                     (Server.Client.request c "health")
                  >= 1));
            let want =
              with_client laddr (fun c -> Server.Client.roundtrip c count_frame)
            in
            let got =
              with_client a1 (fun c -> Server.Client.roundtrip c count_frame)
            in
            check Alcotest.string "byte-identical after the snapshot leg" want
              got));
    tc "a restarted leader recovers snapshot + suffix, not full history"
      (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let count1 =
              let leader, laddr = start_server ~journal_dir:dir () in
              Fun.protect
                ~finally:(fun () -> Server.stop leader)
                (fun () ->
                  with_client laddr (fun c ->
                      for i = 1 to 4 do
                        ignore (Server.Client.roundtrip c (insert_frame i))
                      done;
                      ignore (Server.Client.request c "repl_compact");
                      for i = 5 to 6 do
                        ignore (Server.Client.roundtrip c (insert_frame i))
                      done;
                      (* the second snapshot retains the first as its
                         fallback, so the log keeps the suffix after 4 *)
                      let resp = Server.Client.request c "repl_compact" in
                      check Alcotest.int "second snapshot" 6
                        (int_field "snapshot_seq" resp);
                      check Alcotest.int
                        "truncation stops at the fallback snapshot" 4
                        (int_field "base_seq" resp);
                      ignore (Server.Client.roundtrip c (insert_frame 7));
                      student_count c))
            in
            (* restart: snapshot 6 + frames 5..7, never seq 1 *)
            let leader, laddr = start_server ~journal_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Server.stop leader)
              (fun () ->
                with_client laddr (fun c ->
                    check Alcotest.int "state recovered" count1
                      (student_count c);
                    let h = Server.Client.request c "health" in
                    check Alcotest.int "repl_seq recovered" 7
                      (int_field "repl_seq" h);
                    check Alcotest.int "base survives the restart" 4
                      (int_field "base_seq" h);
                    check Alcotest.int "newest snapshot installed" 6
                      (int_field "snapshot_seq" h)));
            (* tear the newest snapshot's tail: the restart must fall
               back to the previous one and replay the longer suffix *)
            let tear path =
              let data = In_channel.with_open_bin path In_channel.input_all in
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc
                    (String.sub data 0 (String.length data - 3)))
            in
            tear (Filename.concat dir "repl.snap.6");
            let leader, laddr = start_server ~journal_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Server.stop leader)
              (fun () ->
                with_client laddr (fun c ->
                    check Alcotest.int "torn tail falls back" count1
                      (student_count c);
                    check Alcotest.int "suffix replayed to the tip" 7
                      (int_field "repl_seq"
                         (Server.Client.request c "health"))));
            (* no readable snapshot at all: the state is
               unreconstructible and the restart must refuse, not serve
               a silently wrong prefix *)
            Sys.remove (Filename.concat dir "repl.snap.4");
            let cfg =
              {
                Server.listen = local;
                jobs = 2;
                queue = 64;
                deadline_ms = None;
                cache = 16;
                debug = false;
                repl = Server.default_repl;
              }
            in
            match Server.start (fresh_session ~journal_dir:dir ()) cfg with
            | Ok t ->
                Server.stop t;
                Alcotest.fail
                  "a truncated log without a snapshot must refuse to start"
            | Error msg ->
                check Alcotest.bool "the refusal names the snapshot" true
                  (contains msg "snapshot")));
    tc "a re-handshaking follower cannot double-count toward the quorum"
      (fun () ->
        let leader, laddr =
          start_server
            ~repl:
              {
                Server.default_repl with
                ack_replicas = 2;
                ack_timeout_ms = 300;
              }
            ()
        in
        Fun.protect
          ~finally:(fun () -> stop_all [ leader ])
          (fun () ->
            let parse line =
              match Json.of_string line with
              | Ok v -> v
              | Error e -> Alcotest.fail e
            in
            let hs node =
              Server.Wire.request_to_line ~node "repl_handshake"
            in
            (* pulling from seq [s+1] acknowledges seq [s] *)
            let pull node s =
              Server.Wire.request_to_line ~seq:(s + 1) ~max:1 ~wait_ms:0 ~node
                "repl_pull"
            in
            let c1 = Server.Client.connect laddr in
            let c2 = Server.Client.connect laddr in
            Fun.protect
              ~finally:(fun () ->
                Server.Client.close c1;
                Server.Client.close c2)
              (fun () ->
                (* one logical follower handshakes twice — a restart or
                   reconnect — and acks through both connections *)
                check Alcotest.bool "handshake 1" true
                  (Server.Client.is_ok (parse (Server.Client.roundtrip c1 (hs "phoenix"))));
                check Alcotest.bool "handshake 2" true
                  (Server.Client.is_ok (parse (Server.Client.roundtrip c2 (hs "phoenix"))));
                ignore (Server.Client.roundtrip c1 (pull "phoenix" 1));
                ignore (Server.Client.roundtrip c2 (pull "phoenix" 1));
                (* leader-side: one registered follower, not two *)
                with_client laddr (fun c ->
                    let st = Server.Client.request c "repl_status" in
                    match Json.member "followers" st with
                    | Some (Json.List fs) ->
                        check Alcotest.int "one registered follower" 1
                          (List.length fs)
                    | _ -> Alcotest.fail "no followers list");
                (* the write needs two replicas; one node acking over
                   two connections must not satisfy it *)
                with_client laddr (fun c ->
                    let resp =
                      parse (Server.Client.roundtrip c (insert_frame 1))
                    in
                    check Alcotest.bool "write not falsely quorum-acked" false
                      (Server.Client.is_ok resp);
                    check
                      Alcotest.(option string)
                      "typed internal error" (Some "internal")
                      (Server.Client.error_code resp);
                    match Json.find [ "error"; "message" ] resp with
                    | Some (Json.String m) ->
                        check Alcotest.bool "outcome is replicated-unknown"
                          true
                          (contains m "replicated-unknown")
                    | _ -> Alcotest.fail "no error message");
                (* a genuinely distinct second node closes the quorum *)
                ignore (Server.Client.roundtrip c1 (pull "phoenix" 2));
                let c3 = Server.Client.connect laddr in
                Fun.protect
                  ~finally:(fun () -> Server.Client.close c3)
                  (fun () ->
                    ignore (Server.Client.roundtrip c3 (hs "other"));
                    ignore (Server.Client.roundtrip c3 (pull "other" 2));
                    with_client laddr (fun c ->
                        check Alcotest.bool
                          "two distinct nodes satisfy the quorum" true
                          (Server.Client.is_ok
                             (parse
                                (Server.Client.roundtrip c (insert_frame 2)))))))));
  ]

(* ------------------------------------------------------------------ *)
(* 6. The rewrite-plan cache across mutations.                         *)

let cache_tests =
  [
    tc "a mutation opens a new plan-cache epoch" (fun () ->
        let leader, laddr = start_server () in
        Fun.protect
          ~finally:(fun () -> stop_all [ leader ])
          (fun () ->
            with_client laddr (fun c ->
                let q () =
                  check Alcotest.bool "query ok" true
                    (Server.Client.is_ok
                       (Server.Client.request c ~view:"sc1"
                          ~text:"select Name from Student" "query"))
                in
                let snap () =
                  let s = Server.stats leader in
                  (s.Server.cache_hits, s.Server.cache_misses)
                in
                q ();
                let h1, m1 = snap () in
                q ();
                let h2, m2 = snap () in
                check Alcotest.int "repeat is a cache hit" (h1 + 1) h2;
                check Alcotest.int "no new miss on a repeat" m1 m2;
                check Alcotest.bool "migrate ok" true
                  (Server.Client.is_ok (Server.Client.request c "migrate"));
                (* the regression: the cached plan predates the migrate;
                   serving it again would be a stale epoch *)
                q ();
                let h3, m3 = snap () in
                check Alcotest.int "post-migrate repeat misses" (m2 + 1) m3;
                check Alcotest.int "post-migrate repeat does not hit" h2 h3;
                q ();
                let h4, m4 = snap () in
                check Alcotest.int "the new epoch caches again" (h3 + 1) h4;
                check Alcotest.int "one rebuild only" m3 m4;
                check Alcotest.bool "update ok" true
                  (Server.Client.is_ok
                     (Server.Client.request c ~view:"sc1"
                        ~text:
                          "insert into Student { Name = 'Zed', GPA = 3.1 }"
                        "update"));
                q ();
                let h5, m5 = snap () in
                check Alcotest.int "post-update repeat misses" (m4 + 1) m5;
                check Alcotest.int "post-update repeat does not hit" h4 h5)));
    tc "after migrate a warm daemon answers byte-identically to a cold one"
      (fun () ->
        let run_daemon warm =
          let t, addr = start_server () in
          Fun.protect
            ~finally:(fun () -> stop_all [ t ])
            (fun () ->
              with_client addr (fun c ->
                  ignore (Server.Client.roundtrip c (insert_frame 1));
                  if warm then
                    (* populate the plan cache before the migrate *)
                    ignore (Server.Client.roundtrip c count_frame);
                  check Alcotest.bool "migrate ok" true
                    (Server.Client.is_ok (Server.Client.request c "migrate"));
                  Server.Client.roundtrip c count_frame))
        in
        let warm = run_daemon true and cold = run_daemon false in
        check Alcotest.string "identical bytes through the migrate" cold warm);
  ]

let () =
  Alcotest.run "replicate"
    [
      ("backoff", backoff_tests);
      ("log", log_tests);
      ("snapshot", snapshot_tests);
      ("wire", wire_tests);
      ("follower", follower_tests);
      ("cluster", cluster_tests);
      ("plan-cache", cache_tests);
    ]
