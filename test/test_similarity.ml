(* Tests for the OCS matrix and the resemblance-function ordering —
   including the exact numbers printed on Screen 8 of the paper. *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let close = Alcotest.float 1e-6

let paper_eq =
  List.fold_left
    (fun eq (x, y) -> Equivalence.declare x y eq)
    (Equivalence.register_schema Workload.Paper.sc2
       (Equivalence.register_schema Workload.Paper.sc1 Equivalence.empty))
    Workload.Paper.equivalences

let sc1 = Workload.Paper.sc1
let sc2 = Workload.Paper.sc2
let obj s n = Option.get (Schema.find_object (Name.v n) s)

let ratio_tests =
  [
    tc "Screen 8: Department-Department is 0.5000" (fun () ->
        check close "ratio" 0.5
          (Similarity.attribute_ratio (sc1, obj sc1 "Department")
             (sc2, obj sc2 "Department") paper_eq));
    tc "Screen 8: Student-Grad_student is 0.5000" (fun () ->
        check close "ratio" 0.5
          (Similarity.attribute_ratio (sc1, obj sc1 "Student")
             (sc2, obj sc2 "Grad_student") paper_eq));
    tc "Screen 8: Student-Faculty is 0.3333" (fun () ->
        check close "ratio" (1.0 /. 3.0)
          (Similarity.attribute_ratio (sc1, obj sc1 "Student")
             (sc2, obj sc2 "Faculty") paper_eq));
    tc "unrelated pairs are 0" (fun () ->
        check close "ratio" 0.0
          (Similarity.attribute_ratio (sc1, obj sc1 "Department")
             (sc2, obj sc2 "Faculty") paper_eq));
    tc "0.5 means full coverage of the smaller class" (fun () ->
        (* the paper's own reading of the ratio *)
        let r =
          Similarity.attribute_ratio (sc1, obj sc1 "Student")
            (sc2, obj sc2 "Grad_student") paper_eq
        in
        check Alcotest.bool "never above 0.5" true (r <= 0.5));
    tc "relationship ratio" (fun () ->
        let majors = Option.get (Schema.find_relationship (Name.v "Majors") sc1) in
        let major_in = Option.get (Schema.find_relationship (Name.v "Major_in") sc2) in
        check close "since matches" 0.5
          (Similarity.relationship_ratio (sc1, majors) (sc2, major_in) paper_eq));
  ]

let ranking_tests =
  [
    tc "Screen 8 order reproduced" (fun () ->
        let ranked = Similarity.ranked_object_pairs sc1 sc2 paper_eq in
        let names =
          List.map
            (fun rk ->
              (Qname.to_string rk.Similarity.left, Qname.to_string rk.Similarity.right))
            (Similarity.top 3 ranked)
        in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "order"
          [
            ("sc1.Department", "sc2.Department");
            ("sc1.Student", "sc2.Grad_student");
            ("sc1.Student", "sc2.Faculty");
          ]
          names);
    tc "every cross pair is listed" (fun () ->
        check Alcotest.int "2x3" 6
          (List.length (Similarity.ranked_object_pairs sc1 sc2 paper_eq)));
    tc "ratios never increase down the list" (fun () ->
        let ranked = Similarity.ranked_object_pairs sc1 sc2 paper_eq in
        let rec monotone = function
          | a :: (b :: _ as rest) ->
              a.Similarity.ratio >= b.Similarity.ratio && monotone rest
          | _ -> true
        in
        check Alcotest.bool "monotone" true (monotone ranked));
    tc "shared counts populate the OCS entries" (fun () ->
        let ranked = Similarity.ranked_object_pairs sc1 sc2 paper_eq in
        let find l r =
          List.find
            (fun rk ->
              Qname.to_string rk.Similarity.left = l
              && Qname.to_string rk.Similarity.right = r)
            ranked
        in
        check Alcotest.int "student-grad shares 2" 2
          (find "sc1.Student" "sc2.Grad_student").Similarity.shared;
        check Alcotest.int "dept-dept shares 1" 1
          (find "sc1.Department" "sc2.Department").Similarity.shared);
    tc "relationship ranking" (fun () ->
        let ranked = Similarity.ranked_relationship_pairs sc1 sc2 paper_eq in
        check Alcotest.int "1x2" 2 (List.length ranked);
        match ranked with
        | first :: _ ->
            check Alcotest.string "majors pair first" "sc2.Major_in"
              (Qname.to_string first.Similarity.right)
        | [] -> Alcotest.fail "empty ranking");
    tc "top truncates" (fun () ->
        check Alcotest.int "top 2" 2
          (List.length (Similarity.top 2 (Similarity.ranked_object_pairs sc1 sc2 paper_eq))));
    tc "without equivalences everything ties at 0" (fun () ->
        let eq =
          Equivalence.register_schema sc2 (Equivalence.register_schema sc1 Equivalence.empty)
        in
        List.iter
          (fun rk -> check close "zero" 0.0 rk.Similarity.ratio)
          (Similarity.ranked_object_pairs sc1 sc2 eq));
    tc "heuristic puts true pairs first on generated workloads" (fun () ->
        let w =
          Workload.Generator.generate
            { Workload.Generator.default_params with seed = 7 }
        in
        match w.Workload.Generator.schemas with
        | [ s1; s2 ] ->
            let eq =
              (* perfect phase-2 answers from the oracle *)
              Integrate.Protocol.collect_equivalences
                { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
                s1 s2 w.Workload.Generator.oracle Equivalence.empty
            in
            let ranked = Similarity.ranked_object_pairs s1 s2 eq in
            let k = List.length w.Workload.Generator.true_pairs in
            let topk = Similarity.top k ranked in
            let hits =
              List.length
                (List.filter
                   (fun rk ->
                     List.exists
                       (fun (x, y) ->
                         Qname.equal x rk.Similarity.left
                         && Qname.equal y rk.Similarity.right)
                       w.Workload.Generator.true_pairs)
                   topk)
            in
            check Alcotest.bool "precision@k above half" true
              (k = 0 || float_of_int hits /. float_of_int k > 0.5)
        | _ -> Alcotest.fail "expected two schemas");
  ]

(* ------------------------------------------------------------------ *)
(* The indexed engine: Acs_index must be observationally equal to the
   naive partition scan, top-k to the full sort's prefix, and the
   incrementally patched workspace index to a from-scratch rebuild.     *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let params_gen =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* concepts = int_range 4 14 in
    let* noise = float_range 0.0 0.5 in
    return
      {
        Workload.Generator.default_params with
        seed;
        concepts;
        naming_noise = noise;
        population = concepts * 10;
      })

let params =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "seed=%d concepts=%d noise=%f" p.Workload.Generator.seed
        p.Workload.Generator.concepts p.Workload.Generator.naming_noise)
    params_gen

(* Every structure (object class or relationship set) of a schema list,
   as qualified names — the owner universe the OCS matrix ranges over. *)
let owners schemas =
  List.concat_map
    (fun s ->
      List.map (fun oc -> Schema.qname s oc.Object_class.name) (Schema.objects s)
      @ List.map
          (fun r -> Schema.qname s r.Relationship.name)
          (Schema.relationships s))
    schemas

let attributes schemas =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun oc ->
          List.map
            (fun (a : Attribute.t) ->
              Qname.Attr.make (Schema.qname s oc.Object_class.name) a.Attribute.name)
            oc.Object_class.attributes)
        (Schema.objects s)
      @ List.concat_map
          (fun r ->
            List.map
              (fun (a : Attribute.t) ->
                Qname.Attr.make
                  (Schema.qname s r.Relationship.name)
                  a.Attribute.name)
              r.Relationship.attributes)
          (Schema.relationships s))
    schemas

let oracle_equivalence w s1 s2 =
  Protocol.collect_equivalences
    { Protocol.defaults with exhaustive_attribute_pairs = true }
    s1 s2 w.Workload.Generator.oracle Equivalence.empty

let index_matches_naive eq schemas =
  let index = Acs_index.build eq in
  let os = owners schemas in
  List.for_all
    (fun o1 ->
      List.for_all
        (fun o2 ->
          Acs_index.shared o1 o2 index = Equivalence.shared_count o1 o2 eq)
        os)
    os

(* A session: interleaved declares (pairing random attributes) and
   separates (random attributes), driven by index picks. *)
let session_gen =
  QCheck.Gen.(
    let* p = params_gen in
    let* ops = list_size (int_range 0 40) (triple bool nat nat) in
    return (p, ops))

let session =
  QCheck.make
    ~print:(fun (p, ops) ->
      Printf.sprintf "seed=%d concepts=%d ops=%d" p.Workload.Generator.seed
        p.Workload.Generator.concepts (List.length ops))
    session_gen

let indexed_engine_props =
  [
    qtest ~count:60 "indexed OCS matrix equals the naive partition scan" params
      (fun p ->
        let w = Workload.Generator.generate p in
        match w.Workload.Generator.schemas with
        | [ s1; s2 ] ->
            index_matches_naive (oracle_equivalence w s1 s2) [ s1; s2 ]
        | _ -> false);
    qtest ~count:60 "top-k is the k-prefix of the full ranking (ties included)"
      (QCheck.pair params (QCheck.make QCheck.Gen.(int_range 0 30)))
      (fun (p, k) ->
        let w = Workload.Generator.generate p in
        match w.Workload.Generator.schemas with
        | [ s1; s2 ] ->
            let index = Acs_index.build (oracle_equivalence w s1 s2) in
            Similarity.top_object_pairs ~k index s1 s2
            = Similarity.top k (Similarity.ranked_object_pairs_with index s1 s2)
            && Similarity.top_relationship_pairs ~k index s1 s2
               = Similarity.top k
                   (Similarity.ranked_relationship_pairs_with index s1 s2)
        | _ -> false);
    qtest ~count:60
      "incrementally patched workspace index equals a from-scratch rebuild"
      session
      (fun (p, ops) ->
        let w = Workload.Generator.generate p in
        let schemas = w.Workload.Generator.schemas in
        let attrs = Array.of_list (attributes schemas) in
        let n = Array.length attrs in
        if n = 0 then true
        else begin
          let ws =
            List.fold_left (fun ws s -> Workspace.add_schema s ws) Workspace.empty schemas
          in
          let ws =
            List.fold_left
              (fun ws (sep, i, j) ->
                if sep then Workspace.separate_attribute attrs.(i mod n) ws
                else
                  Workspace.declare_equivalent attrs.(i mod n) attrs.(j mod n) ws)
              ws ops
          in
          let rebuilt = Acs_index.build (Workspace.equivalence ws) in
          let patched = Workspace.index ws in
          let os = owners schemas in
          List.for_all
            (fun o1 ->
              List.for_all
                (fun o2 ->
                  Acs_index.shared o1 o2 patched
                  = Acs_index.shared o1 o2 rebuilt
                  && Acs_index.shared o1 o2 rebuilt
                     = Equivalence.shared_count o1 o2 (Workspace.equivalence ws))
                os)
            os
        end);
    qtest ~count:100 "Topk.select is the stable-sort prefix on any ints"
      QCheck.(pair (small_list (int_bound 5)) (QCheck.make QCheck.Gen.(int_range 0 12)))
      (fun (l, k) ->
        (* many duplicate keys, so the tie order is really exercised;
           pair each value with its position to detect reordering *)
        let decorated = List.mapi (fun i x -> (x, i)) l in
        let compare (a, _) (b, _) = Int.compare a b in
        let take n l = List.filteri (fun i _ -> i < n) l in
        Topk.select ~compare k decorated
        = take k (List.stable_sort compare decorated));
  ]

let () =
  Alcotest.run "similarity"
    [
      ("ratios", ratio_tests);
      ("ranking", ranking_tests);
      ("indexed-engine", indexed_engine_props);
    ]
