(* lib/par: pool unit and stress tests, and the headline
   parallel==sequential differential property — the full pipeline
   (integrated schema, mappings, lattice projection, Protocol.stats,
   obs pipeline counters) is structurally identical for every worker
   count, because Par.map is an ordered reduction and everything
   order-sensitive (DDA questions, matrix composition) stays on the
   submitting domain. *)

open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Abort the whole binary if a pool test wedges: these tests exist to
   prove the pool cannot deadlock, so hanging forever would be the one
   unacceptable outcome. *)
let with_watchdog seconds f =
  let previous =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> failwith "watchdog: pool test deadlocked"))
  in
  ignore (Unix.alarm seconds);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm previous)
    f

(* ------------------------------------------------------------------ *)
(* Pool unit/stress tests.                                             *)

let pool_tests =
  [
    tc "map is ordered and equal to List.map" (fun () ->
        with_watchdog 60 @@ fun () ->
        Par.with_pool ~jobs:4 @@ fun pool ->
        let xs = List.init 1000 Fun.id in
        check
          Alcotest.(list int)
          "squares in order"
          (List.map (fun x -> x * x) xs)
          (Par.map pool (fun x -> x * x) xs));
    tc "jobs:1 never spawns a domain" (fun () ->
        Par.with_pool ~jobs:1 @@ fun pool ->
        check Alcotest.int "no workers" 0 (Par.worker_count pool);
        Obs.with_enabled (fun () ->
            Obs.reset ();
            let ys = Par.map pool (fun x -> x + 1) (List.init 100 Fun.id) in
            check Alcotest.int "ran" 100 (List.length ys);
            check Alcotest.int "par.workers stays 0" 0
              (Obs.Counter.value (Obs.Counter.make "par.workers"));
            check Alcotest.int "par.tasks stays 0 on the bypass" 0
              (Obs.Counter.value (Obs.Counter.make "par.tasks"))));
    tc "worker exception propagates at await without deadlock" (fun () ->
        with_watchdog 60 @@ fun () ->
        Par.with_pool ~jobs:4 @@ fun pool ->
        (match
           Par.map pool
             (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x)
             (List.init 100 (fun i -> i + 1))
         with
        | _ -> Alcotest.fail "expected the task's exception"
        | exception Failure s ->
            (* all failing indices settle first; the lowest one wins *)
            check Alcotest.string "lowest failing element" "3" s);
        (* the pool survives a failing batch *)
        check
          Alcotest.(list int)
          "pool usable after failure" [ 2; 4; 6 ]
          (Par.map pool (fun x -> 2 * x) [ 1; 2; 3 ]));
    tc "pool survives reuse across many batches" (fun () ->
        with_watchdog 120 @@ fun () ->
        Par.with_pool ~jobs:4 @@ fun pool ->
        for round = 1 to 200 do
          let xs = List.init (1 + (round mod 17)) (fun i -> i * round) in
          let ys = Par.map pool (fun x -> x + 1) xs in
          if ys <> List.map (fun x -> x + 1) xs then
            Alcotest.failf "round %d differs" round
        done);
    tc "10k tiny tasks complete under the watchdog" (fun () ->
        with_watchdog 120 @@ fun () ->
        Par.with_pool ~jobs:8 @@ fun pool ->
        let xs = List.init 10_000 Fun.id in
        let ys = Par.map pool (fun x -> x land 1) xs in
        check Alcotest.int "all ran" 10_000 (List.length ys);
        check Alcotest.int "sum of parities" 5_000 (List.fold_left ( + ) 0 ys));
    tc "nested map on the same pool makes progress" (fun () ->
        with_watchdog 60 @@ fun () ->
        Par.with_pool ~jobs:3 @@ fun pool ->
        let outer =
          Par.map pool
            (fun x ->
              List.fold_left ( + ) 0
                (Par.map pool (fun y -> x + y) (List.init 40 Fun.id)))
            (List.init 12 Fun.id)
        in
        let expect x = (40 * x) + (40 * 39 / 2) in
        check
          Alcotest.(list int)
          "nested sums" (List.init 12 expect) outer);
    tc "iter runs every effect exactly once" (fun () ->
        with_watchdog 60 @@ fun () ->
        Par.with_pool ~jobs:4 @@ fun pool ->
        let hits = Atomic.make 0 in
        Par.iter pool (fun _ -> Atomic.incr hits) (List.init 500 Fun.id);
        check Alcotest.int "500 effects" 500 (Atomic.get hits));
  ]

(* ------------------------------------------------------------------ *)
(* The differential property: the whole pipeline is invariant in the
   worker count.                                                       *)

(* Counters that legitimately depend on the worker count: the pool's
   own bookkeeping and the per-site chunk-dispatch counters.  Every
   other counter — the pipeline counters — must match exactly. *)
let pipeline_counters () =
  List.filter
    (fun (name, _) ->
      not
        (String.length name >= 4
         && String.sub name 0 4 = "par."
        || Filename.check_suffix name ".parallel_chunks"))
    (Obs.Counter.all ())

type fingerprint = {
  ddl : string;
  mapping : string;
  summary : string;
  warnings : string list;
  stats : Protocol.stats;
  counters : (string * int) list;
}

let fingerprint ~jobs p =
  let w = Workload.Generator.generate p in
  Obs.reset ();
  let result, stats =
    Protocol.run ~jobs w.Workload.Generator.schemas w.Workload.Generator.oracle
  in
  {
    ddl = Ddl.Printer.to_string result.Result.schema;
    mapping = Format.asprintf "%a" Mapping.pp result.Result.mapping;
    summary = Result.summary result;
    warnings = result.Result.warnings;
    stats;
    counters = pipeline_counters ();
  }

let params_gen =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* schemas = int_range 2 4 in
    let* concepts = int_range 6 14 in
    let* noise = float_range 0.0 0.5 in
    return
      {
        Workload.Generator.default_params with
        seed;
        schemas;
        concepts;
        naming_noise = noise;
        population = 100;
      })

let params =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "seed=%d schemas=%d concepts=%d noise=%f"
        p.Workload.Generator.seed p.Workload.Generator.schemas
        p.Workload.Generator.concepts p.Workload.Generator.naming_noise)
    params_gen

let explain_difference jobs seq par =
  if seq.ddl <> par.ddl then Printf.sprintf "jobs=%d: integrated DDL differs" jobs
  else if seq.mapping <> par.mapping then
    Printf.sprintf "jobs=%d: mappings differ" jobs
  else if seq.summary <> par.summary then
    Printf.sprintf "jobs=%d: summary differs" jobs
  else if seq.warnings <> par.warnings then
    Printf.sprintf "jobs=%d: warnings differ" jobs
  else if seq.stats <> par.stats then
    Printf.sprintf "jobs=%d: protocol stats differ" jobs
  else
    let pairs = List.combine seq.counters par.counters in
    let (name, a), (_, b) =
      List.find (fun ((_, a), (_, b)) -> a <> b) pairs
    in
    Printf.sprintf "jobs=%d: counter %s differs (%d vs %d)" jobs name a b

let differential_tests =
  [
    qtest ~count:8 "pipeline is invariant in jobs (1 == 2 == 4 == 8)" params
      (fun p ->
        with_watchdog 300 @@ fun () ->
        Obs.with_enabled @@ fun () ->
        let seq = fingerprint ~jobs:1 p in
        List.for_all
          (fun jobs ->
            let par = fingerprint ~jobs p in
            if par = seq then true
            else QCheck.Test.fail_report (explain_difference jobs seq par))
          [ 2; 4; 8 ]);
    qtest ~count:6 "populate is invariant in jobs" params (fun p ->
        with_watchdog 120 @@ fun () ->
        let w = Workload.Generator.generate p in
        let dump stores =
          List.map
            (fun (s, st) -> Instance.Loader.to_string s st)
            stores
        in
        let seq = dump (Workload.Generator.populate ~jobs:1 w) in
        List.for_all
          (fun jobs -> dump (Workload.Generator.populate ~jobs w) = seq)
          [ 2; 4 ]);
  ]

let () =
  Alcotest.run "par"
    [ ("pool", pool_tests); ("differential", differential_tests) ]
