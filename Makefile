# Tier-1 verification plus the doc/formatting gates.  `make check` is
# what a PR must keep green.

.PHONY: all build test doc fmt-check crash-test serve-test scenario-test chaos-test metrics bench-quick bench-diff docs-check check clean

all: build

build:
	dune build

# The suite runs twice: once sequentially and once with a worker pool
# sized to the machine (SIT_JOBS is read by Par.default_jobs — see
# lib/par/par.mli).  The differential tests assert both schedules
# produce identical results, so a pass here covers the determinism
# contract, not just "the code runs".
NPROC ?= $(shell nproc 2>/dev/null || echo 2)
test:
	SIT_JOBS=1 dune runtest --force
	SIT_JOBS=$(NPROC) dune runtest --force

doc:
	dune build @doc

# Formatting is scoped to dune files in dune-project (ocamlformat is
# not vendored), so the preview is deterministic everywhere.
fmt-check:
	@out=$$(dune fmt --preview 2>&1); \
	if [ -n "$$out" ]; then \
	  echo "$$out"; \
	  echo "fmt-check: 'dune fmt --preview' is not clean (run 'dune fmt')"; \
	  exit 1; \
	fi
	@echo "fmt-check: clean"

# The journal fault-injection harness (docs/ROBUSTNESS.md): truncation
# at every record boundary, torn writes at arbitrary byte budgets and
# single-bit flips, under both schedules.  Also part of `make check`.
crash-test: build
	SIT_JOBS=1 dune exec test/test_journal.exe
	SIT_JOBS=$(NPROC) dune exec test/test_journal.exe

# End-to-end daemon check (docs/SERVING.md): start sit_serve on the
# paper session over a unix socket, replay 1000 requests over 4
# connections with byte-identity checking, probe the error paths, and
# verify SIGTERM drains.  Also part of `make check`.
serve-test: build
	sh scripts/serve_test.sh

# Federation-scale differential harness (docs/SCENARIOS.md): three
# pinned seeds — 11 (8 schemas, 241 ops), 23 (5 schemas, 196 ops) and
# 42 (6 schemas, single round) — each replayed through five legs
# (offline SIT_JOBS=1 and SIT_JOBS=nproc, a daemon over the JSON and
# binary protocols, and a checkpoint-resumed daemon), all required to
# produce byte-identical transcripts with full ground-truth recovery.
# Budget: about 4 seconds per seed.  Also part of `make check`.
scenario-test: build
	sh scripts/scenario_test.sh

# Replication chaos harness (docs/ROBUSTNESS.md): a pinned-seed
# scenario through a leader + 2-follower cluster — semi-sync acks,
# follower catch-up, a SIGKILLed leader with client failover, and a
# late-started follower — every leg byte-compared against a
# single-node reference.  Budget: about 4 seconds.  Also part of
# `make check`.
chaos-test: build
	sh scripts/chaos_test.sh

# Regenerate the observability baseline (see docs/ARCHITECTURE.md).
metrics:
	dune exec bench/main.exe -- metrics

# The experiments a data-plane or serving change most wants while
# iterating: E21 (serving throughput), E23 (wire protocols + flat
# kernels) and E24 (scenario engine).  Much faster than the full
# `dune exec bench/main.exe`.
bench-quick:
	dune exec bench/main.exe -- e21 e23 e24

# Compare two metrics reports and fail on span regressions beyond the
# threshold — the PR-over-PR perf gate (see docs/PERFORMANCE.md).
# Usage: make bench-diff [OLD=BENCH_pr9.json] [NEW=BENCH_pr10.json]
#        [THRESHOLD=0.25] [MIN_SECONDS=0.0005]
OLD ?= BENCH_pr9.json
NEW ?= BENCH_pr10.json
THRESHOLD ?= 0.25
MIN_SECONDS ?= 0.0005
bench-diff:
	dune exec bench/diff.exe -- $(OLD) $(NEW) \
	  --threshold $(THRESHOLD) --min-seconds $(MIN_SECONDS)

# Docs drift gate (see scripts/docs_check.sh): every docs/*.md guide
# must be linked from README.md, and the op table in docs/SERVING.md
# must match the wire protocol's op registry (Wire.ops).
docs-check:
	sh scripts/docs_check.sh

check: build test crash-test serve-test scenario-test chaos-test doc fmt-check docs-check
	@echo "check: build, tests, crash-test, serve-test, scenario-test, chaos-test, docs and formatting all green"

clean:
	dune clean
