# Tier-1 verification plus the doc/formatting gates.  `make check` is
# what a PR must keep green.

.PHONY: all build test doc fmt-check metrics check clean

all: build

build:
	dune build

test:
	dune runtest

doc:
	dune build @doc

# Formatting is scoped to dune files in dune-project (ocamlformat is
# not vendored), so the preview is deterministic everywhere.
fmt-check:
	@out=$$(dune fmt --preview 2>&1); \
	if [ -n "$$out" ]; then \
	  echo "$$out"; \
	  echo "fmt-check: 'dune fmt --preview' is not clean (run 'dune fmt')"; \
	  exit 1; \
	fi
	@echo "fmt-check: clean"

# Regenerate the observability baseline (see docs/ARCHITECTURE.md).
metrics:
	dune exec bench/main.exe -- metrics

check: build test doc fmt-check
	@echo "check: build, tests, docs and formatting all green"

clean:
	dune clean
