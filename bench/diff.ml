(* bench-diff: compare two lib/obs metrics reports (BENCH_*.json) and
   flag span-time regressions beyond a threshold, so a PR can state its
   perf delta mechanically (see docs/PERFORMANCE.md).

   Usage:
     dune exec bench/diff.exe -- OLD.json NEW.json \
         [--threshold 0.25] [--min-seconds 0.0005]

   Span paths (slash-joined names down the tree) present in both
   reports are compared on inclusive time; a path is a regression when
   its new total exceeds the old by more than THRESHOLD (relative) and
   the old total is at least MIN_SECONDS (micro-spans are noise).
   Counters are compared informationally.  Exit status: 0 when no span
   regressed, 1 otherwise, 2 on usage/parse errors. *)

let usage () =
  prerr_endline
    "usage: bench/diff.exe OLD.json NEW.json [--threshold R] [--min-seconds S]";
  exit 2

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> prerr_endline e; exit 2 in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match Obs.Json.of_string (read_file path) with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2

(* --- span tree flattening ------------------------------------------ *)

type span = { count : int; total_s : float }

let rec flatten prefix json acc =
  match json with
  | Obs.Json.Obj _ ->
      let str k = Obs.Json.member k json in
      let name =
        match str "name" with Some (Obs.Json.String s) -> s | _ -> "?"
      in
      let num k =
        match str k with
        | Some (Obs.Json.Float f) -> f
        | Some (Obs.Json.Int i) -> float_of_int i
        | _ -> 0.0
      in
      let path = if prefix = "" then name else prefix ^ "/" ^ name in
      let acc =
        (path, { count = int_of_float (num "count"); total_s = num "total_s" })
        :: acc
      in
      (match str "children" with
      | Some (Obs.Json.List children) ->
          List.fold_left (fun acc c -> flatten path c acc) acc children
      | _ -> acc)
  | _ -> acc

let spans_of report =
  match Obs.Json.member "spans" report with
  | Some (Obs.Json.List roots) ->
      List.fold_left (fun acc r -> flatten "" r acc) [] roots |> List.rev
  | _ -> []

let counters_of report =
  match Obs.Json.member "counters" report with
  | Some (Obs.Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match v with Obs.Json.Int i -> Some (k, i) | _ -> None)
        fields
  | _ -> []

(* ------------------------------------------------------------------ *)

let () =
  let threshold = ref 0.25 and min_seconds = ref 0.0005 in
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        threshold := float_of_string v;
        parse_args rest
    | "--min-seconds" :: v :: rest ->
        min_seconds := float_of_string v;
        parse_args rest
    | ("--threshold" | "--min-seconds") :: [] -> usage ()
    | x :: rest ->
        positional := x :: !positional;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !positional with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let old_spans = spans_of (parse old_path)
  and new_spans = spans_of (parse new_path) in
  Printf.printf "bench-diff: %s -> %s (threshold %+.0f%%, floor %gs)\n\n"
    old_path new_path (100.0 *. !threshold) !min_seconds;
  Printf.printf "%-58s %12s %12s %9s\n" "span path" "old s" "new s" "delta";
  (* Spans present in only one report are reported explicitly as
     removed/new (a renamed phase shows up as one of each) and are
     never regressions: there is nothing to compare.  A span with zero
     old time has no meaningful relative delta either. *)
  let regressions = ref 0 and removed = ref 0 and added = ref 0 in
  List.iter
    (fun (path, o) ->
      match List.assoc_opt path new_spans with
      | None ->
          incr removed;
          Printf.printf "%-58s %12.6f %12s %9s\n" path o.total_s "-" "removed"
      | Some n ->
          if o.total_s > 0.0 then begin
            let delta = (n.total_s -. o.total_s) /. o.total_s in
            let flag = o.total_s >= !min_seconds && delta > !threshold in
            if flag then incr regressions;
            Printf.printf "%-58s %12.6f %12.6f %+8.1f%%%s\n" path o.total_s
              n.total_s (100.0 *. delta)
              (if flag then "  << REGRESSION" else "")
          end
          else
            Printf.printf "%-58s %12.6f %12.6f %9s\n" path o.total_s n.total_s
              "n/a")
    old_spans;
  List.iter
    (fun (path, n) ->
      if not (List.mem_assoc path old_spans) then begin
        incr added;
        Printf.printf "%-58s %12s %12.6f %9s\n" path "-" n.total_s "new"
      end)
    new_spans;
  if !added > 0 || !removed > 0 then
    Printf.printf
      "\n%d span path(s) only in %s (new), %d only in %s (removed)\n" !added
      new_path !removed old_path;
  let old_counters = counters_of (parse old_path)
  and new_counters = counters_of (parse new_path) in
  Printf.printf "\n%-58s %12s %12s\n" "counter" "old" "new";
  let names =
    List.sort_uniq compare
      (List.map fst old_counters @ List.map fst new_counters)
  in
  List.iter
    (fun name ->
      let v l = match List.assoc_opt name l with Some i -> string_of_int i | None -> "-" in
      Printf.printf "%-58s %12s %12s\n" name (v old_counters) (v new_counters))
    names;
  if !regressions > 0 then begin
    Printf.printf "\n%d span path(s) regressed beyond %+.0f%%\n" !regressions
      (100.0 *. !threshold);
    exit 1
  end
  else print_endline "\nno span regressions"
