(* The per-experiment regenerators: one function per paper artifact
   (figures 2a-2e, 3-6, screens 1-12b) and per implied quantitative
   claim.  See EXPERIMENTS.md for the paper-vs-measured record. *)

open Ecr
open Integrate

let section id title =
  Printf.printf "\n%s\n" (String.make 74 '=');
  Printf.printf "%s  %s\n" id title;
  Printf.printf "%s\n" (String.make 74 '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

(* ------------------------------------------------------------------ *)
(* E1-E5: Figures 2a-2e, the five assertion outcomes.                  *)

let fig2 (mini : Workload.Paper.mini) =
  Printf.printf "\ninput : %s.%s and %s.%s, asserted '%s'\n"
    (Name.to_string (Schema.name mini.Workload.Paper.left))
    (Qname.to_string (fst mini.Workload.Paper.pair) |> fun s ->
     List.nth (String.split_on_char '.' s) 1)
    (Name.to_string (Schema.name mini.Workload.Paper.right))
    (Qname.to_string (snd mini.Workload.Paper.pair) |> fun s ->
     List.nth (String.split_on_char '.' s) 1)
    (Assertion.to_string mini.Workload.Paper.assertion);
  Printf.printf "paper : %s\n" mini.Workload.Paper.expect;
  let r = Workload.Paper.integrate_mini mini in
  Printf.printf "ours  :\n%s\n" (Ddl.Printer.to_string r.Result.schema)

let e1 () =
  section "E1" "Figure 2a - identical domains (equals)";
  fig2 Workload.Paper.fig2a

let e2 () =
  section "E2" "Figure 2b - contained domains (contains)";
  fig2 Workload.Paper.fig2b

let e3 () =
  section "E3" "Figure 2c - overlapping domains (may be)";
  fig2 Workload.Paper.fig2c

let e4 () =
  section "E4" "Figure 2d - disjoint integrable";
  fig2 Workload.Paper.fig2d

let e5 () =
  section "E5" "Figure 2e - disjoint nonintegrable";
  fig2 Workload.Paper.fig2e

(* ------------------------------------------------------------------ *)
(* E6: Figures 3, 4 and 5 - the paper's worked example.                *)

let e6 () =
  section "E6" "Figures 3+4 -> 5: integrating sc1 and sc2";
  subsection "component schemas (Figures 3 and 4)";
  print_string (Ddl.Printer.to_string Workload.Paper.sc1);
  print_newline ();
  print_string (Ddl.Printer.to_string Workload.Paper.sc2);
  print_newline ();
  let r = Workload.Paper.integrate_sc1_sc2 () in
  subsection "integrated schema (Figure 5)";
  print_string (Ddl.Printer.to_string r.Result.schema);
  print_newline ();
  subsection "paper vs ours (Screen 10 inventory)";
  let names get fmt_of =
    String.concat ", " (List.map fmt_of (get r.Result.schema))
  in
  Printf.printf "paper entities      : E_Department, D_Stud_Facu\n";
  Printf.printf "ours  entities      : %s\n"
    (names Schema.entities (fun o -> Name.to_string o.Object_class.name));
  Printf.printf "paper categories    : Student, Grad_student, Faculty\n";
  Printf.printf "ours  categories    : %s\n"
    (names Schema.categories (fun o -> Name.to_string o.Object_class.name));
  Printf.printf "paper relationships : E_Stud_Majo, Works\n";
  Printf.printf "ours  relationships : %s\n"
    (names Schema.relationships (fun rl -> Name.to_string rl.Relationship.name))

(* ------------------------------------------------------------------ *)
(* E7: Screen 8 - the attribute-ratio ranking.                         *)

let paper_equivalence () =
  List.fold_left
    (fun eq (x, y) -> Equivalence.declare x y eq)
    (Equivalence.register_schema Workload.Paper.sc2
       (Equivalence.register_schema Workload.Paper.sc1 Equivalence.empty))
    Workload.Paper.equivalences

let e7 () =
  section "E7" "Screen 8: ranked object pairs with attribute ratios";
  let eq = paper_equivalence () in
  Printf.printf "\n%-24s %-24s %-10s (paper)\n" "Schema1.Object1"
    "Schema2.Object2" "RATIO";
  let paper_ratios =
    [
      ("sc1.Department", "sc2.Department", "0.5000");
      ("sc1.Student", "sc2.Grad_student", "0.5000");
      ("sc1.Student", "sc2.Faculty", "0.3333");
    ]
  in
  List.iteri
    (fun i rk ->
      let expected =
        if i < List.length paper_ratios then
          let _, _, r = List.nth paper_ratios i in
          r
        else "-"
      in
      Printf.printf "%-24s %-24s %.4f     (%s)\n"
        (Qname.to_string rk.Similarity.left)
        (Qname.to_string rk.Similarity.right)
        rk.Similarity.ratio expected)
    (Similarity.ranked_object_pairs Workload.Paper.sc1 Workload.Paper.sc2 eq)

(* ------------------------------------------------------------------ *)
(* E8: Screen 9 - assertion conflict detection.                        *)

let e8 () =
  section "E8" "Screen 9: the sc3/sc4 assertion conflict";
  let q = Qname.v in
  let m = Assertions.create [ Workload.Paper.sc3; Workload.Paper.sc4 ] in
  let m =
    match
      Assertions.add (q "sc3" "Instructor") Assertion.Contained_in
        (q "sc4" "Grad_student") m
    with
    | Ok m -> m
    | Error _ -> failwith "fixture"
  in
  match
    Assertions.add (q "sc3" "Instructor") Assertion.Disjoint_nonintegrable
      (q "sc4" "Student") m
  with
  | Ok _ -> print_endline "UNEXPECTED: conflict missed"
  | Error c -> print_string (Tui.Canvas.to_string (Tui.Screens.conflict_resolution c))

(* ------------------------------------------------------------------ *)
(* E9: Screens 1-12b, rendered.                                        *)

let e9 () =
  section "E9" "Screens 1-12b, rendered by the tool";
  let r = Workload.Paper.integrate_sc1_sc2 () in
  let eq = paper_equivalence () in
  let screens =
    [
      ("Screen 1", Tui.Screens.main_menu ());
      ( "Screen 2",
        Tui.Screens.schema_name_collection ~names:[ "sc1"; "sc2" ] );
      ("Screen 3", Tui.Screens.structure_information Workload.Paper.sc1);
      ( "Screen 4",
        Tui.Screens.relationship_information Workload.Paper.sc1 (Name.v "Majors") );
      ( "Screen 5",
        Tui.Screens.attribute_information Workload.Paper.sc1 (Name.v "Student") );
      ( "Screen 6",
        Tui.Screens.object_selection Workload.Paper.sc1 Workload.Paper.sc2 );
      ( "Screen 7",
        Tui.Screens.equivalence_classes eq
          (Workload.Paper.sc1, Name.v "Student")
          (Workload.Paper.sc2, Name.v "Grad_student") );
      ( "Screen 8",
        Tui.Screens.assertion_collection
          ~answered:
            (List.map (fun (l, a, r) -> (l, r, a)) Workload.Paper.object_assertions)
          (Similarity.ranked_object_pairs Workload.Paper.sc1 Workload.Paper.sc2 eq)
      );
      ("Screen 10", Tui.Screens.object_class_screen r);
      ("Screen 11", Tui.Screens.category_screen r (Name.v "Student"));
      ( "Screen 12a",
        Tui.Screens.component_attribute_screen
          ~schemas:[ Workload.Paper.sc1; Workload.Paper.sc2 ]
          r (Name.v "Student") (Name.v "D_GPA") ~index:0 );
      ( "Screen 12b",
        Tui.Screens.component_attribute_screen
          ~schemas:[ Workload.Paper.sc1; Workload.Paper.sc2 ]
          r (Name.v "Student") (Name.v "D_GPA") ~index:1 );
    ]
  in
  List.iter
    (fun (label, canvas) ->
      Printf.printf "\n[%s]\n%s" label (Tui.Canvas.to_string canvas))
    screens;
  (* Screen 9 is the conflict screen, regenerated in E8. *)
  print_endline "\n[Screen 9] see experiment E8."

(* ------------------------------------------------------------------ *)
(* E10: Figure 6 - the screen control-flow graph.                      *)

let e10 () =
  section "E10" "Figure 6: control flow of the result-viewing screens";
  List.iter
    (fun (t, l, h) ->
      Printf.printf "  %-38s --%s--> %s\n" (Tui.Flow.screen_name t) l
        (Tui.Flow.screen_name h))
    Tui.Flow.arcs;
  let reachable = Tui.Flow.reachable_from Tui.Flow.Object_class in
  Printf.printf "\nreachable from the Object Class Screen: %d of %d screens\n"
    (List.length reachable)
    (List.length Tui.Flow.all_screens)

(* ------------------------------------------------------------------ *)
(* E11: ranking quality of the resemblance heuristic.                  *)

let questions_to_find_all ~ranked ~true_pairs =
  (* position (1-based) of the last true pair in the ranked order; the
     number of pairs a DDA reviews before confirming every true match *)
  let position (a, b) =
    let rec look i = function
      | [] -> max_int
      | rk :: rest ->
          if
            (Qname.equal rk.Similarity.left a && Qname.equal rk.Similarity.right b)
            || (Qname.equal rk.Similarity.left b && Qname.equal rk.Similarity.right a)
          then i
          else look (i + 1) rest
    in
    look 1 ranked
  in
  match true_pairs with
  | [] -> 0
  | _ -> List.fold_left (fun acc p -> Int.max acc (position p)) 0 true_pairs

let e11 () =
  section "E11" "resemblance-ranked review vs arbitrary order";
  Printf.printf "\n%-9s %-6s %-7s %-7s %-12s %-12s %-9s\n" "concepts" "noise"
    "pairs" "true" "ranked-last" "random-last" "prec@k";
  List.iter
    (fun concepts ->
      List.iter
        (fun noise ->
          let w =
            Workload.Generator.generate
              {
                Workload.Generator.default_params with
                seed = 1000 + concepts + int_of_float (noise *. 100.);
                concepts;
                naming_noise = noise;
                population = 200;
              }
          in
          match w.Workload.Generator.schemas with
          | [ s1; s2 ] ->
              let eq =
                Protocol.collect_equivalences
                  { Protocol.defaults with exhaustive_attribute_pairs = true }
                  s1 s2 w.Workload.Generator.oracle Equivalence.empty
              in
              let ranked = Similarity.ranked_object_pairs s1 s2 eq in
              let total = List.length ranked in
              let k = List.length w.Workload.Generator.true_pairs in
              let last =
                questions_to_find_all ~ranked
                  ~true_pairs:w.Workload.Generator.true_pairs
              in
              (* arbitrary order: expected position of the last of k true
                 pairs among n is k(n+1)/(k+1) *)
              let random_last =
                if k = 0 then 0
                else k * (total + 1) / (k + 1)
              in
              let topk = Similarity.top k ranked in
              let hits =
                List.length
                  (List.filter
                     (fun rk ->
                       List.exists
                         (fun (x, y) ->
                           (Qname.equal x rk.Similarity.left
                           && Qname.equal y rk.Similarity.right)
                           || (Qname.equal y rk.Similarity.left
                              && Qname.equal x rk.Similarity.right))
                         w.Workload.Generator.true_pairs)
                     topk)
              in
              Printf.printf "%-9d %-6.2f %-7d %-7d %-12d %-12d %-9s\n" concepts
                noise total k last random_last
                (if k = 0 then "-"
                 else Printf.sprintf "%.2f" (float_of_int hits /. float_of_int k))
          | _ -> ())
        [ 0.0; 0.3; 0.6 ])
    [ 8; 16; 32 ];
  print_endline
    "\n(ranked-last: pairs reviewed before every true correspondence is\n\
    \ seen when following the heuristic; random-last: expected value for\n\
    \ an arbitrary review order - the paper's claim is the first column\n\
    \ being much smaller)"

(* ------------------------------------------------------------------ *)
(* E12: automation by transitive derivation.                           *)

let e12 () =
  section "E12" "assertions derived automatically by transitive composition";
  Printf.printf "\n%-9s %-9s %-10s %-10s %-10s %-12s\n" "schemas" "classes"
    "pairs" "asked" "derived" "automation";
  List.iter
    (fun k ->
      let w =
        Workload.Generator.generate
          {
            Workload.Generator.default_params with
            seed = 2000 + k;
            schemas = k;
            concepts = 10;
            population = 150;
          }
      in
      let counters = Dda.fresh_counters () in
      let dda = Dda.counting counters w.Workload.Generator.oracle in
      let result, stats = Protocol.run w.Workload.Generator.schemas dda in
      let classes =
        List.fold_left
          (fun acc s -> acc + List.length (Schema.objects s))
          0 w.Workload.Generator.schemas
      in
      let total = stats.Protocol.pairs_presented + stats.Protocol.pairs_skipped_determined in
      ignore result;
      Printf.printf "%-9d %-9d %-10d %-10d %-10d %9.1f%%\n" k classes total
        stats.Protocol.pairs_presented stats.Protocol.pairs_skipped_determined
        (if total = 0 then 0.0
         else
           100.0
           *. float_of_int stats.Protocol.pairs_skipped_determined
           /. float_of_int total))
    [ 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* E13: n-ary (the paper) vs binary strategies.                        *)

let e13 () =
  section "E13" "n-ary integration vs binary ladder/balanced/guided";
  Printf.printf "\n%-10s %-7s %-11s %-11s %-10s %-9s\n" "strategy" "steps"
    "obj-quest" "attr-quest" "presented" "derived";
  let run label strategy =
    let w =
      Workload.Generator.generate
        {
          Workload.Generator.default_params with
          seed = 3000;
          schemas = 4;
          concepts = 10;
          population = 150;
        }
    in
    let counters = Dda.fresh_counters () in
    let dda = Dda.counting counters w.Workload.Generator.oracle in
    let outcome = strategy w dda in
    Printf.printf "%-10s %-7d %-11d %-11d %-10d %-9d\n" label
      outcome.Strategy.steps counters.Dda.object_questions
      counters.Dda.attr_questions outcome.Strategy.stats.Protocol.pairs_presented
      outcome.Strategy.stats.Protocol.pairs_skipped_determined
  in
  run "n-ary" (fun w dda -> Strategy.nary w.Workload.Generator.schemas dda);
  run "ladder" (fun w dda ->
      Strategy.binary_ladder ~register:w.Workload.Generator.register
        w.Workload.Generator.schemas dda);
  run "balanced" (fun w dda ->
      Strategy.binary_balanced ~register:w.Workload.Generator.register
        w.Workload.Generator.schemas dda);
  run "guided" (fun w dda ->
      Strategy.binary_guided ~register:w.Workload.Generator.register
        ~weights:(Heuristics.Resemblance.default_weights Heuristics.Synonyms.default)
        w.Workload.Generator.schemas dda);
  print_endline
    "\n(binary strategies re-ask about intermediate classes; the paper's\n\
    \ n-ary approach collects assertions once per component pair)"

(* ------------------------------------------------------------------ *)
(* E14: scaling of closure + integration.                              *)

let workload_of_size concepts =
  Workload.Generator.generate
    {
      Workload.Generator.default_params with
      seed = 4000 + concepts;
      concepts;
      population = Int.max 200 (concepts * 12);
      relationship_concepts = concepts / 3;
    }

let time_once f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, t1 -. t0)

let e14 () =
  section "E14" "scaling: protocol + integration wall clock";
  Printf.printf "\n%-9s %-9s %-10s %-12s %-14s\n" "concepts" "classes" "pairs"
    "time (s)" "result";
  List.iter
    (fun concepts ->
      let w = workload_of_size concepts in
      let classes =
        List.fold_left
          (fun acc s -> acc + List.length (Schema.objects s))
          0 w.Workload.Generator.schemas
      in
      let (result, stats), dt =
        time_once (fun () ->
            Protocol.run w.Workload.Generator.schemas w.Workload.Generator.oracle)
      in
      Printf.printf "%-9d %-9d %-10d %-12.3f %s\n" concepts classes
        (stats.Protocol.pairs_presented + stats.Protocol.pairs_skipped_determined)
        dt
        (Result.summary result))
    [ 10; 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* E15: ablation of the section-4 matching enhancements.               *)

let e15 () =
  section "E15" "ablation: string/synonym/domain signals for candidate pairs";
  let dict = Heuristics.Synonyms.default in
  let configurations =
    [
      ("name-only", [ (1.0, Heuristics.Resemblance.name_signal) ]);
      ( "name+syn",
        [
          (0.6, Heuristics.Resemblance.name_signal);
          (0.4, Heuristics.Resemblance.synonym_signal dict);
        ] );
      ( "full",
        Heuristics.Resemblance.default_weights dict );
    ]
  in
  Printf.printf "\n%-10s %-7s %-11s %-11s %-9s %-9s\n" "signals" "noise"
    "questions" "exhaustive" "recall" "precision";
  List.iter
    (fun noise ->
      let w =
        Workload.Generator.generate
          {
            Workload.Generator.default_params with
            seed = 5000 + int_of_float (noise *. 10.);
            concepts = 16;
            naming_noise = noise;
            population = 200;
          }
      in
      match w.Workload.Generator.schemas with
      | [ s1; s2 ] ->
          let exhaustive_count =
            let counters = Dda.fresh_counters () in
            let dda = Dda.counting counters w.Workload.Generator.oracle in
            let _ =
              Protocol.collect_equivalences
                { Protocol.defaults with exhaustive_attribute_pairs = true }
                s1 s2 dda Equivalence.empty
            in
            counters.Dda.attr_questions
          in
          (* the truth: number of equivalent cross-schema attribute pairs *)
          let truth_count =
            let count = ref 0 in
            List.iter
              (fun oc1 ->
                List.iter
                  (fun oc2 ->
                    List.iter
                      (fun (a1 : Attribute.t) ->
                        List.iter
                          (fun (a2 : Attribute.t) ->
                            let qa1 =
                              Qname.Attr.make
                                (Schema.qname s1 oc1.Object_class.name)
                                a1.Attribute.name
                            and qa2 =
                              Qname.Attr.make
                                (Schema.qname s2 oc2.Object_class.name)
                                a2.Attribute.name
                            in
                            match
                              ( w.Workload.Generator.attr_id qa1,
                                w.Workload.Generator.attr_id qa2 )
                            with
                            | Some x, Some y when x = y -> incr count
                            | _ -> ())
                          oc2.Object_class.attributes)
                      oc1.Object_class.attributes)
                  (Schema.objects s2))
              (Schema.objects s1);
            !count
          in
          List.iter
            (fun (label, weights) ->
              let counters = Dda.fresh_counters () in
              let dda = Dda.counting counters w.Workload.Generator.oracle in
              let eq =
                Protocol.collect_equivalences
                  {
                    Protocol.defaults with
                    exhaustive_attribute_pairs = false;
                    suggestion_weights = weights;
                  }
                  s1 s2 dda Equivalence.empty
              in
              let found =
                List.length (Equivalence.nontrivial_classes eq)
              in
              let yes_answers =
                (* every nontrivial class stems from >= 1 yes answer *)
                found
              in
              Printf.printf "%-10s %-7.2f %-11d %-11d %-9s %-9s\n" label noise
                counters.Dda.attr_questions exhaustive_count
                (if truth_count = 0 then "-"
                 else Printf.sprintf "%.2f" (float_of_int found /. float_of_int truth_count))
                (if counters.Dda.attr_questions = 0 then "-"
                 else
                   Printf.sprintf "%.2f"
                     (float_of_int yes_answers
                     /. float_of_int counters.Dda.attr_questions)))
            configurations
      | _ -> ())
    [ 0.0; 0.3; 0.6 ];
  print_endline
    "\n(questions: attribute pairs the DDA is asked about when only\n\
    \ heuristic candidates are surfaced, vs the exhaustive cross product;\n\
    \ recall: fraction of true equivalence classes found)";
  subsection "cross-construct correspondence (the marriage example)";
  let weights = Heuristics.Resemblance.default_weights dict in
  let s1 =
    Schema.make (Name.v "a")
      ~objects:
        [
          Object_class.entity
            ~attrs:
              [
                Attribute.v "Marriage_date" "date";
                Attribute.v "Marriage_location" "char";
                Attribute.v "Number_of_children" "int";
              ]
            (Name.v "Marriage");
        ]
      ~relationships:[]
  and s2 =
    Schema.make (Name.v "b")
      ~objects:
        [
          Object_class.entity ~attrs:[ Attribute.v ~key:true "Name" "char" ]
            (Name.v "Male");
          Object_class.entity ~attrs:[ Attribute.v ~key:true "Name" "char" ]
            (Name.v "Female");
        ]
      ~relationships:
        [
          Relationship.binary
            ~attrs:
              [
                Attribute.v "Marriage_date" "date";
                Attribute.v "Marriage_location" "char";
                Attribute.v "Number_of_children" "int";
              ]
            (Name.v "Married_to")
            (Name.v "Male", Cardinality.at_most_one)
            (Name.v "Female", Cardinality.at_most_one);
        ]
  in
  List.iter
    (fun c ->
      Printf.printf
        "candidate: entity %s ~ relationship %s (%d shared attributes, score %.2f)\n"
        (Qname.to_string c.Heuristics.Construct.entity_side)
        (Qname.to_string c.Heuristics.Construct.relationship_side)
        (List.length c.Heuristics.Construct.shared_attributes)
        c.Heuristics.Construct.score)
    (Heuristics.Construct.detect weights s1 s2)

(* ------------------------------------------------------------------ *)
(* E16: mapping correctness, verified on instances.                    *)

let e16 () =
  section "E16" "generated mappings preserve query answers (Phase 4 claim)";
  subsection "the paper's example";
  let r = Workload.Paper.integrate_sc1_sc2 () in
  ignore r;
  Printf.printf
    "view->integrated and integrated->component translations on sc1/sc2\n\
     instances are exercised in test/test_query.ml; here, scale checks:\n";
  subsection "generated federations";
  Printf.printf "\n%-6s %-9s %-9s %-8s %-9s %-12s\n" "seed" "entities"
    "migrated" "fused" "queries" "containment";
  List.iter
    (fun seed ->
      let w =
        Workload.Generator.generate
          {
            Workload.Generator.default_params with
            seed;
            concepts = 12;
            population = 250;
          }
      in
      let result, _ =
        Protocol.run w.Workload.Generator.schemas w.Workload.Generator.oracle
      in
      let stores = Workload.Generator.populate w in
      let merged, report =
        Query.Migrate.run result.Result.mapping ~integrated:result.Result.schema
          stores
      in
      let queries = ref 0 and ok = ref true in
      let multiset_subset small big =
        let count rows r =
          List.length
            (List.filter (fun r' -> Name.Map.equal Instance.Value.equal r r') rows)
        in
        List.for_all (fun r -> count small r <= count big r) small
      in
      List.iter
        (fun (s, st) ->
          List.iter
            (fun oc ->
              incr queries;
              let view_q = Query.Ast.query (Name.to_string oc.Object_class.name) in
              let q', back =
                Query.Rewrite.to_integrated result.Result.mapping ~view:s view_q
              in
              if
                not
                  (multiset_subset (Query.Eval.run view_q st)
                     (back (Query.Eval.run q' merged)))
              then ok := false)
            (Schema.objects s))
        stores;
      Printf.printf "%-6d %-9d %-9d %-8d %-9d %-12s\n" seed
        report.Query.Migrate.entities_in report.Query.Migrate.entities_out
        report.Query.Migrate.fused !queries
        (if !ok then "all hold" else "VIOLATED"))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* E17: conflict detection under DDA error.                            *)

let e17 () =
  section "E17" "conflict detection with an erring DDA";
  Printf.printf "\n%-8s %-10s %-10s %-10s %-12s\n" "error" "presented"
    "accepted" "rejected" "caught/wrong";
  List.iter
    (fun error_rate ->
      let trials = 10 in
      let presented = ref 0
      and accepted = ref 0
      and rejected = ref 0
      and wrong_entered = ref 0 in
      for trial = 1 to trials do
        let w =
          Workload.Generator.generate
            {
              Workload.Generator.default_params with
              seed = 6000 + trial;
              concepts = 10;
              population = 150;
            }
        in
        let truth = w.Workload.Generator.oracle in
        let noisy =
          Workload.Generator.noisy_oracle w
            ~error_rate
            ~seed:(7000 + trial)
        in
        (* count wrong answers actually given *)
        let wrapped =
          {
            noisy with
            Dda.object_assertion =
              (fun a b ->
                let answer = noisy.Dda.object_assertion a b in
                (match (answer, truth.Dda.object_assertion a b) with
                | Some x, Some y when not (Assertion.equal x y) ->
                    incr wrong_entered
                | _ -> ());
                answer);
          }
        in
        let _, stats =
          Protocol.run
            ~options:{ Protocol.defaults with skip_determined = false }
            w.Workload.Generator.schemas wrapped
        in
        presented := !presented + stats.Protocol.pairs_presented;
        accepted := !accepted + stats.Protocol.assertions_accepted;
        rejected := !rejected + stats.Protocol.assertions_rejected
      done;
      Printf.printf "%-8.2f %-10d %-10d %-10d %d / %d\n" error_rate !presented
        !accepted !rejected !rejected !wrong_entered)
    [ 0.0; 0.1; 0.25; 0.5 ];
  print_endline
    "\n(rejected: assertions the matrix refused as contradictory; the\n\
    \ last column relates refusals to the wrong answers actually given.\n\
    \ Not every wrong answer is *immediately* contradictory - an early\n\
    \ error can instead poison later truthful answers - but the tool\n\
    \ never accepts a set of assertions that is internally inconsistent.)"

(* ------------------------------------------------------------------ *)
(* E18: the indexed OCS engine vs the naive per-entry partition scan.   *)

(* The PR-1 hot path recomputed every OCS entry with
   [Equivalence.shared_count] — a scan of the whole ACS partition per
   entry, O(|O1|*|O2|) times per schema pair.  The indexed engine folds
   the partition once ([Acs_index.build]) and answers each entry with a
   map lookup.  This experiment reproduces the naive path (one scan per
   entry — half of what PR 1 actually did, which scanned twice) and
   races it against the indexed ranking and the heap top-k path on a
   schemas x concepts sweep. *)

let naive_ranked_object_pairs s1 s2 eq =
  List.concat_map
    (fun oc1 ->
      List.map
        (fun oc2 ->
          let left = Schema.qname s1 oc1.Object_class.name
          and right = Schema.qname s2 oc2.Object_class.name in
          let shared = Equivalence.shared_count left right eq in
          let smaller =
            Int.min
              (List.length oc1.Object_class.attributes)
              (List.length oc2.Object_class.attributes)
          in
          {
            Similarity.left;
            right;
            shared;
            smaller;
            ratio =
              (if shared = 0 && smaller = 0 then 0.0
               else float_of_int shared /. float_of_int (shared + smaller));
          })
        (Schema.objects s2))
    (Schema.objects s1)
  |> List.stable_sort Similarity.compare_ranked

let e18 () =
  section "E18" "scaling: indexed OCS ranking vs per-entry partition scans";
  Printf.printf "\n%-9s %-9s %-8s %-11s %-11s %-9s %-11s\n" "schemas"
    "concepts" "pairs" "naive (s)" "indexed (s)" "speedup" "top-25 (s)";
  List.iter
    (fun (schemas, concepts) ->
      let w =
        Workload.Generator.generate
          {
            Workload.Generator.default_params with
            seed = 8000 + (schemas * 100) + concepts;
            schemas;
            concepts;
            population = Int.max 150 (concepts * 10);
          }
      in
      let ss = w.Workload.Generator.schemas in
      let rec schema_pairs = function
        | [] -> []
        | s :: rest -> List.map (fun s' -> (s, s')) rest @ schema_pairs rest
      in
      let sp = schema_pairs ss in
      let eq =
        List.fold_left
          (fun eq (s1, s2) ->
            Protocol.collect_equivalences
              { Protocol.defaults with exhaustive_attribute_pairs = true }
              s1 s2 w.Workload.Generator.oracle eq)
          (List.fold_left
             (fun eq s -> Equivalence.register_schema s eq)
             Equivalence.empty ss)
          sp
      in
      let pairs =
        List.fold_left
          (fun acc (s1, s2) ->
            acc + (List.length (Schema.objects s1) * List.length (Schema.objects s2)))
          0 sp
      in
      let naive_rank, t_naive =
        time_once (fun () ->
            List.map (fun (s1, s2) -> naive_ranked_object_pairs s1 s2 eq) sp)
      in
      let indexed_rank, t_indexed =
        time_once (fun () ->
            let index = Acs_index.build eq in
            List.map
              (fun (s1, s2) -> Similarity.ranked_object_pairs_with index s1 s2)
              sp)
      in
      let _, t_topk =
        time_once (fun () ->
            let index = Acs_index.build eq in
            List.map
              (fun (s1, s2) -> Similarity.top_object_pairs ~k:25 index s1 s2)
              sp)
      in
      assert (naive_rank = indexed_rank);
      Printf.printf "%-9d %-9d %-8d %-11.4f %-11.4f %8.1fx %-11.4f\n" schemas
        concepts pairs t_naive t_indexed
        (if t_indexed > 0.0 then t_naive /. t_indexed else 0.0)
        t_topk)
    [ (2, 10); (2, 20); (2, 40); (2, 80); (3, 10); (3, 20); (3, 40) ];
  print_endline
    "\n(same workload seeds, same resulting order - asserted equal; naive\n\
    \ scans the ACS partition once per OCS entry, the index is built once\n\
    \ per equivalence state and each entry is a map lookup; top-25 adds\n\
    \ heap selection instead of sorting the full matrix)"

let e19 () =
  section "E19"
    "deterministic parallel execution: jobs sweep over the full protocol";
  Printf.printf "\n(host exposes %d core(s); speedups are bounded by that)\n"
    (Stdlib.Domain.recommended_domain_count ());
  (* the workload instances themselves are generated through the pool —
     the same fan-out sit_batch uses for independent script jobs *)
  let paramss =
    List.map
      (fun (schemas, concepts) ->
        {
          Workload.Generator.default_params with
          seed = 9100 + (schemas * 100) + concepts;
          schemas;
          concepts;
          population = Int.max 150 (concepts * 10);
        })
      [ (2, 20); (3, 12); (4, 8) ]
  in
  let workloads =
    Par.with_pool ~jobs:(Par.default_jobs ()) @@ fun pool ->
    Par.map pool Workload.Generator.generate paramss
  in
  Printf.printf "\n%-9s %-9s %-6s %-11s %-9s %-10s\n" "schemas" "concepts"
    "jobs" "wall (s)" "speedup" "identical";
  List.iter
    (fun w ->
      let p = w.Workload.Generator.params in
      let schemas = p.Workload.Generator.schemas
      and concepts = p.Workload.Generator.concepts in
      let fingerprint (r : Result.t) = Ddl.Printer.to_string r.Result.schema in
      let base, t1 =
        time_once (fun () ->
            Protocol.run ~jobs:1 w.Workload.Generator.schemas
              w.Workload.Generator.oracle)
      in
      Printf.printf "%-9d %-9d %-6d %-11.4f %-9s %-10s\n" schemas concepts 1 t1
        "1.0x" "-";
      List.iter
        (fun jobs ->
          let run, t =
            time_once (fun () ->
                Protocol.run ~jobs w.Workload.Generator.schemas
                  w.Workload.Generator.oracle)
          in
          let identical =
            fingerprint (fst run) = fingerprint (fst base)
            && snd run = snd base
          in
          assert identical;
          Printf.printf "%-9s %-9s %-6d %-11.4f %8.1fx %-10s\n" "" "" jobs t
            (if t > 0.0 then t1 /. t else 0.0)
            "yes")
        [ 2; 4; 8 ])
    workloads;
  Printf.printf
    "\n\
     (every jobs value produces a byte-identical integrated schema and the\n\
    \ same protocol stats - the ordered-reduction contract of lib/par; a\n\
    \ pool of n runs n-1 worker domains plus the submitter, so speedups\n\
    \ track the machine's core count: this host exposes %d)\n"
    (Stdlib.Domain.recommended_domain_count ())

(* Wraps a DDA oracle so every affirmative answer is journaled as the
   session op it implies — the write-ahead pattern bin/sit uses, driven
   here at protocol speed to measure logging overhead. *)
let journaling_oracle j (oracle : Dda.t) =
  {
    oracle with
    Dda.label = oracle.Dda.label ^ "+journal";
    attr_equivalent =
      (fun (qa1, a1) (qa2, a2) ->
        let r = oracle.Dda.attr_equivalent (qa1, a1) (qa2, a2) in
        if r then Journal.append j (Op.Declare_equivalent (qa1, qa2));
        r);
    object_assertion =
      (fun q1 q2 ->
        let r = oracle.Dda.object_assertion q1 q2 in
        (match r with
        | Some a -> Journal.append j (Op.Assert_object (q1, a, q2))
        | None -> ());
        r);
    relationship_assertion =
      (fun q1 q2 ->
        let r = oracle.Dda.relationship_assertion q1 q2 in
        (match r with
        | Some a -> Journal.append j (Op.Assert_relationship (q1, a, q2))
        | None -> ());
        r);
  }

(* Measures one fsync policy against the bare run.  The two variants
   are timed strictly interleaved — bare, journaled, bare, journaled… —
   and each takes its minimum, so host-speed drift between reps (the
   dominant error on a shared 1-core container) cancels out of the
   overhead ratio. *)
let e20_overhead ?(reps = 5) () =
  let w =
    Workload.Generator.generate
      {
        Workload.Generator.default_params with
        seed = 9200;
        concepts = 20;
        population = 200;
      }
  in
  let run oracle () =
    ignore (Protocol.run ~jobs:1 w.Workload.Generator.schemas oracle)
  in
  (* warm code paths and allocator state before any timed run, or the
     first measurement pays the cold-start and skews the comparison *)
  run w.Workload.Generator.oracle ();
  run w.Workload.Generator.oracle ();
  fun policy ->
    let path = Filename.temp_file "sit_e20" ".journal" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let _, j = Journal.open_ ~fsync:policy path in
        let oracle = w.Workload.Generator.oracle in
        let base = ref infinity and jt = ref infinity in
        for _ = 1 to reps do
          base := Float.min !base (snd (time_once (run oracle)));
          Journal.reset j;
          jt := Float.min !jt (snd (time_once (run (journaling_oracle j oracle))))
        done;
        let ops = Journal.seq j and size = (Unix.stat path).Unix.st_size in
        Journal.close j;
        (!base, !jt, ops, size))

let e20 () =
  section "E20" "journal overhead: write-ahead logging under protocol.run";
  Printf.printf
    "\n\
     (host exposes %d core(s); every affirmative DDA answer appends one\n\
    \ journal record during the jobs=1 protocol run; bare and journaled\n\
    \ runs interleave x5, best of each)\n"
    (Stdlib.Domain.recommended_domain_count ());
  let measure = e20_overhead () in
  Printf.printf "\n%-16s %-11s %-11s %-10s %-10s %-12s\n" "fsync policy"
    "bare (s)" "wall (s)" "overhead" "ops" "bytes";
  List.iter
    (fun (label, policy) ->
      let base, t, ops, size = measure policy in
      Printf.printf "%-16s %-11.4f %-11.4f %9.1f%% %-10d %-12d\n" label base t
        ((t -. base) /. base *. 100.)
        ops size)
    [
      ("never (buffered)", Journal.Never);
      ("every 8", Journal.Every 8);
      ("always", Journal.Always);
    ];
  print_endline
    "\n(buffered journaling must stay within a few percent of the bare run -\n\
    \ the acceptance gate is checked mechanically via meta.journal_overhead\n\
    \ in the BENCH json; 'always' pays one fsync per record and bounds the\n\
    \ durability-vs-throughput trade documented in docs/ROBUSTNESS.md)"

(* ------------------------------------------------------------------ *)
(* E21: serving throughput and latency (lib/server, docs/SERVING.md).  *)

(* A generated federation served in-process: per-view and global
   select-all frames over every object class, replayed across client
   connections.  The sweep is shared with the metrics run, which
   exports it as meta.serving in the BENCH json. *)
let e21_setup =
  lazy
    (let w =
       Workload.Generator.generate
         {
           Workload.Generator.default_params with
           seed = 2100;
           concepts = 14;
           population = 300;
         }
     in
     let result, _ =
       Protocol.run ~jobs:1 w.Workload.Generator.schemas
         w.Workload.Generator.oracle
     in
     let stores = Workload.Generator.populate ~jobs:1 w in
     let session = Server.make_session ~result ~stores () in
     let select_all oc =
       Printf.sprintf "select * from %s" (Name.to_string oc.Object_class.name)
     in
     let view_frames =
       List.concat_map
         (fun (s, _) ->
           List.map
             (fun oc ->
               Server.Wire.request_to_line
                 ~view:(Name.to_string (Schema.name s))
                 ~text:(select_all oc) "query")
             (Schema.objects s))
         stores
     in
     let global_frames =
       List.map
         (fun oc -> Server.Wire.request_to_line ~text:(select_all oc) "query")
         (Schema.objects result.Result.schema)
     in
     (session, Array.of_list (view_frames @ global_frames)))

type e21_point = {
  sv_jobs : int;
  sv_cache : int;
  sv_sent : int;
  sv_ok : int;
  sv_hits : int;
  sv_req_s : float;
  sv_mean_ms : float;
}

let e21_sweep ?(requests = 2000) ?(conns = 4) () =
  let session, pool = Lazy.force e21_setup in
  let frames = Array.init requests (fun i -> pool.(i mod Array.length pool)) in
  List.concat_map
    (fun jobs ->
      List.map
        (fun cache ->
          let cfg =
            {
              Server.listen = Server.Wire.Tcp ("127.0.0.1", 0);
              jobs;
              queue = 256;
              deadline_ms = None;
              cache;
              debug = false;
              repl = Server.default_repl;
            }
          in
          match Server.start session cfg with
          | Error msg -> failwith ("E21: server failed to start: " ^ msg)
          | Ok t ->
              Fun.protect
                ~finally:(fun () -> Server.stop t)
                (fun () ->
                  let addr =
                    match Server.port t with
                    | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
                    | None -> failwith "E21: no bound port"
                  in
                  let st = Server.Client.drive ~addr ~conns ~frames () in
                  if st.Server.Client.mismatches > 0 then
                    failwith "E21: divergent responses under load";
                  if st.Server.Client.ok < st.Server.Client.sent then
                    failwith "E21: error responses on a clean workload";
                  let s = Server.stats t in
                  let wall = Float.max st.Server.Client.wall_s 1e-9 in
                  {
                    sv_jobs = jobs;
                    sv_cache = cache;
                    sv_sent = st.Server.Client.sent;
                    sv_ok = st.Server.Client.ok;
                    sv_hits = s.Server.cache_hits;
                    sv_req_s = float_of_int st.Server.Client.sent /. wall;
                    sv_mean_ms =
                      wall *. float_of_int conns
                      /. float_of_int st.Server.Client.sent *. 1000.;
                  }))
        [ 0; 256 ])
    [ 1; 2; 4 ]

let e21 () =
  section "E21" "serving throughput: lib/server over a generated federation";
  Printf.printf
    "\n\
     (in-process daemon, 4 client connections, 2000 select-all frames per\n\
    \ configuration; cache 'off' disables the rewrite-plan LRU; every\n\
    \ configuration is checked for divergent or failing responses)\n";
  Printf.printf "\n%-6s %-8s %-8s %-8s %-10s %-10s\n" "jobs" "cache" "ok"
    "hits" "req/s" "mean ms";
  List.iter
    (fun p ->
      Printf.printf "%-6d %-8s %-8d %-8d %-10.0f %-10.3f\n" p.sv_jobs
        (if p.sv_cache = 0 then "off" else string_of_int p.sv_cache)
        p.sv_ok p.sv_hits p.sv_req_s p.sv_mean_ms)
    (e21_sweep ());
  print_endline
    "\n\
     (cache-on rows must show hits > 0 on this repeated workload; the\n\
    \ same sweep lands in the BENCH json as meta.serving)"

(* ------------------------------------------------------------------ *)
(* E22: materialized views vs recompute (lib/view, docs/VIEWS.md).     *)

(* The paper session's Student extent, grown to [population] entities,
   then a mixed read/update stream at a swept update share.  The same
   seeded stream runs twice — once answering every read with a
   from-scratch [Query.Eval.run], once through a lazy materialized
   view — and every read is checked byte-identical between the arms
   before the timings are reported (the correctness anchor of
   docs/VIEWS.md, measured rather than assumed). *)

let e22_setup =
  lazy
    (let result = Workload.Paper.integrate_sc1_sc2 () in
     let stores =
       [
         (Workload.Paper.sc1, Instance.Store.create Workload.Paper.sc1);
         (Workload.Paper.sc2, Instance.Store.create Workload.Paper.sc2);
       ]
     in
     let session = Server.make_session ~result ~stores () in
     let mapping = result.Result.mapping in
     let translate u =
       Query.Update.to_integrated mapping ~view:Workload.Paper.sc1 u
     in
     let store = ref session.Server.initial_merged in
     for i = 1 to 1000 do
       let u =
         translate
           (Query.Update.insert "Student"
              [
                ("Name", Instance.Value.str (Printf.sprintf "S%04d" i));
                ("GPA", Instance.Value.real (float (i mod 41) /. 10.));
              ])
       in
       store := fst (Query.Update.apply u !store)
     done;
     (mapping, !store))

type e22_point = {
  mv_share : int;  (** update share of the stream, percent *)
  mv_reads : int;
  mv_updates : int;
  mv_eval_ms : float;  (** recompute arm wall time *)
  mv_view_ms : float;  (** materialized arm wall time *)
  mv_speedup : float;  (** eval / view *)
}

let e22_sweep ?(ops = 600) () =
  let mapping, store0 = Lazy.force e22_setup in
  let integrated text =
    fst
      (Query.Rewrite.to_integrated mapping ~view:Workload.Paper.sc1
         (Query.Parser.query_of_string text))
  in
  let q_all = integrated "select Name, GPA from Student" in
  let q_hot = integrated "select Name from Student where GPA >= 3.5" in
  let translate u =
    Query.Update.to_integrated mapping ~view:Workload.Paper.sc1 u
  in
  (* the same op stream for both arms, decided by a reseeded rng *)
  let next_update rng k =
    if Random.State.int rng 10 < 7 then
      translate
        (Query.Update.insert "Student"
           [
             ("Name", Instance.Value.str (Printf.sprintf "N%06d" k));
             ("GPA", Instance.Value.real (float (k mod 41) /. 10.));
           ])
    else
      translate
        (Query.Update.modify "Student"
           ~where:
             (Query.Ast.atom "Name" Query.Ast.Eq
                (Instance.Value.str (Printf.sprintf "S%04d" (1 + (k mod 1000)))))
           [ ("GPA", Instance.Value.real (float ((k * 7) mod 41) /. 10.)) ])
  in
  List.map
    (fun share ->
      (* one deterministic stream per share; [on_update]/[on_read] are
         the arm under test.  When [collect] is set every read is
         serialized for the cross-arm byte comparison — those passes
         are not the ones timed, so the serialization cost cancels out
         of the measurement instead of masking it *)
      let run_arm ~collect ~on_update ~on_read =
        let rng = Random.State.make [| 2200; share |] in
        let store = ref store0 in
        let reads = ref 0 and updates = ref 0 in
        let out = ref [] in
        let t0 = Unix.gettimeofday () in
        for k = 1 to ops do
          if Random.State.int rng 100 < share then begin
            incr updates;
            let u = next_update rng k in
            store := fst (Query.Update.apply u !store);
            on_update !store u
          end
          else begin
            incr reads;
            let q = if k land 1 = 0 then q_all else q_hot in
            let rows = on_read !store q in
            if collect then
              out :=
                String.concat "\n" (List.map Query.Eval.row_to_string rows)
                :: !out
          end
        done;
        (Unix.gettimeofday () -. t0, !reads, !updates, List.rev !out)
      in
      let eval_arm ~collect =
        run_arm ~collect
          ~on_update:(fun _ _ -> ())
          ~on_read:(fun store q -> Query.Eval.run q store)
      in
      let view_arm ~collect =
        let cat = View.create () in
        List.iter
          (fun (name, q) ->
            match
              View.define cat ~name ~policy:View.Lazy ~source:name ~query:q
                ~post:(fun r -> r)
                store0
            with
            | Ok () -> ()
            | Error e -> failwith ("E22: " ^ e))
          [ ("all", q_all); ("hot", q_hot) ];
        run_arm ~collect
          ~on_update:(fun store u -> View.notify_update cat u store)
          ~on_read:(fun store q ->
            let name = if q == q_all then "all" else "hot" in
            match View.read cat name store with
            | Ok (rows, _) -> rows
            | Error e -> failwith ("E22: " ^ e))
      in
      let _, _, _, eval_rows = eval_arm ~collect:true in
      let _, _, _, view_rows = view_arm ~collect:true in
      if not (List.equal String.equal eval_rows view_rows) then
        failwith "E22: materialized reads diverge from recompute";
      let eval_s, reads, updates, _ = eval_arm ~collect:false in
      let view_s, _, _, _ = view_arm ~collect:false in
      {
        mv_share = share;
        mv_reads = reads;
        mv_updates = updates;
        mv_eval_ms = eval_s *. 1000.;
        mv_view_ms = view_s *. 1000.;
        mv_speedup = (if view_s > 0. then eval_s /. view_s else 0.);
      })
    [ 0; 5; 20; 50 ]

let e22 () =
  section "E22" "materialized views vs recompute: lib/view maintenance";
  Printf.printf
    "\n\
     (paper session grown to 1000 students; 600-op streams at each update\n\
    \ share, identical seeds; every read is byte-compared between the\n\
    \ recompute arm and the lazy-view arm before timing is trusted)\n";
  Printf.printf "\n%-10s %-8s %-9s %-12s %-12s %-9s\n" "update %" "reads"
    "updates" "eval (ms)" "view (ms)" "speedup";
  List.iter
    (fun p ->
      Printf.printf "%-10d %-8d %-9d %-12.2f %-12.2f %8.1fx\n" p.mv_share
        p.mv_reads p.mv_updates p.mv_eval_ms p.mv_view_ms p.mv_speedup)
    (e22_sweep ());
  print_endline
    "\n\
     (read-heavy shares must favour the materialized arm; the advantage\n\
    \ narrows as modifies force refreshes.  The sweep lands in the BENCH\n\
    \ json as meta.views)"

(* ------------------------------------------------------------------ *)
(* E23: the compact data plane — binary wire protocol vs JSON lines,
   and the flat similarity kernels vs the string-keyed oracle.         *)

type e23_serving_point = {
  dpv_proto : string;
  dpv_sent : int;
  dpv_ok : int;
  dpv_req_s : float;
  dpv_mean_ms : float;
}

(* The E21 federation served once, the same workload replayed over each
   protocol against the same process — any throughput delta is pure
   framing cost. *)
let e23_serving ?(requests = 1500) ?(conns = 4) () =
  let session, pool = Lazy.force e21_setup in
  let frames = Array.init requests (fun i -> pool.(i mod Array.length pool)) in
  let cfg =
    {
      Server.listen = Server.Wire.Tcp ("127.0.0.1", 0);
      jobs = 2;
      queue = 256;
      deadline_ms = None;
      cache = 256;
      debug = false;
      repl = Server.default_repl;
    }
  in
  match Server.start session cfg with
  | Error msg -> failwith ("E23: server failed to start: " ^ msg)
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () ->
          let addr =
            match Server.port t with
            | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
            | None -> failwith "E23: no bound port"
          in
          List.map
            (fun proto ->
              let st = Server.Client.drive ~proto ~addr ~conns ~frames () in
              if st.Server.Client.mismatches > 0 then
                failwith "E23: divergent responses under load";
              if st.Server.Client.ok < st.Server.Client.sent then
                failwith "E23: error responses on a clean workload";
              let wall = Float.max st.Server.Client.wall_s 1e-9 in
              {
                dpv_proto = Server.Wire.proto_to_string proto;
                dpv_sent = st.Server.Client.sent;
                dpv_ok = st.Server.Client.ok;
                dpv_req_s = float_of_int st.Server.Client.sent /. wall;
                dpv_mean_ms =
                  wall *. float_of_int conns
                  /. float_of_int st.Server.Client.sent *. 1000.;
              })
            [ Server.Wire.Json; Server.Wire.Bin ])

type e23_kernel_point = {
  dpk_concepts : int;
  dpk_owners : int;
  dpk_pairs : int;
  dpk_oracle_ms : float;
  dpk_flat_ms : float;
  dpk_speedup : float;
}

(* All-pairs shared-class counts: [Equivalence.shared_count] walks the
   partition per query (the string-keyed reference), [Acs_index.shared]
   reads the triangular array.  Every cell is checked equal before any
   timing is trusted. *)
let e23_kernels ?(reps = 25) () =
  List.map
    (fun concepts ->
      let w =
        Workload.Generator.generate
          {
            Workload.Generator.default_params with
            seed = 2300 + concepts;
            concepts;
            schemas = 3;
            population = 400;
          }
      in
      let schemas = w.Workload.Generator.schemas in
      let rec schema_pairs = function
        | [] -> []
        | s :: rest -> List.map (fun s' -> (s, s')) rest @ schema_pairs rest
      in
      let eq =
        List.fold_left
          (fun eq (a, b) ->
            Protocol.collect_equivalences
              { Protocol.defaults with exhaustive_attribute_pairs = true }
              a b w.Workload.Generator.oracle eq)
          (List.fold_left
             (fun eq s -> Equivalence.register_schema s eq)
             Equivalence.empty schemas)
          (schema_pairs schemas)
      in
      let index = Acs_index.build eq in
      let owners =
        List.concat_map
          (fun s ->
            List.map
              (fun oc -> Schema.qname s oc.Object_class.name)
              (Schema.objects s)
            @ List.map
                (fun r -> Schema.qname s r.Relationship.name)
                (Schema.relationships s))
          schemas
      in
      let pairs =
        let rec go = function
          | [] -> []
          | o :: rest -> List.map (fun o' -> (o, o')) rest @ go rest
        in
        go owners
      in
      (* differential check before timing anything *)
      List.iter
        (fun (a, b) ->
          let want = Equivalence.shared_count a b eq in
          let got = Acs_index.shared a b index in
          if want <> got then
            failwith
              (Printf.sprintf "E23: flat kernel diverges at (%s, %s): %d vs %d"
                 (Qname.to_string a) (Qname.to_string b) want got))
        pairs;
      let time_ms f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          f ()
        done;
        (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
      in
      let sink = ref 0 in
      let oracle_ms =
        time_ms (fun () ->
            List.iter
              (fun (a, b) -> sink := !sink + Equivalence.shared_count a b eq)
              pairs)
      in
      let flat_ms =
        time_ms (fun () ->
            List.iter
              (fun (a, b) -> sink := !sink + Acs_index.shared a b index)
              pairs)
      in
      ignore !sink;
      {
        dpk_concepts = concepts;
        dpk_owners = List.length owners;
        dpk_pairs = List.length pairs;
        dpk_oracle_ms = oracle_ms;
        dpk_flat_ms = flat_ms;
        dpk_speedup = (if flat_ms > 0. then oracle_ms /. flat_ms else 0.);
      })
    [ 10; 20; 40 ]

let e23 () =
  section "E23" "compact data plane: binary frames and flat kernels";
  Printf.printf
    "\n\
     (top: the E21 federation served once, the same %d-frame workload\n\
    \ replayed over each wire protocol — both legs byte-checked for\n\
    \ divergence.  bottom: all-pairs shared-class counts, string-keyed\n\
    \ partition walk vs triangular int array, equality-checked cell by\n\
    \ cell before timing)\n"
    1500;
  Printf.printf "\n%-8s %-8s %-8s %-10s %-10s\n" "proto" "sent" "ok" "req/s"
    "mean ms";
  List.iter
    (fun p ->
      Printf.printf "%-8s %-8d %-8d %-10.0f %-10.3f\n" p.dpv_proto p.dpv_sent
        p.dpv_ok p.dpv_req_s p.dpv_mean_ms)
    (e23_serving ());
  Printf.printf "\n%-10s %-8s %-8s %-12s %-12s %-9s\n" "concepts" "owners"
    "pairs" "oracle (ms)" "flat (ms)" "speedup";
  List.iter
    (fun p ->
      Printf.printf "%-10d %-8d %-8d %-12.3f %-12.3f %8.1fx\n" p.dpk_concepts
        p.dpk_owners p.dpk_pairs p.dpk_oracle_ms p.dpk_flat_ms p.dpk_speedup)
    (e23_kernels ());
  print_endline
    "\n\
     (the binary protocol saves parse/render per frame; the flat kernel\n\
    \ answers each query with two id lookups and an array read.  Both\n\
    \ sweeps land in the BENCH json as meta.dataplane)"

(* ------------------------------------------------------------------ *)
(* E24: the scenario engine (Workload.Scenario) — generation cost and  *)
(* offline replay throughput at two federation sizes.                  *)

type e24_point = {
  scn_seed : int;
  scn_schemas : int;
  scn_directives : int;
  scn_ops : int;
  scn_phases : int;
  scn_gen_ms : float;  (** generate: schemas, script, data, schedule *)
  scn_setup_ms : float;  (** migrate + server create *)
  scn_replay_ms : float;  (** full schedule through [Server.exec] *)
  scn_ops_s : float;
}

let e24_scenarios () =
  List.map
    (fun (seed, schemas, storm, evolve, rounds) ->
      let t0 = Unix.gettimeofday () in
      let p =
        {
          Workload.Scenario.default_params with
          seed;
          schemas;
          storm;
          evolve;
          rounds;
        }
      in
      let scn = Workload.Scenario.generate p in
      if Workload.Scenario.missed_true_pairs scn <> [] then
        failwith "E24: scenario missed ground-truth pairs";
      let gen_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let t1 = Unix.gettimeofday () in
      let session =
        Server.make_session ~result:scn.Workload.Scenario.result
          ~stores:scn.Workload.Scenario.stores ()
      in
      let cfg =
        {
          Server.listen = Server.Wire.Tcp ("127.0.0.1", 0);
          jobs = 2;
          queue = 256;
          deadline_ms = None;
          cache = 256;
          debug = false;
          repl = Server.default_repl;
        }
      in
      match Server.create session cfg with
      | Error msg -> failwith ("E24: server setup failed: " ^ msg)
      | Ok t ->
          Fun.protect
            ~finally:(fun () -> Server.stop t)
            (fun () ->
              let setup_ms = (Unix.gettimeofday () -. t1) *. 1000. in
              let t2 = Unix.gettimeofday () in
              let transcript =
                Workload.Scenario.transcript
                  ~play:(fun ~storm:_ frames ->
                    Array.map (Server.exec t) frames)
                  scn.Workload.Scenario.schedule
              in
              let replay_ms = (Unix.gettimeofday () -. t2) *. 1000. in
              if String.length transcript = 0 then
                failwith "E24: empty transcript";
              let ops = Workload.Scenario.ops_total scn in
              {
                scn_seed = seed;
                scn_schemas = schemas;
                scn_directives =
                  List.length scn.Workload.Scenario.directives;
                scn_ops = ops;
                scn_phases = List.length scn.Workload.Scenario.schedule;
                scn_gen_ms = gen_ms;
                scn_setup_ms = setup_ms;
                scn_replay_ms = replay_ms;
                scn_ops_s =
                  float_of_int ops /. Float.max (replay_ms /. 1000.) 1e-9;
              }))
    [ (11, 5, 24, 6, 2); (11, 8, 36, 9, 2) ]

let e24 () =
  section "E24" "scenario engine: federation-scale mixed-op schedules";
  print_endline
    "\n\
     (each row: one seeded scenario generated end to end — flavored\n\
    \ schemas, session script, instances, op schedule — with full\n\
    \ ground-truth recovery required, then its whole schedule replayed\n\
    \ offline through Server.exec, the differential harness's\n\
    \ reference leg)";
  Printf.printf "\n%-6s %-8s %-11s %-6s %-8s %-9s %-10s %-11s %-8s\n" "seed"
    "schemas" "directives" "ops" "phases" "gen (ms)" "setup (ms)"
    "replay (ms)" "ops/s";
  List.iter
    (fun p ->
      Printf.printf "%-6d %-8d %-11d %-6d %-8d %-9.1f %-10.1f %-11.1f %-8.0f\n"
        p.scn_seed p.scn_schemas p.scn_directives p.scn_ops p.scn_phases
        p.scn_gen_ms p.scn_setup_ms p.scn_replay_ms p.scn_ops_s)
    (e24_scenarios ());
  print_endline
    "\n\
     (generation is dominated by the pre-validating apply of the\n\
    \ directive script; replay by view materialization and storms.\n\
    \ Both sizes land in the BENCH json as meta.scenarios)"

(* ------------------------------------------------------------------ *)
(* E25: replication (lib/replicate, docs/ROBUSTNESS.md) — what the     *)
(* journal stream costs the write path at each durability level, and   *)
(* what a fresh client pays to fail over past a dead endpoint.         *)

let e25_session ?journal_dir () =
  let module St = Instance.Store in
  let module V = Instance.Value in
  let student name gpa =
    St.tuple [ ("Name", V.str name); ("GPA", V.real gpa) ]
  in
  let store = St.create Workload.Paper.sc1 in
  let store, _ = St.insert (Name.v "Student") (student "Ann" 3.9) store in
  let store, _ = St.insert (Name.v "Student") (student "Ben" 2.5) store in
  let result = Workload.Paper.integrate_sc1_sc2 () in
  Server.make_session ?journal_dir ~result
    ~stores:
      [
        (Workload.Paper.sc1, store);
        (Workload.Paper.sc2, St.create Workload.Paper.sc2);
      ]
    ()

let e25_cfg repl =
  {
    Server.listen = Server.Wire.Tcp ("127.0.0.1", 0);
    jobs = 2;
    queue = 256;
    deadline_ms = None;
    cache = 64;
    debug = false;
    repl;
  }

let e25_addr t =
  match Server.port t with
  | Some p -> Server.Wire.Tcp ("127.0.0.1", p)
  | None -> failwith "E25: no bound port"

let e25_int_field name resp =
  match Obs.Json.member name resp with
  | Some (Obs.Json.Int n) -> n
  | _ -> failwith (Printf.sprintf "E25: no %S field in response" name)

let e25_eventually what f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () -. t0 > 10. then
      failwith ("E25: timed out waiting for " ^ what)
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

type e25_repl_point = {
  rl_label : string;
  rl_followers : int;
  rl_ack : int;
  rl_writes : int;
  rl_req_s : float;
  rl_mean_ms : float;
  rl_catchup_ms : float;
      (** follower lag drained after the last write was acknowledged *)
}

(* A pure write workload (every frame a distinct insert, so the
   byte-identity check stays meaningful) against the paper federation
   serving as a leader: alone, with two asynchronous followers tailing
   the stream, and with [ack_replicas = 2] holding every response for
   both acks.  Followers must attach before timing starts and must
   drain to [staleness_seq = 0] after — a run that converges on stale
   followers would be measuring lost writes, not replication. *)
let e25_replication ?(writes = 240) ?(conns = 2) () =
  let frames =
    Array.init writes (fun i ->
        Server.Wire.request_to_line ~view:"sc1"
          ~text:
            (Printf.sprintf "insert into Student { Name = 'W%d', GPA = 3.0 }" i)
          "update")
  in
  List.map
    (fun (label, followers, ack) ->
      match
        Server.start (e25_session ())
          (e25_cfg { Server.default_repl with ack_replicas = ack })
      with
      | Error msg -> failwith ("E25: leader failed to start: " ^ msg)
      | Ok leader ->
          let laddr = e25_addr leader in
          let fts =
            List.init followers (fun _ ->
                match
                  Server.start (e25_session ())
                    (e25_cfg
                       { Server.default_repl with role = Server.Follower laddr })
                with
                | Error msg -> failwith ("E25: follower failed to start: " ^ msg)
                | Ok t -> t)
          in
          Fun.protect
            ~finally:(fun () ->
              List.iter Server.stop fts;
              Server.stop leader)
            (fun () ->
              if followers > 0 then begin
                let c = Server.Client.connect laddr in
                Fun.protect
                  ~finally:(fun () -> Server.Client.close c)
                  (fun () ->
                    e25_eventually "followers to attach" (fun () ->
                        match
                          Obs.Json.member "followers"
                            (Server.Client.request c "repl_status")
                        with
                        | Some (Obs.Json.List l) -> List.length l >= followers
                        | _ -> false))
              end;
              let st = Server.Client.drive ~addr:laddr ~conns ~frames () in
              if st.Server.Client.mismatches > 0 then
                failwith "E25: divergent responses under load";
              if st.Server.Client.ok < st.Server.Client.sent then
                failwith ("E25: error responses on the write workload: " ^ label);
              let t0 = Unix.gettimeofday () in
              List.iter
                (fun f ->
                  let fc = Server.Client.connect (e25_addr f) in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close fc)
                    (fun () ->
                      e25_eventually "follower catch-up" (fun () ->
                          e25_int_field "staleness_seq"
                            (Server.Client.request fc "health")
                          = 0)))
                fts;
              let catchup_ms = (Unix.gettimeofday () -. t0) *. 1000. in
              let wall = Float.max st.Server.Client.wall_s 1e-9 in
              {
                rl_label = label;
                rl_followers = followers;
                rl_ack = ack;
                rl_writes = st.Server.Client.sent;
                rl_req_s = float_of_int st.Server.Client.sent /. wall;
                rl_mean_ms =
                  wall *. float_of_int conns
                  /. float_of_int st.Server.Client.sent *. 1000.;
                rl_catchup_ms = catchup_ms;
              }))
    [ ("single", 0, 0); ("async-x2", 2, 0); ("semisync-x2", 2, 2) ]

type e25_failover_point = {
  fo_label : string;
  fo_reps : int;
  fo_p50_ms : float;
  fo_p95_ms : float;
  fo_max_ms : float;
}

(* Per-roundtrip wall time of a fresh client: connecting straight to a
   live node (the floor) vs a failover handle whose endpoint list leads
   with a port that refuses connections — each rep pays the refused
   connect plus one backoff delay before the live endpoint answers.
   The policy seed varies per rep so the jitter band is sampled, not a
   single pinned delay repeated. *)
let e25_failover ?(reps = 40) () =
  let dead_addr =
    (* bind, record the kernel-assigned port, stop: nothing listens on
       it afterwards, so every connect is refused immediately *)
    match Server.start (e25_session ()) (e25_cfg Server.default_repl) with
    | Error msg -> failwith ("E25: probe server failed to start: " ^ msg)
    | Ok t ->
        let a = e25_addr t in
        Server.stop t;
        a
  in
  match Server.start (e25_session ()) (e25_cfg Server.default_repl) with
  | Error msg -> failwith ("E25: live server failed to start: " ^ msg)
  | Ok live ->
      Fun.protect
        ~finally:(fun () -> Server.stop live)
        (fun () ->
          let live_addr = e25_addr live in
          let frame =
            Server.Wire.request_to_line ~view:"sc1"
              ~text:"select Name from Student" "query"
          in
          let time_roundtrips mk =
            Array.init reps (fun i ->
                let rt, fin = mk i in
                Fun.protect ~finally:fin (fun () ->
                    let t0 = Unix.gettimeofday () in
                    ignore (rt frame);
                    (Unix.gettimeofday () -. t0) *. 1000.))
          in
          let direct =
            time_roundtrips (fun _ ->
                let c = Server.Client.connect live_addr in
                (Server.Client.roundtrip c, fun () -> Server.Client.close c))
          in
          let failed_over =
            time_roundtrips (fun i ->
                let f =
                  Server.Client.failover
                    ~retry:
                      {
                        Replicate.Backoff.default with
                        attempts = 4;
                        base_ms = 2.;
                        max_ms = 16.;
                        seed = i;
                      }
                    [ dead_addr; live_addr ]
                in
                ( Server.Client.failover_roundtrip f,
                  fun () -> Server.Client.failover_close f ))
          in
          let point label samples =
            Array.sort compare samples;
            let n = Array.length samples in
            let pct q =
              samples.(Int.min (n - 1)
                         (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))
            in
            {
              fo_label = label;
              fo_reps = n;
              fo_p50_ms = pct 0.50;
              fo_p95_ms = pct 0.95;
              fo_max_ms = samples.(n - 1);
            }
          in
          [
            point "connect+query, live endpoint" direct;
            point "failover past dead endpoint" failed_over;
          ])

let e25 () =
  section "E25" "replication: journal streaming overhead, failover latency";
  print_endline
    "\n\
     (top: the paper federation serving as a leader under a pure write\n\
    \ workload — alone, with two async followers tailing the stream, and\n\
    \ with ack-replicas 2 holding each response for both acks; catch-up\n\
    \ is the follower lag drained after the last acknowledged write.\n\
    \ bottom: per-roundtrip wall time of a fresh client, straight to a\n\
    \ live node vs walking past a refused endpoint under backoff)";
  Printf.printf "\n%-13s %-10s %-5s %-7s %-9s %-9s %-11s\n" "config"
    "followers" "ack" "writes" "req/s" "mean ms" "catchup ms";
  List.iter
    (fun p ->
      Printf.printf "%-13s %-10d %-5d %-7d %-9.0f %-9.3f %-11.1f\n" p.rl_label
        p.rl_followers p.rl_ack p.rl_writes p.rl_req_s p.rl_mean_ms
        p.rl_catchup_ms)
    (e25_replication ());
  Printf.printf "\n%-30s %-6s %-9s %-9s %-9s\n" "path" "reps" "p50 ms"
    "p95 ms" "max ms";
  List.iter
    (fun p ->
      Printf.printf "%-30s %-6d %-9.2f %-9.2f %-9.2f\n" p.fo_label p.fo_reps
        p.fo_p50_ms p.fo_p95_ms p.fo_max_ms)
    (e25_failover ());
  print_endline
    "\n\
     (async followers cost the leader almost nothing — the stream is\n\
    \ served off the request path; semi-sync pays the ack round per\n\
    \ write.  Both sweeps land in the BENCH json as meta.replication)"

(* ------------------------------------------------------------------ *)
(* E26: replication-log compaction — what a snapshot costs the leader, *)
(* and what it buys a journalled restart and a fresh follower.         *)

let e26_tmp_dir () =
  let base = Filename.temp_file "sit_e26" "" in
  Sys.remove base;
  Unix.mkdir base 0o755;
  base

let e26_rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

type e26_compaction_point = {
  cp_label : string;
  cp_writes : int;
  cp_base_seq : int;  (** truncated-away prefix after the run *)
  cp_compact_ms : float;
      (** the [repl_compact] roundtrip: serialize state, persist the
          snapshot, truncate memory and disk (0 when never compacted) *)
  cp_restart_ms : float;  (** leader restart from the same journal *)
  cp_catchup_ms : float;  (** fresh follower start to [staleness_seq = 0] *)
  cp_installs : int;  (** snapshot transfers that catch-up took *)
}

(* The same journalled write storm twice: once on an append-only log
   (restart replays every frame, a fresh follower replays from seq 1)
   and once compacted right after the storm (restart is snapshot +
   suffix, the follower starts below the truncated base and must take
   the snapshot-transfer leg).  The deltas are exactly what compaction
   claims to buy — restart and bootstrap bounded by live state + the
   compaction window instead of total write count. *)
let e26_compaction ?(writes = 240) () =
  let frames =
    Array.init writes (fun i ->
        Server.Wire.request_to_line ~view:"sc1"
          ~text:
            (Printf.sprintf "insert into Student { Name = 'C%d', GPA = 3.0 }" i)
          "update")
  in
  List.map
    (fun (label, compact) ->
      let dir = e26_tmp_dir () in
      Fun.protect
        ~finally:(fun () -> e26_rm_rf dir)
        (fun () ->
          (* phase 1: the journalled write storm *)
          let leader =
            match
              Server.start
                (e25_session ~journal_dir:dir ())
                (e25_cfg Server.default_repl)
            with
            | Error msg -> failwith ("E26: leader failed to start: " ^ msg)
            | Ok t -> t
          in
          let compact_ms =
            Fun.protect
              ~finally:(fun () -> Server.stop leader)
              (fun () ->
                let laddr = e25_addr leader in
                let st = Server.Client.drive ~addr:laddr ~conns:2 ~frames () in
                if st.Server.Client.ok < st.Server.Client.sent then
                  failwith ("E26: error responses on the write storm: " ^ label);
                if not compact then 0.
                else
                  let c = Server.Client.connect laddr in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      let t0 = Unix.gettimeofday () in
                      let resp = Server.Client.request c "repl_compact" in
                      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
                      if not (Server.Client.is_ok resp) then
                        failwith "E26: repl_compact failed";
                      ms))
          in
          (* phase 2: restart from the journal — full replay vs
             snapshot + suffix *)
          let t0 = Unix.gettimeofday () in
          let leader2 =
            match
              Server.start
                (e25_session ~journal_dir:dir ())
                (e25_cfg Server.default_repl)
            with
            | Error msg -> failwith ("E26: leader failed to restart: " ^ msg)
            | Ok t -> t
          in
          let restart_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          Fun.protect
            ~finally:(fun () -> Server.stop leader2)
            (fun () ->
              let laddr = e25_addr leader2 in
              let base_seq =
                let c = Server.Client.connect laddr in
                Fun.protect
                  ~finally:(fun () -> Server.Client.close c)
                  (fun () ->
                    e25_int_field "base_seq" (Server.Client.request c "health"))
              in
              (* phase 3: a fresh follower bootstraps — replay from
                 seq 1 vs snapshot transfer + tail *)
              let t0 = Unix.gettimeofday () in
              let f =
                match
                  Server.start (e25_session ())
                    (e25_cfg
                       { Server.default_repl with role = Server.Follower laddr })
                with
                | Error msg -> failwith ("E26: follower failed to start: " ^ msg)
                | Ok t -> t
              in
              Fun.protect
                ~finally:(fun () -> Server.stop f)
                (fun () ->
                  let fc = Server.Client.connect (e25_addr f) in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close fc)
                    (fun () ->
                      e25_eventually "follower catch-up" (fun () ->
                          let h = Server.Client.request fc "health" in
                          e25_int_field "applied_seq" h > 0
                          && e25_int_field "staleness_seq" h = 0);
                      let catchup_ms =
                        (Unix.gettimeofday () -. t0) *. 1000.
                      in
                      let installs =
                        e25_int_field "snapshot_installs"
                          (Server.Client.request fc "health")
                      in
                      {
                        cp_label = label;
                        cp_writes = writes;
                        cp_base_seq = base_seq;
                        cp_compact_ms = compact_ms;
                        cp_restart_ms = restart_ms;
                        cp_catchup_ms = catchup_ms;
                        cp_installs = installs;
                      })))))
    [ ("append-only", false); ("compacted", true) ]

let e26 () =
  section "E26" "replication-log compaction: snapshot cost, restart, catch-up";
  print_endline
    "\n\
     (the same journalled write storm twice: append-only, then compacted\n\
    \ right after the storm.  restart = leader recovery from the journal\n\
    \ — full replay vs snapshot + suffix; catch-up = a fresh follower to\n\
    \ staleness 0 — replay from seq 1 vs a snapshot transfer)";
  Printf.printf "\n%-13s %-7s %-9s %-11s %-11s %-11s %-9s\n" "config" "writes"
    "base_seq" "compact ms" "restart ms" "catchup ms" "installs";
  List.iter
    (fun p ->
      Printf.printf "%-13s %-7d %-9d %-11.1f %-11.1f %-11.1f %-9d\n" p.cp_label
        p.cp_writes p.cp_base_seq p.cp_compact_ms p.cp_restart_ms
        p.cp_catchup_ms p.cp_installs)
    (e26_compaction ());
  print_endline
    "\n\
     (compaction bounds leader disk and restart by live state + the\n\
    \ compaction window; a follower behind the truncated base bootstraps\n\
    \ from the snapshot instead of the full history.  Lands in the BENCH\n\
    \ json as meta.compaction)"

let all =
  [
    e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e16; e17;
    e18; e19; e20; e21; e22; e23; e24; e25; e26;
  ]

let by_id =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
    ("e22", e22); ("e23", e23); ("e24", e24); ("e25", e25);
    ("e26", e26);
  ]
