(* The benchmark harness: regenerates every figure and screen of the
   paper (experiments E1-E26, printed as sections), times the
   computational kernels with Bechamel, and dumps the lib/obs metrics
   report of an instrumented pipeline run.

   Usage:
     dune exec bench/main.exe              runs everything
     dune exec bench/main.exe -- e6 e7     runs selected experiments
     dune exec bench/main.exe -- timings   Bechamel + the metrics report
     dune exec bench/main.exe -- metrics   only the metrics report

   The metrics report (per-phase spans, counters, query-latency
   histograms — see docs/ARCHITECTURE.md and docs/PERFORMANCE.md) is
   printed to stdout and saved to BENCH_pr10.json; override the path
   with --out FILE.  Compare two reports mechanically with
   `dune exec bench/diff.exe -- OLD.json NEW.json` (make bench-diff).
   The instrumented run is pinned to --jobs 1 so its span tree stays
   comparable across reports regardless of SIT_JOBS (worker-domain
   spans land at the root; see lib/obs/span.mli). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel kernels: one per computational stage of the pipeline.      *)

let kernel_workloads =
  lazy
    (List.map
       (fun concepts ->
         let w =
           Workload.Generator.generate
             {
               Workload.Generator.default_params with
               seed = 9000 + concepts;
               concepts;
               population = Int.max 150 (concepts * 10);
             }
         in
         (concepts, w))
       [ 10; 20; 40 ])

let closure_test (concepts, w) =
  Test.make
    ~name:(Printf.sprintf "closure/%d-concepts" concepts)
    (Staged.stage (fun () ->
         let schemas = w.Workload.Generator.schemas in
         let eq =
           List.fold_left
             (fun eq s -> Integrate.Equivalence.register_schema s eq)
             Integrate.Equivalence.empty schemas
         in
         ignore eq;
         (* seeding a matrix performs the structural closure *)
         ignore (Integrate.Assertions.create schemas)))

let ranking_test (concepts, w) =
  let schemas = w.Workload.Generator.schemas in
  let s1 = List.nth schemas 0 and s2 = List.nth schemas 1 in
  let eq =
    Integrate.Protocol.collect_equivalences
      { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
      s1 s2 w.Workload.Generator.oracle Integrate.Equivalence.empty
  in
  Test.make
    ~name:(Printf.sprintf "ranking/%d-concepts" concepts)
    (Staged.stage (fun () ->
         ignore (Integrate.Similarity.ranked_object_pairs s1 s2 eq)))

let ranking_cached_test (concepts, w) =
  let schemas = w.Workload.Generator.schemas in
  let s1 = List.nth schemas 0 and s2 = List.nth schemas 1 in
  let eq =
    Integrate.Protocol.collect_equivalences
      { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
      s1 s2 w.Workload.Generator.oracle Integrate.Equivalence.empty
  in
  let index = Integrate.Acs_index.build eq in
  Test.make
    ~name:(Printf.sprintf "ranking-cached-index/%d-concepts" concepts)
    (Staged.stage (fun () ->
         ignore (Integrate.Similarity.ranked_object_pairs_with index s1 s2)))

let pipeline_test (concepts, w) =
  Test.make
    ~name:(Printf.sprintf "protocol+integrate/%d-concepts" concepts)
    (Staged.stage (fun () ->
         ignore
           (Integrate.Protocol.run w.Workload.Generator.schemas
              w.Workload.Generator.oracle)))

let rewrite_test (_concepts, w) =
  let result, _ =
    Integrate.Protocol.run w.Workload.Generator.schemas
      w.Workload.Generator.oracle
  in
  let s = List.hd w.Workload.Generator.schemas in
  let cls = List.hd (Ecr.Schema.objects s) in
  let q = Query.Ast.query (Ecr.Name.to_string cls.Ecr.Object_class.name) in
  Test.make ~name:"rewrite/view-to-integrated"
    (Staged.stage (fun () ->
         ignore
           (Query.Rewrite.to_integrated result.Integrate.Result.mapping ~view:s q)))

let paper_test =
  Test.make ~name:"paper/sc1+sc2-end-to-end"
    (Staged.stage (fun () -> ignore (Workload.Paper.integrate_sc1_sc2 ())))

let run_timings () =
  Experiments.section "TIMINGS" "Bechamel micro-benchmarks (ns per run)";
  let tests =
    let sized = Lazy.force kernel_workloads in
    [ paper_test ]
    @ List.map closure_test sized
    @ List.map ranking_test sized
    @ List.map ranking_cached_test sized
    @ List.map pipeline_test sized
    @ [ rewrite_test (List.hd sized) ]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Printf.printf "\n%-36s %16s %10s\n" "kernel" "ns/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> nan
          in
          Printf.printf "%-36s %16.0f %10.4f\n" name estimate r2)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* The metrics report: one instrumented end-to-end run — the paper's
   worked example, a schema-analysis pass, and a synthetic workload
   driven through protocol, integration and the query layer — exported
   as JSON by lib/obs.  This is the repo's perf trajectory artefact:
   each PR that touches a hot path regenerates it and compares. *)

let default_metrics_out = "BENCH_pr10.json"

(* One journaled replay of the paper's session inside the metrics
   window, so the journal.* counters and the fsync histogram appear in
   the report without perturbing the protocol/query span totals. *)
let journal_session () =
  let path = Filename.temp_file "sit_metrics" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let _, j = Journal.open_ path in
      let ops =
        [
          Integrate.Op.Add_schema Workload.Paper.sc1;
          Integrate.Op.Add_schema Workload.Paper.sc2;
        ]
        @ List.map
            (fun (a, b) -> Integrate.Op.Declare_equivalent (a, b))
            Workload.Paper.equivalences
        @ List.map
            (fun (a, c, b) -> Integrate.Op.Assert_object (a, c, b))
            Workload.Paper.object_assertions
        @ List.map
            (fun (a, c, b) -> Integrate.Op.Assert_relationship (a, c, b))
            Workload.Paper.relationship_assertions
      in
      let ws = ref Integrate.Workspace.empty in
      List.iter
        (fun op ->
          ws := Integrate.Op.apply op !ws;
          Journal.append ~after:!ws j op)
        ops;
      Journal.checkpoint j !ws;
      let r = Journal.recover path in
      Journal.compact j r.Journal.workspace;
      Journal.close j)

let run_metrics ?(out = default_metrics_out) () =
  Experiments.section "METRICS" "instrumented pipeline run (lib/obs report)";
  Obs.enable ();
  Obs.reset ();
  (* the paper's worked example, end to end *)
  ignore (Workload.Paper.integrate_sc1_sc2 ());
  (* Phase-2/3 analysis over the paper schemas *)
  let ws =
    List.fold_left
      (fun ws (a, b) -> Integrate.Workspace.declare_equivalent a b ws)
      (Integrate.Workspace.add_schema Workload.Paper.sc2
         (Integrate.Workspace.add_schema Workload.Paper.sc1
            Integrate.Workspace.empty))
      Workload.Paper.equivalences
  in
  ignore (Integrate.Analysis.analyse ws);
  (* a synthetic workload: full protocol, then queries on instances *)
  let params =
    {
      Workload.Generator.default_params with
      seed = 4242;
      concepts = 20;
      population = 200;
    }
  in
  let w = Workload.Generator.generate params in
  let result, _stats =
    Integrate.Protocol.run ~jobs:1 w.Workload.Generator.schemas
      w.Workload.Generator.oracle
  in
  let stores = Workload.Generator.populate ~jobs:1 w in
  (* per-view queries, both evaluated locally and rewritten *)
  List.iter
    (fun (s, store) ->
      List.iter
        (fun oc ->
          let q =
            Query.Ast.query (Ecr.Name.to_string oc.Ecr.Object_class.name)
          in
          ignore (Query.Eval.run q store);
          ignore
            (Query.Rewrite.to_integrated result.Integrate.Result.mapping
               ~view:s q))
        (Ecr.Schema.objects s))
    stores;
  (* global queries unfolded onto the component stores *)
  let named_stores =
    List.map (fun (s, st) -> (Ecr.Schema.name s, st)) stores
  in
  List.iter
    (fun oc ->
      let q = Query.Ast.query (Ecr.Name.to_string oc.Ecr.Object_class.name) in
      ignore
        (Query.Rewrite.run_global result.Integrate.Result.mapping
           ~integrated:result.Integrate.Result.schema ~stores:named_stores q))
    (Ecr.Schema.objects result.Integrate.Result.schema);
  (* the journaled session: feeds journal.appends/fsyncs/... *)
  journal_session ();
  (* close the collection window first: the overhead measurement runs
     the protocol several more times, which would otherwise double the
     span totals (report generation reads the registries regardless of
     the enabled flag) *)
  Obs.disable ();
  let journal_overhead =
    let base, buffered, _, _ = Experiments.e20_overhead () Journal.Never in
    [
      ("baseline_s", Obs.Json.Float base);
      ("buffered_s", Obs.Json.Float buffered);
      ("overhead_frac", Obs.Json.Float ((buffered -. base) /. base));
    ]
  in
  let serving =
    (* the E21 serving sweep (throughput/latency per jobs x cache),
       run outside the collection window like the overhead probe *)
    Obs.Json.List
      (List.map
         (fun p ->
           Obs.Json.Obj
             [
               ("jobs", Obs.Json.Int p.Experiments.sv_jobs);
               ("cache", Obs.Json.Int p.Experiments.sv_cache);
               ("sent", Obs.Json.Int p.Experiments.sv_sent);
               ("ok", Obs.Json.Int p.Experiments.sv_ok);
               ("cache_hits", Obs.Json.Int p.Experiments.sv_hits);
               ("req_per_s", Obs.Json.Float p.Experiments.sv_req_s);
               ("mean_ms", Obs.Json.Float p.Experiments.sv_mean_ms);
             ])
         (Experiments.e21_sweep ~requests:1000 ()))
  in
  let views =
    (* the E22 materialized-view sweep (recompute vs lazy view per
       update share), also outside the collection window *)
    Obs.Json.List
      (List.map
         (fun p ->
           Obs.Json.Obj
             [
               ("update_share", Obs.Json.Int p.Experiments.mv_share);
               ("reads", Obs.Json.Int p.Experiments.mv_reads);
               ("updates", Obs.Json.Int p.Experiments.mv_updates);
               ("eval_ms", Obs.Json.Float p.Experiments.mv_eval_ms);
               ("view_ms", Obs.Json.Float p.Experiments.mv_view_ms);
               ("speedup", Obs.Json.Float p.Experiments.mv_speedup);
             ])
         (Experiments.e22_sweep ()))
  in
  let dataplane =
    (* the E23 data-plane sweeps (JSON vs binary framing, string-keyed
       oracle vs flat kernel), also outside the collection window *)
    Obs.Json.Obj
      [
        ( "serving",
          Obs.Json.List
            (List.map
               (fun p ->
                 Obs.Json.Obj
                   [
                     ("proto", Obs.Json.String p.Experiments.dpv_proto);
                     ("sent", Obs.Json.Int p.Experiments.dpv_sent);
                     ("ok", Obs.Json.Int p.Experiments.dpv_ok);
                     ("req_per_s", Obs.Json.Float p.Experiments.dpv_req_s);
                     ("mean_ms", Obs.Json.Float p.Experiments.dpv_mean_ms);
                   ])
               (Experiments.e23_serving ~requests:1000 ())) );
        ( "kernels",
          Obs.Json.List
            (List.map
               (fun p ->
                 Obs.Json.Obj
                   [
                     ("concepts", Obs.Json.Int p.Experiments.dpk_concepts);
                     ("owners", Obs.Json.Int p.Experiments.dpk_owners);
                     ("pairs", Obs.Json.Int p.Experiments.dpk_pairs);
                     ("oracle_ms", Obs.Json.Float p.Experiments.dpk_oracle_ms);
                     ("flat_ms", Obs.Json.Float p.Experiments.dpk_flat_ms);
                     ("speedup", Obs.Json.Float p.Experiments.dpk_speedup);
                   ])
               (Experiments.e23_kernels ())) );
      ]
  in
  let scenarios =
    (* the E24 scenario-engine sweep (generation cost and offline
       replay throughput), also outside the collection window *)
    Obs.Json.List
      (List.map
         (fun p ->
           Obs.Json.Obj
             [
               ("seed", Obs.Json.Int p.Experiments.scn_seed);
               ("schemas", Obs.Json.Int p.Experiments.scn_schemas);
               ("directives", Obs.Json.Int p.Experiments.scn_directives);
               ("ops", Obs.Json.Int p.Experiments.scn_ops);
               ("phases", Obs.Json.Int p.Experiments.scn_phases);
               ("gen_ms", Obs.Json.Float p.Experiments.scn_gen_ms);
               ("setup_ms", Obs.Json.Float p.Experiments.scn_setup_ms);
               ("replay_ms", Obs.Json.Float p.Experiments.scn_replay_ms);
               ("ops_per_s", Obs.Json.Float p.Experiments.scn_ops_s);
             ])
         (Experiments.e24_scenarios ()))
  in
  let replication =
    (* the E25 replication sweeps (journal-streaming write overhead per
       durability level, client failover latency percentiles), also
       outside the collection window *)
    Obs.Json.Obj
      [
        ( "overhead",
          Obs.Json.List
            (List.map
               (fun p ->
                 Obs.Json.Obj
                   [
                     ("config", Obs.Json.String p.Experiments.rl_label);
                     ("followers", Obs.Json.Int p.Experiments.rl_followers);
                     ("ack_replicas", Obs.Json.Int p.Experiments.rl_ack);
                     ("writes", Obs.Json.Int p.Experiments.rl_writes);
                     ("req_per_s", Obs.Json.Float p.Experiments.rl_req_s);
                     ("mean_ms", Obs.Json.Float p.Experiments.rl_mean_ms);
                     ("catchup_ms", Obs.Json.Float p.Experiments.rl_catchup_ms);
                   ])
               (Experiments.e25_replication ~writes:160 ())) );
        ( "failover",
          Obs.Json.List
            (List.map
               (fun p ->
                 Obs.Json.Obj
                   [
                     ("path", Obs.Json.String p.Experiments.fo_label);
                     ("reps", Obs.Json.Int p.Experiments.fo_reps);
                     ("p50_ms", Obs.Json.Float p.Experiments.fo_p50_ms);
                     ("p95_ms", Obs.Json.Float p.Experiments.fo_p95_ms);
                     ("max_ms", Obs.Json.Float p.Experiments.fo_max_ms);
                   ])
               (Experiments.e25_failover ())) );
      ]
  in
  let compaction =
    (* the E26 compaction sweep (snapshot cost, restart from snapshot +
       suffix, snapshot-transfer catch-up), also outside the window *)
    Obs.Json.List
      (List.map
         (fun p ->
           Obs.Json.Obj
             [
               ("config", Obs.Json.String p.Experiments.cp_label);
               ("writes", Obs.Json.Int p.Experiments.cp_writes);
               ("base_seq", Obs.Json.Int p.Experiments.cp_base_seq);
               ("compact_ms", Obs.Json.Float p.Experiments.cp_compact_ms);
               ("restart_ms", Obs.Json.Float p.Experiments.cp_restart_ms);
               ("catchup_ms", Obs.Json.Float p.Experiments.cp_catchup_ms);
               ("snapshot_installs", Obs.Json.Int p.Experiments.cp_installs);
             ])
         (Experiments.e26_compaction ~writes:160 ()))
  in
  let meta =
    [
      ("tool", Obs.Json.String "sit");
      ("report", Obs.Json.String "bench-metrics");
      (* pinned: see the header comment *)
      ("jobs", Obs.Json.Int 1);
      ("cores", Obs.Json.Int (Stdlib.Domain.recommended_domain_count ()));
      ("journal_overhead", Obs.Json.Obj journal_overhead);
      ("serving", serving);
      ("views", views);
      ("dataplane", dataplane);
      ("scenarios", scenarios);
      ("replication", replication);
      ("compaction", compaction);
      ( "workload",
        Obs.Json.Obj
          [
            ("schemas", Obs.Json.Int params.Workload.Generator.schemas);
            ("concepts", Obs.Json.Int params.Workload.Generator.concepts);
            ("population", Obs.Json.Int params.Workload.Generator.population);
            ("seed", Obs.Json.Int params.Workload.Generator.seed);
          ] );
    ]
  in
  print_endline (Obs.Report.to_string ~meta ());
  Obs.Report.write ~meta out;
  Printf.printf "metrics report written to %s\n" out

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let out, args =
    let rec split acc = function
      | [ "--out" ] ->
          prerr_endline "--out requires a file argument";
          exit 2
      | "--out" :: path :: rest -> (Some path, List.rev_append acc rest)
      | x :: rest -> split (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    split [] args
  in
  match args with
  | [] ->
      List.iter (fun e -> e ()) Experiments.all;
      run_timings ();
      run_metrics ?out ()
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt (String.lowercase_ascii id) Experiments.by_id with
          | Some e -> e ()
          | None when id = "timings" ->
              run_timings ();
              run_metrics ?out ()
          | None when id = "metrics" -> run_metrics ?out ()
          | None ->
              Printf.eprintf "unknown experiment %s (e1..e26, timings, metrics)\n"
                id;
              exit 2)
        ids
