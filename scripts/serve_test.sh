#!/bin/sh
# End-to-end check of the serving daemon (docs/SERVING.md): start
# sit_serve on the paper's worked example, load it with the drive
# client (4 connections, 1000 requests, byte-identity checked), verify
# the health op and error-path resilience, then confirm SIGTERM drains
# and exits cleanly.  Run via `make serve-test` (part of `make check`).
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SERVE="$ROOT/_build/default/bin/sit_serve.exe"
DATA="$ROOT/examples/data"
SOCK="${TMPDIR:-/tmp}/sit_serve_test_$$.sock"
LOG="${TMPDIR:-/tmp}/sit_serve_test_$$.log"
TCPLOG="${TMPDIR:-/tmp}/sit_serve_test_tcp_$$.log"

[ -x "$SERVE" ] || { echo "serve-test: build first (dune build)"; exit 1; }

"$SERVE" "$DATA/sc1.ecr" "$DATA/sc2.ecr" \
  --script "$DATA/paper_session.sit" --data "$DATA/paper_instances.ecd" \
  --view "honors@eager:sc1=select Name from Student where GPA >= 3.0" \
  --listen "unix:$SOCK" --jobs 4 >"$LOG" 2>&1 &
PID=$!
TCPPID=""
cleanup() {
  kill "$PID" 2>/dev/null || true
  [ -n "$TCPPID" ] && kill "$TCPPID" 2>/dev/null || true
  rm -f "$SOCK" "$LOG" "$TCPLOG"
}
trap cleanup EXIT

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "serve-test: daemon did not come up"; cat "$LOG"; exit 1; }
  sleep 0.1
done

# the load client exits non-zero on byte mismatches or all-error runs;
# the JSON-lines and binary-frame protocols (docs/WIRE.md) are driven
# as separate legs so a failure names the leg that broke and its exit
# status propagates instead of vanishing into a combined run
for PROTO in json bin; do
  "$SERVE" --drive "unix:$SOCK" --conns 4 --requests 1000 --proto "$PROTO" \
    --query "sc1: select Name, GPA from Student where GPA > 3.0" \
    --query "sc1: select Name from Department" \
    --query "sc2: select Name from Faculty" \
    --global "select Name from Student" \
    --mat honors \
    || { RC=$?; echo "serve-test: $PROTO leg failed (exit $RC)"; cat "$LOG"; exit "$RC"; }
done

# TCP leg on an ephemeral port: the daemon asks the kernel for a free
# port (:0) and advertises it on stderr; we parse that line and point
# the drive client at it — no fixed port, so parallel runs of this
# script (or anything else on the host) can never collide
"$SERVE" "$DATA/sc1.ecr" "$DATA/sc2.ecr" \
  --script "$DATA/paper_session.sit" --data "$DATA/paper_instances.ecd" \
  --listen ":0" --jobs 2 >"$TCPLOG" 2>&1 &
TCPPID=$!
PORT=""
i=0
while [ -z "$PORT" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "serve-test: TCP daemon did not advertise a port"; cat "$TCPLOG"; exit 1; }
  PORT=$(sed -n 's/^sit_serve: listening on port \([0-9][0-9]*\)$/\1/p' "$TCPLOG")
  [ -n "$PORT" ] || sleep 0.1
done
"$SERVE" --drive "127.0.0.1:$PORT" --conns 4 --requests 200 --proto json \
  --query "sc1: select Name, GPA from Student where GPA > 3.0" \
  --global "select Name from Student" \
  || { RC=$?; echo "serve-test: TCP ephemeral-port leg failed (exit $RC)"; cat "$TCPLOG"; exit "$RC"; }
kill -TERM "$TCPPID"
wait "$TCPPID" || { echo "serve-test: TCP daemon exited non-zero"; cat "$TCPLOG"; exit 1; }
TCPPID=""

# deliberate failure: an all-error workload must exit non-zero — this
# smoke-checks that the per-leg propagation above can actually fire
if "$SERVE" --drive "unix:$SOCK" --conns 2 --requests 20 --proto json \
     --query "sc9: select Name from Nowhere" >/dev/null 2>&1; then
  echo "serve-test: deliberate-failure check did not fail"; exit 1
fi

# malformed frames and failing queries must be answered, not fatal
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SOCK" <<'EOF'
import json, socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
f = s.makefile("rw")
def rt(line):
    f.write(line + "\n"); f.flush(); return f.readline().strip()
assert json.loads(rt("not json at all"))["error"]["code"] == "bad_frame"
assert json.loads(rt('{"op":"zap"}'))["error"]["code"] == "unknown_op"
assert json.loads(rt('{"op":"query","view":"sc9","q":"select * from X"}'))["error"]["code"] == "unknown_view"
h = json.loads(rt('{"op":"health"}'))
assert h["ok"] and h["status"] == "ok", h
assert h["cache"]["hits"] > 0, "no cache hits on a repeated workload"
assert h["views"]["count"] == 1, "startup --view not in the catalog"
# materialized-view lifecycle over the wire (docs/VIEWS.md)
vs = json.loads(rt('{"op":"view_stats"}'))
assert [v["name"] for v in vs["views"]] == ["honors"], vs
assert vs["views"][0]["policy"] == "eager", vs
mat = json.loads(rt('{"op":"query","view":"honors"}'))
assert mat["ok"] and mat["fresh"] and mat["count"] >= 1, mat
d = json.loads(rt('{"op":"define_view","view":"depts","base":"sc1","policy":"manual","q":"select Name from Department"}'))
assert d["ok"] and d["defined"] == "depts", d
r = json.loads(rt('{"op":"refresh_view","view":"depts"}'))
assert r["ok"] and r["refreshed"] == "depts", r
assert json.loads(rt('{"op":"drop_view","view":"depts"}'))["ok"]
assert json.loads(rt('{"op":"query","view":"depts"}'))["error"]["code"] == "unknown_view"
s.close()
EOF
else
  echo "serve-test: python3 not found, skipping raw-frame checks"
fi

kill -TERM "$PID"
wait "$PID" || { echo "serve-test: daemon exited non-zero"; cat "$LOG"; exit 1; }
grep -q "drained" "$LOG" || { echo "serve-test: no drain line in log"; cat "$LOG"; exit 1; }
[ ! -S "$SOCK" ] || { echo "serve-test: socket not removed on shutdown"; exit 1; }

echo "serve-test: ok"
