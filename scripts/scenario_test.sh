#!/bin/sh
# Differential scenario harness (docs/SCENARIOS.md): render a seeded
# federation scenario with sit_scenario, then replay its op schedule
# through every execution leg the stack offers and require the
# transcripts to be byte-identical:
#
#   1. offline in-process execution, SIT_JOBS=1  (the reference)
#   2. offline execution with a machine-sized pool (SIT_JOBS=nproc)
#   3. a real daemon over the JSON line protocol
#   4. a real daemon over the binary frame protocol
#   5. a daemon stopped at the checkpoint phase and a fresh daemon
#      resumed from its journal (prefix + suffix = uninterrupted run)
#
# sit_scenario itself exits non-zero when the scenario's integration
# misses a ground-truth same-concept pair, so every seed also asserts
# full truth recovery.  Run via `make scenario-test` (part of
# `make check`); the seed matrix is pinned there.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SERVE="$ROOT/_build/default/bin/sit_serve.exe"
SCN="$ROOT/_build/default/bin/sit_scenario.exe"
NPROC=$(nproc 2>/dev/null || echo 2)
WORK="${TMPDIR:-/tmp}/sit_scenario_test_$$"

[ -x "$SERVE" ] || { echo "scenario-test: build first (dune build)"; exit 1; }
[ -x "$SCN" ] || { echo "scenario-test: build first (dune build)"; exit 1; }

mkdir -p "$WORK"
PID=""
cleanup() {
  [ -z "$PID" ] || kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "scenario-test: $*"; exit 1; }

# start_daemon JOURNAL_DIR SOCKET — serve the current scenario
start_daemon() {
  "$SERVE" "$OUT/schemas.ecr" -s "$OUT/session.sit" \
    --data "$OUT/instances.ecd" --journal "$1" --listen "unix:$2" \
    --jobs "$NPROC" >>"$WORK/daemon.log" 2>&1 &
  PID=$!
  i=0
  while [ ! -S "$2" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { cat "$WORK/daemon.log"; fail "daemon did not come up"; }
    sleep 0.1
  done
}

stop_daemon() {
  kill "$PID" 2>/dev/null || true
  wait "$PID" 2>/dev/null || true
  PID=""
}

# run_seed SEED SCHEMAS STORM EVOLVE ROUNDS
run_seed() {
  SEED=$1
  OUT="$WORK/s$SEED"
  "$SCN" --seed "$SEED" --schemas "$2" --storm "$3" --evolve "$4" \
    --rounds "$5" --out "$OUT" \
    || fail "seed $SEED: generation or ground-truth recovery failed"

  SCHED="$OUT/schedule.txt"
  CK=$(awk '/^!phase/ { if ($NF == "checkpoint") print n; n++ }' "$SCHED")
  NPH=$(grep -c '^!phase' "$SCHED")
  [ -n "$CK" ] || fail "seed $SEED: schedule has no checkpoint phase"

  # leg 1: offline, sequential — the reference transcript
  SIT_JOBS=1 "$SERVE" "$OUT/schemas.ecr" -s "$OUT/session.sit" \
    --data "$OUT/instances.ecd" --listen 127.0.0.1:0 \
    --schedule "$SCHED" --transcript "$OUT/ref.txt" \
    || fail "seed $SEED: offline SIT_JOBS=1 leg failed"

  # leg 2: offline, machine-sized pool
  SIT_JOBS=$NPROC "$SERVE" "$OUT/schemas.ecr" -s "$OUT/session.sit" \
    --data "$OUT/instances.ecd" --listen 127.0.0.1:0 \
    --schedule "$SCHED" --transcript "$OUT/jobs.txt" \
    || fail "seed $SEED: offline SIT_JOBS=$NPROC leg failed"
  cmp -s "$OUT/ref.txt" "$OUT/jobs.txt" \
    || fail "seed $SEED: SIT_JOBS=$NPROC leg diverged from the reference"

  # legs 3 and 4: one fresh daemon per protocol — schedules mutate
  # server state, so the legs cannot share a daemon
  for PROTO in json bin; do
    SOCK="$WORK/s$SEED.$PROTO.sock"
    start_daemon "$WORK/j$SEED.$PROTO" "$SOCK"
    "$SERVE" --drive "unix:$SOCK" --conns 4 --proto "$PROTO" \
      --schedule "$SCHED" --transcript "$OUT/$PROTO.txt" \
      || fail "seed $SEED: served $PROTO leg failed"
    stop_daemon
    cmp -s "$OUT/ref.txt" "$OUT/$PROTO.txt" \
      || fail "seed $SEED: served $PROTO leg diverged from the reference"
  done

  # leg 5: stop at the checkpoint phase, resume from the journal
  SOCK="$WORK/s$SEED.resume.sock"
  JDIR="$WORK/j$SEED.resume"
  start_daemon "$JDIR" "$SOCK"
  "$SERVE" --drive "unix:$SOCK" --conns 4 --proto json \
    --schedule "$SCHED" --phases "0:$CK" --transcript "$OUT/prefix.txt" \
    || fail "seed $SEED: resume prefix leg failed"
  stop_daemon
  start_daemon "$JDIR" "$SOCK"
  "$SERVE" --drive "unix:$SOCK" --conns 4 --proto json \
    --schedule "$SCHED" --phases "$CK:$NPH" --transcript "$OUT/suffix.txt" \
    || fail "seed $SEED: resume suffix leg failed"
  stop_daemon
  cat "$OUT/prefix.txt" "$OUT/suffix.txt" >"$OUT/resumed.txt"
  cmp -s "$OUT/ref.txt" "$OUT/resumed.txt" \
    || fail "seed $SEED: resumed leg diverged from the uninterrupted run"

  echo "scenario-test: seed $SEED ok ($(grep -c '^{' "$OUT/ref.txt") responses, checkpoint phase $CK of $NPH)"
}

# The pinned matrix (budget documented in the Makefile): one
# federation-scale scenario (8 schemas, 241 ops) plus two smaller
# shapes covering a narrow federation and a single-round schedule.
run_seed 11 8 36 9 2
run_seed 23 5 24 6 2
run_seed 42 6 30 8 1

echo "scenario-test: ok"
