#!/bin/sh
# Docs drift gate (`make docs-check`, part of `make check`):
#
#   1. every guide under docs/ must be linked from README.md — a new
#      guide nobody can discover is drift, not documentation;
#   2. the op table in docs/SERVING.md must match the wire protocol's
#      op registry (the `ops` list in lib/server/wire.ml) in both
#      directions — every served op documented, no phantom ops
#      documented that the daemon would answer `unknown_op`.
#
# Pure POSIX sh + grep/sed so it runs anywhere the repo builds.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
fail=0

# --- 1: README links every docs/*.md guide -------------------------
for doc in "$ROOT"/docs/*.md; do
  rel="docs/$(basename "$doc")"
  if ! grep -q "$rel" "$ROOT/README.md"; then
    echo "docs-check: $rel is not linked from README.md"
    fail=1
  fi
done

# --- 2: SERVING.md op table == Wire.ops ----------------------------
# The registry is a literal string list; pull the quoted words between
# `let ops =` and the closing bracket.
registry=$(sed -n '/^let ops =/,/^  \]/p' "$ROOT/lib/server/wire.ml" |
  grep -o '"[a-z_]*"' | tr -d '"' | sort)
if [ -z "$registry" ]; then
  echo "docs-check: cannot extract the op registry from lib/server/wire.ml"
  exit 1
fi

# Documented ops: first-column cells of the markdown table whose
# header row is `| op | ...` (SERVING.md has several tables — fields
# and error codes use the same layout, so the range matters).
documented=$(sed -n '/^| op  */,/^$/p' "$ROOT/docs/SERVING.md" |
  grep -o '^| `[a-z_]*`' | sed 's/| `//; s/`//' | sort -u)

for op in $registry; do
  if ! printf '%s\n' "$documented" | grep -qx "$op"; then
    echo "docs-check: op \"$op\" (Wire.ops) is missing from the docs/SERVING.md op table"
    fail=1
  fi
done
for op in $documented; do
  if ! printf '%s\n' "$registry" | grep -qx "$op"; then
    echo "docs-check: docs/SERVING.md documents op \"$op\" which is not in Wire.ops"
    fail=1
  fi
done

[ "$fail" -eq 0 ] && echo "docs-check: ok"
exit "$fail"
