#!/bin/sh
# Docs drift gate (`make docs-check`, part of `make check`):
#
#   1. every guide under docs/ must be linked from README.md — a new
#      guide nobody can discover is drift, not documentation;
#   2. the op tables in docs/SERVING.md and docs/WIRE.md must match
#      the wire protocol's op registry (the `ops` list in
#      lib/server/wire.ml) in both directions — every served op
#      documented, no phantom ops documented that the daemon would
#      answer `unknown_op`.
#
# Every failure names a file and line so the fix is one click away.
# Pure POSIX sh + grep/sed so it runs anywhere the repo builds.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
fail=0

# --- 1: README links every docs/*.md guide -------------------------
# A missing link points at the last existing docs/ link in README.md:
# that is where the new one belongs.
readme_anchor=$(grep -n 'docs/[A-Za-z_]*\.md' "$ROOT/README.md" |
  tail -1 | cut -d: -f1)
readme_anchor=${readme_anchor:-1}
for doc in "$ROOT"/docs/*.md; do
  rel="docs/$(basename "$doc")"
  if ! grep -q "$rel" "$ROOT/README.md"; then
    echo "docs-check: README.md:$readme_anchor: $rel is not linked from README.md"
    fail=1
  fi
done

# --- 2: op tables == Wire.ops --------------------------------------
# The registry is a literal string list; pull the quoted words between
# `let ops =` and the closing bracket.
registry_line=$(grep -n '^let ops =' "$ROOT/lib/server/wire.ml" |
  head -1 | cut -d: -f1)
registry=$(sed -n '/^let ops =/,/^  \]/p' "$ROOT/lib/server/wire.ml" |
  grep -o '"[a-z_]*"' | tr -d '"' | sort)
if [ -z "$registry" ]; then
  echo "docs-check: lib/server/wire.ml:${registry_line:-1}: cannot extract the op registry"
  exit 1
fi

# check_ops DOC: the first-column cells of the markdown table whose
# header row is `| op | ...` must equal the registry (each doc has
# several tables — fields and error codes use the same layout, so the
# range matters).
check_ops() {
  doc=$1
  table_line=$(grep -n '^| op ' "$ROOT/$doc" | head -1 | cut -d: -f1)
  if [ -z "$table_line" ]; then
    echo "docs-check: $doc:1: no op table (a '| op | ...' markdown table) found"
    fail=1
    return
  fi
  documented=$(sed -n '/^| op  */,/^$/p' "$ROOT/$doc" |
    grep -o '^| `[a-z_]*`' | sed 's/| `//; s/`//' | sort -u)
  for op in $registry; do
    if ! printf '%s\n' "$documented" | grep -qx "$op"; then
      echo "docs-check: $doc:$table_line: op \"$op\" (lib/server/wire.ml:$registry_line) is missing from the op table"
      fail=1
    fi
  done
  for op in $documented; do
    if ! printf '%s\n' "$registry" | grep -qx "$op"; then
      op_line=$(grep -n "^| \`$op\`" "$ROOT/$doc" | head -1 | cut -d: -f1)
      echo "docs-check: $doc:${op_line:-$table_line}: documents op \"$op\" which is not in Wire.ops (lib/server/wire.ml:$registry_line)"
      fail=1
    fi
  done
}

check_ops docs/SERVING.md
check_ops docs/WIRE.md

[ "$fail" -eq 0 ] && echo "docs-check: ok"
exit "$fail"
