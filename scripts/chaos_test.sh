#!/bin/sh
# Chaos harness for the replication tier (docs/ROBUSTNESS.md): render a
# pinned-seed scenario, then drive it through a leader + 2-follower
# cluster while the harness injects the faults the tier claims to
# tolerate, asserting byte-identity against a single-node reference at
# every step:
#
#   leg 1 (reference): one node replays the full schedule; its
#         transcript, and a read-only deck replayed after it, are the
#         oracle every other leg is compared against
#   leg 2 (replicated): the same schedule against a leader with
#         --ack-replicas 2 and two live followers — the transcript must
#         be byte-identical (replication must not change one answer)
#   leg 3 (catch-up): each follower must converge to answering the
#         read deck byte-identically to the reference
#   leg 4 (kill -9 the leader mid-load): the read deck replayed through
#         the failover client (--endpoints dead-leader,f1,f2) while the
#         leader is SIGKILLed — every acknowledged write must still be
#         visible, every answer byte-identical to the reference
#   leg 5 (late follower): a follower started after all mutations
#         finished must catch up from seq 1 and converge the same way
#   leg 6 (compaction): a journalled leader with --compact-every runs a
#         write storm past the compaction window (base_seq > 0), is
#         SIGKILLed and restarted — recovery is snapshot + suffix — and
#         a fresh follower whose start point is below the truncated
#         base must catch up through a snapshot transfer
#         (snapshot_installs >= 1), byte-identical to the reference
#
# Seeds are pinned so the fault schedule is reproducible.  Run via
# `make chaos-test` (part of `make check`).
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SERVE="$ROOT/_build/default/bin/sit_serve.exe"
SCN="$ROOT/_build/default/bin/sit_scenario.exe"
WORK="${TMPDIR:-/tmp}/sit_chaos_test_$$"

# the pinned scenario: seed/schemas/storm/evolve/rounds
SEED=23
SHAPE="5 24 6 2"

[ -x "$SERVE" ] || { echo "chaos-test: build first (dune build)"; exit 1; }
[ -x "$SCN" ] || { echo "chaos-test: build first (dune build)"; exit 1; }

mkdir -p "$WORK"
PIDS=""
cleanup() {
  for P in $PIDS; do kill -9 "$P" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "chaos-test: $*"; exit 1; }

# start_node LOG ARGS... — start a daemon on an ephemeral TCP port;
# sets $PORT to the port it advertises (the kernel picks it, so
# parallel runs never collide) and $LAST_PID to its pid
start_node() {
  LOGF=$1; shift
  "$SERVE" "$OUT/schemas.ecr" -s "$OUT/session.sit" \
    --data "$OUT/instances.ecd" --listen 127.0.0.1:0 --jobs 2 \
    "$@" >"$LOGF" 2>&1 &
  LAST_PID=$!
  PIDS="$PIDS $LAST_PID"
  i=0
  PORT=""
  while [ -z "$PORT" ]; do
    i=$((i + 1))
    [ "$i" -le 150 ] || { cat "$LOGF" >&2; fail "daemon did not advertise a port"; }
    PORT=$(sed -n 's/^sit_serve: listening on port \([0-9][0-9]*\)$/\1/p' "$LOGF")
    [ -n "$PORT" ] || sleep 0.1
  done
}

# converge ADDR OUT_FILE — replay the read deck against ADDR until its
# transcript is byte-identical to the reference (catch-up window), or
# fail after the retry budget
converge() {
  i=0
  while :; do
    i=$((i + 1))
    if "$SERVE" --drive "$1" --conns 1 --proto json \
         --schedule "$READS_SCHED" --transcript "$2" >/dev/null 2>&1 \
       && cmp -s "$OUT/ref_reads.txt" "$2"; then
      return 0
    fi
    [ "$i" -le 100 ] || return 1
    sleep 0.1
  done
}

# ---- scenario ------------------------------------------------------

OUT="$WORK/scenario"
# shellcheck disable=SC2086
"$SCN" --seed "$SEED" $(printf -- '--schemas %s --storm %s --evolve %s --rounds %s' $SHAPE) \
  --out "$OUT" >/dev/null \
  || fail "seed $SEED: generation or ground-truth recovery failed"
SCHED="$OUT/schedule.txt"
[ -s "$OUT/reads.txt" ] || fail "scenario rendered no read deck"

# the read-only deck as a one-phase storm schedule, so the drive client
# can replay it and emit a comparable transcript
READS_SCHED="$OUT/reads_sched.txt"
{ echo "!phase reads storm"; cat "$OUT/reads.txt"; } >"$READS_SCHED"

# ---- leg 1: single-node reference ----------------------------------

start_node "$WORK/ref.log"
REF_PID=$LAST_PID
"$SERVE" --drive "127.0.0.1:$PORT" --conns 4 --proto json \
  --schedule "$SCHED" --transcript "$OUT/ref.txt" \
  || fail "reference schedule leg failed"
"$SERVE" --drive "127.0.0.1:$PORT" --conns 1 --proto json \
  --schedule "$READS_SCHED" --transcript "$OUT/ref_reads.txt" \
  || fail "reference read-deck leg failed"
kill -TERM "$REF_PID" && wait "$REF_PID" || fail "reference daemon exited non-zero"

# ---- leg 2: replicated run, semi-sync ------------------------------

start_node "$WORK/leader.log" --ack-replicas 2
LPORT=$PORT
LEADER_PID=$LAST_PID
start_node "$WORK/f1.log" --follow "127.0.0.1:$LPORT"
F1PORT=$PORT
start_node "$WORK/f2.log" --follow "127.0.0.1:$LPORT"
F2PORT=$PORT

"$SERVE" --drive "127.0.0.1:$LPORT" --conns 4 --proto json \
  --schedule "$SCHED" --transcript "$OUT/repl.txt" \
  || fail "replicated schedule leg failed"
cmp -s "$OUT/ref.txt" "$OUT/repl.txt" \
  || fail "replicated leg diverged from the single-node reference"

# ---- leg 3: both followers converge --------------------------------

converge "127.0.0.1:$F1PORT" "$OUT/f1_reads.txt" \
  || fail "follower 1 never converged on the reference answers"
converge "127.0.0.1:$F2PORT" "$OUT/f2_reads.txt" \
  || fail "follower 2 never converged on the reference answers"

# follower health must expose replication state (staleness_seq)
if command -v python3 >/dev/null 2>&1; then
  python3 - "$F1PORT" <<'EOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
f = s.makefile("rw")
f.write('{"op":"health"}\n'); f.flush()
h = json.loads(f.readline())
assert h["ok"], h
assert h["role"] == "follower", h
assert h["staleness_seq"] == 0, h
assert "applied_seq" in h, h
s.close()
EOF
else
  echo "chaos-test: python3 not found, skipping follower health check"
fi

# ---- leg 4: SIGKILL the leader; reads fail over --------------------

kill -9 "$LEADER_PID" 2>/dev/null || true
wait "$LEADER_PID" 2>/dev/null || true

# the dead leader stays first in the endpoint list: every worker must
# walk past it (connection refused) and still answer every frame with
# the reference bytes — no acknowledged write may be missing
"$SERVE" --drive "127.0.0.1:$LPORT" \
  --endpoints "127.0.0.1:$LPORT,127.0.0.1:$F1PORT,127.0.0.1:$F2PORT" \
  --conns 4 --proto json --timeout-ms 2000 \
  --schedule "$READS_SCHED" --transcript "$OUT/failover_reads.txt" \
  || fail "post-kill failover leg failed"
cmp -s "$OUT/ref_reads.txt" "$OUT/failover_reads.txt" \
  || fail "post-failover answers diverged: an acknowledged write was lost"

# a follower of a dead leader must degrade gracefully: come up, serve
# reads of its own (setup) state, keep retrying the tail under backoff
start_node "$WORK/f3.log" --follow "127.0.0.1:$LPORT"
F3PORT=$PORT
F3_PID=$LAST_PID
"$SERVE" --drive "127.0.0.1:$F3PORT" --conns 1 --requests 4 --proto json \
  --global "select * from G_Root" >/dev/null 2>&1 \
  || true # the query itself may be a typed error; the daemon answering is the point
if command -v python3 >/dev/null 2>&1; then
  python3 - "$F3PORT" <<'EOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
f = s.makefile("rw")
f.write('{"op":"health"}\n'); f.flush()
h = json.loads(f.readline())
assert h["ok"] and h["role"] == "follower", h
assert h["repl_connected"] is False, h
s.close()
EOF
fi
kill -9 "$F3_PID" 2>/dev/null || true
wait "$F3_PID" 2>/dev/null || true

# ---- leg 5: a follower started after the fact catches up -----------

start_node "$WORK/leader2.log"
LPORT2=$PORT
LEADER2_PID=$LAST_PID
"$SERVE" --drive "127.0.0.1:$LPORT2" --conns 4 --proto json \
  --schedule "$SCHED" --transcript "$OUT/l2.txt" \
  || fail "second leader schedule leg failed"
cmp -s "$OUT/ref.txt" "$OUT/l2.txt" || fail "second leader diverged"
start_node "$WORK/f4.log" --follow "127.0.0.1:$LPORT2"
F4PORT=$PORT
converge "127.0.0.1:$F4PORT" "$OUT/f4_reads.txt" \
  || fail "late-started follower never converged"
kill -TERM "$LEADER2_PID" 2>/dev/null || true

# ---- leg 6: compaction, kill -9, snapshot-transfer catch-up ---------

JDIR="$WORK/leader3_journal"
mkdir -p "$JDIR"
start_node "$WORK/leader3.log" --journal "$JDIR" --compact-every 4
LPORT3=$PORT
LEADER3_PID=$LAST_PID
"$SERVE" --drive "127.0.0.1:$LPORT3" --conns 4 --proto json \
  --schedule "$SCHED" --transcript "$OUT/l3.txt" \
  || fail "compacting leader schedule leg failed"
cmp -s "$OUT/ref.txt" "$OUT/l3.txt" \
  || fail "compaction changed an answer: leg 6 diverged from the reference"

# the storm must have driven the log past the compaction window
if command -v python3 >/dev/null 2>&1; then
  python3 - "$LPORT3" <<'EOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
f = s.makefile("rw")
f.write('{"op":"repl_status"}\n'); f.flush()
st = json.loads(f.readline())
assert st["ok"] and st["role"] == "leader", st
assert st["base_seq"] > 0, ("log was never truncated", st)
assert st["snapshot_seq"] >= st["base_seq"], st
s.close()
EOF
fi

kill -9 "$LEADER3_PID" 2>/dev/null || true
wait "$LEADER3_PID" 2>/dev/null || true

# restart from the same journal: recovery must be snapshot + suffix,
# and the recovered state must answer the read deck byte-identically
start_node "$WORK/leader3b.log" --journal "$JDIR" --compact-every 4
LPORT3B=$PORT
converge "127.0.0.1:$LPORT3B" "$OUT/l3b_reads.txt" \
  || fail "leader restarted from snapshot + suffix diverged"

# a fresh follower starts below the truncated base: it must take the
# snapshot-transfer leg and still converge on the reference bytes
start_node "$WORK/f5.log" --follow "127.0.0.1:$LPORT3B"
F5PORT=$PORT
converge "127.0.0.1:$F5PORT" "$OUT/f5_reads.txt" \
  || fail "follower behind the truncation never converged"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$F5PORT" <<'EOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
f = s.makefile("rw")
f.write('{"op":"health"}\n'); f.flush()
h = json.loads(f.readline())
assert h["ok"] and h["role"] == "follower", h
assert h["staleness_seq"] == 0, h
assert h["snapshot_installs"] >= 1, ("catch-up did not go through a snapshot", h)
s.close()
EOF
fi

echo "chaos-test: ok (seed $SEED; $(grep -c '^{' "$OUT/ref_reads.txt") read frames held byte-identical through failover and compaction)"
