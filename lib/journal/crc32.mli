(** CRC-32 (IEEE, the zlib/Ethernet polynomial), dependency-free. *)

val digest : string -> int
(** The checksum of the whole string, in [0, 2^32). *)
