(* Table-driven CRC-32 (IEEE 802.3 polynomial, reflected form
   0xEDB88320) — the checksum guarding every journal record.  Computed
   over OCaml's 63-bit native ints, masked to 32 bits, so the module
   needs no external dependency. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF

let digest s =
  let t = Lazy.force table in
  let crc = ref mask in
  String.iter
    (fun ch -> crc := (!crc lsr 8) lxor t.((!crc lxor Char.code ch) land 0xFF))
    s;
  !crc lxor mask land mask
