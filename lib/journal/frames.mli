(** Generic CRC-framed append-only record log — the byte layer under
    {!Journal} and under the serving tier's view-catalog log.

    A frames file is an 8-byte magic string followed by records,

    {v <length: u32 LE> <crc32(payload): u32 LE> <payload bytes> v}

    with opaque string payloads.  Records are validated independently
    (length bound, CRC), so recovery always finds the longest valid
    record prefix and ignores everything after the first damaged byte —
    a torn or corrupted tail is truncated, never fatal.  What the
    payloads {e mean} is the caller's business: {!Journal} stores
    session ops and workspace snapshots, [lib/server] stores
    view-catalog entries ([docs/VIEWS.md]). *)

type t
(** An open log, positioned for appending. *)

(** When appended records reach the disk (see [docs/ROBUSTNESS.md]). *)
type fsync_policy =
  | Never  (** buffered: leave durability to the OS (fastest) *)
  | Every of int  (** fsync once per [n] appended records *)
  | Always  (** fsync after every record (most durable) *)

type recovery = {
  payloads : string list;  (** the longest valid record prefix, in order *)
  truncated_bytes : int;
      (** bytes of torn/corrupt tail discarded (0 for a clean file) *)
}

val recover :
  ?validate:(string -> bool) -> magic:string -> string -> recovery
(** [recover ~magic path] reads a frames file and returns its longest
    valid record prefix.  A missing file is an empty log; a damaged
    file yields whatever prefix survives.  [validate] (default: accept
    everything) lets the caller extend "valid" to its own payload
    syntax — the scan stops at the first CRC-valid record it rejects,
    exactly as it stops at a checksum failure.  Never raises on
    corruption, of any kind. *)

val open_ :
  ?fsync:fsync_policy ->
  ?validate:(string -> bool) ->
  magic:string ->
  string ->
  recovery * t
(** [open_ ~magic path] recovers [path] (creating it if absent),
    truncates any invalid tail so new records extend the valid prefix,
    and returns the log ready for appending.  [fsync] defaults to
    [Every 8]. *)

val append : t -> string -> unit
(** Appends one record (a single [write], then fsync per policy).
    Routed through the {!For_testing} crash hook. *)

val append_raw : t -> string -> unit
(** {!append} without the fsync policy — for callers that batch
    durability themselves (e.g. a record that must be followed by an
    unconditional {!sync_now}, like {!Journal}'s checkpoints). *)

val sync_now : t -> unit
(** Forces an fsync now and resets the [Every n] countdown.  A no-op
    under [Never]. *)

val rewrite : t -> string list -> unit
(** Atomically replaces the log's contents with exactly the given
    payloads — temp file, fsync, [Sys.rename] — so a log can be
    compacted without ever exposing a partial file.  Falls back to
    truncate-and-rewrite in place when the path is not a regular file
    (a fifo, [/dev/null]), where a rename would destroy the target.
    The log stays open for further appends. *)

val reset : t -> unit
(** Empties the log (keeps the magic header). *)

val fsync_policy : t -> fsync_policy
val path : t -> string

val close : t -> unit
(** Final fsync (per policy) and close.  Idempotent. *)

(** Fault injection for the crash-test harness (test/test_journal.ml).
    Not for production use. *)
module For_testing : sig
  exception Crash
  (** Raised by {!append} when the write budget runs out mid-record,
      leaving a torn record on disk — a simulated kill. *)

  val write_limit : int option ref
  (** [Some n] allows [n] more appended bytes to reach the file; the
      first write that would exceed it is cut short and raises
      {!Crash}.  [None] (the default) disables the hook. *)
end
