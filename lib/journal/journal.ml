(* The session journal: Integrate.Op payload semantics (directive
   syntax for ops, Dictionary documents for snapshots) layered over the
   generic framed log in frames.ml. *)

module Frames = Frames

let magic = "SITJRNL1"

type fsync_policy = Frames.fsync_policy = Never | Every of int | Always

type t = {
  frames : Frames.t;
  checkpoint_every : int;
  mu : Mutex.t;
      (* serializes every mutation (append/checkpoint/compact/reset/
         close) and subscriber registration, so concurrent appenders —
         connection threads of a serving daemon — get a total order:
         seq numbers are dense, frames hit the file in seq order, and
         each subscriber sees every op exactly once, in that order
         (subscribers run under the lock; they must not call back). *)
  mutable seq : int;
  mutable since_checkpoint : int;
  mutable closed : bool;
  mutable subscribers : (Integrate.Op.t -> unit) list;
}

type recovery = {
  workspace : Integrate.Workspace.t;
  seq : int;
  records : int;
  truncated_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Observability.  (fsyncs/fsync_ms/truncated_bytes live in Frames.)   *)

let c_appends = Obs.Counter.make "journal.appends"
let c_recovered = Obs.Counter.make "journal.recovered_records"

(* ------------------------------------------------------------------ *)
(* Fault injection: the hook lives at the byte layer.                  *)

module For_testing = Frames.For_testing

(* ------------------------------------------------------------------ *)
(* Record (de)serialisation.                                           *)

exception Corrupt
(* Internal: a CRC-valid record whose payload does not parse.  Recovery
   treats it exactly like a checksum failure — truncate there. *)

let op_to_string op =
  let qn = Ecr.Qname.to_string in
  let qa = Ecr.Qname.Attr.to_string in
  match op with
  | Integrate.Op.Add_schema s -> "schema\n" ^ Ddl.Printer.to_string s
  | Integrate.Op.Remove_schema n -> "rmschema " ^ Ecr.Name.to_string n
  | Integrate.Op.Declare_equivalent (a, b) ->
      Printf.sprintf "equiv %s %s" (qa a) (qa b)
  | Integrate.Op.Separate_attribute a -> "sep " ^ qa a
  | Integrate.Op.Assert_object (a, c, b) ->
      Printf.sprintf "object %s %d %s" (qn a) (Integrate.Assertion.code c) (qn b)
  | Integrate.Op.Assert_relationship (a, c, b) ->
      Printf.sprintf "rel %s %d %s" (qn a) (Integrate.Assertion.code c) (qn b)
  | Integrate.Op.Retract_object (a, b) ->
      Printf.sprintf "retract %s %s" (qn a) (qn b)
  | Integrate.Op.Retract_relationship (a, b) ->
      Printf.sprintf "retractrel %s %s" (qn a) (qn b)
  | Integrate.Op.Rename (a, b, forced) ->
      Printf.sprintf "name %s %s %s" (qn a) (qn b) forced

let op_of_string text =
  let qattr s =
    match String.split_on_char '.' s with
    | [ a; b; c ] -> Ecr.Qname.Attr.v a b c
    | _ -> raise Corrupt
  in
  let qname s =
    match String.split_on_char '.' s with
    | [ a; b ] -> Ecr.Qname.v a b
    | _ -> raise Corrupt
  in
  let code s =
    match Option.bind (int_of_string_opt s) Integrate.Assertion.of_code with
    | Some a -> a
    | None -> raise Corrupt
  in
  if String.length text >= 7 && String.sub text 0 7 = "schema\n" then
    let ddl = String.sub text 7 (String.length text - 7) in
    match Ddl.Parser.schemas_of_string ddl with
    | [ s ] -> Integrate.Op.Add_schema s
    | _ -> raise Corrupt
  else
    match String.split_on_char ' ' text |> List.filter (fun s -> s <> "") with
    | [ "rmschema"; n ] -> Integrate.Op.Remove_schema (Ecr.Name.v n)
    | [ "equiv"; a; b ] -> Integrate.Op.Declare_equivalent (qattr a, qattr b)
    | [ "sep"; a ] -> Integrate.Op.Separate_attribute (qattr a)
    | [ "object"; a; c; b ] ->
        Integrate.Op.Assert_object (qname a, code c, qname b)
    | [ "rel"; a; c; b ] ->
        Integrate.Op.Assert_relationship (qname a, code c, qname b)
    | [ "retract"; a; b ] -> Integrate.Op.Retract_object (qname a, qname b)
    | [ "retractrel"; a; b ] ->
        Integrate.Op.Retract_relationship (qname a, qname b)
    | [ "name"; a; b; forced ] ->
        Integrate.Op.Rename (qname a, qname b, forced)
    | _ -> raise Corrupt

type record =
  | Rop of int * Integrate.Op.t
  | Rsnap of int * Integrate.Workspace.t

let payload_of_record = function
  | Rop (seq, op) -> Printf.sprintf "op %d\n%s" seq (op_to_string op)
  | Rsnap (seq, ws) -> Printf.sprintf "snap %d\n%s" seq (Dictionary.to_string ws)

let record_of_payload payload =
  match String.index_opt payload '\n' with
  | None -> raise Corrupt
  | Some i -> (
      let header = String.sub payload 0 i in
      let body = String.sub payload (i + 1) (String.length payload - i - 1) in
      match String.split_on_char ' ' header with
      | [ "op"; s ] -> (
          match int_of_string_opt s with
          | Some seq -> Rop (seq, op_of_string body)
          | None -> raise Corrupt)
      | [ "snap"; s ] -> (
          match int_of_string_opt s with
          | Some seq -> Rsnap (seq, Dictionary.of_string body)
          | None -> raise Corrupt)
      | _ -> raise Corrupt)

let valid_payload payload =
  match record_of_payload payload with _ -> true | exception _ -> false

(* ------------------------------------------------------------------ *)
(* Recovery: replay the longest valid record prefix.                   *)

let replay records =
  List.fold_left
    (fun (ws, _) r ->
      match r with
      | Rsnap (seq, w) -> (w, seq)
      | Rop (seq, op) -> (Integrate.Op.apply op ws, seq))
    (Integrate.Workspace.empty, 0)
    records

let ops_since_snapshot records =
  List.fold_left
    (fun acc r -> match r with Rsnap _ -> 0 | Rop _ -> acc + 1)
    0 records

let recovery_of (fr : Frames.recovery) =
  let records = List.map record_of_payload fr.Frames.payloads in
  let workspace, seq = replay records in
  Obs.Counter.add c_recovered (List.length records);
  ( { workspace; seq; records = List.length records;
      truncated_bytes = fr.Frames.truncated_bytes },
    records )

let recover path =
  fst (recovery_of (Frames.recover ~validate:valid_payload ~magic path))

(* ------------------------------------------------------------------ *)
(* The append side.                                                    *)

let open_ ?(fsync = Every 8) ?(checkpoint_every = 64) path =
  let fr, frames = Frames.open_ ~fsync ~validate:valid_payload ~magic path in
  let recovery, records = recovery_of fr in
  ( recovery,
    {
      frames;
      checkpoint_every = Int.max 1 checkpoint_every;
      mu = Mutex.create ();
      seq = recovery.seq;
      since_checkpoint = ops_since_snapshot records;
      closed = false;
      subscribers = [];
    } )

let check_open t = if t.closed then invalid_arg "Journal: journal is closed"

let subscribe t f =
  Mutex.protect t.mu (fun () -> t.subscribers <- t.subscribers @ [ f ])

let checkpoint_locked t ws =
  check_open t;
  Frames.append_raw t.frames (payload_of_record (Rsnap (t.seq, ws)));
  t.since_checkpoint <- 0;
  Frames.sync_now t.frames

let checkpoint t ws = Mutex.protect t.mu (fun () -> checkpoint_locked t ws)

let append ?after t op =
  Mutex.protect t.mu (fun () ->
      check_open t;
      Frames.append t.frames (payload_of_record (Rop (t.seq + 1, op)));
      t.seq <- t.seq + 1;
      t.since_checkpoint <- t.since_checkpoint + 1;
      Obs.Counter.incr c_appends;
      List.iter (fun f -> f op) t.subscribers;
      match after with
      | Some ws when t.since_checkpoint >= t.checkpoint_every ->
          checkpoint_locked t ws
      | _ -> ())

let reset t =
  Mutex.protect t.mu (fun () ->
      check_open t;
      Frames.reset t.frames;
      t.seq <- 0;
      t.since_checkpoint <- 0)

let compact t ws =
  Mutex.protect t.mu (fun () ->
      check_open t;
      Frames.rewrite t.frames [ payload_of_record (Rsnap (t.seq, ws)) ];
      t.since_checkpoint <- 0)

let seq (t : t) = Mutex.protect t.mu (fun () -> t.seq)
let path (t : t) = Frames.path t.frames

let close t =
  Mutex.protect t.mu (fun () ->
      if not t.closed then begin
        Frames.close t.frames;
        t.closed <- true
      end)
