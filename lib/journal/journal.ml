let magic = "SITJRNL1"

type fsync_policy = Never | Every of int | Always

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  fsync : fsync_policy;
  checkpoint_every : int;
  mutable seq : int;
  mutable since_checkpoint : int;
  mutable unsynced : int;
  mutable closed : bool;
}

type recovery = {
  workspace : Integrate.Workspace.t;
  seq : int;
  records : int;
  truncated_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Observability.                                                      *)

let c_appends = Obs.Counter.make "journal.appends"
let c_fsyncs = Obs.Counter.make "journal.fsyncs"
let c_recovered = Obs.Counter.make "journal.recovered_records"
let c_truncated = Obs.Counter.make "journal.truncated_bytes"
let h_fsync_ms = Obs.Histogram.make "journal.fsync_ms"

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)

module For_testing = struct
  exception Crash

  let write_limit : int option ref = ref None
end

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* All journal bytes funnel through here so the crash hook can cut any
   record short at an arbitrary byte offset. *)
let write_raw fd s =
  match !For_testing.write_limit with
  | None -> write_all fd s
  | Some budget ->
      let k = Int.min budget (String.length s) in
      For_testing.write_limit := Some (budget - k);
      write_all fd (String.sub s 0 k);
      if k < String.length s then raise For_testing.Crash

(* ------------------------------------------------------------------ *)
(* Record (de)serialisation.                                           *)

exception Corrupt
(* Internal: a CRC-valid record whose payload does not parse.  Recovery
   treats it exactly like a checksum failure — truncate there. *)

let op_to_string op =
  let qn = Ecr.Qname.to_string in
  let qa = Ecr.Qname.Attr.to_string in
  match op with
  | Integrate.Op.Add_schema s -> "schema\n" ^ Ddl.Printer.to_string s
  | Integrate.Op.Remove_schema n -> "rmschema " ^ Ecr.Name.to_string n
  | Integrate.Op.Declare_equivalent (a, b) ->
      Printf.sprintf "equiv %s %s" (qa a) (qa b)
  | Integrate.Op.Separate_attribute a -> "sep " ^ qa a
  | Integrate.Op.Assert_object (a, c, b) ->
      Printf.sprintf "object %s %d %s" (qn a) (Integrate.Assertion.code c) (qn b)
  | Integrate.Op.Assert_relationship (a, c, b) ->
      Printf.sprintf "rel %s %d %s" (qn a) (Integrate.Assertion.code c) (qn b)
  | Integrate.Op.Retract_object (a, b) ->
      Printf.sprintf "retract %s %s" (qn a) (qn b)
  | Integrate.Op.Retract_relationship (a, b) ->
      Printf.sprintf "retractrel %s %s" (qn a) (qn b)
  | Integrate.Op.Rename (a, b, forced) ->
      Printf.sprintf "name %s %s %s" (qn a) (qn b) forced

let op_of_string text =
  let qattr s =
    match String.split_on_char '.' s with
    | [ a; b; c ] -> Ecr.Qname.Attr.v a b c
    | _ -> raise Corrupt
  in
  let qname s =
    match String.split_on_char '.' s with
    | [ a; b ] -> Ecr.Qname.v a b
    | _ -> raise Corrupt
  in
  let code s =
    match Option.bind (int_of_string_opt s) Integrate.Assertion.of_code with
    | Some a -> a
    | None -> raise Corrupt
  in
  if String.length text >= 7 && String.sub text 0 7 = "schema\n" then
    let ddl = String.sub text 7 (String.length text - 7) in
    match Ddl.Parser.schemas_of_string ddl with
    | [ s ] -> Integrate.Op.Add_schema s
    | _ -> raise Corrupt
  else
    match String.split_on_char ' ' text |> List.filter (fun s -> s <> "") with
    | [ "rmschema"; n ] -> Integrate.Op.Remove_schema (Ecr.Name.v n)
    | [ "equiv"; a; b ] -> Integrate.Op.Declare_equivalent (qattr a, qattr b)
    | [ "sep"; a ] -> Integrate.Op.Separate_attribute (qattr a)
    | [ "object"; a; c; b ] ->
        Integrate.Op.Assert_object (qname a, code c, qname b)
    | [ "rel"; a; c; b ] ->
        Integrate.Op.Assert_relationship (qname a, code c, qname b)
    | [ "retract"; a; b ] -> Integrate.Op.Retract_object (qname a, qname b)
    | [ "retractrel"; a; b ] ->
        Integrate.Op.Retract_relationship (qname a, qname b)
    | [ "name"; a; b; forced ] ->
        Integrate.Op.Rename (qname a, qname b, forced)
    | _ -> raise Corrupt

type record =
  | Rop of int * Integrate.Op.t
  | Rsnap of int * Integrate.Workspace.t

let payload_of_record = function
  | Rop (seq, op) -> Printf.sprintf "op %d\n%s" seq (op_to_string op)
  | Rsnap (seq, ws) -> Printf.sprintf "snap %d\n%s" seq (Dictionary.to_string ws)

let record_of_payload payload =
  match String.index_opt payload '\n' with
  | None -> raise Corrupt
  | Some i -> (
      let header = String.sub payload 0 i in
      let body = String.sub payload (i + 1) (String.length payload - i - 1) in
      match String.split_on_char ' ' header with
      | [ "op"; s ] -> (
          match int_of_string_opt s with
          | Some seq -> Rop (seq, op_of_string body)
          | None -> raise Corrupt)
      | [ "snap"; s ] -> (
          match int_of_string_opt s with
          | Some seq -> Rsnap (seq, Dictionary.of_string body)
          | None -> raise Corrupt)
      | _ -> raise Corrupt)

let frame payload =
  let header = Bytes.create 8 in
  Bytes.set_int32_le header 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le header 4 (Int32.of_int (Crc32.digest payload));
  Bytes.to_string header ^ payload

let u32 s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Recovery: scan the longest valid record prefix.                     *)

(* Returns the parsed records and the byte offset where validity ends.
   Every failure mode — short header, length beyond EOF, CRC mismatch,
   unparseable payload — stops the scan at the current offset; nothing
   is ever raised. *)
let scan data =
  let n = String.length data in
  if n < String.length magic || String.sub data 0 (String.length magic) <> magic
  then ([], 0)
  else begin
    let records = ref [] in
    let pos = ref (String.length magic) in
    let stop = ref false in
    while not !stop do
      if !pos + 8 > n then stop := true
      else begin
        let len = u32 data !pos and crc = u32 data (!pos + 4) in
        if len > n - !pos - 8 then stop := true
        else begin
          let payload = String.sub data (!pos + 8) len in
          if Crc32.digest payload <> crc then stop := true
          else
            match record_of_payload payload with
            | exception _ -> stop := true
            | r ->
                records := r :: !records;
                pos := !pos + 8 + len
        end
      end
    done;
    (List.rev !records, !pos)
  end

let replay records =
  List.fold_left
    (fun (ws, _) r ->
      match r with
      | Rsnap (seq, w) -> (w, seq)
      | Rop (seq, op) -> (Integrate.Op.apply op ws, seq))
    (Integrate.Workspace.empty, 0)
    records

let ops_since_snapshot records =
  List.fold_left
    (fun acc r -> match r with Rsnap _ -> 0 | Rop _ -> acc + 1)
    0 records

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* records, valid-prefix end, file length *)
let scan_file path =
  match read_file path with
  | None -> (([], 0), 0)
  | Some data -> (scan data, String.length data)

let recovery_of ~records ~valid_end ~file_len =
  let workspace, seq = replay records in
  Obs.Counter.add c_recovered (List.length records);
  Obs.Counter.add c_truncated (file_len - valid_end);
  { workspace; seq; records = List.length records;
    truncated_bytes = file_len - valid_end }

let recover path =
  let (records, valid_end), file_len = scan_file path in
  recovery_of ~records ~valid_end ~file_len

(* ------------------------------------------------------------------ *)
(* The append side.                                                    *)

let do_fsync t =
  let t0 = Unix.gettimeofday () in
  Unix.fsync t.fd;
  Obs.Histogram.observe h_fsync_ms ((Unix.gettimeofday () -. t0) *. 1000.);
  Obs.Counter.incr c_fsyncs

let open_ ?(fsync = Every 8) ?(checkpoint_every = 64) path =
  let (records, valid_end), file_len = scan_file path in
  let recovery = recovery_of ~records ~valid_end ~file_len in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let t =
    {
      path;
      fd;
      fsync;
      checkpoint_every = Int.max 1 checkpoint_every;
      seq = recovery.seq;
      since_checkpoint = ops_since_snapshot records;
      unsynced = 0;
      closed = false;
    }
  in
  if valid_end = 0 then begin
    (* missing, empty or headerless file: start clean *)
    Unix.ftruncate fd 0;
    write_all fd magic
  end
  else if valid_end < file_len then
    (* drop the torn/corrupt tail so appends extend the valid prefix *)
    Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  if fsync <> Never && (valid_end = 0 || valid_end < file_len) then do_fsync t;
  (recovery, t)

let append_record t record =
  if t.closed then invalid_arg "Journal: journal is closed";
  write_raw t.fd (frame (payload_of_record record))

let checkpoint t ws =
  append_record t (Rsnap (t.seq, ws));
  t.since_checkpoint <- 0;
  if t.fsync <> Never then begin
    do_fsync t;
    t.unsynced <- 0
  end

let append ?after t op =
  append_record t (Rop (t.seq + 1, op));
  t.seq <- t.seq + 1;
  t.since_checkpoint <- t.since_checkpoint + 1;
  Obs.Counter.incr c_appends;
  (match t.fsync with
  | Always -> do_fsync t
  | Every n ->
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= Int.max 1 n then begin
        do_fsync t;
        t.unsynced <- 0
      end
  | Never -> ());
  match after with
  | Some ws when t.since_checkpoint >= t.checkpoint_every -> checkpoint t ws
  | _ -> ()

let reset t =
  if t.closed then invalid_arg "Journal: journal is closed";
  Unix.ftruncate t.fd (String.length magic);
  ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
  t.seq <- 0;
  t.since_checkpoint <- 0;
  t.unsynced <- 0;
  if t.fsync <> Never then do_fsync t

let compact_regular t ws =
  let tmp = t.path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd magic;
      write_all fd (frame (payload_of_record (Rsnap (t.seq, ws))));
      Unix.fsync fd);
  (* the rename is the commit point: readers see either the old journal
     or the compacted one, never a partial file *)
  Sys.rename tmp t.path;
  Unix.close t.fd;
  t.fd <- Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
  t.since_checkpoint <- 0;
  t.unsynced <- 0

let compact t ws =
  if t.closed then invalid_arg "Journal: journal is closed";
  match (Unix.lstat t.path).Unix.st_kind with
  | exception Unix.Unix_error _ -> compact_regular t ws
  | Unix.S_REG -> compact_regular t ws
  | _ ->
      (* renaming over a non-regular path (/dev/null, a fifo) would
         destroy it; rewrite in place instead — not atomic, but the
         target is not a recoverable journal anyway *)
      let seq = t.seq in
      reset t;
      t.seq <- seq;
      checkpoint t ws

let seq (t : t) = t.seq
let path (t : t) = t.path

let close t =
  if not t.closed then begin
    if t.fsync <> Never then do_fsync t;
    Unix.close t.fd;
    t.closed <- true
  end
