(** Crash-safe session journal: a write-ahead, append-only log of
    {!Integrate.Op} mutations with snapshot checkpoints.

    The paper's tool exists to protect hours of interactive DDA work,
    yet a {!Integrate.Workspace} lives only in memory.  This journal
    makes a session durable: every mutation is appended as one framed
    record {e before} the tool acts on it, so after a crash the session
    is recovered by replaying the longest valid record prefix — work is
    bounded by what happened since the last checkpoint, and a torn or
    corrupted tail is truncated, never fatal.

    {2 File format}

    An 8-byte magic header ["SITJRNL1"], then records.  Each record is

    {v <length: u32 LE> <crc32(payload): u32 LE> <payload bytes> v}

    and each payload is a text header line plus a body:

    - ["op <seq>\n<op>"] — one mutation, in the dictionary directive
      syntax (schemas carry their full DDL);
    - ["snap <seq>\n<dictionary>"] — a checkpoint: the complete
      workspace as a {!Dictionary} document.  Replay restarts here.

    Records are validated independently (length bound, CRC, parse), so
    recovery can always find the longest valid prefix and ignore
    everything after the first damaged byte.  See docs/ROBUSTNESS.md
    for the full matrix of tolerated faults.

    The byte layer — framing, prefix recovery, fsync policy, atomic
    rewrite — is the reusable {!Frames} module; this module owns only
    the op/snapshot payload syntax and the replay logic.

    Thread safety: every mutation ({!append}, {!checkpoint},
    {!compact}, {!reset}, {!close}) and {!subscribe} is serialized on
    an internal mutex, so concurrent appenders — the connection threads
    of a serving daemon — get dense sequence numbers, records in
    sequence order, and exactly-once in-order subscriber delivery. *)

module Frames = Frames
(** The generic framed-log layer, for other write-ahead logs (the
    serving tier's view-catalog log persists through it). *)

type t
(** An open journal, positioned for appending. *)

type fsync_policy = Frames.fsync_policy =
  | Never  (** buffered: leave durability to the OS (fastest) *)
  | Every of int  (** fsync once per [n] appended ops *)
  | Always  (** fsync after every record (most durable) *)

type recovery = {
  workspace : Integrate.Workspace.t;
      (** the replayed longest valid prefix *)
  seq : int;  (** ops baked into [workspace] (journal sequence number) *)
  records : int;  (** valid records read (ops + snapshots) *)
  truncated_bytes : int;
      (** bytes of torn/corrupt tail discarded (0 for a clean file) *)
}

val recover : string -> recovery
(** Reads a journal file and replays its longest valid prefix.  A
    missing file is an empty session; a damaged file yields whatever
    prefix survives.  Never raises on corruption, of any kind. *)

val open_ :
  ?fsync:fsync_policy -> ?checkpoint_every:int -> string -> recovery * t
(** [open_ path] recovers [path] (creating it if absent), truncates any
    invalid tail so new records extend the valid prefix, and returns
    the journal ready for appending.  [checkpoint_every] (default 64)
    bounds recovery cost: {!append} snapshots automatically after that
    many ops (when given [~after]).  [fsync] defaults to [Every 8]. *)

val append : ?after:Integrate.Workspace.t -> t -> Integrate.Op.t -> unit
(** Appends one op record (a single [write], then fsync per policy).
    [~after], the workspace {e after} the op, enables the automatic
    checkpoint; omit it to journal without checkpointing.  Subscribers
    ({!subscribe}) are notified after the record is written. *)

val subscribe : t -> (Integrate.Op.t -> unit) -> unit
(** [subscribe t f] registers [f] on the journal's live op stream: every
    subsequent {!append} calls [f op] once the record is durably
    ordered (written, before any checkpointing).  This is the hook a
    derived-state maintainer attaches to — [lib/view] invalidates
    materialized extents here when the session mutates under it.
    Callbacks run on the appending thread, under the journal's lock —
    concurrent appends deliver each op to each subscriber exactly once,
    in the journal's total order.  They must not call back into the
    same journal; exceptions propagate to the appender. *)

val checkpoint : t -> Integrate.Workspace.t -> unit
(** Appends a snapshot record of the full workspace now. *)

val compact : t -> Integrate.Workspace.t -> unit
(** Rewrites the journal as a single snapshot of [ws] — temp file,
    fsync, atomic [Sys.rename] — so the file stops growing with
    session length.  The journal stays open for further appends. *)

val reset : t -> unit
(** Empties the journal (keeps the header): the "don't resume" path. *)

val seq : t -> int
(** Ops appended so far, including recovered ones. *)

val path : t -> string

val close : t -> unit
(** Final fsync (per policy) and close.  Idempotent. *)

(** Fault injection for the crash-test harness (test/test_journal.ml).
    Not for production use. *)
module For_testing : sig
  exception Crash
  (** Raised by {!append}/{!checkpoint} when the write budget runs out
      mid-record, leaving a torn record on disk — a simulated kill. *)

  val write_limit : int option ref
  (** [Some n] allows [n] more journal bytes to reach the file; the
      first write that would exceed it is cut short and raises
      {!Crash}.  [None] (the default) disables the hook. *)
end
