(* The byte layer shared by every framed log in the system: magic
   header, length+CRC framing, longest-valid-prefix recovery, fsync
   policy, atomic rewrite.  Payload semantics live in the callers
   (journal.ml, lib/server's view catalog). *)

type fsync_policy = Never | Every of int | Always

type t = {
  path : string;
  magic : string;
  mutable fd : Unix.file_descr;
  fsync : fsync_policy;
  mutable unsynced : int;
  mutable closed : bool;
}

type recovery = { payloads : string list; truncated_bytes : int }

(* Shared with journal.ml: a view-catalog log is a journal too, so its
   appends/fsyncs land on the same journal.* observability names. *)
let c_fsyncs = Obs.Counter.make "journal.fsyncs"
let c_truncated = Obs.Counter.make "journal.truncated_bytes"
let h_fsync_ms = Obs.Histogram.make "journal.fsync_ms"

module For_testing = struct
  exception Crash

  let write_limit : int option ref = ref None
end

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* All appended bytes funnel through here so the crash hook can cut any
   record short at an arbitrary byte offset. *)
let write_raw fd s =
  match !For_testing.write_limit with
  | None -> write_all fd s
  | Some budget ->
      let k = Int.min budget (String.length s) in
      For_testing.write_limit := Some (budget - k);
      write_all fd (String.sub s 0 k);
      if k < String.length s then raise For_testing.Crash

let frame payload =
  let header = Bytes.create 8 in
  Bytes.set_int32_le header 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le header 4 (Int32.of_int (Crc32.digest payload));
  Bytes.to_string header ^ payload

let u32 s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Recovery: scan the longest valid record prefix.                     *)

(* Returns the payloads and the byte offset where validity ends.  Every
   failure mode — short header, length beyond EOF, CRC mismatch, a
   payload the caller's [validate] rejects — stops the scan at the
   current offset; nothing is ever raised. *)
let scan ~validate ~magic data =
  let n = String.length data in
  if n < String.length magic || String.sub data 0 (String.length magic) <> magic
  then ([], 0)
  else begin
    let payloads = ref [] in
    let pos = ref (String.length magic) in
    let stop = ref false in
    while not !stop do
      if !pos + 8 > n then stop := true
      else begin
        let len = u32 data !pos and crc = u32 data (!pos + 4) in
        if len > n - !pos - 8 then stop := true
        else begin
          let payload = String.sub data (!pos + 8) len in
          if Crc32.digest payload <> crc then stop := true
          else if not (try validate payload with _ -> false) then stop := true
          else begin
            payloads := payload :: !payloads;
            pos := !pos + 8 + len
          end
        end
      end
    done;
    (List.rev !payloads, !pos)
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* payloads, valid-prefix end, file length *)
let scan_file ~validate ~magic path =
  match read_file path with
  | None -> (([], 0), 0)
  | Some data -> (scan ~validate ~magic data, String.length data)

let recover ?(validate = fun _ -> true) ~magic path =
  let (payloads, valid_end), file_len = scan_file ~validate ~magic path in
  Obs.Counter.add c_truncated (file_len - valid_end);
  { payloads; truncated_bytes = file_len - valid_end }

(* ------------------------------------------------------------------ *)
(* The append side.                                                    *)

let do_fsync t =
  let t0 = Unix.gettimeofday () in
  Unix.fsync t.fd;
  Obs.Histogram.observe h_fsync_ms ((Unix.gettimeofday () -. t0) *. 1000.);
  Obs.Counter.incr c_fsyncs

let open_ ?(fsync = Every 8) ?(validate = fun _ -> true) ~magic path =
  let (payloads, valid_end), file_len = scan_file ~validate ~magic path in
  Obs.Counter.add c_truncated (file_len - valid_end);
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let t = { path; magic; fd; fsync; unsynced = 0; closed = false } in
  if valid_end = 0 then begin
    (* missing, empty or headerless file: start clean *)
    Unix.ftruncate fd 0;
    write_all fd magic
  end
  else if valid_end < file_len then
    (* drop the torn/corrupt tail so appends extend the valid prefix *)
    Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  if fsync <> Never && (valid_end = 0 || valid_end < file_len) then do_fsync t;
  ({ payloads; truncated_bytes = file_len - valid_end }, t)

let check_open t = if t.closed then invalid_arg "Frames: log is closed"

(* Appends the framed payload and applies the fsync policy; callers
   that batch policy application (Journal's snapshot path) use
   [append_raw] + [sync_policy] separately. *)
let append_raw t payload =
  check_open t;
  write_raw t.fd (frame payload)

let sync_now t =
  if t.fsync <> Never then begin
    do_fsync t;
    t.unsynced <- 0
  end

let sync_policy t =
  match t.fsync with
  | Always -> do_fsync t
  | Every n ->
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= Int.max 1 n then begin
        do_fsync t;
        t.unsynced <- 0
      end
  | Never -> ()

let append t payload =
  append_raw t payload;
  sync_policy t

let reset t =
  check_open t;
  Unix.ftruncate t.fd (String.length t.magic);
  ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
  t.unsynced <- 0;
  if t.fsync <> Never then do_fsync t

let rewrite_regular t payloads =
  let tmp = t.path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd t.magic;
      List.iter (fun p -> write_all fd (frame p)) payloads;
      Unix.fsync fd);
  (* the rename is the commit point: readers see either the old log or
     the rewritten one, never a partial file *)
  Sys.rename tmp t.path;
  Unix.close t.fd;
  t.fd <- Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
  t.unsynced <- 0

let rewrite t payloads =
  check_open t;
  match (Unix.lstat t.path).Unix.st_kind with
  | exception Unix.Unix_error _ -> rewrite_regular t payloads
  | Unix.S_REG -> rewrite_regular t payloads
  | _ ->
      (* renaming over a non-regular path (/dev/null, a fifo) would
         destroy it; rewrite in place instead — not atomic, but the
         target is not a recoverable log anyway *)
      reset t;
      List.iter (fun p -> append_raw t p) payloads;
      sync_now t

let fsync_policy t = t.fsync
let path t = t.path

let close t =
  if not t.closed then begin
    if t.fsync <> Never then do_fsync t;
    Unix.close t.fd;
    t.closed <- true
  end
