open Ecr

type record_type = {
  rec_name : string;
  fields : (string * string * bool) list;
  parent : string option;
  virtual_parent : string option;
}

type t = { hdb_name : string; records : record_type list }

let record ?parent ?virtual_parent name fields =
  { rec_name = name; fields; parent; virtual_parent }

exception Unsupported of string

let check_exists db name =
  if not (List.exists (fun r -> r.rec_name = name) db.records) then
    raise (Unsupported ("missing record type " ^ name))

(* ---- reverse rendering (ECR -> hierarchical) ----------------------
   Entities become record types with their attributes as fields.  A
   binary relationship set R between A and B becomes a {e logical
   child} record named R — physical child of A, virtual child of B,
   carrying the relationship attributes as intersection data (the IMS
   device for M:N).  The round trip [to_ecr (of_ecr s)] therefore
   reifies every relationship set as an entity set R plus two arcs
   [A_R] and [B_R_v]; categories and n-ary relationships have no
   hierarchical rendering. *)

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let of_ecr schema =
  let open Ecr in
  let field_of_attr (a : Attribute.t) =
    ( Name.to_string a.Attribute.name,
      Domain.to_string a.Attribute.domain,
      a.Attribute.key )
  in
  let entity_records =
    List.map
      (fun (oc : Object_class.t) ->
        match oc.Object_class.kind with
        | Object_class.Category _ ->
            unsupported "of_ecr: category %s has no hierarchical rendering"
              (Name.to_string oc.Object_class.name)
        | Object_class.Entity_set ->
            record
              (Name.to_string oc.Object_class.name)
              (List.map field_of_attr oc.Object_class.attributes))
      (Schema.objects schema)
  in
  let link_records =
    List.map
      (fun (r : Relationship.t) ->
        let rname = Name.to_string r.Relationship.name in
        match r.Relationship.participants with
        | [ a; b ] ->
            (match (a.Relationship.role, b.Relationship.role) with
            | None, None -> ()
            | _ -> unsupported "of_ecr: relationship %s uses role names" rname);
            record
              ~parent:(Name.to_string a.Relationship.obj)
              ~virtual_parent:(Name.to_string b.Relationship.obj)
              rname
              (List.map field_of_attr r.Relationship.attributes)
        | ps ->
            unsupported "of_ecr: relationship %s has arity %d (only 2 renders)"
              rname (List.length ps))
      (Schema.relationships schema)
  in
  {
    hdb_name = Name.to_string (Schema.name schema);
    records = entity_records @ link_records;
  }

let to_ecr db =
  let objects =
    List.map
      (fun r ->
        let attrs =
          List.map
            (fun (n, ty, key) ->
              Attribute.make ~key (Name.v n) (Domain.of_string ty))
            r.fields
        in
        Object_class.entity ~attrs (Name.v r.rec_name))
      db.records
  in
  let arcs =
    List.concat_map
      (fun r ->
        let physical =
          match r.parent with
          | None -> []
          | Some p ->
              check_exists db p;
              [
                Relationship.binary
                  (Name.v (p ^ "_" ^ r.rec_name))
                  (Name.v r.rec_name, Cardinality.exactly_one)
                  (Name.v p, Cardinality.any);
              ]
        in
        let virtual_ =
          match r.virtual_parent with
          | None -> []
          | Some p ->
              check_exists db p;
              [
                Relationship.binary
                  (Name.v (p ^ "_" ^ r.rec_name ^ "_v"))
                  (Name.v r.rec_name, Cardinality.at_most_one)
                  (Name.v p, Cardinality.any);
              ]
        in
        physical @ virtual_)
      db.records
  in
  Schema.make (Name.v db.hdb_name) ~objects ~relationships:arcs
