(** A minimal hierarchical (IMS-style) schema model and its translation
    into ECR, after Navathe–Awong 1987.

    A hierarchical database is a forest of record types; each record type
    has fields and at most one parent.  Translation:

    - every record type becomes an entity set whose fields become
      attributes (the sequence/key field becomes the ECR key);
    - every parent–child arc becomes a binary relationship set with
      structural constraints (1,1) on the child (a segment occurrence
      exists under exactly one parent occurrence) and (0,N) on the
      parent;
    - {e virtual} parent–child arcs (logical relationships, the IMS
      device for M:N) also become relationship sets, with (0,1) on the
      child. *)

type record_type = {
  rec_name : string;
  fields : (string * string * bool) list;  (** name, type, is sequence/key field *)
  parent : string option;
  virtual_parent : string option;
}

type t = { hdb_name : string; records : record_type list }

val record :
  ?parent:string ->
  ?virtual_parent:string ->
  string ->
  (string * string * bool) list ->
  record_type

exception Unsupported of string

val to_ecr : t -> Ecr.Schema.t
(** @raise Unsupported when a parent reference names a missing record. *)

val of_ecr : Ecr.Schema.t -> t
(** The reverse rendering: entities become record types; a binary
    relationship set R between A and B becomes a {e logical child}
    record named R (physical child of A, virtual child of B) carrying
    the relationship attributes as intersection data — the IMS idiom
    for M:N.  The round trip [to_ecr (of_ecr s)] therefore reproduces
    every entity exactly and {e reifies} each relationship set as an
    entity set R plus arcs [A_R] and [B_R_v]; the property test in
    [test/test_translate.ml] pins down that mapping.
    @raise Unsupported on categories, n-ary relationships or role
    names. *)
