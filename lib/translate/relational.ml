open Ecr

type column = { col_name : string; col_type : string; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  references : string;
  ref_columns : string list;
}

type relation = {
  rel_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
}

type t = { db_name : string; relations : relation list }

let relation ?(pk = []) ?(fks = []) name cols =
  {
    rel_name = name;
    columns =
      List.map (fun (col_name, col_type, nullable) -> { col_name; col_type; nullable }) cols;
    primary_key = pk;
    foreign_keys = fks;
  }

let fk fk_columns references ref_columns = { fk_columns; references; ref_columns }

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let find_relation db name =
  match List.find_opt (fun r -> r.rel_name = name) db.relations with
  | Some r -> r
  | None -> unsupported "foreign key references missing relation %s" name

let same_columns a b = List.sort compare a = List.sort compare b

(* Classification per Navathe-Awong: look at how the primary key relates
   to the foreign keys. *)
let classify db rel =
  ignore db;
  let pk = rel.primary_key in
  let pk_fks =
    List.filter (fun k -> List.for_all (fun c -> List.mem c pk) k.fk_columns) rel.foreign_keys
  in
  match pk_fks with
  | [ k ] when same_columns k.fk_columns pk -> `Category k.references
  | ks
    when List.length ks >= 2
         && same_columns (List.concat_map (fun k -> k.fk_columns) ks) pk ->
      `Relationship (List.map (fun k -> k.references) ks)
  | _ -> `Entity

let domain_of col = Domain.of_string col.col_type

let entity_attributes rel ~exclude =
  List.filter_map
    (fun col ->
      if List.mem col.col_name exclude then None
      else
        Some
          (Attribute.make
             ~key:(List.mem col.col_name rel.primary_key)
             (Name.v col.col_name) (domain_of col)))
    rel.columns

(* Attributes that only exist to express a foreign key are dropped from
   the entity; the link itself becomes a relationship set. *)
let non_pk_fk_columns rel =
  List.concat_map
    (fun k ->
      if List.for_all (fun c -> List.mem c rel.primary_key) k.fk_columns then []
      else k.fk_columns)
    rel.foreign_keys

(* ---- reverse rendering (ECR -> relational) ------------------------
   The inverse of [to_ecr], designed so the round trip
   [to_ecr (of_ecr s)] is the identity on generated schemas up to one
   documented delta: a category's locally declared key flags are lost,
   because [to_ecr] derives key-ness from primary-key membership and a
   category's primary key is inherited.  Entities and relationship sets
   round-trip exactly (relationship cardinalities collapse to (0,N),
   which is also what [to_ecr] produces for M:N relations). *)

(* The primary key of the relation rendering an object class: an
   entity's own key attributes; a category inherits its (single)
   parent's, transitively. *)
let rec pk_attributes schema name =
  match Ecr.Schema.find_object name schema with
  | None ->
      unsupported "of_ecr: unknown object class %s" (Name.to_string name)
  | Some oc -> (
      match oc.Object_class.kind with
      | Object_class.Entity_set -> (
          match List.filter (fun a -> a.Attribute.key) oc.Object_class.attributes with
          | [] ->
              unsupported "of_ecr: entity %s has no key attribute"
                (Name.to_string name)
          | keys -> keys)
      | Object_class.Category [ p ] -> pk_attributes schema p
      | Object_class.Category _ ->
          unsupported "of_ecr: category %s does not have exactly one parent"
            (Name.to_string name))

let column_of_attr (a : Attribute.t) =
  (Name.to_string a.Attribute.name, Domain.to_string a.Attribute.domain, false)

let check_distinct what cols =
  let names = List.map (fun (n, _, _) -> n) cols in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    unsupported "of_ecr: duplicate column names in %s" what

let of_ecr schema =
  let objects =
    List.map
      (fun (oc : Object_class.t) ->
        let rname = Name.to_string oc.Object_class.name in
        match oc.Object_class.kind with
        | Object_class.Entity_set ->
            let cols = List.map column_of_attr oc.Object_class.attributes in
            check_distinct rname cols;
            let pk =
              List.filter_map
                (fun (a : Attribute.t) ->
                  if a.Attribute.key then Some (Name.to_string a.Attribute.name)
                  else None)
                oc.Object_class.attributes
            in
            relation ~pk rname cols
        | Object_class.Category parents ->
            let parent =
              match parents with
              | [ p ] -> p
              | _ ->
                  unsupported
                    "of_ecr: category %s does not have exactly one parent"
                    rname
            in
            let pk_attrs = pk_attributes schema oc.Object_class.name in
            let pk_cols = List.map column_of_attr pk_attrs in
            let pk = List.map (fun (n, _, _) -> n) pk_cols in
            let cols =
              pk_cols @ List.map column_of_attr oc.Object_class.attributes
            in
            check_distinct rname cols;
            relation ~pk
              ~fks:[ fk pk (Name.to_string parent) pk ]
              rname cols)
      (Schema.objects schema)
  in
  let relationships =
    List.map
      (fun (r : Relationship.t) ->
        let rname = Name.to_string r.Relationship.name in
        let fk_groups =
          List.map
            (fun (p : Relationship.participant) ->
              (match p.Relationship.role with
              | Some _ ->
                  unsupported "of_ecr: relationship %s uses role names" rname
              | None -> ());
              let pk_attrs = pk_attributes schema p.Relationship.obj in
              let cols = List.map column_of_attr pk_attrs in
              (Name.to_string p.Relationship.obj, cols))
            r.Relationship.participants
        in
        let key_cols = List.concat_map snd fk_groups in
        let attr_cols = List.map column_of_attr r.Relationship.attributes in
        check_distinct rname (key_cols @ attr_cols);
        let pk = List.map (fun (n, _, _) -> n) key_cols in
        relation ~pk
          ~fks:
            (List.map
               (fun (target, cols) ->
                 let names = List.map (fun (n, _, _) -> n) cols in
                 fk names target names)
               fk_groups)
          rname
          (key_cols @ attr_cols))
      (Schema.relationships schema)
  in
  {
    db_name = Name.to_string (Schema.name schema);
    relations = objects @ relationships;
  }

let to_ecr db =
  let classified = List.map (fun r -> (r, classify db r)) db.relations in
  let objects =
    List.filter_map
      (fun (rel, cls) ->
        match cls with
        | `Entity ->
            Some
              (Object_class.entity
                 ~attrs:(entity_attributes rel ~exclude:(non_pk_fk_columns rel))
                 (Name.v rel.rel_name))
        | `Category parent ->
            ignore (find_relation db parent);
            (* the inherited key columns disappear; local attributes stay *)
            let exclude = rel.primary_key @ non_pk_fk_columns rel in
            Some
              (Object_class.category
                 ~attrs:(entity_attributes rel ~exclude)
                 ~parents:[ Name.v parent ] (Name.v rel.rel_name))
        | `Relationship _ -> None)
      classified
  in
  let fk_relationships =
    (* every non-key foreign key becomes a binary relationship *)
    List.concat_map
      (fun (rel, cls) ->
        match cls with
        | `Relationship _ -> []
        | `Entity | `Category _ ->
            List.filter_map
              (fun k ->
                if List.for_all (fun c -> List.mem c rel.primary_key) k.fk_columns
                then None
                else begin
                  ignore (find_relation db k.references);
                  let mandatory =
                    List.for_all
                      (fun cn ->
                        match
                          List.find_opt (fun c -> c.col_name = cn) rel.columns
                        with
                        | Some c -> not c.nullable
                        | None -> false)
                      k.fk_columns
                  in
                  let near_card =
                    if mandatory then Cardinality.exactly_one
                    else Cardinality.at_most_one
                  in
                  Some
                    (Relationship.binary
                       (Name.v (rel.rel_name ^ "_" ^ k.references))
                       (Name.v rel.rel_name, near_card)
                       (Name.v k.references, Cardinality.any))
                end)
              rel.foreign_keys)
      classified
  in
  let mn_relationships =
    List.filter_map
      (fun (rel, cls) ->
        match cls with
        | `Entity | `Category _ -> None
        | `Relationship refs ->
            let attrs =
              entity_attributes rel
                ~exclude:(rel.primary_key @ non_pk_fk_columns rel)
              |> List.map (fun a -> { a with Attribute.key = false })
            in
            let participants =
              List.map
                (fun target ->
                  ignore (find_relation db target);
                  Relationship.participant (Name.v target) Cardinality.any)
                refs
            in
            Some (Relationship.make ~attrs (Name.v rel.rel_name) participants))
      classified
  in
  Schema.make (Name.v db.db_name) ~objects
    ~relationships:(fk_relationships @ mn_relationships)
