(** A minimal relational schema model and its translation into ECR.

    The paper (Phase 1 and section 4) relies on the Navathe–Awong 1987
    procedure for abstracting relational schemas into the ECR model so
    that existing databases can enter the integration pipeline.  We
    implement the classification at the heart of that procedure:

    - a relation whose primary key is entirely its own becomes an
      {e entity set};
    - a relation whose primary key {e is} a foreign key becomes a
      {e category} of the referenced relation's entity set (IS-A);
    - a relation whose primary key is the concatenation of two or more
      foreign keys becomes a {e relationship set} among the referenced
      entity sets (its non-key attributes become relationship
      attributes);
    - every remaining (non-key-forming) foreign key becomes a binary
      relationship set with a (0,1)/(0,N) structural constraint,
      tightened to (1,1) when the column is declared non-null. *)

type column = {
  col_name : string;
  col_type : string;  (** relational type, mapped via {!Ecr.Domain.of_string} *)
  nullable : bool;
}

type foreign_key = {
  fk_columns : string list;
  references : string;  (** referenced relation *)
  ref_columns : string list;
}

type relation = {
  rel_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
}

type t = { db_name : string; relations : relation list }

val relation :
  ?pk:string list ->
  ?fks:foreign_key list ->
  string ->
  (string * string * bool) list ->
  relation
(** [relation name cols] builds a relation from
    [(column, type, nullable)] triples. *)

val fk : string list -> string -> string list -> foreign_key

exception Unsupported of string
(** Raised when a relation cannot be classified (e.g. a foreign key
    referencing a missing relation). *)

val classify : t -> relation -> [ `Entity | `Category of string | `Relationship of string list ]
(** The Navathe–Awong classification of a single relation. *)

val to_ecr : t -> Ecr.Schema.t
(** Translates the whole relational database schema into an ECR schema
    with the same name.  @raise Unsupported on unclassifiable input. *)

val of_ecr : Ecr.Schema.t -> t
(** The reverse rendering: entities become relations keyed by their key
    attributes, a (single-parent) category becomes a relation whose
    primary key is a foreign key to its parent, and every relationship
    set becomes an M:N relation whose primary key concatenates the
    participants' keys.  [to_ecr (of_ecr s)] reproduces [s] exactly
    except that a category's locally declared key flags are dropped and
    relationship cardinalities collapse to (0,N) — the deltas the
    round-trip property test in [test/test_translate.ml] pins down.
    @raise Unsupported on multi-parent categories, role names, keyless
    entities, or colliding column names. *)
