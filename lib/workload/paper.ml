open Ecr

let n = Name.v

let sc1 =
  Schema.make (n "sc1")
    ~objects:
      [
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Name" "char"; Attribute.v "GPA" "real" ]
          (n "Student");
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Name" "char" ]
          (n "Department");
      ]
    ~relationships:
      [
        Relationship.binary
          ~attrs:[ Attribute.v "Since" "date" ]
          (n "Majors")
          (n "Student", Cardinality.exactly_one)
          (n "Department", Cardinality.any);
      ]

let sc2 =
  Schema.make (n "sc2")
    ~objects:
      [
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Name" "char" ]
          (n "Department");
        Object_class.entity
          ~attrs:
            [
              Attribute.v ~key:true "Name" "char";
              Attribute.v "GPA" "real";
              Attribute.v "Support_type" "char";
            ]
          (n "Grad_student");
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Name" "char"; Attribute.v "Rank" "char" ]
          (n "Faculty");
      ]
    ~relationships:
      [
        Relationship.binary
          ~attrs:[ Attribute.v "Since" "date" ]
          (n "Major_in")
          (n "Grad_student", Cardinality.exactly_one)
          (n "Department", Cardinality.any);
        Relationship.binary (n "Works")
          (n "Faculty", Cardinality.at_least_one)
          (n "Department", Cardinality.at_least_one);
      ]

let sc3 =
  Schema.make (n "sc3")
    ~objects:
      [
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Name" "char"; Attribute.v "Course" "char" ]
          (n "Instructor");
      ]
    ~relationships:[]

let sc4 =
  Schema.make (n "sc4")
    ~objects:
      [
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Name" "char"; Attribute.v "GPA" "real" ]
          (n "Student");
        Object_class.category
          ~attrs:[ Attribute.v "Support_type" "char" ]
          ~parents:[ n "Student" ] (n "Grad_student");
      ]
    ~relationships:[]

let a = Qname.Attr.v

let equivalences =
  [
    (a "sc1" "Student" "Name", a "sc2" "Grad_student" "Name");
    (a "sc1" "Student" "GPA", a "sc2" "Grad_student" "GPA");
    (a "sc1" "Student" "Name", a "sc2" "Faculty" "Name");
    (a "sc1" "Department" "Name", a "sc2" "Department" "Name");
    (a "sc1" "Majors" "Since", a "sc2" "Major_in" "Since");
  ]

let q = Qname.v

let object_assertions =
  [
    (q "sc1" "Department", Integrate.Assertion.Equal, q "sc2" "Department");
    (q "sc1" "Student", Integrate.Assertion.Contains, q "sc2" "Grad_student");
    (q "sc1" "Student", Integrate.Assertion.May_be, q "sc2" "Faculty");
  ]

let relationship_assertions =
  [ (q "sc1" "Majors", Integrate.Assertion.Equal, q "sc2" "Major_in") ]

let naming =
  (* The paper prints E_Stud_Majo for the merged Majors/Major_in set;
     its naming rule for merged structures with unequal names is not
     specified, so we pin this one name. *)
  Integrate.Naming.with_override (q "sc1" "Majors") (q "sc2" "Major_in")
    "E_Stud_Majo" Integrate.Naming.default

let integrate_sc1_sc2 () =
  match
    Integrate.Pipeline.quick ~naming sc1 sc2 ~equivalences ~object_assertions
      ~relationship_assertions ()
  with
  | Ok r -> r
  | Error c ->
      failwith
        (Printf.sprintf "unexpected conflict integrating sc1 with sc2: %s"
           (Integrate.Assertions.conflict_to_string c))

(* ------------------------------------------------------------------ *)
(* Figure 2 miniatures.                                                *)

type mini = {
  label : string;
  left : Schema.t;
  right : Schema.t;
  pair : Qname.t * Qname.t;
  assertion : Integrate.Assertion.t;
  equivalences : (Qname.Attr.t * Qname.Attr.t) list;
  expect : string;
}

let entity_schema schema_name cls attrs =
  Schema.make (n schema_name)
    ~objects:
      [
        Object_class.entity
          ~attrs:
            (List.map (fun (an, dom, key) -> Attribute.v ~key an dom) attrs)
          (n cls);
      ]
    ~relationships:[]

let fig2a =
  {
    label = "Figure 2a (equals)";
    left =
      entity_schema "scA" "Department"
        [ ("Name", "char", true); ("Budget", "real", false) ];
    right =
      entity_schema "scB" "Department"
        [ ("Name", "char", true); ("Location", "char", false) ];
    pair = (q "scA" "Department", q "scB" "Department");
    assertion = Integrate.Assertion.Equal;
    equivalences = [ (a "scA" "Department" "Name", a "scB" "Department" "Name") ];
    expect = "single equivalent entity set E_Department";
  }

let fig2b =
  {
    label = "Figure 2b (contains)";
    left =
      entity_schema "scA" "Student" [ ("Name", "char", true); ("GPA", "real", false) ];
    right =
      entity_schema "scB" "Grad_student"
        [ ("Name", "char", true); ("Support_type", "char", false) ];
    pair = (q "scA" "Student", q "scB" "Grad_student");
    assertion = Integrate.Assertion.Contains;
    equivalences = [ (a "scA" "Student" "Name", a "scB" "Grad_student" "Name") ];
    expect = "Grad_student becomes a category of Student";
  }

let fig2c =
  {
    label = "Figure 2c (may be)";
    left =
      entity_schema "scA" "Grad_student"
        [ ("Name", "char", true); ("GPA", "real", false) ];
    right =
      entity_schema "scB" "Instructor"
        [ ("Name", "char", true); ("Salary", "real", false) ];
    pair = (q "scA" "Grad_student", q "scB" "Instructor");
    assertion = Integrate.Assertion.May_be;
    equivalences = [ (a "scA" "Grad_student" "Name", a "scB" "Instructor" "Name") ];
    expect = "derived D_Grad_Inst with Grad_student and Instructor as categories";
  }

let fig2d =
  {
    label = "Figure 2d (disjoint integrable)";
    left =
      entity_schema "scA" "Secretary"
        [ ("Name", "char", true); ("Typing_speed", "int", false) ];
    right =
      entity_schema "scB" "Engineer"
        [ ("Name", "char", true); ("Specialty", "char", false) ];
    pair = (q "scA" "Secretary", q "scB" "Engineer");
    assertion = Integrate.Assertion.Disjoint_integrable;
    equivalences = [ (a "scA" "Secretary" "Name", a "scB" "Engineer" "Name") ];
    expect = "derived D_Secr_Engi with Secretary and Engineer as categories";
  }

let fig2e =
  {
    label = "Figure 2e (disjoint nonintegrable)";
    left =
      entity_schema "scA" "Under_Grad_Student"
        [ ("Name", "char", true); ("GPA", "real", false) ];
    right =
      entity_schema "scB" "Full_Professor"
        [ ("Name", "char", true); ("Chair", "char", false) ];
    pair = (q "scA" "Under_Grad_Student", q "scB" "Full_Professor");
    assertion = Integrate.Assertion.Disjoint_nonintegrable;
    equivalences =
      [ (a "scA" "Under_Grad_Student" "Name", a "scB" "Full_Professor" "Name") ];
    expect = "both entity sets kept separate";
  }

let fig2 = [ fig2a; fig2b; fig2c; fig2d; fig2e ]

let integrate_mini m =
  match
    Integrate.Pipeline.quick m.left m.right ~equivalences:m.equivalences
      ~object_assertions:[ (fst m.pair, m.assertion, snd m.pair) ]
      ()
  with
  | Ok r -> r
  | Error c ->
      failwith
        (Printf.sprintf "unexpected conflict in %s: %s" m.label
           (Integrate.Assertions.conflict_to_string c))
