(** Synthetic integration workloads with known ground truth.

    The paper evaluates the tool on hand-picked examples; its
    quantitative claims (the resemblance heuristic saves DDA effort,
    transitive composition derives assertions automatically, n-ary
    beats repeated binary interaction) need workloads whose true
    correspondences are known.  This generator builds them:

    - a {e universe}: a forest of concepts, each with an extent (a set
      of synthetic entity tags) — children hold subsets of their
      parents, so the true basic relation between any two concepts is
      computable from the extents; plus relationship concepts linking
      object concepts;
    - {e k component schemas}: each view samples a subset of the
      concepts and of each concept's attributes, renaming classes and
      attributes with controlled {e naming noise} (synonyms,
      abbreviations, case changes) so string heuristics are neither
      trivial nor hopeless;
    - {e ground truth}: a perfect {!Integrate.Dda.t} oracle answering
      from the extents, the list of true same-concept pairs, and a
      [register] callback that teaches the oracle the extents of
      intermediate integrated classes (needed by binary strategies);
    - {e instances}: stores populated from the extents, with attribute
      values that are deterministic functions of (tag, attribute
      concept), so different views of the same real-world entity agree
      — exactly the situation instance migration must handle. *)

type params = {
  seed : int;
  schemas : int;  (** number of component views, >= 2 *)
  concepts : int;  (** object concepts in the universe *)
  attrs_per_concept : int;
  coverage : float;  (** probability a view includes a concept *)
  attr_coverage : float;  (** probability a view keeps an attribute *)
  naming_noise : float;  (** probability a name is changed in a view *)
  relationship_concepts : int;
  population : int;  (** universe entity tags *)
  subset_fraction : float;
      (** fraction of concepts that are subset-children of another *)
  overlap_fraction : float;  (** fraction that properly overlap another *)
}

val default_params : params
(** seed 42, 2 schemas, 12 concepts x 4 attributes, coverage 0.8,
    attr coverage 0.8, noise 0.3, 4 relationship concepts, population
    400, subset fraction 0.25, overlap fraction 0.15. *)

type t = {
  params : params;
  schemas : Ecr.Schema.t list;
  oracle : Integrate.Dda.t;  (** perfect ground-truth DDA *)
  register : Integrate.Result.t -> unit;
      (** teach the oracle about an intermediate integrated schema *)
  true_pairs : (Ecr.Qname.t * Ecr.Qname.t) list;
      (** cross-schema object-class pairs stemming from the same
          concept (should be asserted Equal) *)
  related_pairs : (Ecr.Qname.t * Ecr.Qname.t * Integrate.Assertion.t) list;
      (** every cross-schema pair whose true assertion is integrable *)
  extent_of : Ecr.Qname.t -> int list;
      (** the synthetic extent of a component class *)
  link_pairs : Ecr.Qname.t -> (int * int) list;
      (** the synthetic extent of a component relationship set *)
  attr_id : Ecr.Qname.Attr.t -> int option;
      (** the global attribute-concept id behind a component attribute
          (equal ids = truly equivalent) *)
}

val generate : params -> t

val noisy_oracle : t -> error_rate:float -> seed:int -> Integrate.Dda.t
(** The ground-truth oracle with independent answer corruption: with the
    given probability an object-assertion answer is replaced by a
    uniformly chosen *different* assertion.  Used by the
    conflict-detection experiment: wrong answers should be caught by the
    matrix as contradictions. *)

val populate :
  ?jobs:int -> ?schemas:Ecr.Schema.t list -> t -> (Ecr.Schema.t * Instance.Store.t) list
(** Instance stores for every generated schema, one entity per extent
    tag, one link per relationship pair; values agree across views.
    [?schemas] substitutes an alternative schema list (e.g. the
    translation-round-tripped renderings {!Scenario} builds): truth
    lookups are by qualified name, so classes preserved by a rendering
    keep their extents while structures a rendering introduces (reified
    relationship records, foreign-key arcs) simply populate empty.
    [?jobs] (default {!Par.default_jobs}) populates schemas in parallel
    — each store is built by one pool task from the read-only truth
    tables, and the result list stays in schema order, so every [jobs]
    value yields identical stores (["workload.parallel_chunks"] counts
    the dispatched schemas). *)
