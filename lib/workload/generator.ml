open Ecr

type params = {
  seed : int;
  schemas : int;
  concepts : int;
  attrs_per_concept : int;
  coverage : float;
  attr_coverage : float;
  naming_noise : float;
  relationship_concepts : int;
  population : int;
  subset_fraction : float;
  overlap_fraction : float;
}

let default_params =
  {
    seed = 42;
    schemas = 2;
    concepts = 12;
    attrs_per_concept = 4;
    coverage = 0.8;
    attr_coverage = 0.8;
    naming_noise = 0.3;
    relationship_concepts = 4;
    population = 400;
    subset_fraction = 0.25;
    overlap_fraction = 0.15;
  }

type t = {
  params : params;
  schemas : Schema.t list;
  oracle : Integrate.Dda.t;
  register : Integrate.Result.t -> unit;
  true_pairs : (Qname.t * Qname.t) list;
  related_pairs : (Qname.t * Qname.t * Integrate.Assertion.t) list;
  extent_of : Qname.t -> int list;
  link_pairs : Qname.t -> (int * int) list;
  attr_id : Qname.Attr.t -> int option;
}

(* ------------------------------------------------------------------ *)
(* Vocabulary: concept base names with their synonym variants.          *)

let class_vocab =
  [|
    ("employee", [ "worker"; "staff"; "emp" ]);
    ("department", [ "dept"; "division" ]);
    ("student", [ "pupil"; "stud" ]);
    ("course", [ "class_offering"; "subject" ]);
    ("project", [ "proj"; "initiative" ]);
    ("customer", [ "client"; "patron" ]);
    ("supplier", [ "vendor"; "provider" ]);
    ("product", [ "item"; "article" ]);
    ("invoice", [ "bill"; "receipt" ]);
    ("account", [ "acct"; "ledger" ]);
    ("building", [ "facility"; "site" ]);
    ("vehicle", [ "car"; "fleet_unit" ]);
    ("machine", [ "device"; "equipment" ]);
    ("order", [ "purchase"; "requisition" ]);
    ("warehouse", [ "depot"; "storehouse" ]);
    ("patient", [ "case"; "admittee" ]);
    ("doctor", [ "physician"; "clinician" ]);
    ("book", [ "volume"; "publication" ]);
    ("author", [ "writer"; "creator" ]);
    ("city", [ "town"; "municipality" ]);
  |]

let attr_vocab =
  [|
    ("name", [ "title"; "label" ]);
    ("number", [ "id"; "num" ]);
    ("salary", [ "pay"; "wage" ]);
    ("address", [ "location"; "addr" ]);
    ("phone", [ "telephone"; "tel" ]);
    ("budget", [ "funds"; "allocation" ]);
    ("status", [ "state"; "condition" ]);
    ("grade", [ "score"; "mark" ]);
    ("weight", [ "mass"; "heft" ]);
    ("color", [ "shade"; "hue" ]);
    ("price", [ "cost"; "amount" ]);
    ("capacity", [ "size"; "volume" ]);
  |]

let rel_vocab =
  [|
    ("works_in", [ "employed_by"; "assigned_to" ]);
    ("manages", [ "supervises"; "leads" ]);
    ("enrolled_in", [ "takes"; "registered_for" ]);
    ("supplies", [ "provides"; "delivers" ]);
    ("owns", [ "possesses"; "holds" ]);
    ("located_at", [ "sited_at"; "found_in" ]);
    ("orders", [ "requests"; "buys" ]);
    ("treats", [ "cares_for"; "attends" ]);
  |]

let capitalize s = String.capitalize_ascii s

let vocab_name vocab idx =
  let base, variants = vocab.(idx mod Array.length vocab) in
  let suffix = if idx < Array.length vocab then "" else string_of_int (idx / Array.length vocab + 1) in
  (base ^ suffix, List.map (fun v -> v ^ suffix) variants)

let noised g noise (base, variants) =
  if variants <> [] && Prng.bool g noise then Prng.pick g variants else base

(* ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)

type concept = {
  cid : int;
  c_names : string * string list;
  c_attrs : (int * (string * string list) * bool * Domain.t) list;
      (** attr id, name pool, key flag, domain *)
  extent : IntSet.t;
  parent : int option;
}

type rel_concept = {
  rid : int;
  r_names : string * string list;
  r_attrs : (int * (string * string list) * Domain.t) list;
  from_c : int;
  to_c : int;
  pairs : (int * int) list;
}

let attr_domain attr_id =
  match attr_id mod 3 with
  | 0 -> Domain.Char_string
  | 1 -> Domain.Integer
  | _ -> Domain.Real

let build_universe g p =
  let n_sub =
    Int.max 0 (int_of_float (p.subset_fraction *. float_of_int p.concepts))
  in
  let n_ov =
    Int.max 0 (int_of_float (p.overlap_fraction *. float_of_int p.concepts))
  in
  let n_roots = Int.max 1 (p.concepts - n_sub - n_ov) in
  let tags = List.init p.population Fun.id in
  let shuffled = Prng.shuffle g tags in
  (* partition the population across the roots *)
  let chunk = Int.max 1 (p.population / n_roots) in
  let root_extents =
    List.init n_roots (fun i ->
        let start = i * chunk in
        let stop = if i = n_roots - 1 then p.population else Int.min p.population (start + chunk) in
        List.filteri (fun j _ -> j >= start && j < stop) shuffled |> IntSet.of_list)
  in
  let next_attr = ref 0 in
  let make_attrs count =
    List.init count (fun slot ->
        let id = !next_attr in
        incr next_attr;
        ( id,
          vocab_name attr_vocab id,
          slot = 0,
          if slot = 0 then Domain.Char_string else attr_domain id ))
  in
  let roots =
    List.mapi
      (fun i extent ->
        {
          cid = i;
          c_names = vocab_name class_vocab i;
          c_attrs = make_attrs p.attrs_per_concept;
          extent;
          parent = None;
        })
      root_extents
  in
  let concepts = ref (List.rev roots) in
  let fresh_cid = ref (List.length roots) in
  let add c = concepts := c :: !concepts in
  (* subset children *)
  for _ = 1 to n_sub do
    let pool = List.filter (fun c -> IntSet.cardinal c.extent >= 4) !concepts in
    match pool with
    | [] -> ()
    | _ ->
        let parent = Prng.pick g pool in
        let members =
          IntSet.elements parent.extent
          |> Prng.sample g 0.5
          |> fun l -> if l = [] then [ IntSet.min_elt parent.extent ] else l
        in
        let members =
          (* proper subset: drop one element if we took everything *)
          if List.length members = IntSet.cardinal parent.extent then List.tl members
          else members
        in
        if members <> [] then begin
          let cid = !fresh_cid in
          incr fresh_cid;
          add
            {
              cid;
              c_names = vocab_name class_vocab cid;
              c_attrs = make_attrs p.attrs_per_concept;
              extent = IntSet.of_list members;
              parent = Some parent.cid;
            }
        end
  done;
  (* overlapping concepts *)
  for _ = 1 to n_ov do
    let pool = List.filter (fun c -> IntSet.cardinal c.extent >= 4) !concepts in
    match pool with
    | [] -> ()
    | _ ->
        let victim = Prng.pick g pool in
        let inside =
          Prng.sample g 0.4 (IntSet.elements victim.extent)
          |> fun l -> if l = [] then [ IntSet.min_elt victim.extent ] else l
        in
        (* the part outside the victim comes from a single sibling
           concept, so an overlap concept straddles exactly two concepts
           instead of poisoning the whole universe *)
        let siblings =
          List.filter
            (fun c ->
              c.cid <> victim.cid
              && IntSet.is_empty (IntSet.inter c.extent victim.extent))
            !concepts
        in
        let outside_pool =
          match siblings with
          | [] -> []
          | _ -> IntSet.elements (Prng.pick g siblings).extent
        in
        let outside =
          Prng.sample g 0.3 outside_pool
          |> fun l ->
          if l = [] && outside_pool <> [] then [ List.hd outside_pool ] else l
        in
        if outside <> [] then begin
          let cid = !fresh_cid in
          incr fresh_cid;
          add
            {
              cid;
              c_names = vocab_name class_vocab cid;
              c_attrs = make_attrs p.attrs_per_concept;
              extent = IntSet.of_list (inside @ outside);
              parent = victim.parent;
            }
        end
  done;
  let concepts = List.rev !concepts in
  (* relationship concepts *)
  let rels =
    if List.length concepts < 2 then []
    else
      List.init p.relationship_concepts (fun i ->
          let from_c = Prng.pick g concepts in
          let to_c = Prng.pick g (List.filter (fun c -> c.cid <> from_c.cid) concepts) in
          let from_tags = IntSet.elements from_c.extent
          and to_tags = IntSet.elements to_c.extent in
          let pairs =
            List.filter_map
              (fun a ->
                if Prng.bool g 0.5 then Some (a, Prng.pick g to_tags) else None)
              from_tags
            |> List.sort_uniq compare
          in
          let id0 = !next_attr in
          incr next_attr;
          {
            rid = i;
            r_names = vocab_name rel_vocab i;
            r_attrs = [ (id0, vocab_name attr_vocab id0, attr_domain id0) ];
            from_c = from_c.cid;
            to_c = to_c.cid;
            pairs;
          })
  in
  (concepts, rels)

(* ------------------------------------------------------------------ *)

let c_generated = Obs.Counter.make "workload.schemas_generated"

let generate (p : params) =
  Obs.Span.run "workload.generate" @@ fun () ->
  Obs.Counter.add c_generated p.schemas;
  let g = Prng.create p.seed in
  let concepts, rel_concepts = build_universe g p in
  let concept_by_id cid = List.find (fun c -> c.cid = cid) concepts in

  (* truth tables, keyed by string forms *)
  let extents : (string, IntSet.t) Hashtbl.t = Hashtbl.create 64 in
  let pair_extents : (string, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  let attr_concept : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let concept_of : (string, int) Hashtbl.t = Hashtbl.create 64 in

  let views =
    List.init p.schemas (fun vi ->
        let sname = Printf.sprintf "v%d" (vi + 1) in
        let gv = Prng.split g in
        (* choose concepts for this view, at least two *)
        (* Candidate concepts, then enforce ECR consistency: two classes
           may coexist as sibling entity sets only when their extents are
           disjoint; a proper subset of an included concept becomes a
           category of it; overlapping or equal extents force the
           candidate out.  Candidates are processed by decreasing extent
           size so a superset is always included before its subsets. *)
        let candidates = Prng.sample gv p.coverage concepts in
        let candidates =
          if List.length candidates >= 2 then candidates
          else List.filteri (fun i _ -> i < 2) (Prng.shuffle gv concepts)
        in
        let candidates =
          List.sort
            (fun c1 c2 ->
              Int.compare (IntSet.cardinal c2.extent) (IntSet.cardinal c1.extent))
            candidates
        in
        let chosen, view_parent =
          List.fold_left
            (fun (included, parent_of) c ->
              let rel_to d =
                Integrate.Rel.basic_of_extents Int.equal
                  (IntSet.elements c.extent) (IntSet.elements d.extent)
              in
              let rels = List.map (fun d -> (d, rel_to d)) included in
              if
                not
                  (List.for_all
                     (fun (_, r) -> r = Integrate.Rel.Dj || r = Integrate.Rel.Lt)
                     rels)
              then (included, parent_of)
              else begin
                (* smallest included superset, if any, becomes the parent *)
                let supersets =
                  List.filter_map
                    (fun (d, r) -> if r = Integrate.Rel.Lt then Some d else None)
                    rels
                in
                let parent =
                  List.fold_left
                    (fun best d ->
                      match best with
                      | None -> Some d
                      | Some b ->
                          if IntSet.cardinal d.extent < IntSet.cardinal b.extent
                          then Some d
                          else best)
                    None supersets
                in
                match parent with
                | Some d -> (included @ [ c ], (c.cid, d.cid) :: parent_of)
                | None -> (included @ [ c ], parent_of)
              end)
            ([], []) candidates
        in
        let chosen =
          (* keep a stable, declaration-like order: by concept id *)
          List.sort (fun a b -> Int.compare a.cid b.cid) chosen
        in
        let chosen_ids = List.map (fun c -> c.cid) chosen in
        let class_name_of = Hashtbl.create 16 in
        let objects =
          List.map
            (fun c ->
              let cname = capitalize (noised gv p.naming_noise c.c_names) in
              Hashtbl.replace class_name_of c.cid cname;
              c)
            chosen
          |> List.map (fun c ->
                 let cname = Hashtbl.find class_name_of c.cid in
                 let attrs =
                   List.filter_map
                     (fun (aid, names, key, dom) ->
                       if key || Prng.bool gv p.attr_coverage then begin
                         let aname = noised gv p.naming_noise names in
                         Some (aid, aname, key, dom)
                       end
                       else None)
                     c.c_attrs
                 in
                 (* record truth *)
                 let q = sname ^ "." ^ cname in
                 Hashtbl.replace extents q c.extent;
                 Hashtbl.replace concept_of q c.cid;
                 List.iter
                   (fun (aid, aname, _, _) ->
                     Hashtbl.replace attr_concept (q ^ "." ^ aname) aid)
                   attrs;
                 let parents =
                   match List.assoc_opt c.cid view_parent with
                   | Some pid -> [ Name.v (Hashtbl.find class_name_of pid) ]
                   | None -> []
                 in
                 let attr_list =
                   List.map
                     (fun (_, aname, key, dom) ->
                       Attribute.make ~key (Name.v aname) dom)
                     attrs
                 in
                 if parents = [] then
                   Object_class.entity ~attrs:attr_list (Name.v cname)
                 else
                   Object_class.category ~attrs:attr_list ~parents (Name.v cname))
        in
        let relationships =
          List.filter_map
            (fun rc ->
              if
                List.mem rc.from_c chosen_ids
                && List.mem rc.to_c chosen_ids
                && Prng.bool gv p.coverage
              then begin
                let rname = capitalize (noised gv p.naming_noise rc.r_names) in
                let q = sname ^ "." ^ rname in
                Hashtbl.replace pair_extents q rc.pairs;
                let attrs =
                  List.map
                    (fun (aid, names, dom) ->
                      let aname = noised gv p.naming_noise names in
                      Hashtbl.replace attr_concept (q ^ "." ^ aname) aid;
                      Attribute.make (Name.v aname) dom)
                    rc.r_attrs
                in
                Some
                  (Relationship.binary ~attrs (Name.v rname)
                     ( Name.v (Hashtbl.find class_name_of rc.from_c),
                       Cardinality.any )
                     (Name.v (Hashtbl.find class_name_of rc.to_c), Cardinality.any))
              end
              else None)
            rel_concepts
        in
        Schema.make (Name.v sname) ~objects ~relationships)
  in

  (* ---- oracle ----------------------------------------------------- *)
  let lookup_extent q = Hashtbl.find_opt extents (Qname.to_string q) in
  let lookup_pairs q = Hashtbl.find_opt pair_extents (Qname.to_string q) in
  let basic_to_assertion a b = function
    | Integrate.Rel.Eq -> Integrate.Assertion.Equal
    | Integrate.Rel.Lt -> Integrate.Assertion.Contained_in
    | Integrate.Rel.Gt -> Integrate.Assertion.Contains
    | Integrate.Rel.Ov -> Integrate.Assertion.May_be
    | Integrate.Rel.Dj ->
        (* integrable iff sibling concepts (a meaningful generalisation
           exists); unknown concepts default to nonintegrable *)
        let parent q =
          Option.map
            (fun cid -> (concept_by_id cid).parent)
            (Hashtbl.find_opt concept_of (Qname.to_string q))
        in
        if
          (match (parent a, parent b) with
          | Some (Some x), Some (Some y) -> x = y
          | _ -> false)
        then Integrate.Assertion.Disjoint_integrable
        else Integrate.Assertion.Disjoint_nonintegrable
  in
  let object_assertion a b =
    match (lookup_extent a, lookup_extent b) with
    | Some ea, Some eb when not (IntSet.is_empty ea || IntSet.is_empty eb) ->
        let basic =
          Integrate.Rel.basic_of_extents Int.equal (IntSet.elements ea)
            (IntSet.elements eb)
        in
        Some (basic_to_assertion a b basic)
    | _ -> None
  in
  let relationship_assertion a b =
    match (lookup_pairs a, lookup_pairs b) with
    | Some pa, Some pb when pa <> [] && pb <> [] ->
        let basic = Integrate.Rel.basic_of_extents ( = ) pa pb in
        Some
          (match basic with
          | Integrate.Rel.Eq -> Integrate.Assertion.Equal
          | Integrate.Rel.Lt -> Integrate.Assertion.Contained_in
          | Integrate.Rel.Gt -> Integrate.Assertion.Contains
          | Integrate.Rel.Ov -> Integrate.Assertion.May_be
          | Integrate.Rel.Dj -> Integrate.Assertion.Disjoint_nonintegrable)
    | _ -> None
  in
  let oracle =
    {
      Integrate.Dda.label = "ground-truth";
      attr_equivalent =
        (fun (qa, _) (qb, _) ->
          match
            ( Hashtbl.find_opt attr_concept (Qname.Attr.to_string qa),
              Hashtbl.find_opt attr_concept (Qname.Attr.to_string qb) )
          with
          | Some x, Some y -> x = y
          | _ -> false);
      object_assertion;
      relationship_assertion;
      resolve_conflict = (fun _ -> Integrate.Dda.Withdraw);
    }
  in
  let register (result : Integrate.Result.t) =
    let rname = Schema.name result.Integrate.Result.schema in
    List.iter
      (fun oc ->
        let id = oc.Object_class.name in
        let comps = Integrate.Result.component_structures result id in
        let ext =
          List.fold_left
            (fun acc c ->
              match Hashtbl.find_opt extents (Qname.to_string c) with
              | Some e -> IntSet.union acc e
              | None -> acc)
            IntSet.empty comps
        in
        if not (IntSet.is_empty ext) then
          Hashtbl.replace extents
            (Qname.to_string (Qname.make rname id))
            ext;
        (* attribute concepts propagate through provenance *)
        Name.Map.iter
          (fun attr comps ->
            match comps with
            | first :: _ -> (
                match
                  Hashtbl.find_opt attr_concept (Qname.Attr.to_string first)
                with
                | Some cid ->
                    Hashtbl.replace attr_concept
                      (Qname.to_string (Qname.make rname id)
                      ^ "." ^ Name.to_string attr)
                      cid
                | None -> ())
            | [] -> ())
          (Option.value ~default:Name.Map.empty
             (Name.Map.find_opt id result.Integrate.Result.attr_components)))
      (Schema.objects result.Integrate.Result.schema);
    List.iter
      (fun r ->
        let id = r.Relationship.name in
        let comps = Integrate.Result.component_structures result id in
        let pairs =
          List.concat_map
            (fun c ->
              Option.value ~default:[]
                (Hashtbl.find_opt pair_extents (Qname.to_string c)))
            comps
          |> List.sort_uniq compare
        in
        if pairs <> [] then
          Hashtbl.replace pair_extents
            (Qname.to_string (Qname.make rname id))
            pairs)
      (Schema.relationships result.Integrate.Result.schema)
  in

  (* ---- true pairs -------------------------------------------------- *)
  let classes_of_view s =
    List.map (fun oc -> Schema.qname s oc.Object_class.name) (Schema.objects s)
  in
  let rec view_pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s')) rest @ view_pairs rest
  in
  let true_pairs = ref [] and related_pairs = ref [] in
  List.iter
    (fun (s1, s2) ->
      List.iter
        (fun q1 ->
          List.iter
            (fun q2 ->
              let c1 = Hashtbl.find_opt concept_of (Qname.to_string q1)
              and c2 = Hashtbl.find_opt concept_of (Qname.to_string q2) in
              (match (c1, c2) with
              | Some x, Some y when x = y -> true_pairs := (q1, q2) :: !true_pairs
              | _ -> ());
              match object_assertion q1 q2 with
              | Some a when Integrate.Assertion.integrable a ->
                  related_pairs := (q1, q2, a) :: !related_pairs
              | _ -> ())
            (classes_of_view s2))
        (classes_of_view s1))
    (view_pairs views);

  let extent_of q =
    match lookup_extent q with Some e -> IntSet.elements e | None -> []
  in
  let link_pairs q = Option.value ~default:[] (lookup_pairs q) in
  let attr_id qa = Hashtbl.find_opt attr_concept (Qname.Attr.to_string qa) in
  {
    params = p;
    schemas = views;
    oracle;
    register;
    true_pairs = List.rev !true_pairs;
    related_pairs = List.rev !related_pairs;
    extent_of;
    link_pairs;
    attr_id;
  }

let noisy_oracle t ~error_rate ~seed =
  let g = Prng.create seed in
  let all_assertions =
    [
      Integrate.Assertion.Equal;
      Integrate.Assertion.Contained_in;
      Integrate.Assertion.Contains;
      Integrate.Assertion.Disjoint_integrable;
      Integrate.Assertion.May_be;
      Integrate.Assertion.Disjoint_nonintegrable;
    ]
  in
  {
    t.oracle with
    Integrate.Dda.label = Printf.sprintf "noisy(%.2f)" error_rate;
    object_assertion =
      (fun a b ->
        match t.oracle.Integrate.Dda.object_assertion a b with
        | Some truth when Prng.bool g error_rate ->
            let wrong =
              List.filter
                (fun x -> not (Integrate.Assertion.equal x truth))
                all_assertions
            in
            Some (Prng.pick g wrong)
        | answer -> answer);
  }

(* ------------------------------------------------------------------ *)
(* Instances.                                                          *)

let value_for ~attr_id ~tag dom =
  match dom with
  | Domain.Char_string -> Instance.Value.Str (Printf.sprintf "s%d_%d" attr_id tag)
  | Domain.Integer -> Instance.Value.Int ((tag * 31) + attr_id)
  | Domain.Real -> Instance.Value.Real (float_of_int ((tag * 7) + attr_id) /. 4.0)
  | Domain.Boolean -> Instance.Value.Bool ((tag + attr_id) mod 2 = 0)
  | Domain.Date ->
      Instance.Value.Date (1980 + (tag mod 40), 1 + (attr_id mod 12), 1 + (tag mod 28))
  | Domain.Enum values -> (
      match values with
      | [] -> Instance.Value.Null
      | vs -> Instance.Value.Str (List.nth vs (tag mod List.length vs)))
  | Domain.Named _ -> Instance.Value.Str (Printf.sprintf "n%d_%d" attr_id tag)

let c_chunks = Obs.Counter.make "workload.parallel_chunks"

(* Per-schema population only reads the truth tables built by
   [generate] (never writes them), so the schemas fan out safely; each
   task builds its own store.  [Par.map] keeps the stores in schema
   order. *)
let populate ?(jobs = Par.default_jobs ()) ?schemas t =
  let schemas = Option.value ~default:t.schemas schemas in
  Par.with_pool ~jobs @@ fun pool ->
  if Par.jobs pool > 1 then Obs.Counter.add c_chunks (List.length schemas);
  Par.map pool
    (fun s ->
      let store = ref (Instance.Store.create s) in
      let tag_oid = Hashtbl.create 256 in
      let qname cls = Qname.make (Schema.name s) cls in
      let classes = Schema.objects s in
      let tags_of cls = t.extent_of (qname cls.Object_class.name) in
      let all_tags =
        List.concat_map tags_of classes |> List.sort_uniq Int.compare
      in
      List.iter
        (fun tag ->
          let containing =
            List.filter (fun c -> List.mem tag (tags_of c)) classes
            |> List.map (fun c -> c.Object_class.name)
          in
          (* place at the most specific classes; membership propagates
             to ancestors *)
          let specific =
            List.filter
              (fun c ->
                not
                  (List.exists
                     (fun c' ->
                       (not (Name.equal c c'))
                       && Schema.is_ancestor s ~ancestor:c c')
                     containing))
              containing
          in
          match specific with
          | [] -> ()
          | first :: others ->
              let tuple =
                List.fold_left
                  (fun acc cls ->
                    let owner = qname cls in
                    match Schema.find_object cls s with
                    | None -> acc
                    | Some oc ->
                        List.fold_left
                          (fun acc (a : Attribute.t) ->
                            let v =
                              if a.Attribute.key then
                                Instance.Value.Str (Printf.sprintf "e%d" tag)
                              else
                                match
                                  t.attr_id (Qname.Attr.make owner a.Attribute.name)
                                with
                                | Some attr_id ->
                                    value_for ~attr_id ~tag a.Attribute.domain
                                | None ->
                                    value_for ~attr_id:0 ~tag a.Attribute.domain
                            in
                            Name.Map.add a.Attribute.name v acc)
                          acc oc.Object_class.attributes)
                  Name.Map.empty containing
              in
              let st, oid = Instance.Store.insert first tuple !store in
              store := st;
              List.iter
                (fun c -> store := Instance.Store.classify oid c !store)
                others;
              Hashtbl.replace tag_oid tag oid)
        all_tags;
      (* relationship instances from the pair extents *)
      List.iter
        (fun r ->
          let rq = qname r.Relationship.name in
          List.iter
            (fun (tag1, tag2) ->
              match (Hashtbl.find_opt tag_oid tag1, Hashtbl.find_opt tag_oid tag2) with
              | Some o1, Some o2 ->
                  let values =
                    List.fold_left
                      (fun acc (a : Attribute.t) ->
                        match t.attr_id (Qname.Attr.make rq a.Attribute.name) with
                        | Some attr_id ->
                            Name.Map.add a.Attribute.name
                              (value_for ~attr_id ~tag:((tag1 * 131) + tag2)
                                 a.Attribute.domain)
                              acc
                        | None -> acc)
                      Name.Map.empty r.Relationship.attributes
                  in
                  store :=
                    Instance.Store.relate r.Relationship.name [ o1; o2 ] values
                      !store
              | _ -> ())
            (t.link_pairs rq))
        (Schema.relationships s);
      (s, !store))
    schemas
