open Ecr

type session = {
  schemas : Schema.t list;
  equivalences : (Qname.Attr.t * Qname.Attr.t) list;
  object_assertions : (Qname.t * Integrate.Assertion.t * Qname.t) list;
  relationship_assertions :
    (Qname.t * Integrate.Assertion.t * Qname.t) list;
}

let n = Name.v
let a = Qname.Attr.v
let q = Qname.v

let entity name attrs =
  Object_class.entity
    ~attrs:(List.map (fun (an, dom, key) -> Attribute.v ~key an dom) attrs)
    (n name)

let category name parents attrs =
  Object_class.category
    ~attrs:(List.map (fun (an, dom, key) -> Attribute.v ~key an dom) attrs)
    ~parents:(List.map n parents) (n name)

(* ------------------------------------------------------------------ *)
(* University: three user views for logical database design.           *)

let registrar =
  Schema.make (n "registrar")
    ~objects:
      [
        entity "Student"
          [ ("Ssn", "char", true); ("Name", "char", false); ("GPA", "real", false) ];
        entity "Instructor"
          [ ("Ssn", "char", true); ("Name", "char", false); ("Dept", "char", false) ];
        entity "Course"
          [ ("Code", "char", true); ("Title", "char", false); ("Credits", "int", false) ];
        entity "Section"
          [ ("Section_id", "char", true); ("Term", "char", false); ("Room", "char", false) ];
      ]
    ~relationships:
      [
        Relationship.binary
          ~attrs:[ Attribute.v "Grade" "char" ]
          (n "Enrolled")
          (n "Student", Cardinality.any)
          (n "Section", Cardinality.any);
        Relationship.binary (n "Teaches")
          (n "Instructor", Cardinality.any)
          (n "Section", Cardinality.exactly_one);
        Relationship.binary (n "Offering_of")
          (n "Section", Cardinality.exactly_one)
          (n "Course", Cardinality.any);
      ]

let library =
  Schema.make (n "library")
    ~objects:
      [
        entity "Borrower"
          [ ("Ssn", "char", true); ("Full_name", "char", false); ("Fines", "real", false) ];
        entity "Book"
          [ ("Isbn", "char", true); ("Title", "char", false); ("Year", "int", false) ];
      ]
    ~relationships:
      [
        Relationship.binary
          ~attrs:[ Attribute.v "Due_date" "date" ]
          (n "Loan")
          (n "Borrower", Cardinality.any)
          (n "Book", Cardinality.at_most_one);
      ]

let housing =
  Schema.make (n "housing")
    ~objects:
      [
        entity "Resident"
          [ ("Ssn", "char", true); ("Name", "char", false); ("Meal_plan", "bool", false) ];
        entity "Hall"
          [ ("Hall_name", "char", true); ("Capacity", "int", false) ];
        category "Resident_assistant" [ "Resident" ]
          [ ("Stipend", "real", false) ];
      ]
    ~relationships:
      [
        Relationship.binary (n "Lives_in")
          (n "Resident", Cardinality.exactly_one)
          (n "Hall", Cardinality.any);
        Relationship.binary (n "Staffs")
          (n "Resident_assistant", Cardinality.exactly_one)
          (n "Hall", Cardinality.at_least_one);
      ]

let university =
  {
    schemas = [ registrar; library; housing ];
    equivalences =
      [
        (* students across the three views *)
        (a "registrar" "Student" "Ssn", a "library" "Borrower" "Ssn");
        (a "registrar" "Student" "Name", a "library" "Borrower" "Full_name");
        (a "registrar" "Student" "Ssn", a "housing" "Resident" "Ssn");
        (a "registrar" "Student" "Name", a "housing" "Resident" "Name");
        (* instructors also carry Ssn/Name, matching students' *)
        (a "registrar" "Instructor" "Ssn", a "library" "Borrower" "Ssn");
        (a "registrar" "Instructor" "Name", a "library" "Borrower" "Full_name");
      ];
    object_assertions =
      [
        (* anyone with a library card is a student or an instructor; the
           campus says every borrower is one of the two, so Borrower is
           the generalisation the DDA wants: Borrower contains both *)
        ( q "library" "Borrower",
          Integrate.Assertion.Contains,
          q "registrar" "Student" );
        ( q "library" "Borrower",
          Integrate.Assertion.Contains,
          q "registrar" "Instructor" );
        (* residents are exactly the students living on campus *)
        ( q "registrar" "Student",
          Integrate.Assertion.Contains,
          q "housing" "Resident" );
      ];
    relationship_assertions = [];
  }

(* ------------------------------------------------------------------ *)
(* Company: three departmental databases for global schema design.     *)

let personnel =
  Schema.make (n "personnel")
    ~objects:
      [
        entity "Employee"
          [
            ("Emp_no", "char", true);
            ("Name", "char", false);
            ("Hired", "date", false);
          ];
        category "Manager" [ "Employee" ] [ ("Car_allowance", "real", false) ];
        entity "Department"
          [ ("Dept_no", "int", true); ("Dept_name", "char", false) ];
      ]
    ~relationships:
      [
        Relationship.binary (n "Works_in")
          (n "Employee", Cardinality.exactly_one)
          (n "Department", Cardinality.at_least_one);
        Relationship.make (n "Reports_to")
          [
            Relationship.participant ~role:(n "subordinate") (n "Employee")
              Cardinality.at_most_one;
            Relationship.participant ~role:(n "boss") (n "Manager")
              Cardinality.any;
          ];
      ]

let payroll =
  Schema.make (n "payroll")
    ~objects:
      [
        entity "Staff"
          [
            ("Emp_id", "char", true);
            ("Full_name", "char", false);
            ("Salary", "real", false);
          ];
        entity "Paycheck"
          [
            ("Check_no", "int", true);
            ("Amount", "real", false);
            ("Issued", "date", false);
          ];
      ]
    ~relationships:
      [
        Relationship.binary (n "Paid_by")
          (n "Paycheck", Cardinality.exactly_one)
          (n "Staff", Cardinality.any);
      ]

let projects =
  Schema.make (n "projects")
    ~objects:
      [
        entity "Worker"
          [ ("Badge", "char", true); ("Name", "char", false) ];
        entity "Project"
          [
            ("Proj_no", "int", true);
            ("Proj_name", "char", false);
            ("Budget", "real", false);
          ];
        entity "Sponsor"
          [ ("Sponsor_name", "char", true); ("Contact", "char", false) ];
      ]
    ~relationships:
      [
        Relationship.binary
          ~attrs:[ Attribute.v "Hours" "real" ]
          (n "Assigned")
          (n "Worker", Cardinality.any)
          (n "Project", Cardinality.any);
        Relationship.binary (n "Funds")
          (n "Sponsor", Cardinality.any)
          (n "Project", Cardinality.at_least_one);
      ]

let company =
  {
    schemas = [ personnel; payroll; projects ];
    equivalences =
      [
        (a "personnel" "Employee" "Emp_no", a "payroll" "Staff" "Emp_id");
        (a "personnel" "Employee" "Name", a "payroll" "Staff" "Full_name");
        (a "personnel" "Employee" "Emp_no", a "projects" "Worker" "Badge");
        (a "personnel" "Employee" "Name", a "projects" "Worker" "Name");
      ];
    object_assertions =
      [
        (* payroll pays everyone *)
        (q "personnel" "Employee", Integrate.Assertion.Equal, q "payroll" "Staff");
        (* only some employees are project workers *)
        ( q "personnel" "Employee",
          Integrate.Assertion.Contains,
          q "projects" "Worker" );
      ];
    relationship_assertions = [];
  }

(* ------------------------------------------------------------------ *)

let feed create facts matrix_of =
  List.fold_left
    (fun m (l, assertion, r) ->
      match Integrate.Assertions.add l assertion r m with
      | Ok m -> m
      | Error c ->
          failwith
            (Printf.sprintf
               "Domains: recorded session conflicts entering %s %s %s — %s"
               (Qname.to_string l)
               (Integrate.Assertion.to_string assertion)
               (Qname.to_string r)
               (Integrate.Assertions.conflict_to_string c)))
    (create matrix_of) facts

let integrate ?name session =
  let eq =
    List.fold_left
      (fun eq s -> Integrate.Equivalence.register_schema s eq)
      Integrate.Equivalence.empty session.schemas
  in
  let eq =
    List.fold_left
      (fun eq (x, y) -> Integrate.Equivalence.declare x y eq)
      eq session.equivalences
  in
  let objects =
    feed Integrate.Assertions.create session.object_assertions session.schemas
  in
  let rels =
    feed Integrate.Assertions.create_for_relationships
      session.relationship_assertions session.schemas
  in
  Integrate.Pipeline.integrate
    (Integrate.Pipeline.input ?name session.schemas eq objects rels)

let dda session =
  Integrate.Dda.of_assertion_list ~equivalences:session.equivalences
    ~relationships:session.relationship_assertions session.object_assertions
