open Ecr

type params = {
  seed : int;
  schemas : int;
  concepts : int;
  population : int;
  views : int;
  storm : int;
  evolve : int;
  rounds : int;
}

let default_params =
  {
    seed = 42;
    schemas = 4;
    concepts = 12;
    population = 160;
    views = 4;
    storm = 24;
    evolve = 8;
    rounds = 2;
  }

type flavor = Ecr_native | Relational_rt | Hierarchical_rt

let flavor_to_string = function
  | Ecr_native -> "ecr"
  | Relational_rt -> "relational"
  | Hierarchical_rt -> "hierarchical"

type phase = { label : string; storm : bool; frames : string list }

type view_def = {
  v_name : string;
  v_base : string;
  v_policy : string;
  v_source : string;
}

type t = {
  params : params;
  gen : Generator.t;
  flavors : (string * flavor) list;
  schemas : Ecr.Schema.t list;
  directives : Integrate.Script.directive list;
  script_text : string;
  stores : (Ecr.Schema.t * Instance.Store.t) list;
  result : Integrate.Result.t;
  views : view_def list;
  schedule : phase list;
  checkpoint : int;
  barriers : int list;
}

(* ---- wire frames --------------------------------------------------
   Frames are built by hand rather than through [lib/server]'s Json:
   the scenario engine must not depend on the daemon it exercises.
   Requests only need to parse — the differential harness compares
   responses, not requests. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let frame ~id ?view ?text ?base ?policy op =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"id\":\"%s\",\"op\":\"%s\"" id op);
  (match view with
  | Some v -> Buffer.add_string b (Printf.sprintf ",\"view\":\"%s\"" (json_escape v))
  | None -> ());
  (match text with
  | Some q ->
      (* updates travel in "u", everything else in "q" — see Wire *)
      let key = if String.equal op "update" then "u" else "q" in
      Buffer.add_string b (Printf.sprintf ",\"%s\":\"%s\"" key (json_escape q))
  | None -> ());
  (match base with
  | Some v -> Buffer.add_string b (Printf.sprintf ",\"base\":\"%s\"" (json_escape v))
  | None -> ());
  (match policy with
  | Some v -> Buffer.add_string b (Printf.sprintf ",\"policy\":\"%s\"" (json_escape v))
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- flavoring ---------------------------------------------------- *)

let flavor_of_index i =
  match i mod 3 with
  | 0 -> Ecr_native
  | 1 -> Relational_rt
  | _ -> Hierarchical_rt

(* A rendering that raises (or yields an invalid schema) means this
   component cannot live in that data model — fall back to native ECR,
   deterministically, so [generate] is total. *)
let apply_flavor fl s =
  match fl with
  | Ecr_native -> Some s
  | Relational_rt -> (
      match Translate.Relational.to_ecr (Translate.Relational.of_ecr s) with
      | s' -> if Schema.validate s' = [] then Some s' else None
      | exception
          ( Translate.Relational.Unsupported _ | Invalid_argument _
          | Failure _ | Not_found ) ->
          None)
  | Hierarchical_rt -> (
      match Translate.Hierarchical.to_ecr (Translate.Hierarchical.of_ecr s) with
      | s' -> if Schema.validate s' = [] then Some s' else None
      | exception
          ( Translate.Hierarchical.Unsupported _ | Invalid_argument _
          | Failure _ | Not_found ) ->
          None)

let flavored gen =
  let tagged =
    List.mapi
      (fun i s ->
        let sname = Name.to_string (Schema.name s) in
        let want = flavor_of_index i in
        match apply_flavor want s with
        | Some s' -> ((sname, want), s')
        | None -> ((sname, Ecr_native), s))
      gen.Generator.schemas
  in
  List.split tagged

(* ---- directives --------------------------------------------------- *)

let directive_line =
  let open Integrate in
  function
  | Script.Equiv (a, b) ->
      Printf.sprintf "equiv %s %s" (Qname.Attr.to_string a)
        (Qname.Attr.to_string b)
  | Script.Object_assertion (q1, a, q2) ->
      Printf.sprintf "object %s %d %s" (Qname.to_string q1) (Assertion.code a)
        (Qname.to_string q2)
  | Script.Rel_assertion (q1, a, q2) ->
      Printf.sprintf "rel %s %d %s" (Qname.to_string q1) (Assertion.code a)
        (Qname.to_string q2)
  | Script.Rename (q1, q2, n) ->
      Printf.sprintf "name %s %s %s" (Qname.to_string q1) (Qname.to_string q2) n

(* Equivalences between the attributes of two structures, answered from
   the generator's global attribute-concept ids. *)
let attr_equivs gen q1 attrs1 q2 attrs2 =
  List.concat_map
    (fun (a1 : Attribute.t) ->
      match gen.Generator.attr_id (Qname.Attr.make q1 a1.Attribute.name) with
      | None -> []
      | Some id1 ->
          List.filter_map
            (fun (a2 : Attribute.t) ->
              match
                gen.Generator.attr_id (Qname.Attr.make q2 a2.Attribute.name)
              with
              | Some id2 when id1 = id2 ->
                  Some
                    (Integrate.Script.Equiv
                       ( Qname.Attr.make q1 a1.Attribute.name,
                         Qname.Attr.make q2 a2.Attribute.name ))
              | _ -> None)
            attrs2)
    attrs1

let candidate_directives gen schemas =
  let find_class (q : Qname.t) =
    List.find_opt (fun s -> Name.equal (Schema.name s) q.Qname.schema) schemas
    |> Fun.flip Option.bind (fun s -> Schema.find_object q.Qname.obj s)
  in
  let object_equivs =
    List.concat_map
      (fun (q1, q2, _) ->
        match (find_class q1, find_class q2) with
        | Some c1, Some c2 ->
            attr_equivs gen q1 c1.Object_class.attributes q2
              c2.Object_class.attributes
        | _ -> [])
      gen.Generator.related_pairs
  in
  let object_assertions =
    List.filter_map
      (fun (q1, q2, a) ->
        match (find_class q1, find_class q2) with
        | Some _, Some _ -> Some (Integrate.Script.Object_assertion (q1, a, q2))
        | _ -> None)
      gen.Generator.related_pairs
  in
  (* relationship pairs: ask the oracle about every cross-schema pair
     still present after flavoring (the hierarchical rendering reifies
     its relationships away, so they simply drop out here) *)
  let rel_directives =
    let arr = Array.of_list schemas in
    let acc = ref [] in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        List.iter
          (fun (r1 : Relationship.t) ->
            List.iter
              (fun (r2 : Relationship.t) ->
                let q1 = Qname.make (Schema.name arr.(i)) r1.Relationship.name in
                let q2 = Qname.make (Schema.name arr.(j)) r2.Relationship.name in
                match
                  gen.Generator.oracle.Integrate.Dda.relationship_assertion q1
                    q2
                with
                | Some a when Integrate.Assertion.integrable a ->
                    List.iter
                      (fun d -> acc := d :: !acc)
                      (attr_equivs gen q1 r1.Relationship.attributes q2
                         r2.Relationship.attributes);
                    acc := Integrate.Script.Rel_assertion (q1, a, q2) :: !acc
                | _ -> ())
              (Schema.relationships arr.(j)))
          (Schema.relationships arr.(i))
      done
    done;
    List.rev !acc
  in
  object_equivs @ object_assertions @ rel_directives

(* ---- queries and values ------------------------------------------- *)

type probe = {
  p_schema : string;
  p_class : string;
  p_qname : Qname.t;
  p_entity : bool;
  p_attrs : Attribute.t list;
  p_char : string option;  (* a char-string attribute, safe in predicates *)
}

let probes_of schemas =
  List.concat_map
    (fun s ->
      let sname = Name.to_string (Schema.name s) in
      List.map
        (fun (oc : Object_class.t) ->
          {
            p_schema = sname;
            p_class = Name.to_string oc.Object_class.name;
            p_qname = Qname.make (Schema.name s) oc.Object_class.name;
            p_entity =
              (match oc.Object_class.kind with
              | Object_class.Entity_set -> true
              | Object_class.Category _ -> false);
            p_attrs = oc.Object_class.attributes;
            p_char =
              List.find_opt
                (fun (a : Attribute.t) ->
                  a.Attribute.domain = Domain.Char_string)
                oc.Object_class.attributes
              |> Option.map (fun (a : Attribute.t) ->
                     Name.to_string a.Attribute.name);
          })
        (Schema.objects s))
    schemas

let key_of p =
  List.find_opt
    (fun (a : Attribute.t) ->
      a.Attribute.key && a.Attribute.domain = Domain.Char_string)
    p.p_attrs
  |> Option.map (fun (a : Attribute.t) -> Name.to_string a.Attribute.name)

let set_attr p =
  match List.filter (fun (a : Attribute.t) -> not a.Attribute.key) p.p_attrs with
  | a :: _ -> a
  | [] -> List.hd p.p_attrs

(* One literal of the attribute's domain, in the query grammar.  [salt]
   keeps inserted keys unique across the schedule. *)
let render_value ~salt (a : Attribute.t) =
  match a.Attribute.domain with
  | Domain.Char_string -> Printf.sprintf "\"n%d\"" salt
  | Domain.Integer -> string_of_int (90000 + salt)
  | Domain.Real -> Printf.sprintf "%d.5" salt
  | Domain.Boolean -> "true"
  | Domain.Date -> "\"2026-08-09\""
  | Domain.Enum (v :: _) -> Printf.sprintf "\"%s\"" v
  | Domain.Enum [] -> "null"
  | Domain.Named _ -> Printf.sprintf "\"n%d\"" salt

(* ---- views -------------------------------------------------------- *)

(* The per-view constant in the predicate never matches real data (tags
   render as "e<tag>" / "s<id>_<tag>"), so each view materializes its
   class's full extent while guaranteeing a distinct query shape — the
   catalog rejects duplicate shapes. *)
let make_views (p : params) probes =
  let cands = List.filter (fun pr -> pr.p_char <> None) probes in
  let n = List.length cands in
  if n = 0 then []
  else
    List.init p.views (fun vi ->
        let step = max 1 (n / max 1 p.views) in
        let pr = List.nth cands (vi * step mod n) in
        {
          v_name = Printf.sprintf "sv%d" vi;
          v_base = pr.p_schema;
          v_policy = List.nth [ "eager"; "lazy"; "manual" ] (vi mod 3);
          v_source =
            Printf.sprintf "select * from %s where %s <> \"zz_sv%d\""
              pr.p_class
              (Option.get pr.p_char)
              vi;
        })

(* ---- the schedule ------------------------------------------------- *)

let make_schedule (p : params) gen (result : Integrate.Result.t) views probes =
  let fid = ref 0 in
  let mk ?view ?text ?base ?policy op =
    incr fid;
    frame ~id:(Printf.sprintf "f%04d" !fid) ?view ?text ?base ?policy op
  in
  let ints =
    List.map
      (fun (oc : Object_class.t) -> Name.to_string oc.Object_class.name)
      (Schema.objects result.Integrate.Result.schema)
  in
  let q_probes = List.filter (fun pr -> pr.p_char <> None) probes in
  let e_probes =
    List.filter (fun pr -> pr.p_entity && key_of pr <> None) probes
  in
  let nth l k = List.nth l (k mod List.length l) in
  let global_query k =
    mk "query" ~text:(Printf.sprintf "select * from %s" (nth ints k))
  in
  (* define + refresh + pin: also the tail of the checkpoint phase, so
     state after either is independent of the history before it *)
  let define_like () =
    List.map
      (fun v ->
        mk "define_view" ~view:v.v_name ~base:v.v_base ~policy:v.v_policy
          ~text:v.v_source)
      views
    @ List.map (fun v -> mk "refresh_view" ~view:v.v_name) views
    @ List.map (fun v -> mk "query" ~view:v.v_name) views
  in
  let storm_frames r =
    List.init p.storm (fun k ->
        let k' = (r * 37) + k in
        match k mod 6 with
        | 0 ->
            let pr = nth q_probes k' in
            mk "query" ~view:pr.p_schema
              ~text:(Printf.sprintf "select * from %s" pr.p_class)
        | 1 ->
            let pr = nth q_probes k' in
            mk "query" ~view:pr.p_schema
              ~text:
                (Printf.sprintf "select * from %s where %s <> \"qq%d\""
                   pr.p_class
                   (Option.get pr.p_char)
                   k')
        | 2 -> (
            match views with
            | [] -> global_query k'
            | _ -> mk "query" ~view:(nth views k').v_name)
        | 3 -> global_query k'
        | 4 ->
            let pr = nth q_probes k' in
            mk "rewrite" ~view:pr.p_schema
              ~text:(Printf.sprintf "select * from %s" pr.p_class)
        | _ -> mk "rewrite" ~text:(Printf.sprintf "select * from %s" (nth ints k')))
  in
  let evolve_frames r =
    List.init p.evolve (fun k ->
        let pr = nth e_probes ((r * 13) + k) in
        let key = Option.get (key_of pr) in
        let salt = (r * 1000) + k in
        let tags = gen.Generator.extent_of pr.p_qname in
        let point =
          match tags with
          | [] -> Printf.sprintf "%s = \"e0\"" key
          | _ -> Printf.sprintf "%s = \"e%d\"" key (nth tags ((r * 7) + k))
        in
        match k mod 3 with
        | 0 ->
            let assigns =
              String.concat ", "
                (List.map
                   (fun (a : Attribute.t) ->
                     Printf.sprintf "%s = %s"
                       (Name.to_string a.Attribute.name)
                       (render_value ~salt a))
                   pr.p_attrs)
            in
            mk "update" ~view:pr.p_schema
              ~text:(Printf.sprintf "insert into %s { %s }" pr.p_class assigns)
        | 1 ->
            let a = set_attr pr in
            mk "update" ~view:pr.p_schema
              ~text:
                (Printf.sprintf "update %s set %s = %s where %s" pr.p_class
                   (Name.to_string a.Attribute.name)
                   (render_value ~salt a) point)
        | _ ->
            mk "update" ~view:pr.p_schema
              ~text:(Printf.sprintf "delete from %s where %s" pr.p_class point))
  in
  let barrier_frames () =
    List.map (fun v -> mk "refresh_view" ~view:v.v_name) views
    @ List.map (fun v -> mk "query" ~view:v.v_name) views
    @ List.mapi (fun i _ -> global_query i) ints
  in
  let checkpoint_frames () =
    (mk "migrate" :: List.map (fun v -> mk "drop_view" ~view:v.v_name) views)
    @ define_like ()
  in
  let drain_frames () =
    List.map (fun v -> mk "query" ~view:v.v_name) views
    @ List.mapi (fun i _ -> global_query i) ints
  in
  let phases = ref [] and barriers = ref [] and ckpt = ref (-1) in
  let push ?(barrier = false) label storm frames =
    if barrier then barriers := List.length !phases :: !barriers;
    phases := { label; storm; frames } :: !phases
  in
  push ~barrier:true "define" false (define_like ());
  push "storm-0" true (storm_frames 0);
  for r = 1 to p.rounds do
    push (Printf.sprintf "evolve-%d" r) false (evolve_frames r);
    push ~barrier:true (Printf.sprintf "barrier-%d" r) false (barrier_frames ());
    push (Printf.sprintf "storm-%d" r) true (storm_frames r);
    if r = 1 then begin
      ckpt := List.length !phases;
      push ~barrier:true "checkpoint" false (checkpoint_frames ())
    end
  done;
  push ~barrier:true "drain" false (drain_frames ());
  (List.rev !phases, !ckpt, List.rev !barriers)

(* ---- generation --------------------------------------------------- *)

let generate (p : params) =
  let gp =
    Generator.
      {
        default_params with
        seed = p.seed;
        schemas = p.schemas;
        concepts = p.concepts;
        population = p.population;
      }
  in
  let gen = Generator.generate gp in
  let flavors, schemas = flavored gen in
  let candidates = candidate_directives gen schemas in
  (* pre-validate: a directive the workspace rejects (or that raises on
     a structure a rendering dropped) is skipped, so the rendered script
     always applies cleanly end to end *)
  let ws0 =
    List.fold_left (fun ws s -> Integrate.Workspace.add_schema s ws)
      Integrate.Workspace.empty schemas
  in
  let ws, kept =
    List.fold_left
      (fun (ws, kept) d ->
        match Integrate.Script.apply_one d ws with
        | Ok ws' -> (ws', d :: kept)
        | Error _ | (exception _) -> (ws, kept))
      (ws0, []) candidates
  in
  let directives = List.rev kept in
  let result = Integrate.Workspace.integrate ~name:"G" ws in
  let script_text =
    String.concat "\n"
      (Printf.sprintf "# scenario session: seed=%d schemas=%d" p.seed p.schemas
      :: List.map directive_line directives)
    ^ "\n"
  in
  let stores = Generator.populate ~jobs:1 ~schemas gen in
  let probes = probes_of schemas in
  let views = make_views p probes in
  let schedule, checkpoint, barriers = make_schedule p gen result views probes in
  {
    params = p;
    gen;
    flavors;
    schemas;
    directives;
    script_text;
    stores;
    result;
    views;
    schedule;
    checkpoint;
    barriers;
  }

let ops_total t =
  List.fold_left (fun n ph -> n + List.length ph.frames) 0 t.schedule

(* ---- files -------------------------------------------------------- *)

type files = {
  ddl : string;
  script : string;
  data : string;
  schedule : string;
  reads : string;
}

(* Every read-only frame of the schedule, in schedule order: the storm
   phases are exactly the frames that are safe to replay against any
   node at any time — the chaos harness replays them post-failover and
   compares answers byte-for-byte against the single-node reference. *)
let read_frames (t : t) =
  List.concat_map (fun ph -> if ph.storm then ph.frames else []) t.schedule

let write_string path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let schedule_to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "# scenario schedule: seed=%d schemas=%d ops=%d\n"
       t.params.seed t.params.schemas (ops_total t));
  List.iteri
    (fun i ph ->
      Buffer.add_string b
        (Printf.sprintf "!phase %s %s%s\n" ph.label
           (if ph.storm then "storm" else "serial")
           (if i = t.checkpoint then " checkpoint" else ""));
      List.iter
        (fun f ->
          Buffer.add_string b f;
          Buffer.add_char b '\n')
        ph.frames)
    t.schedule;
  Buffer.contents b

let write_files ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path name = Filename.concat dir name in
  let files =
    {
      ddl = path "schemas.ecr";
      script = path "session.sit";
      data = path "instances.ecd";
      schedule = path "schedule.txt";
      reads = path "reads.txt";
    }
  in
  Ddl.Printer.save files.ddl t.schemas;
  write_string files.script t.script_text;
  write_string files.data
    (String.concat "\n"
       (List.map (fun (s, st) -> Instance.Loader.to_string s st) t.stores));
  write_string files.schedule (schedule_to_string t);
  write_string files.reads
    (String.concat "" (List.map (fun f -> f ^ "\n") (read_frames t)));
  files

let parse_schedule text =
  let phases = ref [] (* reversed *) in
  let cur = ref None (* label, storm, reversed frames *) in
  let ck = ref (-1) in
  let error = ref None in
  let fail ln fmt =
    Printf.ksprintf (fun s -> error := Some (Printf.sprintf "line %d: %s" ln s)) fmt
  in
  let close () =
    match !cur with
    | None -> ()
    | Some (label, storm, fs) ->
        phases := { label; storm; frames = List.rev fs } :: !phases;
        cur := None
  in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      if !error = None then
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else if String.length line >= 7 && String.sub line 0 7 = "!phase " then begin
          close ();
          match String.split_on_char ' ' line with
          | "!phase" :: label :: kind :: rest -> (
              match
                ( (match kind with
                  | "storm" -> Some true
                  | "serial" -> Some false
                  | _ -> None),
                  rest )
              with
              | None, _ -> fail ln "bad phase kind %S (storm or serial)" kind
              | Some st, [] -> cur := Some (label, st, [])
              | Some st, [ "checkpoint" ] ->
                  ck := List.length !phases;
                  cur := Some (label, st, [])
              | Some _, w :: _ -> fail ln "unexpected token %S" w)
          | _ -> fail ln "bad !phase header"
        end
        else
          match !cur with
          | None -> fail ln "frame before any !phase header"
          | Some (label, st, fs) -> cur := Some (label, st, line :: fs))
    (String.split_on_char '\n' text);
  match !error with
  | Some e -> Error e
  | None ->
      close ();
      Ok (List.rev !phases, !ck)

(* ---- transcripts -------------------------------------------------- *)

(* Textual scrub instead of a JSON round-trip: responses are canonical
   single-line JSON, the key ["ms":] appears only as refresh_view's
   wall-clock duration, and no schedule op echoes user text containing
   that byte sequence. *)
let normalize_response line =
  let n = String.length line in
  let key = "\"ms\":" in
  let kl = String.length key in
  let is_num c =
    (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'
  in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + kl <= n && String.sub line !i kl = key then begin
      Buffer.add_string b key;
      Buffer.add_char b '0';
      i := !i + kl;
      while !i < n && is_num line.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char b line.[!i];
      incr i
    end
  done;
  Buffer.contents b

let transcript ~play phases =
  let b = Buffer.create 8192 in
  List.iter
    (fun ph ->
      Buffer.add_string b
        (Printf.sprintf "== %s %s\n" ph.label
           (if ph.storm then "storm" else "serial"));
      let out = play ~storm:ph.storm (Array.of_list ph.frames) in
      Array.iter
        (fun r ->
          Buffer.add_string b (normalize_response r);
          Buffer.add_char b '\n')
        out)
    phases;
  Buffer.contents b

(* ---- ground truth ------------------------------------------------- *)

let missed_true_pairs t =
  let home = Hashtbl.create 64 in
  List.iter
    (fun (oc : Object_class.t) ->
      let n = oc.Object_class.name in
      List.iter
        (fun q -> Hashtbl.replace home (Qname.to_string q) (Name.to_string n))
        (Integrate.Result.component_structures t.result n))
    (Schema.objects t.result.Integrate.Result.schema);
  List.filter
    (fun (q1, q2) ->
      match
        ( Hashtbl.find_opt home (Qname.to_string q1),
          Hashtbl.find_opt home (Qname.to_string q2) )
      with
      | Some a, Some b -> not (String.equal a b)
      | _ -> true)
    t.gen.Generator.true_pairs
