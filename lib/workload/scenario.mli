(** Federation-scale scenarios: seeded end-to-end workloads over the
    whole stack.

    The paper integrates two hand-picked schemas interactively; the
    production story (ROADMAP open item 4) is a federation of many
    heterogeneous sources under churn.  This module turns a seeded
    {!params} into one deterministic {e scenario}:

    - a family of component schemas drawn from one {!Generator}
      ground-truth universe, each rendered through a {e flavor} — native
      ECR, or round-tripped through the relational / hierarchical
      models of [lib/translate] (so the federation is genuinely
      heterogeneous while class names, and with them the generator's
      truth tables, are preserved);
    - instance populations for those schemas ({!Generator.populate}
      over the flavored renderings);
    - an integration session script (attribute equivalences and
      object/relationship assertions derived from the ground-truth
      oracle, pre-validated against a workspace so the rendered script
      always applies cleanly);
    - a {e mixed op schedule}: phases of wire-protocol frames
      (define_view, query storms, update/evolve rounds, refresh,
      migrate-and-redefine checkpoints, drain) that drive a serving
      session through its whole lifecycle.

    Everything — schemas, script, data, schedule — renders to files
    ({!write_files}) consumable by [sit_serve], and the same schedule
    replays through any [play] function ({!transcript}), which is what
    makes the differential harness possible: offline in-process
    execution, the JSON and binary wire protocols, different [SIT_JOBS]
    values and a crash-resumed daemon must all produce byte-identical
    transcripts (see [docs/SCENARIOS.md] and [test/test_scenario.ml]).

    {2 Determinism contract}

    [generate] is a pure function of {!params}: every derived artefact
    (schema files, script, data, schedule, ground truth) is
    byte-reproducible across runs and platforms ({!Prng} is our own
    SplitMix64).  Responses may vary only in fields named in
    {!normalize_response}. *)

type params = {
  seed : int;
  schemas : int;  (** component schemas in the federation, >= 2 *)
  concepts : int;  (** object concepts in the ground-truth universe *)
  population : int;  (** entity tags shared by the universe *)
  views : int;  (** materialized views defined by the schedule *)
  storm : int;  (** read-only frames per query-storm phase *)
  evolve : int;  (** update frames per evolve phase *)
  rounds : int;  (** evolve/barrier/storm rounds, >= 1 *)
}

val default_params : params
(** seed 42, 4 schemas, 12 concepts, population 160, 4 views, storm 24,
    evolve 8, 2 rounds. *)

(** How a component schema entered the federation. *)
type flavor =
  | Ecr_native  (** the generator's ECR view, as-is *)
  | Relational_rt
      (** rendered via {!Translate.Relational.of_ecr} and re-abstracted
          with [to_ecr] — a source that entered through the
          Navathe–Awong relational procedure *)
  | Hierarchical_rt
      (** rendered via {!Translate.Hierarchical.of_ecr} and re-abstracted
          — relationship sets arrive reified as logical-child records *)

val flavor_to_string : flavor -> string

type phase = {
  label : string;
  storm : bool;
      (** [true]: read-only frames, safe to fan out over concurrent
          connections; [false]: mutating frames, replayed on a single
          connection in order *)
  frames : string list;  (** canonical JSON request lines *)
}

type view_def = {
  v_name : string;
  v_base : string;  (** component schema the query is written against *)
  v_policy : string;  (** "eager", "lazy" or "manual" *)
  v_source : string;  (** the defining query text *)
}

type t = {
  params : params;
  gen : Generator.t;  (** the ground-truth universe *)
  flavors : (string * flavor) list;  (** schema name -> flavor *)
  schemas : Ecr.Schema.t list;  (** the flavored component schemas *)
  directives : Integrate.Script.directive list;
  script_text : string;  (** the directives in [Integrate.Script] syntax *)
  stores : (Ecr.Schema.t * Instance.Store.t) list;
  result : Integrate.Result.t;
      (** the offline integration of the scenario, named ["G"] *)
  views : view_def list;
  schedule : phase list;
  checkpoint : int;
      (** index of the migrate-and-redefine phase: the one boundary at
          which a crash-resumed replay rejoins the uninterrupted
          transcript byte-for-byte *)
  barriers : int list;  (** indices of the ground-truth barrier phases *)
}

val generate : params -> t
(** Builds the whole scenario.  Schema flavors cycle
    ECR/relational/hierarchical by position; a rendering its schema
    cannot support (multi-parent category, keyless entity, ...) falls
    back to [Ecr_native], deterministically. *)

val ops_total : t -> int
(** Total frames across all schedule phases. *)

(** {1 Files and schedules} *)

type files = {
  ddl : string;  (** every component schema, one DDL file *)
  script : string;  (** the integration session *)
  data : string;  (** instance blocks for every schema *)
  schedule : string;  (** the schedule, {!parse_schedule} syntax *)
  reads : string;
      (** {!read_frames}, one frame per line — the post-failover replay
          deck of [scripts/chaos_test.sh] *)
}

val write_files : dir:string -> t -> files
(** Renders the scenario under [dir] (created if missing) and returns
    the paths — exactly what [sit_serve], [scripts/scenario_test.sh]
    and [scripts/chaos_test.sh] consume. *)

val read_frames : t -> string list
(** Every read-only (storm-phase) frame of the schedule, in schedule
    order: safe to replay against any node, any number of times, so the
    chaos harness uses them to compare a survivor's answers
    byte-for-byte against the single-node reference. *)

val schedule_to_string : t -> string

val parse_schedule : string -> (phase list * int, string) result
(** Parses a rendered schedule back: phases plus the checkpoint index
    (-1 when the schedule has none).  Grammar, one item per line:
    [!phase LABEL serial|storm [checkpoint]] opens a phase; every other
    non-empty, non-[#] line is a frame of the open phase. *)

(** {1 Differential transcripts} *)

val normalize_response : string -> string
(** Canonicalizes one response line for transcript comparison: any
    [ms] field (the wall-clock duration [refresh_view] reports) is
    zeroed.  Everything else a scenario schedule can elicit is already
    deterministic. *)

val transcript :
  play:(storm:bool -> string array -> string array) -> phase list -> string
(** Replays every phase through [play] (frames in, responses in frame
    order out) and renders the normalized transcript: a [== label] line
    per phase, then one response line per frame.  [play] is the leg
    being tested: in-process execution, a wire client, a resumed
    daemon... *)

(** {1 Ground truth} *)

val missed_true_pairs : t -> (Ecr.Qname.t * Ecr.Qname.t) list
(** True same-concept pairs ({!Generator.t.true_pairs}) that the
    scenario's integration failed to merge into one integrated class —
    must be [[]] for every scenario. *)
