open Ecr

type source = Asserted | Structural | Derived of Qname.t

type cell = { rel : Rel.t; src : source; dj_integrable : bool }

type conflict = {
  left : Qname.t;
  right : Qname.t;
  current : Rel.t;
  current_source : source option;
  attempted : Assertion.t option;
  basis : (Qname.t * Qname.t * Assertion.t) list;
}

type t = { nodes : Qname.t list; cells : cell Qname.Pair.Map.t }

exception Contradiction of conflict

(* Observability: the matrix closure is the other superlinear hot path
   (path consistency is cubic in nodes in the worst case).  [derived]
   counts cells tightened by composition — the automation the paper
   credits to transitive derivation; [conflicts] counts rejections. *)
let c_facts = Obs.Counter.make "assertions.facts_applied"
let c_derived = Obs.Counter.make "assertions.derived"
let c_conflicts = Obs.Counter.make "assertions.conflicts"

let nodes t = t.nodes

let source_to_string = function
  | Asserted -> "asserted"
  | Structural -> "structural"
  | Derived via -> Printf.sprintf "derived via %s" (Qname.to_string via)

let conflict_to_string c =
  let b = Buffer.create 128 in
  Printf.bprintf b "(%s, %s): " (Qname.to_string c.left)
    (Qname.to_string c.right);
  (match c.attempted with
  | Some a -> Printf.bprintf b "assertion \"%s\" rejected" (Assertion.to_string a)
  | None -> Buffer.add_string b "contradiction found by propagation");
  Printf.bprintf b "; current knowledge %s" (Rel.to_string c.current);
  (match c.current_source with
  | Some s -> Printf.bprintf b " (%s)" (source_to_string s)
  | None -> ());
  (match c.basis with
  | [] -> ()
  | basis ->
      Buffer.add_string b "; derived from";
      List.iter
        (fun (l, r, a) ->
          Printf.bprintf b " [%s %s %s]" (Qname.to_string l)
            (Assertion.to_string a) (Qname.to_string r))
        basis);
  Buffer.contents b

(* Cells store the relation oriented from [Pair.fst] to [Pair.snd]. *)
let find_cell t pair = Qname.Pair.Map.find_opt pair t.cells

let relation t a b =
  let pair = Qname.Pair.make a b in
  match find_cell t pair with
  | None -> Rel.all
  | Some c -> if Qname.Pair.flipped a b then Rel.converse c.rel else c.rel

let source_between t a b =
  Option.map (fun c -> c.src) (find_cell t (Qname.Pair.make a b))

let dj_integrable t a b =
  match find_cell t (Qname.Pair.make a b) with
  | None -> false
  | Some c -> c.dj_integrable

let assertion_between t a b =
  Rel.to_assertion ~integrable:(dj_integrable t a b) (relation t a b)

(* Store [rel] as the relation from [a] to [b]. *)
let set_cell t a b rel src ~dj_integrable:flag =
  let pair = Qname.Pair.make a b in
  let oriented = if Qname.Pair.flipped a b then Rel.converse rel else rel in
  let flag =
    flag
    ||
    match find_cell t pair with Some c -> c.dj_integrable | None -> false
  in
  { t with
    cells = Qname.Pair.Map.add pair { rel = oriented; src; dj_integrable = flag } t.cells
  }

(* Recursively unfold Derived sources down to asserted/structural leaves.
   Cycles cannot occur: a Derived cell's parents were set strictly
   earlier, but we keep a visited set for robustness. *)
let explain t a b =
  let rec walk visited a b =
    let pair = Qname.Pair.make a b in
    if Qname.Pair.Set.mem pair visited then []
    else
      let visited = Qname.Pair.Set.add pair visited in
      match find_cell t pair with
      | None -> []
      | Some c -> (
          match c.src with
          | Asserted | Structural -> (
              match
                Rel.to_assertion ~integrable:c.dj_integrable
                  (relation t (Qname.Pair.fst pair) (Qname.Pair.snd pair))
              with
              | Some a' -> [ (Qname.Pair.fst pair, Qname.Pair.snd pair, a') ]
              | None ->
                  (* non-singleton asserted cell cannot happen via [add],
                     but report nothing rather than lie *)
                  [])
          | Derived via ->
              walk visited (Qname.Pair.fst pair) via
              @ walk visited via (Qname.Pair.snd pair))
  in
  (* explicit comparator: Qname order is the spelled-out-name order,
     which polymorphic compare no longer coincides with now that names
     are interned ints *)
  List.sort_uniq
    (fun (a1, b1, k1) (a2, b2, k2) ->
      match Qname.compare a1 a2 with
      | 0 -> (
          match Qname.compare b1 b2 with
          | 0 -> Assertion.compare k1 k2
          | c -> c)
      | c -> c)
    (walk Qname.Pair.Set.empty a b)

let conflict_of t a b attempted =
  {
    left = a;
    right = b;
    current = relation t a b;
    current_source = source_between t a b;
    attempted;
    basis = explain t a b;
  }

(* Incremental path consistency: given recently tightened pairs, push
   their consequences until fixpoint.  Raises [Contradiction] when a
   cell empties. *)
let propagate t queue =
  Obs.Span.run "assertions.propagate" @@ fun () ->
  let t = ref t in
  let pending = Queue.create () in
  List.iter (fun p -> Queue.add p pending) queue;
  while not (Queue.is_empty pending) do
    let a, b = Queue.pop pending in
    let rel_ab = relation !t a b in
    List.iter
      (fun k ->
        if not (Qname.equal k a) && not (Qname.equal k b) then begin
          (* tighten (a,k) through b *)
          let old_ak = relation !t a k in
          let via_b = Rel.compose rel_ab (relation !t b k) in
          let new_ak = Rel.inter old_ak via_b in
          if not (Rel.equal new_ak old_ak) then begin
            if Rel.is_empty new_ak then begin
              Obs.Counter.incr c_conflicts;
              let c = conflict_of !t a k None in
              raise (Contradiction { c with current = new_ak })
            end;
            Obs.Counter.incr c_derived;
            t := set_cell !t a k new_ak (Derived b) ~dj_integrable:false;
            Queue.add (a, k) pending
          end;
          (* tighten (k,b) through a *)
          let old_kb = relation !t k b in
          let via_a = Rel.compose (relation !t k a) rel_ab in
          let new_kb = Rel.inter old_kb via_a in
          if not (Rel.equal new_kb old_kb) then begin
            if Rel.is_empty new_kb then begin
              Obs.Counter.incr c_conflicts;
              let c = conflict_of !t k b None in
              raise (Contradiction { c with current = new_kb })
            end;
            Obs.Counter.incr c_derived;
            t := set_cell !t k b new_kb (Derived a) ~dj_integrable:false;
            Queue.add (k, b) pending
          end
        end)
      !t.nodes
  done;
  !t

let seed_structural schemas =
  List.concat_map
    (fun s ->
      let q n = Schema.qname s n in
      let category_edges =
        List.concat_map
          (fun oc ->
            List.map
              (fun parent -> (q oc.Object_class.name, Assertion.Contained_in, q parent))
              (Object_class.parents oc))
          (Schema.categories s)
      in
      let disjoint_entities =
        let rec pairs = function
          | [] -> []
          | e :: rest ->
              List.map
                (fun e' ->
                  ( q e.Object_class.name,
                    Assertion.Disjoint_nonintegrable,
                    q e'.Object_class.name ))
                rest
              @ pairs rest
        in
        pairs (Schema.entities s)
      in
      category_edges @ disjoint_entities)
    schemas

let apply_fact t (a, assertion, b) ~src =
  let rel = Rel.of_assertion assertion in
  let old_rel = relation t a b in
  let new_rel = Rel.inter old_rel rel in
  if Rel.is_empty new_rel then begin
    Obs.Counter.incr c_conflicts;
    Error (conflict_of t a b (Some assertion))
  end
  else if Rel.equal new_rel old_rel then Ok t
  else begin
    Obs.Counter.incr c_facts;
    let dj_integrable = assertion = Assertion.Disjoint_integrable in
    let t' = set_cell t a b new_rel src ~dj_integrable in
    match propagate t' [ (a, b) ] with
    | t'' -> Ok t''
    | exception Contradiction c -> Error c
  end

let create schemas =
  Obs.Span.run "assertions.seed" @@ fun () ->
  let object_nodes =
    List.concat_map
      (fun s ->
        List.map (fun oc -> Schema.qname s oc.Object_class.name) (Schema.objects s))
      schemas
  in
  let t = { nodes = object_nodes; cells = Qname.Pair.Map.empty } in
  List.fold_left
    (fun t fact ->
      match apply_fact t fact ~src:Structural with
      | Ok t -> t
      | Error _ ->
          (* A schema inconsistent with itself would have failed
             validation; keep going without the offending fact. *)
          t)
    t (seed_structural schemas)

let create_for_relationships schemas =
  let rel_nodes =
    List.concat_map
      (fun s ->
        List.map
          (fun r -> Schema.qname s r.Relationship.name)
          (Schema.relationships s))
      schemas
  in
  { nodes = rel_nodes; cells = Qname.Pair.Map.empty }

let add left assertion right t =
  match apply_fact t (left, assertion, right) ~src:Asserted with
  | Ok t' -> Ok t'
  | Error c -> Error c

let constrained_pairs t =
  Qname.Pair.Map.bindings t.cells
  |> List.map (fun (pair, c) ->
         (Qname.Pair.fst pair, Qname.Pair.snd pair, c.rel, c.src))

let derived_assertions t =
  Qname.Pair.Map.bindings t.cells
  |> List.filter_map (fun (pair, c) ->
         match c.src with
         | Derived _ ->
             Option.map
               (fun a -> (Qname.Pair.fst pair, Qname.Pair.snd pair, a))
               (Rel.to_assertion ~integrable:c.dj_integrable c.rel)
         | Asserted | Structural -> None)

let asserted_count t =
  Qname.Pair.Map.fold
    (fun _ c acc -> match c.src with Asserted -> acc + 1 | _ -> acc)
    t.cells 0

let derived_count t = List.length (derived_assertions t)

let integration_edges t =
  Qname.Pair.Map.bindings t.cells
  |> List.filter_map (fun (pair, c) ->
         match Rel.to_assertion ~integrable:c.dj_integrable c.rel with
         | Some a when Assertion.integrable a ->
             Some (Qname.Pair.fst pair, Qname.Pair.snd pair, a)
         | _ -> None)
