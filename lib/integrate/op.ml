type t =
  | Add_schema of Ecr.Schema.t
  | Remove_schema of Ecr.Name.t
  | Declare_equivalent of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Separate_attribute of Ecr.Qname.Attr.t
  | Assert_object of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Assert_relationship of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Retract_object of Ecr.Qname.t * Ecr.Qname.t
  | Retract_relationship of Ecr.Qname.t * Ecr.Qname.t
  | Rename of Ecr.Qname.t * Ecr.Qname.t * string

let of_directive = function
  | Script.Equiv (a, b) -> Declare_equivalent (a, b)
  | Script.Object_assertion (a, c, b) -> Assert_object (a, c, b)
  | Script.Rel_assertion (a, c, b) -> Assert_relationship (a, c, b)
  | Script.Rename (a, b, forced) -> Rename (a, b, forced)

let apply op ws =
  match op with
  | Add_schema s -> Workspace.add_schema s ws
  | Remove_schema n -> Workspace.remove_schema n ws
  | Declare_equivalent (a, b) -> Workspace.declare_equivalent a b ws
  | Separate_attribute a -> Workspace.separate_attribute a ws
  | Assert_object (a, c, b) -> (
      match Workspace.assert_object a c b ws with
      | Ok ws -> ws
      | Error _ -> ws)
  | Assert_relationship (a, c, b) -> (
      match Workspace.assert_relationship a c b ws with
      | Ok ws -> ws
      | Error _ -> ws)
  | Retract_object (a, b) -> Workspace.retract_object a b ws
  | Retract_relationship (a, b) -> Workspace.retract_relationship a b ws
  | Rename (a, b, forced) ->
      Workspace.set_naming
        (Naming.with_override a b forced (Workspace.naming ws))
        ws

let describe = function
  | Add_schema s ->
      Printf.sprintf "add schema %s" (Ecr.Name.to_string (Ecr.Schema.name s))
  | Remove_schema n -> Printf.sprintf "remove schema %s" (Ecr.Name.to_string n)
  | Declare_equivalent (a, b) ->
      Printf.sprintf "equiv %s %s" (Ecr.Qname.Attr.to_string a)
        (Ecr.Qname.Attr.to_string b)
  | Separate_attribute a ->
      Printf.sprintf "separate %s" (Ecr.Qname.Attr.to_string a)
  | Assert_object (a, c, b) ->
      Printf.sprintf "object %s %d %s" (Ecr.Qname.to_string a)
        (Assertion.code c) (Ecr.Qname.to_string b)
  | Assert_relationship (a, c, b) ->
      Printf.sprintf "rel %s %d %s" (Ecr.Qname.to_string a)
        (Assertion.code c) (Ecr.Qname.to_string b)
  | Retract_object (a, b) ->
      Printf.sprintf "retract object %s %s" (Ecr.Qname.to_string a)
        (Ecr.Qname.to_string b)
  | Retract_relationship (a, b) ->
      Printf.sprintf "retract rel %s %s" (Ecr.Qname.to_string a)
        (Ecr.Qname.to_string b)
  | Rename (a, b, forced) ->
      Printf.sprintf "name %s %s as %s" (Ecr.Qname.to_string a)
        (Ecr.Qname.to_string b) forced
