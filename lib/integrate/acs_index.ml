open Ecr

(* The index is pure bookkeeping internal to this module, so its maps
   and sets order by intern id (integer compares) instead of the
   display order Qname/Name expose — nothing here iterates into
   user-visible output, and id order is a total order like any other.
   The two query-facing aggregates are flat: owners get dense slots in
   first-contribution order and the per-pair covering-class counts live
   in one triangular int array, so a [shared] query is two id-map
   lookups and an array read. *)

module FO = struct
  type t = Qname.t

  let compare (a : Qname.t) (b : Qname.t) =
    match Int.compare (Name.id a.Qname.schema) (Name.id b.Qname.schema) with
    | 0 -> Int.compare (Name.id a.Qname.obj) (Name.id b.Qname.obj)
    | c -> c
end

module FA = struct
  type t = Qname.Attr.t

  let compare (a : Qname.Attr.t) (b : Qname.Attr.t) =
    match FO.compare a.Qname.Attr.owner b.Qname.Attr.owner with
    | 0 -> Int.compare (Name.id a.Qname.Attr.attr) (Name.id b.Qname.Attr.attr)
    | c -> c
end

module AMap = Map.Make (FA)
module ASet = Set.Make (FA)
module OMap = Map.Make (FO)

(* The index keeps, next to the attribute → root partition mirror, the
   per-class owner multiset (so classes can be un-contributed when they
   merge or shrink) and the two query-facing aggregates, flattened:
   [slot] assigns each owner a dense array index and [counts] holds the
   number of covering classes per unordered owner pair — entry (i, j)
   with i >= j lives at i*(i+1)/2 + j; the diagonal (i, i) is the
   per-owner class count.  The array is copied before every update
   (owner counts are bounded by the structure count of the workspace,
   so copies are small) which keeps the whole index persistent. *)
type t = {
  root : Qname.Attr.t AMap.t;  (** attribute -> its class root *)
  members : ASet.t AMap.t;  (** root -> class members *)
  owners : int OMap.t AMap.t;  (** root -> owner -> #attributes in class *)
  slot : int OMap.t;  (** owner -> dense index into [counts] *)
  n_slots : int;
  counts : int array;  (** triangular pair/diagonal aggregate; immutable *)
}

let empty =
  {
    root = AMap.empty;
    members = AMap.empty;
    owners = AMap.empty;
    slot = OMap.empty;
    n_slots = 0;
    counts = [||];
  }

let c_builds = Obs.Counter.make "similarity.index_builds"
let c_updates = Obs.Counter.make "similarity.index_updates"

(* --- flat aggregate bookkeeping ------------------------------------ *)

let tri i j = if i >= j then (i * (i + 1) / 2) + j else (j * (j + 1) / 2) + i

(* Adds (delta = 1) or removes (delta = -1) one class's contribution to
   the aggregates: every owner it covers gains/loses a covering class
   (the diagonal), and so does every unordered pair of distinct owners.
   Cost is quadratic in the class's *owner* count, which is bounded by
   the number of schemas in the workspace — tiny next to the attr
   count.  [mut] lets the one-pass [build] reuse its private array
   instead of copying per class. *)
let contribute ?(mut = false) delta owner_multiset t =
  let owner_list = List.map fst (OMap.bindings owner_multiset) in
  let slot, n_slots =
    List.fold_left
      (fun ((slot, n) as acc) o ->
        if OMap.mem o slot then acc else (OMap.add o n slot, n + 1))
      (t.slot, t.n_slots) owner_list
  in
  let need = n_slots * (n_slots + 1) / 2 in
  let counts =
    if need <= Array.length t.counts then
      if mut then t.counts else Array.copy t.counts
    else begin
      (* grow with headroom so consecutive registrations don't copy
         quadratically *)
      let grown = Array.make (Int.max need (2 * Array.length t.counts)) 0 in
      Array.blit t.counts 0 grown 0 (Array.length t.counts);
      grown
    end
  in
  let ids = List.map (fun o -> OMap.find o slot) owner_list in
  let rec bump = function
    | [] -> ()
    | i :: rest ->
        let d = tri i i in
        counts.(d) <- counts.(d) + delta;
        List.iter
          (fun j ->
            let p = tri i j in
            counts.(p) <- counts.(p) + delta)
          rest;
        bump rest
  in
  bump ids;
  { t with slot; n_slots; counts }

let owners_of_members members =
  ASet.fold
    (fun a acc ->
      let o = a.Qname.Attr.owner in
      OMap.add o (1 + Option.value ~default:0 (OMap.find_opt o acc)) acc)
    members OMap.empty

(* Installs a class (members + owner multiset) under [root] and adds its
   contribution. *)
let add_class ?mut root members owner_multiset t =
  let t = contribute ?mut 1 owner_multiset t in
  {
    t with
    root = ASet.fold (fun a acc -> AMap.add a root acc) members t.root;
    members = AMap.add root members t.members;
    owners = AMap.add root owner_multiset t.owners;
  }

(* Drops a class (by root) and removes its contribution; the members'
   [root] entries are left to be overwritten by the caller. *)
let drop_class ?mut root t =
  let owner_multiset = AMap.find root t.owners in
  let t = contribute ?mut (-1) owner_multiset t in
  { t with members = AMap.remove root t.members; owners = AMap.remove root t.owners }

(* --- mirrored partition operations -------------------------------- *)

let register_mut mut a t =
  if AMap.mem a t.root then t
  else
    add_class ~mut a (ASet.singleton a)
      (OMap.singleton a.Qname.Attr.owner 1)
      t

let register a t = register_mut false a t

let register_schema s t =
  let add_attrs owner attrs t =
    List.fold_left
      (fun t attr -> register_mut true (Qname.Attr.make owner attr.Attribute.name) t)
      t attrs
  in
  (* one private array for the whole schema: the first registration
     copies (or grows) it, the rest mutate in place *)
  let t = { t with counts = Array.copy t.counts } in
  let t =
    List.fold_left
      (fun t oc ->
        add_attrs (Schema.qname s oc.Object_class.name) oc.Object_class.attributes t)
      t (Schema.objects s)
  in
  List.fold_left
    (fun t r ->
      add_attrs (Schema.qname s r.Relationship.name) r.Relationship.attributes t)
    t (Schema.relationships s)

let declare a b t =
  let t = register a (register b t) in
  let ra = AMap.find a t.root and rb = AMap.find b t.root in
  if Qname.Attr.equal ra rb then t
  else begin
    Obs.Counter.incr c_updates;
    let ma = AMap.find ra t.members and mb = AMap.find rb t.members in
    let oa = AMap.find ra t.owners and ob = AMap.find rb t.owners in
    let keep, grow, absorb =
      if ASet.cardinal ma >= ASet.cardinal mb then (ra, ma, mb) else (rb, mb, ma)
    in
    let merged_owners = OMap.union (fun _ x y -> Some (x + y)) oa ob in
    (* the first drop copies the array; the rest may mutate the copy *)
    let t = drop_class ra t in
    let t = drop_class ~mut:true rb t in
    add_class ~mut:true keep (ASet.union grow absorb) merged_owners t
  end

let separate a t =
  match AMap.find_opt a t.root with
  | None -> t
  | Some r ->
      let members = AMap.find r t.members in
      if ASet.cardinal members <= 1 then t
      else begin
        Obs.Counter.incr c_updates;
        let t = drop_class r t in
        let rest = ASet.remove a members in
        let rest_root =
          if Qname.Attr.equal r a then ASet.min_elt rest else r
        in
        let t = add_class ~mut:true rest_root rest (owners_of_members rest) t in
        add_class ~mut:true a (ASet.singleton a)
          (OMap.singleton a.Qname.Attr.owner 1)
          t
      end

(* --- one-pass construction ---------------------------------------- *)

let build eq =
  Obs.Span.run "similarity.index_build" @@ fun () ->
  Obs.Counter.incr c_builds;
  List.fold_left
    (fun t cls ->
      match cls with
      | [] -> t
      | root :: _ ->
          let members = ASet.of_list cls in
          (* [empty]'s array is private to this fold: mutate freely *)
          add_class ~mut:true root members (owners_of_members members) t)
    empty (Equivalence.classes eq)

(* --- queries ------------------------------------------------------- *)

let shared o1 o2 t =
  match OMap.find_opt o1 t.slot with
  | None -> 0
  | Some i ->
      if Qname.equal o1 o2 then t.counts.(tri i i)
      else (
        match OMap.find_opt o2 t.slot with
        | None -> 0
        | Some j -> t.counts.(tri i j))
