open Ecr
module AMap = Qname.Attr.Map
module ASet = Qname.Attr.Set
module OMap = Qname.Map
module PMap = Qname.Pair.Map

(* The index keeps, next to the attribute → root partition mirror, the
   per-class owner multiset (so classes can be un-contributed when they
   merge or shrink) and the two query-facing aggregates: the OCS entry
   per unordered owner pair and the per-owner class count (diagonal). *)
type t = {
  root : Qname.Attr.t AMap.t;  (** attribute -> its class root *)
  members : ASet.t AMap.t;  (** root -> class members *)
  owners : int OMap.t AMap.t;  (** root -> owner -> #attributes in class *)
  pair_shared : int PMap.t;  (** distinct owner pair -> #covering classes *)
  owner_classes : int OMap.t;  (** owner -> #covering classes *)
}

let empty =
  {
    root = AMap.empty;
    members = AMap.empty;
    owners = AMap.empty;
    pair_shared = PMap.empty;
    owner_classes = OMap.empty;
  }

let c_builds = Obs.Counter.make "similarity.index_builds"
let c_updates = Obs.Counter.make "similarity.index_updates"

(* --- class contribution bookkeeping ------------------------------- *)

let bump_pair delta p m =
  let v = delta + Option.value ~default:0 (PMap.find_opt p m) in
  if v = 0 then PMap.remove p m else PMap.add p v m

let bump_owner delta o m =
  let v = delta + Option.value ~default:0 (OMap.find_opt o m) in
  if v = 0 then OMap.remove o m else OMap.add o v m

(* Adds (delta = 1) or removes (delta = -1) one class's contribution to
   the aggregates: every owner it covers gains/loses a covering class,
   and so does every unordered pair of distinct owners.  Cost is
   quadratic in the class's *owner* count, which is bounded by the
   number of schemas in the workspace — tiny next to the attr count. *)
let contribute delta owner_multiset t =
  let owner_list = List.map fst (OMap.bindings owner_multiset) in
  let owner_classes =
    List.fold_left
      (fun acc o -> bump_owner delta o acc)
      t.owner_classes owner_list
  in
  let rec pairs acc = function
    | [] -> acc
    | o :: rest ->
        pairs
          (List.fold_left
             (fun acc o' -> bump_pair delta (Qname.Pair.make o o') acc)
             acc rest)
          rest
  in
  { t with owner_classes; pair_shared = pairs t.pair_shared owner_list }

let owners_of_members members =
  ASet.fold
    (fun a acc -> bump_owner 1 a.Qname.Attr.owner acc)
    members OMap.empty

(* Installs a class (members + owner multiset) under [root] and adds its
   contribution. *)
let add_class root members owner_multiset t =
  let t = contribute 1 owner_multiset t in
  {
    t with
    root = ASet.fold (fun a acc -> AMap.add a root acc) members t.root;
    members = AMap.add root members t.members;
    owners = AMap.add root owner_multiset t.owners;
  }

(* Drops a class (by root) and removes its contribution; the members'
   [root] entries are left to be overwritten by the caller. *)
let drop_class root t =
  let owner_multiset = AMap.find root t.owners in
  let t = contribute (-1) owner_multiset t in
  { t with members = AMap.remove root t.members; owners = AMap.remove root t.owners }

(* --- mirrored partition operations -------------------------------- *)

let register a t =
  if AMap.mem a t.root then t
  else
    add_class a (ASet.singleton a) (OMap.singleton a.Qname.Attr.owner 1) t

let register_schema s t =
  let add_attrs owner attrs t =
    List.fold_left
      (fun t attr -> register (Qname.Attr.make owner attr.Attribute.name) t)
      t attrs
  in
  let t =
    List.fold_left
      (fun t oc ->
        add_attrs (Schema.qname s oc.Object_class.name) oc.Object_class.attributes t)
      t (Schema.objects s)
  in
  List.fold_left
    (fun t r ->
      add_attrs (Schema.qname s r.Relationship.name) r.Relationship.attributes t)
    t (Schema.relationships s)

let declare a b t =
  let t = register a (register b t) in
  let ra = AMap.find a t.root and rb = AMap.find b t.root in
  if Qname.Attr.equal ra rb then t
  else begin
    Obs.Counter.incr c_updates;
    let ma = AMap.find ra t.members and mb = AMap.find rb t.members in
    let oa = AMap.find ra t.owners and ob = AMap.find rb t.owners in
    let keep, grow, absorb =
      if ASet.cardinal ma >= ASet.cardinal mb then (ra, ma, mb) else (rb, mb, ma)
    in
    let merged_owners =
      OMap.union (fun _ x y -> Some (x + y)) oa ob
    in
    let t = drop_class ra (drop_class rb t) in
    add_class keep (ASet.union grow absorb) merged_owners t
  end

let separate a t =
  match AMap.find_opt a t.root with
  | None -> t
  | Some r ->
      let members = AMap.find r t.members in
      if ASet.cardinal members <= 1 then t
      else begin
        Obs.Counter.incr c_updates;
        let t = drop_class r t in
        let rest = ASet.remove a members in
        let rest_root =
          if Qname.Attr.equal r a then ASet.min_elt rest else r
        in
        let t = add_class rest_root rest (owners_of_members rest) t in
        add_class a (ASet.singleton a)
          (OMap.singleton a.Qname.Attr.owner 1)
          t
      end

(* --- one-pass construction ---------------------------------------- *)

let build eq =
  Obs.Span.run "similarity.index_build" @@ fun () ->
  Obs.Counter.incr c_builds;
  List.fold_left
    (fun t cls ->
      match cls with
      | [] -> t
      | root :: _ ->
          let members = ASet.of_list cls in
          add_class root members (owners_of_members members) t)
    empty (Equivalence.classes eq)

(* --- queries ------------------------------------------------------- *)

let shared o1 o2 t =
  if Qname.equal o1 o2 then
    Option.value ~default:0 (OMap.find_opt o1 t.owner_classes)
  else
    Option.value ~default:0 (PMap.find_opt (Qname.Pair.make o1 o2) t.pair_shared)
