(** The Object Class Similarity (OCS) matrix and the resemblance
    function used to order object pairs for assertion collection.

    Upon leaving the equivalence phase the tool derives, from the ACS
    partition, the number of equivalent attributes between every pair of
    structures, and ranks pairs by the {e attribute ratio}

    {v #equivalent / (#equivalent + #attributes of the smaller class) v}

    so that a ratio of 0.5 means every attribute of the smaller class
    has an equivalent in the other (Screen 8's column reproduces
    0.5000 / 0.5000 / 0.3333 on the paper's example).  The DDA then
    reviews pairs in decreasing ratio order.

    The matrix is computed through an {!Acs_index}: one O(attrs) fold of
    the partition, then one lookup per entry — not a partition scan per
    entry (the measured hot spot this replaced; see
    [docs/PERFORMANCE.md]).  The [*_with] variants take a prebuilt
    (typically cached) index, so repeated rankings over one equivalence
    state — every schema pair of an n-ary session, or every refresh of
    an interactive screen — share a single build. *)

type ranked = {
  left : Ecr.Qname.t;  (** structure from the first schema *)
  right : Ecr.Qname.t;  (** structure from the second schema *)
  shared : int;  (** OCS entry: number of shared equivalence classes *)
  smaller : int;  (** attribute count of the smaller structure *)
  ratio : float;  (** the attribute ratio in [[0, 0.5]] *)
}
(** One row of the ranked-pair listing of Screen 8. *)

val ocs_entry : Ecr.Qname.t -> Ecr.Qname.t -> Equivalence.t -> int
(** Alias of {!Equivalence.shared_count} — the reference (partition
    scanning) entry computation; {!Acs_index.shared} is the fast path. *)

val attribute_ratio :
  Ecr.Schema.t * Ecr.Object_class.t ->
  Ecr.Schema.t * Ecr.Object_class.t ->
  Equivalence.t ->
  float
(** Ratio for an object-class pair, from their local attribute lists. *)

val relationship_ratio :
  Ecr.Schema.t * Ecr.Relationship.t ->
  Ecr.Schema.t * Ecr.Relationship.t ->
  Equivalence.t ->
  float
(** Same ratio for a relationship-set pair, over their local attribute
    lists. *)

val compare_ranked : ranked -> ranked -> int
(** The ranking order: decreasing ratio, then increasing size of the
    smaller class (a full match over fewer attributes first, which
    reproduces the paper's Screen 8 order), then declaration order
    (ties — callers sort stably or use {!Topk.select}). *)

val ranked_object_pairs :
  Ecr.Schema.t -> Ecr.Schema.t -> Equivalence.t -> ranked list
(** Every (object class of schema 1, object class of schema 2) pair in
    {!compare_ranked} order.  Pairs with ratio 0 are kept (the DDA may
    still relate attribute-poor classes), at the end.  Builds a
    throwaway {!Acs_index} — prefer {!ranked_object_pairs_with} when
    ranking more than once per equivalence state. *)

val ranked_relationship_pairs :
  Ecr.Schema.t -> Ecr.Schema.t -> Equivalence.t -> ranked list
(** As {!ranked_object_pairs}, over the two schemas' relationship
    sets. *)

val ranked_object_pairs_with :
  ?pool:Par.pool -> Acs_index.t -> Ecr.Schema.t -> Ecr.Schema.t -> ranked list
(** [ranked_object_pairs_with index s1 s2] is
    {!ranked_object_pairs}[ s1 s2 eq] for the equivalence [index] was
    built from, without rebuilding the index.  Counts
    ["similarity.cache_hits"].  A [?pool] with more than one job scores
    the matrix one row per pool task (counted by
    ["similarity.parallel_chunks"]); since {!Par.map} is an ordered
    reduction, the ranking is identical to the sequential scan. *)

val ranked_relationship_pairs_with :
  ?pool:Par.pool -> Acs_index.t -> Ecr.Schema.t -> Ecr.Schema.t -> ranked list
(** As {!ranked_object_pairs_with}, over relationship sets. *)

val top : int -> ranked list -> ranked list
(** [top n ranked] keeps the first [n] rows — what a screenful shows
    the DDA.  The whole list when [n] exceeds its length. *)

val top_object_pairs :
  ?pool:Par.pool ->
  k:int ->
  Acs_index.t ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  ranked list
(** [top_object_pairs ~k index s1 s2] is
    [top k (ranked_object_pairs_with index s1 s2)] — including the order
    among ties — computed by heap selection in O(pairs · log k) instead
    of sorting the whole matrix.  The path for a DDA who only consumes
    the best [k] pairs ({!Protocol}'s [max_object_pairs]).  [?pool]: as
    {!ranked_object_pairs_with} (only the row scoring is parallel; the
    heap selection stays on the submitting domain). *)

val top_relationship_pairs :
  ?pool:Par.pool ->
  k:int ->
  Acs_index.t ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  ranked list
(** As {!top_object_pairs}, over relationship sets. *)
