(** The assertion matrix: Phase 3 bookkeeping.

    Element (i, j) holds what is known about the domains of object
    classes i and j — a {!Rel.t} set of still-possible basic relations.
    Cells tighten from three sources:

    - {e structural} knowledge seeded from each component schema (a
      category is contained in its parents; entity sets of one schema
      are mutually disjoint);
    - {e DDA assertions} entered on the Assertion Collection screen;
    - {e derivation}: after every change the matrix is closed under the
      rules of transitive composition (path consistency over the
      {!Rel} algebra), so that, e.g., Worker ⊂ Employee and
      Employee ⊂ Person automatically yield Worker ⊂ Person.

    A new assertion that would empty a cell is rejected with a
    {!conflict} carrying the derivation basis — the data shown on the
    Assertion Conflict Resolution screen (Screen 9). *)

type source =
  | Asserted  (** stated by the DDA *)
  | Structural  (** seeded from a component schema's own IS-A edges *)
  | Derived of Ecr.Qname.t
      (** tightened by composition through the given intermediate
          object class *)

type conflict = {
  left : Ecr.Qname.t;  (** first object class of the offending cell *)
  right : Ecr.Qname.t;  (** second object class of the offending cell *)
  current : Rel.t;  (** what the matrix knows, oriented left->right *)
  current_source : source option;
  attempted : Assertion.t option;
      (** the new assertion being entered; [None] when the conflict was
          discovered by propagation further away *)
  basis : (Ecr.Qname.t * Ecr.Qname.t * Assertion.t) list;
      (** the asserted/structural facts the current knowledge derives
          from — the "relevant assertions used in the derivation" of
          Screen 9 *)
}

type t

val create : Ecr.Schema.t list -> t
(** A matrix over all object classes of the given schemas, seeded with
    their structural knowledge and closed. *)

val create_for_relationships : Ecr.Schema.t list -> t
(** A matrix over all relationship sets (no structural seeding — the
    ECR model has no relationship IS-A). *)

val nodes : t -> Ecr.Qname.t list
(** The structures the matrix ranges over, in registration order. *)

val add :
  Ecr.Qname.t -> Assertion.t -> Ecr.Qname.t -> t -> (t, conflict) result
(** [add left a right t] records "left ⟨a⟩ right" and re-closes the
    matrix.  On conflict the original matrix is returned unchanged
    inside the error. *)

val relation : t -> Ecr.Qname.t -> Ecr.Qname.t -> Rel.t
(** Current knowledge, oriented first-to-second argument; {!Rel.all}
    when nothing is known. *)

val assertion_between : t -> Ecr.Qname.t -> Ecr.Qname.t -> Assertion.t option
(** The cell rendered as an assertion when it is a singleton.  Disjoint
    cells render as integrable iff the DDA used code 4 on that pair. *)

val source_between : t -> Ecr.Qname.t -> Ecr.Qname.t -> source option
(** Where the cell's knowledge came from; [None] when nothing is
    known. *)

val explain : t -> Ecr.Qname.t -> Ecr.Qname.t -> (Ecr.Qname.t * Ecr.Qname.t * Assertion.t) list
(** The asserted/structural leaves supporting the current cell. *)

val source_to_string : source -> string

val conflict_to_string : conflict -> string
(** One line naming the offending pair, the rejected assertion (or the
    propagation origin), the current knowledge with its source, and the
    derivation basis — a compact textual Screen 9 for error messages. *)

val constrained_pairs : t -> (Ecr.Qname.t * Ecr.Qname.t * Rel.t * source) list
(** Every cell tighter than {!Rel.all}, oriented canonically. *)

val derived_assertions : t -> (Ecr.Qname.t * Ecr.Qname.t * Assertion.t) list
(** Singleton cells obtained by derivation (not asserted, not
    structural) — the automation the paper credits to transitive
    composition. *)

val asserted_count : t -> int
(** Number of cells the DDA stated directly. *)

val derived_count : t -> int
(** Number of singleton cells obtained by derivation alone — the
    paper's measure of how much work composition saves the DDA. *)

val integration_edges : t -> (Ecr.Qname.t * Ecr.Qname.t * Assertion.t) list
(** Singleton cells whose assertion is integrable — the edges from which
    clusters and the integrated lattice are built.  Disjoint cells
    appear only when the DDA marked them integrable. *)
