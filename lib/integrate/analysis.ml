open Ecr

type issue =
  | Homonym of Qname.Attr.t * Qname.Attr.t
  | Synonym_suspect of Qname.Attr.t * Qname.Attr.t
  | Domain_conflict of Qname.Attr.t * Domain.t * Qname.Attr.t * Domain.t
  | Key_conflict of Qname.Attr.t * Qname.Attr.t
  | Cardinality_conflict of Qname.t * Qname.t * Cardinality.t * Cardinality.t
  | Construct_mismatch of Qname.t * Qname.t * float

(* Every attribute of every object class of a schema, with definition. *)
let schema_attributes s =
  List.concat_map
    (fun oc ->
      List.map
        (fun (at : Attribute.t) ->
          (Qname.Attr.make (Schema.qname s oc.Object_class.name) at.Attribute.name, at))
        oc.Object_class.attributes)
    (Schema.objects s)
  @ List.concat_map
      (fun r ->
        List.map
          (fun (at : Attribute.t) ->
            (Qname.Attr.make (Schema.qname s r.Relationship.name) at.Attribute.name, at))
          r.Relationship.attributes)
      (Schema.relationships s)

let rec schema_pairs = function
  | [] -> []
  | s :: rest -> List.map (fun s' -> (s, s')) rest @ schema_pairs rest

let homonyms ws =
  let eq = Workspace.equivalence ws in
  List.concat_map
    (fun (s1, s2) ->
      let attrs1 = schema_attributes s1 and attrs2 = schema_attributes s2 in
      List.concat_map
        (fun (qa1, _) ->
          List.filter_map
            (fun (qa2, _) ->
              if
                Name.equal_ci qa1.Qname.Attr.attr qa2.Qname.Attr.attr
                && not (Equivalence.equivalent qa1 qa2 eq)
              then Some (Homonym (qa1, qa2))
              else None)
            attrs2)
        attrs1)
    (schema_pairs (Workspace.schemas ws))

let find_attr ws qa =
  Option.bind (Workspace.find_schema qa.Qname.Attr.owner.Qname.schema ws)
    (fun s ->
      match Schema.find_structure qa.Qname.Attr.owner.Qname.obj s with
      | Some (Schema.Obj oc) ->
          Attribute.find qa.Qname.Attr.attr oc.Object_class.attributes
      | Some (Schema.Rel r) ->
          Attribute.find qa.Qname.Attr.attr r.Relationship.attributes
      | None -> None)

let class_issues ws =
  let eq = Workspace.equivalence ws in
  List.concat_map
    (fun cls ->
      let defined =
        List.filter_map
          (fun qa -> Option.map (fun d -> (qa, d)) (find_attr ws qa))
          cls
      in
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.concat_map
        (fun (((qa1, d1) : _ * Attribute.t), ((qa2, d2) : _ * Attribute.t)) ->
          let domain_issue =
            if Domain.compatible d1.Attribute.domain d2.Attribute.domain then []
            else
              [
                Domain_conflict
                  (qa1, d1.Attribute.domain, qa2, d2.Attribute.domain);
              ]
          in
          let key_issue =
            if d1.Attribute.key = d2.Attribute.key then []
            else [ Key_conflict (qa1, qa2) ]
          in
          let suspect =
            if
              Heuristics.Strings.name_similarity
                (Name.to_string qa1.Qname.Attr.attr)
                (Name.to_string qa2.Qname.Attr.attr)
              < 0.2
              && not
                   (Heuristics.Synonyms.are_synonyms
                      (Name.to_string qa1.Qname.Attr.attr)
                      (Name.to_string qa2.Qname.Attr.attr)
                      Heuristics.Synonyms.default)
            then [ Synonym_suspect (qa1, qa2) ]
            else []
          in
          domain_issue @ key_issue @ suspect)
        (pairs defined))
    (Equivalence.nontrivial_classes eq)

let cardinality_issues ws =
  List.concat_map
    (fun (l, assertion, r) ->
      if assertion <> Assertion.Equal then []
      else
        match
          ( Workspace.find_schema l.Qname.schema ws,
            Workspace.find_schema r.Qname.schema ws )
        with
        | Some s1, Some s2 -> (
            match
              ( Schema.find_relationship l.Qname.obj s1,
                Schema.find_relationship r.Qname.obj s2 )
            with
            | Some r1, Some r2
              when Relationship.arity r1 = Relationship.arity r2 ->
                List.concat
                  (List.map2
                     (fun p1 p2 ->
                       match
                         Cardinality.intersect p1.Relationship.card
                           p2.Relationship.card
                       with
                       | Some _ -> []
                       | None ->
                           [
                             Cardinality_conflict
                               (l, r, p1.Relationship.card, p2.Relationship.card);
                           ])
                     r1.Relationship.participants r2.Relationship.participants)
            | _ -> [])
        | _ -> [])
    (Workspace.relationship_facts ws)

let construct_issues weights ws =
  List.concat_map
    (fun (s1, s2) ->
      List.map
        (fun c ->
          Construct_mismatch
            ( c.Heuristics.Construct.entity_side,
              c.Heuristics.Construct.relationship_side,
              c.Heuristics.Construct.score ))
        (Heuristics.Construct.detect weights s1 s2))
    (schema_pairs (Workspace.schemas ws))

let c_issues = Obs.Counter.make "analysis.issues"

let analyse
    ?(weights = Heuristics.Resemblance.default_weights Heuristics.Synonyms.default)
    ws =
  Obs.Span.run "analysis" @@ fun () ->
  let issues =
    Obs.Span.run "analysis.homonyms" (fun () -> homonyms ws)
    @ Obs.Span.run "analysis.class_issues" (fun () -> class_issues ws)
    @ Obs.Span.run "analysis.cardinality" (fun () -> cardinality_issues ws)
    @ Obs.Span.run "analysis.constructs" (fun () -> construct_issues weights ws)
  in
  Obs.Counter.add c_issues (List.length issues);
  issues

let to_string = function
  | Homonym (a, b) ->
      Printf.sprintf
        "homonym: %s and %s share a name but are not declared equivalent"
        (Qname.Attr.to_string a) (Qname.Attr.to_string b)
  | Synonym_suspect (a, b) ->
      Printf.sprintf
        "suspect: %s and %s are declared equivalent but their names are \
         entirely dissimilar"
        (Qname.Attr.to_string a) (Qname.Attr.to_string b)
  | Domain_conflict (a, da, b, db) ->
      Printf.sprintf
        "domain conflict: %s : %s is declared equivalent to %s : %s"
        (Qname.Attr.to_string a) (Domain.to_string da)
        (Qname.Attr.to_string b) (Domain.to_string db)
  | Key_conflict (a, b) ->
      Printf.sprintf
        "key conflict: %s and %s are declared equivalent but disagree on \
         uniqueness"
        (Qname.Attr.to_string a) (Qname.Attr.to_string b)
  | Cardinality_conflict (l, r, cl, cr) ->
      Printf.sprintf
        "cardinality conflict: %s %s vs %s %s have no common structural \
         constraint"
        (Qname.to_string l) (Cardinality.to_string cl) (Qname.to_string r)
        (Cardinality.to_string cr)
  | Construct_mismatch (e, r, score) ->
      Printf.sprintf
        "construct mismatch: entity %s may correspond to relationship %s \
         (score %.2f)"
        (Qname.to_string e) (Qname.to_string r) score

let pp fmt issue = Format.pp_print_string fmt (to_string issue)
