(** The interactive methodology, driven over a {!Dda} oracle.

    This module is the headless equivalent of the tool's screens: it
    walks the DDA through Phase 2 (attribute equivalences, optionally
    pre-filtered by the section-4 matching heuristics) and Phase 3
    (assertions over the ranked pair list, with conflict resolution),
    then runs Phase 4.  The TUI drives the same functions with a human
    behind the oracle; the benchmarks drive them with programmatic
    oracles and count the questions. *)

type options = {
  exhaustive_attribute_pairs : bool;
      (** [true]: ask the DDA about {e every} cross-schema attribute
          pair of every structure pair (the un-enhanced tool).
          [false]: ask only about candidates surfaced by the resemblance
          heuristics — the paper's section-4 enhancement. *)
  suggestion_weights : Heuristics.Resemblance.weighted;
      (** signals used when [exhaustive_attribute_pairs = false] *)
  suggestion_threshold : float;  (** candidate cut-off, default 0.5 *)
  max_object_pairs : int option;
      (** present only the first [n] ranked pairs (a DDA effort budget);
          [None] presents all *)
  skip_determined : bool;
      (** [true]: do not ask about pairs whose cell is already a
          singleton (derived by transitive composition) — quantifies the
          automation the paper claims for derivation *)
  retry_conflicts : int;  (** how many [Replace] rounds to honour *)
}

val defaults : options

type stats = {
  pairs_presented : int;
  pairs_skipped_determined : int;
  assertions_accepted : int;
  assertions_rejected : int;  (** withdrawn after conflicts *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val equivalence_candidates :
  options ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  ((Ecr.Qname.Attr.t * Ecr.Attribute.t) * (Ecr.Qname.Attr.t * Ecr.Attribute.t))
  list
(** The attribute pairs Phase 2 would put to the DDA for one schema
    pair, in presentation order (object-class pairs first, then
    relationship pairs).  Pure in the schemas and options — {!run}
    computes these lists for every schema pair in parallel, then asks
    the DDA sequentially. *)

val collect_equivalences_with :
  ((Ecr.Qname.Attr.t * Ecr.Attribute.t) * (Ecr.Qname.Attr.t * Ecr.Attribute.t))
  list ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  Dda.t ->
  Equivalence.t ->
  Equivalence.t
(** Registers both schemas, then asks the DDA about each precomputed
    candidate in order, declaring the confirmed equivalences. *)

val collect_equivalences :
  options ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  Dda.t ->
  Equivalence.t ->
  Equivalence.t
(** Phase 2 over one schema pair: both object classes and relationship
    sets.  [collect_equivalences_with (equivalence_candidates options
    s1 s2) s1 s2]. *)

val collect_object_assertions :
  ?index:Acs_index.t ->
  options ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  Dda.t ->
  Equivalence.t ->
  Assertions.t ->
  Assertions.t * stats
(** Phase 3, object subphase, over the ranked pair list.  [?index] is an
    {!Acs_index} already built over the given equivalence; when absent,
    one is built for this call.  {!run} builds a single index after
    Phase 2 and shares it across every schema pair of both subphases. *)

val collect_relationship_assertions :
  ?index:Acs_index.t ->
  options ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  Dda.t ->
  Equivalence.t ->
  Assertions.t ->
  Assertions.t * stats

val run :
  ?options:options ->
  ?jobs:int ->
  ?naming:Naming.t ->
  ?name:string ->
  Ecr.Schema.t list ->
  Dda.t ->
  Result.t * stats
(** All four phases, n-ary: equivalences and assertions are collected
    for every unordered schema pair, then a single integration is
    performed.

    [?jobs] (default {!Par.default_jobs}, i.e. [SIT_JOBS] or 1) fans
    the pure per-schema-pair work — Phase 2 candidate generation and
    Phase 3 ranking against the shared {!Acs_index} — out over a
    {!Par} pool; ["protocol.parallel_chunks"] counts the dispatched
    pair chunks.  DDA interaction and assertion-matrix composition stay
    on the calling domain in the sequential order, so the result,
    stats, question sequence and pipeline counters are identical for
    every [jobs] value (pinned by the differential tests).  [~jobs:1]
    spawns no domains. *)
