type directive =
  | Equiv of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Object_assertion of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Rel_assertion of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Rename of Ecr.Qname.t * Ecr.Qname.t * string

exception Parse_error of { file : string; line : int; message : string }

let parse_error_to_string = function
  | Parse_error { file; line; message } ->
      Printf.sprintf "%s:%d: %s" file line message
  | e -> Printexc.to_string e

let parse_line ~file ~line text =
  let error fmt =
    Printf.ksprintf
      (fun message -> raise (Parse_error { file; line; message }))
      fmt
  in
  let qattr s =
    match String.split_on_char '.' s with
    | [ a; b; c ] -> Ecr.Qname.Attr.v a b c
    | _ -> error "malformed qualified attribute: %s" s
  in
  let qname s =
    match String.split_on_char '.' s with
    | [ a; b ] -> Ecr.Qname.v a b
    | _ -> error "malformed qualified name: %s" s
  in
  let code s =
    match Option.bind (int_of_string_opt s) Assertion.of_code with
    | Some a -> a
    | None -> error "unknown assertion code: %s" s
  in
  let text =
    match String.index_opt text '#' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  match
    String.split_on_char ' ' (String.trim text)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ "equiv"; a; b ] -> Some (Equiv (qattr a, qattr b))
  | [ "object"; a; c; b ] -> Some (Object_assertion (qname a, code c, qname b))
  | [ "rel"; a; c; b ] -> Some (Rel_assertion (qname a, code c, qname b))
  | [ "name"; a; b; forced ] -> Some (Rename (qname a, qname b, forced))
  | _ -> error "unparseable directive: %s" (String.trim text)

let parse_file path =
  let ic = open_in path in
  (* [Fun.protect] so a [Parse_error] raised mid-file cannot leak the
     channel. *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let directives = ref [] in
      (try
         let line = ref 0 in
         while true do
           incr line;
           match parse_line ~file:path ~line:!line (input_line ic) with
           | Some d -> directives := d :: !directives
           | None -> ()
         done
       with End_of_file -> ());
      List.rev !directives)

type apply_error =
  | Object_conflict of Ecr.Qname.t * Ecr.Qname.t * Assertions.conflict
  | Rel_conflict of Ecr.Qname.t * Ecr.Qname.t * Assertions.conflict

let apply_error_to_string = function
  | Object_conflict (a, b, _) ->
      Printf.sprintf "conflicting assertion between %s and %s"
        (Ecr.Qname.to_string a) (Ecr.Qname.to_string b)
  | Rel_conflict (a, b, _) ->
      Printf.sprintf "conflicting relationship assertion between %s and %s"
        (Ecr.Qname.to_string a) (Ecr.Qname.to_string b)

let apply_one d ws =
  match d with
  | Equiv (a, b) -> Ok (Workspace.declare_equivalent a b ws)
  | Object_assertion (a, assertion, b) -> (
      match Workspace.assert_object a assertion b ws with
      | Ok ws -> Ok ws
      | Error c -> Error (Object_conflict (a, b, c)))
  | Rel_assertion (a, assertion, b) -> (
      match Workspace.assert_relationship a assertion b ws with
      | Ok ws -> Ok ws
      | Error c -> Error (Rel_conflict (a, b, c)))
  | Rename (a, b, forced) ->
      Ok
        (Workspace.set_naming
           (Naming.with_override a b forced (Workspace.naming ws))
           ws)

let apply directives ws =
  List.fold_left
    (fun acc d -> match acc with Error _ -> acc | Ok ws -> apply_one d ws)
    (Ok ws) directives
