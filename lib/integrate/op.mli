(** One recorded {!Workspace} mutation — the unit of the session
    journal.

    Every state change a session can make (Phase 1 schema edits,
    Phase 2 equivalence declarations, Phase 3 assertion facts and
    retractions, Phase 4 naming pins) has exactly one constructor here,
    so a sequence of ops is a complete, replayable transcript of a DDA
    session.  [lib/journal] serialises these to its write-ahead log;
    {!apply} is the replay side. *)

type t =
  | Add_schema of Ecr.Schema.t  (** adds or replaces, by name *)
  | Remove_schema of Ecr.Name.t
  | Declare_equivalent of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Separate_attribute of Ecr.Qname.Attr.t
  | Assert_object of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Assert_relationship of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Retract_object of Ecr.Qname.t * Ecr.Qname.t
  | Retract_relationship of Ecr.Qname.t * Ecr.Qname.t
  | Rename of Ecr.Qname.t * Ecr.Qname.t * string
      (** naming pin: integrate the pair under the given name *)

val of_directive : Script.directive -> t
(** Script directives are the batch subset of the op vocabulary. *)

val apply : t -> Workspace.t -> Workspace.t
(** Replays one op.  Assertion ops that the matrix rejects are dropped
    silently — the same policy {!Workspace} itself uses when replaying
    recorded facts after a schema edit — so replaying a journal never
    raises.  Use {!Script.apply_one} when the caller wants the
    conflict. *)

val describe : t -> string
(** One line, for logs and screens. *)
