(** Tool session state: the bookkeeping behind the screens.

    A workspace accumulates everything a DDA session produces — the
    component schemas (Phase 1), attribute equivalences (Phase 2) and
    assertions (Phase 3) — and can replay it into the pipeline at any
    point (Phase 4).  Assertion facts are stored as entered, and the
    closed matrices are rebuilt from them on demand, so editing a schema
    never leaves stale derived knowledge behind. *)

type t

val empty : t

(** {1 Phase 1 — schema collection} *)

val add_schema : Ecr.Schema.t -> t -> t
(** Adds or replaces (by name). *)

val remove_schema : Ecr.Name.t -> t -> t
(** Also drops equivalences and assertions that mention the schema. *)

val schemas : t -> Ecr.Schema.t list
val find_schema : Ecr.Name.t -> t -> Ecr.Schema.t option

(** {1 Phase 2 — equivalences} *)

val declare_equivalent : Ecr.Qname.Attr.t -> Ecr.Qname.Attr.t -> t -> t
val separate_attribute : Ecr.Qname.Attr.t -> t -> t
val equivalence : t -> Equivalence.t

val index : t -> Acs_index.t
(** The {!Acs_index} over {!equivalence}, maintained incrementally:
    [declare_equivalent] and [separate_attribute] patch only the classes
    they touch, structural edits ([add_schema]/[remove_schema]) refresh
    it, and {!ranked_pairs} consumes it without rebuilding — so Screen 8
    refreshes after a Screen 7 edit cost one index patch, not a
    partition fold. *)

(** {1 Phase 3 — assertions} *)

val object_matrix : t -> Assertions.t
(** Rebuilt from the recorded facts (schemas may have changed). *)

val relationship_matrix : t -> Assertions.t

val assert_object :
  Ecr.Qname.t -> Assertion.t -> Ecr.Qname.t -> t -> (t, Assertions.conflict) result

val assert_relationship :
  Ecr.Qname.t -> Assertion.t -> Ecr.Qname.t -> t -> (t, Assertions.conflict) result

val retract_object : Ecr.Qname.t -> Ecr.Qname.t -> t -> t
(** Removes any recorded fact on the pair (the Screen 9 way out of a
    conflict: change the earlier assertion). *)

val retract_relationship : Ecr.Qname.t -> Ecr.Qname.t -> t -> t

val object_facts : t -> (Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list
val relationship_facts : t -> (Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list

val ranked_pairs :
  Ecr.Name.t -> Ecr.Name.t -> t -> Similarity.ranked list
(** Ranked object pairs between two collected schemas (by name).
    @raise Not_found when either schema is absent. *)

val ranked_relationship_pairs :
  Ecr.Name.t -> Ecr.Name.t -> t -> Similarity.ranked list

(** {1 Phase 4 — integration} *)

val set_naming : Naming.t -> t -> t
val naming : t -> Naming.t

val integrate : ?name:string -> t -> Result.t
(** Integrates every collected schema n-ary. *)

val integrate_pair : ?name:string -> Ecr.Name.t -> Ecr.Name.t -> t -> Result.t
(** Integrates just two collected schemas (the tool's two-at-a-time
    flow).  @raise Not_found when either schema is absent. *)
