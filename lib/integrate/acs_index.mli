(** An owner-indexed view of the ACS partition, built once and queried
    per OCS entry in (amortised) constant time.

    {!Equivalence.shared_count} answers one OCS matrix entry by scanning
    the {e whole} ACS partition, and the similarity ranking asks for
    O(|O₁|·|O₂|) entries — the measured hot path of the assertion phase
    (see [docs/PERFORMANCE.md]).  An index folds the partition {e once}
    into

    - per unordered owner pair, the number of equivalence classes
      containing at least one attribute of each owner (exactly the OCS
      entry), and
    - per owner, the number of classes covering it (the diagonal),

    so that a full OCS matrix costs one O(attrs) build plus a map lookup
    per entry, instead of a partition scan per entry.

    The index also updates {e incrementally}: the Screen 7 operations —
    {!declare} and {!separate} — touch only the one or two classes they
    change, so an interactive session never rebuilds from scratch.
    {!Workspace} maintains an index alongside its {!Equivalence.t} this
    way.

    Observability: builds run under the ["similarity.index_build"] span
    and count ["similarity.index_builds"]; incremental edits count
    ["similarity.index_updates"]. *)

type t

val empty : t

val build : Equivalence.t -> t
(** [build eq] folds the whole partition into an index.  O(attrs ·
    log attrs + Σ per-class owner pairs) — one pass; every subsequent
    {!shared} query is a single map lookup. *)

val register : Ecr.Qname.Attr.t -> t -> t
(** Mirrors {!Equivalence.register}: makes the attribute a known
    singleton class.  Registering twice is a no-op. *)

val register_schema : Ecr.Schema.t -> t -> t
(** Mirrors {!Equivalence.register_schema}. *)

val declare : Ecr.Qname.Attr.t -> Ecr.Qname.Attr.t -> t -> t
(** Mirrors {!Equivalence.declare}: unions the two attributes' classes
    (registering them first if needed), patching only the rows of the
    owners present in the two merged classes. *)

val separate : Ecr.Qname.Attr.t -> t -> t
(** Mirrors {!Equivalence.separate}: removes the attribute from its
    class into a fresh singleton.  A no-op on unregistered attributes
    and on singletons, like its model. *)

val shared : Ecr.Qname.t -> Ecr.Qname.t -> t -> int
(** [shared o1 o2 t] is the OCS entry for the two structures: the number
    of equivalence classes containing at least one attribute of each.
    Agrees with {!Equivalence.shared_count} on the equivalence the index
    was built from (property-tested in [test/test_similarity.ml]).  One
    map lookup. *)
