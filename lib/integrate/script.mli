(** Session scripts: the batch equivalent of the tool's interactive
    screens.

    A script is a line-oriented file of directives ('#' starts a
    comment, blank lines are skipped):

    {v
    equiv  <schema.object.attr>  <schema.object.attr>
    object <schema.object> <code> <schema.object>
    rel    <schema.rel>    <code> <schema.rel>
    name   <schema.structure> <schema.structure> <IntegratedName>
    v}

    where [<code>] is the paper's assertion code: 1 equals,
    2 contained-in, 3 contains, 4 disjoint-integrable, 5 may-be,
    0 disjoint-nonintegrable.  [bin/sit_batch] replays one or more such
    scripts against a {!Workspace}. *)

type directive =
  | Equiv of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Object_assertion of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Rel_assertion of Ecr.Qname.t * Assertion.t * Ecr.Qname.t
  | Rename of Ecr.Qname.t * Ecr.Qname.t * string

exception Parse_error of { file : string; line : int; message : string }
(** Raised by the parsing functions; every error carries the file and
    1-based line it was found on. *)

val parse_error_to_string : exn -> string
(** ["file:line: message"] for a {!Parse_error}; [Printexc.to_string]
    for anything else. *)

val parse_line : file:string -> line:int -> string -> directive option
(** One source line to its directive; [None] for blank and comment
    lines.  Raises {!Parse_error} (positioned at [file]:[line]) on
    anything else. *)

val parse_file : string -> directive list
(** Parses a whole script, in order.  Raises {!Parse_error} on the
    first malformed line and [Sys_error] if the file cannot be opened;
    the channel is closed on every exit path. *)

type apply_error =
  | Object_conflict of Ecr.Qname.t * Ecr.Qname.t * Assertions.conflict
  | Rel_conflict of Ecr.Qname.t * Ecr.Qname.t * Assertions.conflict
      (** The offending pair as written in the script, with the matrix
          conflict that rejected it. *)

val apply_error_to_string : apply_error -> string

val apply_one : directive -> Workspace.t -> (Workspace.t, apply_error) result
(** Replays a single directive — the journaled batch path applies (and
    records) directives one at a time. *)

val apply : directive list -> Workspace.t -> (Workspace.t, apply_error) result
(** Replays the directives in order; stops at the first assertion the
    matrix rejects. *)
