(* A size-bounded binary max-heap over (element, input index) pairs.
   The heap order is the caller's [compare] with the input index as the
   final tie-break, which makes the order total and reproduces the
   stable sort's treatment of ties exactly. *)

let select ~compare:cmp k l =
  if k <= 0 then []
  else begin
    let total a b =
      match cmp (fst a) (fst b) with
      | 0 -> Int.compare (snd a) (snd b)
      | c -> c
    in
    (* heap.(0 .. size-1) is a max-heap under [total]: the root is the
       worst of the best-k seen so far, ready to be evicted. *)
    let heap = Array.make k None in
    let size = ref 0 in
    let get i = Option.get heap.(i) in
    let swap i j =
      let t = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- t
    in
    let rec sift_up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if total (get p) (get i) < 0 then begin
          swap p i;
          sift_up p
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let largest = ref i in
      if l < !size && total (get l) (get !largest) > 0 then largest := l;
      if r < !size && total (get r) (get !largest) > 0 then largest := r;
      if !largest <> i then begin
        swap i !largest;
        sift_down !largest
      end
    in
    List.iteri
      (fun idx x ->
        let candidate = (x, idx) in
        if !size < k then begin
          heap.(!size) <- Some candidate;
          incr size;
          sift_up (!size - 1)
        end
        else if total candidate (get 0) < 0 then begin
          heap.(0) <- Some candidate;
          sift_down 0
        end)
      l;
    (* drain the heap back-to-front into ascending order *)
    let out = Array.make !size None in
    let n = !size in
    for slot = n - 1 downto 0 do
      out.(slot) <- heap.(0);
      decr size;
      heap.(0) <- heap.(!size);
      heap.(!size) <- None;
      if !size > 0 then sift_down 0
    done;
    Array.to_list out |> List.map (fun x -> fst (Option.get x))
  end
