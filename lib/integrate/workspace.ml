open Ecr

type fact = Qname.t * Assertion.t * Qname.t

type t = {
  schemas : Schema.t list;
  equivalence : Equivalence.t;
  index : Acs_index.t;
      (** kept in lockstep with [equivalence]: patched incrementally by
          [declare_equivalent]/[separate_attribute], rebuilt on the rare
          structural edits (schema add/remove) *)
  object_facts : fact list;  (** in entry order *)
  relationship_facts : fact list;
  obj_matrix : Assertions.t;
      (** in lockstep with [schemas]+[object_facts]: each accepted
          assertion extends it incrementally; rebuilt by replay on
          structural edits and retractions.  Without the cache every
          assertion replays the whole fact list — quadratic in session
          length, which federation-scale scenario scripts (hundreds of
          directives) cannot afford. *)
  rel_matrix : Assertions.t;  (** likewise, for relationship facts *)
  naming : Naming.t;
}

let empty =
  {
    schemas = [];
    equivalence = Equivalence.empty;
    index = Acs_index.empty;
    object_facts = [];
    relationship_facts = [];
    obj_matrix = Assertions.create [];
    rel_matrix = Assertions.create_for_relationships [];
    naming = Naming.default;
  }

let schemas t = t.schemas
let find_schema n t = List.find_opt (fun s -> Name.equal (Schema.name s) n) t.schemas

let replay create facts t =
  List.fold_left
    (fun m (a, assertion, b) ->
      match Assertions.add a assertion b m with
      | Ok m -> m
      | Error _ ->
          (* Recorded facts were consistent when entered; a schema edit
             may have invalidated one.  Drop it silently — the screens
             surface the remaining facts. *)
          m)
    (create t.schemas) facts

(* After a structural edit the matrices' structure universe changed:
   replay the retained facts against it. *)
let rebuild_matrices t =
  {
    t with
    obj_matrix = replay Assertions.create t.object_facts t;
    rel_matrix = replay Assertions.create_for_relationships t.relationship_facts t;
  }

let add_schema s t =
  let n = Schema.name s in
  let replaced = ref false in
  let schemas =
    List.map
      (fun s' ->
        if Name.equal (Schema.name s') n then begin
          replaced := true;
          s
        end
        else s')
      t.schemas
  in
  let schemas = if !replaced then schemas else schemas @ [ s ] in
  rebuild_matrices
    {
      t with
      schemas;
      equivalence = Equivalence.register_schema s t.equivalence;
      index = Acs_index.register_schema s t.index;
    }

let remove_schema n t =
  let keeps_schema q = not (Name.equal q.Qname.schema n) in
  let keep_fact (a, _, b) = keeps_schema a && keeps_schema b in
  let equivalence =
    Equivalence.restrict (fun qa -> keeps_schema qa.Qname.Attr.owner) t.equivalence
  in
  rebuild_matrices
    {
      t with
      schemas =
        List.filter (fun s -> not (Name.equal (Schema.name s) n)) t.schemas;
      equivalence;
      (* a structural edit: restriction can split classes arbitrarily, so
         rebuild rather than patch *)
      index = Acs_index.build equivalence;
      object_facts = List.filter keep_fact t.object_facts;
      relationship_facts = List.filter keep_fact t.relationship_facts;
    }

let declare_equivalent a b t =
  {
    t with
    equivalence = Equivalence.declare a b t.equivalence;
    index = Acs_index.declare a b t.index;
  }

let separate_attribute a t =
  {
    t with
    equivalence = Equivalence.separate a t.equivalence;
    index = Acs_index.separate a t.index;
  }

let equivalence t = t.equivalence
let index t = t.index

let object_matrix t = t.obj_matrix
let relationship_matrix t = t.rel_matrix

let assert_object a assertion b t =
  match Assertions.add a assertion b t.obj_matrix with
  | Ok m ->
      Ok
        {
          t with
          object_facts = t.object_facts @ [ (a, assertion, b) ];
          obj_matrix = m;
        }
  | Error c -> Error c

let assert_relationship a assertion b t =
  match Assertions.add a assertion b t.rel_matrix with
  | Ok m ->
      Ok
        {
          t with
          relationship_facts = t.relationship_facts @ [ (a, assertion, b) ];
          rel_matrix = m;
        }
  | Error c -> Error c

let same_pair a b (x, _, y) =
  (Qname.equal a x && Qname.equal b y) || (Qname.equal a y && Qname.equal b x)

let retract_object a b t =
  rebuild_matrices
    {
      t with
      object_facts = List.filter (fun f -> not (same_pair a b f)) t.object_facts;
    }

let retract_relationship a b t =
  rebuild_matrices
    {
      t with
      relationship_facts =
        List.filter (fun f -> not (same_pair a b f)) t.relationship_facts;
    }

let object_facts t = t.object_facts
let relationship_facts t = t.relationship_facts

let require_schema n t =
  match find_schema n t with Some s -> s | None -> raise Not_found

let ranked_pairs n1 n2 t =
  Similarity.ranked_object_pairs_with t.index (require_schema n1 t)
    (require_schema n2 t)

let ranked_relationship_pairs n1 n2 t =
  Similarity.ranked_relationship_pairs_with t.index (require_schema n1 t)
    (require_schema n2 t)

let set_naming naming t = { t with naming }
let naming t = t.naming

let integrate ?name t =
  Pipeline.integrate
    (Pipeline.input ~naming:t.naming ?name t.schemas t.equivalence
       (object_matrix t) (relationship_matrix t))

let integrate_pair ?name n1 n2 t =
  let s1 = require_schema n1 t and s2 = require_schema n2 t in
  let sub = rebuild_matrices { t with schemas = [ s1; s2 ] } in
  Pipeline.integrate
    (Pipeline.input ~naming:t.naming ?name [ s1; s2 ] t.equivalence
       (object_matrix sub) (relationship_matrix sub))
