type outcome = { result : Result.t; stats : Protocol.stats; steps : int }

let nary ?options ?naming schemas dda =
  let result, stats = Protocol.run ?options ?naming schemas dda in
  { result; stats; steps = 1 }

(* Pairwise integration step with a fresh intermediate schema name. *)
let step ?options ?naming ?(register = fun _ -> ()) counter s1 s2 dda =
  incr counter;
  let name = Printf.sprintf "I%d" !counter in
  let result, stats = Protocol.run ?options ?naming ~name [ s1; s2 ] dda in
  register result;
  (result, stats)

let binary_ladder ?options ?naming ?register schemas dda =
  match schemas with
  | [] -> invalid_arg "Strategy.binary_ladder: no schemas"
  | [ only ] ->
      let result, stats = Protocol.run ?options ?naming [ only ] dda in
      { result; stats; steps = 0 }
  | first :: rest ->
      let counter = ref 0 in
      let result, stats =
        List.fold_left
          (fun (acc, stats) s ->
            let base =
              match acc with
              | None -> first
              | Some r -> r.Result.schema
            in
            let r, st = step ?options ?naming ?register counter base s dda in
            (Some r, Protocol.add_stats stats st))
          (None, Protocol.zero_stats)
          rest
      in
      let result = Option.get result (* rest is non-empty *) in
      { result; stats; steps = !counter }

let binary_balanced ?options ?naming ?register schemas dda =
  match schemas with
  | [] -> invalid_arg "Strategy.binary_balanced: no schemas"
  | _ ->
      let counter = ref 0 in
      let stats = ref Protocol.zero_stats in
      let last_result = ref None in
      let rec rounds = function
        | [] -> assert false
        | [ only ] -> only
        | several ->
            let rec pair_up = function
              | [] -> []
              | [ odd ] -> [ odd ]
              | a :: b :: rest ->
                  let r, st = step ?options ?naming ?register counter a b dda in
                  stats := Protocol.add_stats !stats st;
                  last_result := Some r;
                  r.Result.schema :: pair_up rest
            in
            rounds (pair_up several)
      in
      let final = rounds schemas in
      let result =
        match !last_result with
        | Some r -> r
        | None ->
            (* single input schema: integrate it alone for a consistent
               result shape *)
            let r, st = Protocol.run ?options ?naming [ final ] dda in
            stats := Protocol.add_stats !stats st;
            r
      in
      { result; stats = !stats; steps = !counter }

let binary_guided ?options ?naming ?register ~weights schemas dda =
  match schemas with
  | [] -> invalid_arg "Strategy.binary_guided: no schemas"
  | _ ->
      let counter = ref 0 in
      let stats = ref Protocol.zero_stats in
      let last_result = ref None in
      (* Pair scores are carried across rounds: each merge drops the two
         integrated schemas' pairs and scores only the merged schema
         against the survivors (Schema_resemblance.merge_pool), instead
         of re-scoring the whole pool every round. *)
      let rec rounds scored pool =
        match pool with
        | [] -> assert false
        | [ _ ] -> ()
        | _ -> (
            match Heuristics.Schema_resemblance.best_of scored with
            | None -> ()
            | Some (a, b) ->
                let r, st = step ?options ?naming ?register counter a b dda in
                stats := Protocol.add_stats !stats st;
                last_result := Some r;
                let scored, pool =
                  Heuristics.Schema_resemblance.merge_pool weights
                    ~merged:r.Result.schema ~replacing:[ a; b ] scored pool
                in
                rounds scored pool)
      in
      rounds (Heuristics.Schema_resemblance.scored_pairs weights schemas) schemas;
      let result =
        match !last_result with
        | Some r -> r
        | None ->
            let r, st = Protocol.run ?options ?naming schemas dda in
            stats := Protocol.add_stats !stats st;
            r
      in
      { result; stats = !stats; steps = !counter }
