type outcome = { result : Result.t; stats : Protocol.stats; steps : int }

let nary ?options ?naming schemas dda =
  let result, stats = Protocol.run ?options ?naming schemas dda in
  { result; stats; steps = 1 }

(* Pairwise integration step with a fresh intermediate schema name. *)
let step ?options ?naming ?(register = fun _ -> ()) counter s1 s2 dda =
  incr counter;
  let name = Printf.sprintf "I%d" !counter in
  let result, stats = Protocol.run ?options ?naming ~name [ s1; s2 ] dda in
  register result;
  (result, stats)

let binary_ladder ?options ?naming ?register schemas dda =
  match schemas with
  | [] -> invalid_arg "Strategy.binary_ladder: no schemas"
  | [ only ] ->
      let result, stats = Protocol.run ?options ?naming [ only ] dda in
      { result; stats; steps = 0 }
  | first :: rest ->
      let counter = ref 0 in
      let result, stats =
        List.fold_left
          (fun (acc, stats) s ->
            let base =
              match acc with
              | None -> first
              | Some r -> r.Result.schema
            in
            let r, st = step ?options ?naming ?register counter base s dda in
            (Some r, Protocol.add_stats stats st))
          (None, Protocol.zero_stats)
          rest
      in
      let result = Option.get result (* rest is non-empty *) in
      { result; stats; steps = !counter }

let binary_balanced ?options ?naming ?register schemas dda =
  match schemas with
  | [] -> invalid_arg "Strategy.binary_balanced: no schemas"
  | [ only ] ->
      (* one input: integrate it alone, once — same shape (and the same
         single Protocol.run, counted once) as binary_ladder *)
      let result, stats = Protocol.run ?options ?naming [ only ] dda in
      { result; stats; steps = 0 }
  | a :: b :: rest ->
      let counter = ref 0 in
      let stats = ref Protocol.zero_stats in
      (* [rounds a b rest]: merge the round's leading pair, pair up the
         rest of the round, recurse on the next round.  Threading the
         leading merge through the recursion makes the function total —
         the final round is always a two-schema merge whose result is
         returned directly, so no "last result" ref and no unreachable
         empty-round case. *)
      let merge a b =
        let r, st = step ?options ?naming ?register counter a b dda in
        stats := Protocol.add_stats !stats st;
        r
      in
      let rec pair_up = function
        | [] -> []
        | [ odd ] -> [ `Schema odd ]
        | a :: b :: rest -> `Result (merge a b) :: pair_up rest
      in
      let schema_of = function `Schema s -> s | `Result r -> r.Result.schema in
      let rec rounds a b rest =
        let r = merge a b in
        match List.map schema_of (pair_up rest) with
        | [] -> r
        | s :: rest' -> rounds r.Result.schema s rest'
      in
      let result = rounds a b rest in
      { result; stats = !stats; steps = !counter }

let binary_guided ?options ?naming ?register ~weights schemas dda =
  match schemas with
  | [] -> invalid_arg "Strategy.binary_guided: no schemas"
  | [ only ] ->
      let result, stats = Protocol.run ?options ?naming [ only ] dda in
      { result; stats; steps = 0 }
  | _ :: _ :: _ ->
      let counter = ref 0 in
      let stats = ref Protocol.zero_stats in
      (* Pair scores are carried across rounds: each merge drops the two
         integrated schemas' pairs and scores only the merged schema
         against the survivors (Schema_resemblance.merge_pool), instead
         of re-scoring the whole pool every round. *)
      let rec rounds scored pool =
        match pool with
        | a :: b :: _ ->
            (* [scored] covers every unordered pair of [pool], so with
               two or more schemas left [best_of] has a pair to pick; if
               the scored list is ever empty regardless, degrade to pool
               order rather than stopping with schemas unintegrated. *)
            let a, b =
              match Heuristics.Schema_resemblance.best_of scored with
              | Some pair -> pair
              | None -> (a, b)
            in
            let r, st = step ?options ?naming ?register counter a b dda in
            stats := Protocol.add_stats !stats st;
            let scored, pool =
              Heuristics.Schema_resemblance.merge_pool weights
                ~merged:r.Result.schema ~replacing:[ a; b ] scored pool
            in
            (match pool with _ :: _ :: _ -> rounds scored pool | _ -> r)
        | _ ->
            invalid_arg
              "Strategy.binary_guided: merge_pool shrank the pool below two \
               schemas mid-round"
      in
      let result =
        rounds (Heuristics.Schema_resemblance.scored_pairs weights schemas) schemas
      in
      { result; stats = !stats; steps = !counter }
