open Ecr

type input = {
  schemas : Schema.t list;
  equivalence : Equivalence.t;
  object_assertions : Assertions.t;
  relationship_assertions : Assertions.t;
  naming : Naming.t;
  integrated_name : Name.t;
}

let input ?(naming = Naming.default) ?(name = "INTEGRATED") schemas equivalence
    object_assertions relationship_assertions =
  {
    schemas;
    equivalence;
    object_assertions;
    relationship_assertions;
    naming;
    integrated_name = Name.v name;
  }

let c_objects_out = Obs.Counter.make "integrate.objects_out"
let c_rels_out = Obs.Counter.make "integrate.relationships_out"
let c_warnings = Obs.Counter.make "integrate.warnings"

let integrate inp =
  Obs.Span.run "integrate" @@ fun () ->
  let lattice =
    Obs.Span.run "integrate.lattice" @@ fun () ->
    Lattice.build ~naming:inp.naming ~schemas:inp.schemas
      ~equivalence:inp.equivalence ~matrix:inp.object_assertions ()
  in
  let used_names =
    List.fold_left
      (fun acc n -> Name.Set.add n.Lattice.id acc)
      Name.Set.empty lattice.Lattice.nodes
  in
  let rels =
    Obs.Span.run "integrate.rel_merge" @@ fun () ->
    Rel_merge.build ~naming:inp.naming ~used_names ~schemas:inp.schemas
      ~equivalence:inp.equivalence ~matrix:inp.relationship_assertions ~lattice
      ()
  in
  (* --- integrated schema ------------------------------------------- *)
  let objects =
    List.map
      (fun n ->
        let attrs = List.map (fun pa -> pa.Lattice.attr) n.Lattice.attributes in
        match n.Lattice.parents with
        | [] -> Object_class.entity ~attrs n.Lattice.id
        | parents -> Object_class.category ~attrs ~parents n.Lattice.id)
      lattice.Lattice.nodes
  in
  let relationships = List.map (fun m -> m.Rel_merge.rel) rels.Rel_merge.rels in
  let schema = Schema.make inp.integrated_name ~objects ~relationships in
  (* --- origins ------------------------------------------------------ *)
  let object_origin =
    List.fold_left
      (fun acc n ->
        let origin =
          match (n.Lattice.members, n.Lattice.derived_children) with
          | [ only ], _ -> Result.Original only
          | [], children -> Result.Derived children
          | several, _ -> Result.Equivalent several
        in
        Name.Map.add n.Lattice.id origin acc)
      Name.Map.empty lattice.Lattice.nodes
  in
  let relationship_origin =
    List.fold_left
      (fun acc m ->
        let id = m.Rel_merge.rel.Relationship.name in
        let origin =
          match (m.Rel_merge.members, m.Rel_merge.generalises) with
          | [ only ], _ -> Result.Original only
          | [], gen -> Result.Derived gen
          | several, _ -> Result.Equivalent several
        in
        Name.Map.add id origin acc)
      Name.Map.empty rels.Rel_merge.rels
  in
  (* --- attribute components ---------------------------------------- *)
  let attr_components =
    let of_object n =
      List.fold_left
        (fun acc pa ->
          Name.Map.add pa.Lattice.attr.Attribute.name pa.Lattice.components acc)
        Name.Map.empty n.Lattice.attributes
    in
    let base =
      List.fold_left
        (fun acc n -> Name.Map.add n.Lattice.id (of_object n) acc)
        Name.Map.empty lattice.Lattice.nodes
    in
    List.fold_left
      (fun acc m ->
        let attrs =
          List.fold_left
            (fun acc (name, comps) -> Name.Map.add name comps acc)
            Name.Map.empty m.Rel_merge.attr_components
        in
        Name.Map.add m.Rel_merge.rel.Relationship.name attrs acc)
      base rels.Rel_merge.rels
  in
  (* --- mappings ----------------------------------------------------- *)
  let mapping =
    Obs.Span.run "integrate.mapping" @@ fun () ->
    (* reverse index: component attribute -> (integrated class, attr) *)
    let attr_location =
    let table = Hashtbl.create 64 in
    List.iter
      (fun n ->
        List.iter
          (fun pa ->
            List.iter
              (fun comp ->
                Hashtbl.replace table
                  (Qname.Attr.to_string comp)
                  { Mapping.in_class = n.Lattice.id;
                    as_attr = pa.Lattice.attr.Attribute.name })
              pa.Lattice.components)
          n.Lattice.attributes)
      lattice.Lattice.nodes;
    List.iter
      (fun m ->
        List.iter
          (fun (name, comps) ->
            List.iter
              (fun comp ->
                Hashtbl.replace table
                  (Qname.Attr.to_string comp)
                  { Mapping.in_class = m.Rel_merge.rel.Relationship.name;
                    as_attr = name })
              comps)
          m.Rel_merge.attr_components)
      rels.Rel_merge.rels;
      table
    in
    let object_entries =
      List.concat_map
        (fun s ->
          List.map
            (fun oc ->
              let source = Schema.qname s oc.Object_class.name in
              let target =
                Option.value
                  ~default:oc.Object_class.name
                  (Lattice.node_of lattice source)
              in
              let attrs =
                List.fold_left
                  (fun acc a ->
                    let qa = Qname.Attr.make source a.Attribute.name in
                    match Hashtbl.find_opt attr_location (Qname.Attr.to_string qa) with
                    | Some loc -> Name.Map.add a.Attribute.name loc acc
                    | None -> acc)
                  Name.Map.empty oc.Object_class.attributes
              in
              { Mapping.source; target; attrs })
            (Schema.objects s))
        inp.schemas
    in
    let rel_entries =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun r ->
              let source = Schema.qname s r.Relationship.name in
              match Qname.Map.find_opt source rels.Rel_merge.rel_of with
              | None -> None
              | Some target ->
                  let attrs =
                    List.fold_left
                      (fun acc a ->
                        let qa = Qname.Attr.make source a.Attribute.name in
                        match
                          Hashtbl.find_opt attr_location (Qname.Attr.to_string qa)
                        with
                        | Some loc -> Name.Map.add a.Attribute.name loc acc
                        | None -> acc)
                      Name.Map.empty r.Relationship.attributes
                  in
                  Some { Mapping.source; target; attrs })
            (Schema.relationships s))
        inp.schemas
    in
    let m =
      List.fold_left (fun m e -> Mapping.add_object e m) Mapping.empty
        object_entries
    in
    List.fold_left (fun m e -> Mapping.add_relationship e m) m rel_entries
  in
  Obs.Counter.add c_objects_out (List.length objects);
  Obs.Counter.add c_rels_out (List.length relationships);
  Obs.Counter.add c_warnings
    (List.length lattice.Lattice.warnings + List.length rels.Rel_merge.warnings);
  {
    Result.schema;
    object_origin;
    relationship_origin;
    attr_components;
    mapping;
    warnings = lattice.Lattice.warnings @ rels.Rel_merge.warnings;
  }

let quick ?naming ?name s1 s2 ~equivalences ~object_assertions
    ?(relationship_assertions = []) () =
  let equivalence =
    List.fold_left
      (fun eq (a, b) -> Equivalence.declare a b eq)
      (Equivalence.register_schema s2 (Equivalence.register_schema s1 Equivalence.empty))
      equivalences
  in
  let feed matrix facts =
    List.fold_left
      (fun acc (l, a, r) ->
        match acc with
        | Error _ as e -> e
        | Ok m -> Assertions.add l a r m)
      (Ok matrix) facts
  in
  match feed (Assertions.create [ s1; s2 ]) object_assertions with
  | Error c -> Error c
  | Ok objs -> (
      match
        feed (Assertions.create_for_relationships [ s1; s2 ]) relationship_assertions
      with
      | Error c -> Error c
      | Ok rels ->
          Ok (integrate (input ?naming ?name [ s1; s2 ] equivalence objs rels)))
