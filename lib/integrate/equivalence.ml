open Ecr

module AMap = Qname.Attr.Map

(* Persistent union-find: [parent] maps an attribute to its parent;
   roots map to themselves.  No path compression (structures are small
   and persistence matters more), but unions attach the class with the
   larger number under the one with the smaller, keeping class numbers
   stable and display-friendly. *)
type t = {
  parent : Qname.Attr.t AMap.t;
  number : int AMap.t;  (** first-registration number, on roots meaningful *)
  next : int;
}

let empty = { parent = AMap.empty; number = AMap.empty; next = 1 }

(* Observability: [shared_count] enumerates the whole ACS partition per
   call and backs every OCS matrix entry, so its call count is the first
   thing to look at when ranking is slow. *)
let c_unions = Obs.Counter.make "equivalence.unions"
let c_shared = Obs.Counter.make "equivalence.shared_count_queries"

let rec find t a =
  match AMap.find_opt a t.parent with
  | None -> a
  | Some p -> if Qname.Attr.equal p a then a else find t p

let register a t =
  if AMap.mem a t.parent then t
  else
    {
      parent = AMap.add a a t.parent;
      number = AMap.add a t.next t.number;
      next = t.next + 1;
    }

let register_schema s t =
  let add_attrs owner attrs t =
    List.fold_left
      (fun t attr -> register (Qname.Attr.make owner attr.Attribute.name) t)
      t attrs
  in
  let t =
    List.fold_left
      (fun t oc ->
        add_attrs (Schema.qname s oc.Object_class.name) oc.Object_class.attributes t)
      t (Schema.objects s)
  in
  List.fold_left
    (fun t r ->
      add_attrs (Schema.qname s r.Relationship.name) r.Relationship.attributes t)
    t (Schema.relationships s)

let root_number t a = AMap.find (find t a) t.number

let declare a b t =
  let t = register a (register b t) in
  let ra = find t a and rb = find t b in
  if Qname.Attr.equal ra rb then t
  else begin
    Obs.Counter.incr c_unions;
    let na = root_number t ra and nb = root_number t rb in
    let keep, absorb = if na <= nb then (ra, rb) else (rb, ra) in
    { t with parent = AMap.add absorb keep t.parent }
  end

let separate a t =
  if not (AMap.mem a t.parent) then t
  else begin
    (* Rebuild the parent map with [a] removed from its class.  If [a]
       was a root, promote the remaining member with the smallest number
       as the new root. *)
    let cls =
      AMap.fold
        (fun x _ acc -> if Qname.Attr.equal (find t x) (find t a) then x :: acc else acc)
        t.parent []
    in
    let others = List.filter (fun x -> not (Qname.Attr.equal x a)) cls in
    match others with
    | [] -> t (* already a singleton *)
    | _ ->
        let new_root =
          List.fold_left
            (fun best x ->
              if AMap.find x t.number < AMap.find best t.number then x else best)
            (List.hd others) (List.tl others)
        in
        let parent =
          List.fold_left
            (fun p x -> AMap.add x new_root p)
            t.parent others
        in
        { t with parent = AMap.add a a parent }
  end

let equivalent a b t =
  AMap.mem a t.parent && AMap.mem b t.parent
  && Qname.Attr.equal (find t a) (find t b)

let class_number a t =
  match AMap.find_opt a t.parent with
  | None -> raise Not_found
  | Some _ ->
      (* smallest registration number among the class members *)
      AMap.fold
        (fun x _ acc ->
          if Qname.Attr.equal (find t x) (find t a) then
            Int.min acc (AMap.find x t.number)
          else acc)
        t.parent max_int

let class_of a t =
  if not (AMap.mem a t.parent) then [ a ]
  else
    AMap.fold
      (fun x _ acc ->
        if Qname.Attr.equal (find t x) (find t a) then x :: acc else acc)
      t.parent []
    |> List.sort Qname.Attr.compare

let classes t =
  let by_root =
    AMap.fold
      (fun x _ acc ->
        let r = find t x in
        let cur = Option.value ~default:[] (AMap.find_opt r acc) in
        AMap.add r (x :: cur) acc)
      t.parent AMap.empty
  in
  AMap.bindings by_root
  |> List.map (fun (r, members) ->
         (AMap.find r t.number, List.sort Qname.Attr.compare members))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let nontrivial_classes t =
  List.filter (fun cls -> List.length cls >= 2) (classes t)

let members t = List.map fst (AMap.bindings t.parent)

let shared_count obj1 obj2 t =
  Obs.Counter.incr c_shared;
  List.length
    (List.filter
       (fun cls ->
         List.exists (fun a -> Qname.equal a.Qname.Attr.owner obj1) cls
         && List.exists (fun a -> Qname.equal a.Qname.Attr.owner obj2) cls)
       (classes t))

let restrict keep t =
  let kept = List.filter keep (members t) in
  let base =
    List.fold_left
      (fun acc a ->
        { acc with
          parent = AMap.add a a acc.parent;
          number = AMap.add a (AMap.find a t.number) acc.number;
        })
      { empty with next = t.next }
      kept
  in
  (* re-link classes among kept members *)
  List.fold_left
    (fun acc a ->
      let cls = class_of a t in
      List.fold_left
        (fun acc b -> if keep b then declare a b acc else acc)
        acc cls)
    base kept
