open Ecr

type ranked = {
  left : Qname.t;
  right : Qname.t;
  shared : int;
  smaller : int;
  ratio : float;
}

(* Observability: the OCS matrix is quadratic in the schemas' structure
   counts — count every pair scored so bench reports expose the blow-up,
   and count rankings served from a caller-supplied (cached) index. *)
let c_pairs = Obs.Counter.make "similarity.pairs_compared"
let c_cache_hits = Obs.Counter.make "similarity.cache_hits"
let c_chunks = Obs.Counter.make "similarity.parallel_chunks"

let ocs_entry = Equivalence.shared_count

let ratio_of_counts ~shared ~smaller =
  if shared = 0 && smaller = 0 then 0.0
  else float_of_int shared /. float_of_int (shared + smaller)

let generic_ratio q1 attrs1 q2 attrs2 eq =
  let shared = Equivalence.shared_count q1 q2 eq in
  let smaller = Int.min (List.length attrs1) (List.length attrs2) in
  ratio_of_counts ~shared ~smaller

let attribute_ratio (s1, oc1) (s2, oc2) eq =
  generic_ratio
    (Schema.qname s1 oc1.Object_class.name)
    oc1.Object_class.attributes
    (Schema.qname s2 oc2.Object_class.name)
    oc2.Object_class.attributes eq

let relationship_ratio (s1, r1) (s2, r2) eq =
  generic_ratio
    (Schema.qname s1 r1.Relationship.name)
    r1.Relationship.attributes
    (Schema.qname s2 r2.Relationship.name)
    r2.Relationship.attributes eq

let compare_ranked a b =
  match Float.compare b.ratio a.ratio with
  | 0 -> (
      match Int.compare a.smaller b.smaller with
      | 0 -> Int.compare b.shared a.shared
      | c -> c)
  | c -> c

let rank pairs =
  (* Stable sort keeps declaration order among ties. *)
  List.stable_sort compare_ranked pairs

(* One unsorted row list per cross-schema pairing; each entry is a
   single index lookup, so the whole matrix costs O(|O₁|·|O₂|) lookups
   after the one-pass index build.  A [?pool] scores one row (one left
   structure against all of [structures2]) per task; [Par.map] keeps
   rows in input order, so the concatenation — and the stable sort
   downstream — is bit-identical to the sequential scan. *)
let rows ?pool index structures1 structures2 ~qname1 ~qname2 ~attrs =
  let row x1 =
    let left = qname1 x1 in
    let n1 = List.length (attrs x1) in
    List.map
      (fun x2 ->
        Obs.Counter.incr c_pairs;
        let right = qname2 x2 in
        let shared = Acs_index.shared left right index in
        let smaller = Int.min n1 (List.length (attrs x2)) in
        { left; right; shared; smaller; ratio = ratio_of_counts ~shared ~smaller })
      structures2
  in
  match pool with
  | Some pool when Par.jobs pool > 1 ->
      Obs.Counter.add c_chunks (List.length structures1);
      List.concat (Par.map pool row structures1)
  | _ -> List.concat_map row structures1

let object_rows ?pool index s1 s2 =
  rows ?pool index (Schema.objects s1) (Schema.objects s2)
    ~qname1:(fun oc -> Schema.qname s1 oc.Object_class.name)
    ~qname2:(fun oc -> Schema.qname s2 oc.Object_class.name)
    ~attrs:(fun oc -> oc.Object_class.attributes)

let relationship_rows ?pool index s1 s2 =
  rows ?pool index
    (Schema.relationships s1)
    (Schema.relationships s2)
    ~qname1:(fun r -> Schema.qname s1 r.Relationship.name)
    ~qname2:(fun r -> Schema.qname s2 r.Relationship.name)
    ~attrs:(fun r -> r.Relationship.attributes)

let ranked_object_pairs_with ?pool index s1 s2 =
  Obs.Span.run "similarity.rank_objects" @@ fun () ->
  Obs.Counter.incr c_cache_hits;
  rank (object_rows ?pool index s1 s2)

let ranked_relationship_pairs_with ?pool index s1 s2 =
  Obs.Span.run "similarity.rank_relationships" @@ fun () ->
  Obs.Counter.incr c_cache_hits;
  rank (relationship_rows ?pool index s1 s2)

let ranked_object_pairs s1 s2 eq =
  let index = Acs_index.build eq in
  Obs.Span.run "similarity.rank_objects" @@ fun () ->
  rank (object_rows index s1 s2)

let ranked_relationship_pairs s1 s2 eq =
  let index = Acs_index.build eq in
  Obs.Span.run "similarity.rank_relationships" @@ fun () ->
  rank (relationship_rows index s1 s2)

let top n pairs = List.filteri (fun i _ -> i < n) pairs

let top_object_pairs ?pool ~k index s1 s2 =
  Obs.Span.run "similarity.rank_objects" @@ fun () ->
  Obs.Counter.incr c_cache_hits;
  Topk.select ~compare:compare_ranked k (object_rows ?pool index s1 s2)

let top_relationship_pairs ?pool ~k index s1 s2 =
  Obs.Span.run "similarity.rank_relationships" @@ fun () ->
  Obs.Counter.incr c_cache_hits;
  Topk.select ~compare:compare_ranked k (relationship_rows ?pool index s1 s2)
