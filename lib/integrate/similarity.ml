open Ecr

type ranked = {
  left : Qname.t;
  right : Qname.t;
  shared : int;
  smaller : int;
  ratio : float;
}

(* Observability: the OCS matrix is quadratic in the schemas' structure
   counts — count every pair scored so bench reports expose the blow-up. *)
let c_pairs = Obs.Counter.make "similarity.pairs_compared"

let ocs_entry = Equivalence.shared_count

let ratio_of_counts ~shared ~smaller =
  if shared = 0 && smaller = 0 then 0.0
  else float_of_int shared /. float_of_int (shared + smaller)

let generic_ratio q1 attrs1 q2 attrs2 eq =
  let shared = Equivalence.shared_count q1 q2 eq in
  let smaller = Int.min (List.length attrs1) (List.length attrs2) in
  ratio_of_counts ~shared ~smaller

let attribute_ratio (s1, oc1) (s2, oc2) eq =
  generic_ratio
    (Schema.qname s1 oc1.Object_class.name)
    oc1.Object_class.attributes
    (Schema.qname s2 oc2.Object_class.name)
    oc2.Object_class.attributes eq

let relationship_ratio (s1, r1) (s2, r2) eq =
  generic_ratio
    (Schema.qname s1 r1.Relationship.name)
    r1.Relationship.attributes
    (Schema.qname s2 r2.Relationship.name)
    r2.Relationship.attributes eq

let rank pairs =
  (* Stable sort keeps declaration order among ties. *)
  List.stable_sort
    (fun a b ->
      match Float.compare b.ratio a.ratio with
      | 0 -> (
          match Int.compare a.smaller b.smaller with
          | 0 -> Int.compare b.shared a.shared
          | c -> c)
      | c -> c)
    pairs

let ranked_object_pairs s1 s2 eq =
  Obs.Span.run "similarity.rank_objects" @@ fun () ->
  List.concat_map
    (fun oc1 ->
      List.map
        (fun oc2 ->
          Obs.Counter.incr c_pairs;
          let left = Schema.qname s1 oc1.Object_class.name
          and right = Schema.qname s2 oc2.Object_class.name in
          {
            left;
            right;
            shared = Equivalence.shared_count left right eq;
            smaller =
              Int.min
                (List.length oc1.Object_class.attributes)
                (List.length oc2.Object_class.attributes);
            ratio = attribute_ratio (s1, oc1) (s2, oc2) eq;
          })
        (Schema.objects s2))
    (Schema.objects s1)
  |> rank

let ranked_relationship_pairs s1 s2 eq =
  Obs.Span.run "similarity.rank_relationships" @@ fun () ->
  List.concat_map
    (fun r1 ->
      List.map
        (fun r2 ->
          Obs.Counter.incr c_pairs;
          let left = Schema.qname s1 r1.Relationship.name
          and right = Schema.qname s2 r2.Relationship.name in
          {
            left;
            right;
            shared = Equivalence.shared_count left right eq;
            smaller =
              Int.min
                (List.length r1.Relationship.attributes)
                (List.length r2.Relationship.attributes);
            ratio = relationship_ratio (s1, r1) (s2, r2) eq;
          })
        (Schema.relationships s2))
    (Schema.relationships s1)
  |> rank

let top n pairs = List.filteri (fun i _ -> i < n) pairs
