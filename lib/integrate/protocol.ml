open Ecr

type options = {
  exhaustive_attribute_pairs : bool;
  suggestion_weights : Heuristics.Resemblance.weighted;
  suggestion_threshold : float;
  max_object_pairs : int option;
  skip_determined : bool;
  retry_conflicts : int;
}

let defaults =
  {
    exhaustive_attribute_pairs = false;
    suggestion_weights =
      Heuristics.Resemblance.default_weights Heuristics.Synonyms.default;
    suggestion_threshold = 0.5;
    max_object_pairs = None;
    skip_determined = true;
    retry_conflicts = 1;
  }

type stats = {
  pairs_presented : int;
  pairs_skipped_determined : int;
  assertions_accepted : int;
  assertions_rejected : int;
}

let zero_stats =
  {
    pairs_presented = 0;
    pairs_skipped_determined = 0;
    assertions_accepted = 0;
    assertions_rejected = 0;
  }

let add_stats a b =
  {
    pairs_presented = a.pairs_presented + b.pairs_presented;
    pairs_skipped_determined =
      a.pairs_skipped_determined + b.pairs_skipped_determined;
    assertions_accepted = a.assertions_accepted + b.assertions_accepted;
    assertions_rejected = a.assertions_rejected + b.assertions_rejected;
  }

(* ------------------------------------------------------------------ *)
(* Phase 2.                                                            *)

let structure_attr_pairs options (s1, name1, attrs1) (s2, name2, attrs2) =
  let q1 = Schema.qname s1 name1 and q2 = Schema.qname s2 name2 in
  if options.exhaustive_attribute_pairs then
    List.concat_map
      (fun a ->
        List.map
          (fun b ->
            ( (Qname.Attr.make q1 a.Attribute.name, a),
              (Qname.Attr.make q2 b.Attribute.name, b) ))
          attrs2)
      attrs1
  else begin
    (* ask only about heuristic candidates, best-first *)
    let score a b =
      Heuristics.Resemblance.attribute_score options.suggestion_weights a b
    in
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if score a b >= options.suggestion_threshold then
              Some
                ( (Qname.Attr.make q1 a.Attribute.name, a),
                  (Qname.Attr.make q2 b.Attribute.name, b) )
            else None)
          attrs2)
      attrs1
  end

(* The candidate attribute pairs of one schema pair, in presentation
   order (object-class pairs, outer [s1] x inner [s2], then
   relationship pairs).  Pure in the schemas and options — no DDA, no
   equivalence state — so [run] can compute candidate lists for every
   schema pair in parallel and still ask the DDA the exact sequential
   question sequence. *)
let equivalence_candidates options s1 s2 =
  let over structures1 structures2 ~describe =
    List.concat_map
      (fun x1 ->
        List.concat_map
          (fun x2 ->
            structure_attr_pairs options (describe s1 x1) (describe s2 x2))
          structures2)
      structures1
  in
  over (Schema.objects s1) (Schema.objects s2) ~describe:(fun s oc ->
      (s, oc.Object_class.name, oc.Object_class.attributes))
  @ over
      (Schema.relationships s1)
      (Schema.relationships s2)
      ~describe:(fun s r -> (s, r.Relationship.name, r.Relationship.attributes))

let collect_equivalences_with candidates s1 s2 (dda : Dda.t) eq =
  let eq = Equivalence.register_schema s2 (Equivalence.register_schema s1 eq) in
  List.fold_left
    (fun eq (left, right) ->
      if dda.Dda.attr_equivalent left right then
        Equivalence.declare (fst left) (fst right) eq
      else eq)
    eq candidates

let collect_equivalences options s1 s2 (dda : Dda.t) eq =
  collect_equivalences_with (equivalence_candidates options s1 s2) s1 s2 dda eq

(* ------------------------------------------------------------------ *)
(* Phase 3.                                                            *)

let collect_over_pairs options (dda : Dda.t) ask ranked matrix =
  List.fold_left
    (fun (matrix, stats) rk ->
      let left = rk.Similarity.left and right = rk.Similarity.right in
      if
        options.skip_determined
        && Assertions.assertion_between matrix left right <> None
      then
        ( matrix,
          { stats with
            pairs_skipped_determined = stats.pairs_skipped_determined + 1
          } )
      else begin
        let stats = { stats with pairs_presented = stats.pairs_presented + 1 } in
        let rec settle matrix stats answer fuel =
          match answer with
          | None -> (matrix, stats)
          | Some assertion -> (
              match Assertions.add left assertion right matrix with
              | Ok matrix ->
                  ( matrix,
                    { stats with
                      assertions_accepted = stats.assertions_accepted + 1
                    } )
              | Error conflict -> (
                  if fuel <= 0 then
                    ( matrix,
                      { stats with
                        assertions_rejected = stats.assertions_rejected + 1
                      } )
                  else
                    match dda.Dda.resolve_conflict conflict with
                    | Dda.Withdraw ->
                        ( matrix,
                          { stats with
                            assertions_rejected = stats.assertions_rejected + 1
                          } )
                    | Dda.Replace a' -> settle matrix stats (Some a') (fuel - 1)))
        in
        settle matrix stats (ask left right) options.retry_conflicts
      end)
    (matrix, zero_stats) ranked

(* The ranked pair list for one schema pair: the whole ordering, or —
   under a DDA effort budget — only the best [n] pairs by heap
   selection, skipping the full sort.  A caller-supplied index (built
   once per equivalence state) is reused across every schema pair. *)
let ranked_objects ?pool options index s1 s2 =
  match options.max_object_pairs with
  | None -> Similarity.ranked_object_pairs_with ?pool index s1 s2
  | Some n -> Similarity.top_object_pairs ?pool ~k:n index s1 s2

let ranked_relationships ?pool options index s1 s2 =
  match options.max_object_pairs with
  | None -> Similarity.ranked_relationship_pairs_with ?pool index s1 s2
  | Some n -> Similarity.top_relationship_pairs ?pool ~k:n index s1 s2

let collect_object_assertions ?index options s1 s2 (dda : Dda.t) eq matrix =
  let index =
    match index with Some i -> i | None -> Acs_index.build eq
  in
  collect_over_pairs options dda dda.Dda.object_assertion
    (ranked_objects options index s1 s2)
    matrix

let collect_relationship_assertions ?index options s1 s2 (dda : Dda.t) eq matrix =
  let index =
    match index with Some i -> i | None -> Acs_index.build eq
  in
  collect_over_pairs options dda dda.Dda.relationship_assertion
    (ranked_relationships options index s1 s2)
    matrix

(* ------------------------------------------------------------------ *)

let rec schema_pairs = function
  | [] -> []
  | s :: rest -> List.map (fun s' -> (s, s')) rest @ schema_pairs rest

let c_presented = Obs.Counter.make "protocol.pairs_presented"
let c_skipped = Obs.Counter.make "protocol.pairs_skipped_determined"
let c_accepted = Obs.Counter.make "protocol.assertions_accepted"
let c_rejected = Obs.Counter.make "protocol.assertions_rejected"

let record_stats s =
  Obs.Counter.add c_presented s.pairs_presented;
  Obs.Counter.add c_skipped s.pairs_skipped_determined;
  Obs.Counter.add c_accepted s.assertions_accepted;
  Obs.Counter.add c_rejected s.assertions_rejected

let c_chunks = Obs.Counter.make "protocol.parallel_chunks"

(* Parallel structure of [run]: everything that is pure in the fixed
   inputs — Phase 2 candidate generation, Phase 3 ranking against the
   shared index — fans out over schema pairs through the pool, in input
   order.  Everything that talks to the DDA, or folds the assertion
   matrix (where transitive composition makes earlier answers determine
   later questions), stays on the submitting domain in the sequential
   order.  That split is why [~jobs:n] is observationally identical to
   [~jobs:1]: the oracle sees the same questions in the same order, and
   the matrix composes the same answers in the same order. *)
let fan_out pool pairs f =
  if Par.jobs pool > 1 then Obs.Counter.add c_chunks (List.length pairs);
  List.combine pairs (Par.map pool (fun (s1, s2) -> f s1 s2) pairs)

let run ?(options = defaults) ?(jobs = Par.default_jobs ()) ?naming ?name
    schemas dda =
  Obs.Span.run "protocol.run" @@ fun () ->
  Par.with_pool ~jobs @@ fun pool ->
  let pairs = schema_pairs schemas in
  let eq =
    Obs.Span.run "protocol.equivalences" @@ fun () ->
    let eq =
      List.fold_left (fun eq s -> Equivalence.register_schema s eq) Equivalence.empty schemas
    in
    List.fold_left
      (fun eq ((s1, s2), candidates) ->
        collect_equivalences_with candidates s1 s2 dda eq)
      eq
      (fan_out pool pairs (equivalence_candidates options))
  in
  (* Phase 2 fixed the partition: index it once (read-only from here
     on), rank every schema pair of both subphases against the same
     index. *)
  let index = Acs_index.build eq in
  let collect ask (matrix, stats) (_pair, ranked) =
    let matrix, s = collect_over_pairs options dda ask ranked matrix in
    (matrix, add_stats stats s)
  in
  let objects, ostats =
    Obs.Span.run "protocol.object_assertions" @@ fun () ->
    List.fold_left
      (collect dda.Dda.object_assertion)
      (Assertions.create schemas, zero_stats)
      (fan_out pool pairs (ranked_objects ~pool options index))
  in
  let rels, rstats =
    Obs.Span.run "protocol.relationship_assertions" @@ fun () ->
    List.fold_left
      (collect dda.Dda.relationship_assertion)
      (Assertions.create_for_relationships schemas, zero_stats)
      (fan_out pool pairs (ranked_relationships ~pool options index))
  in
  let result =
    Pipeline.integrate (Pipeline.input ?naming ?name schemas eq objects rels)
  in
  let stats = add_stats ostats rstats in
  record_stats stats;
  (result, stats)
