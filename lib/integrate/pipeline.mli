(** The end-to-end integration pipeline.

    [integrate] is the pure function at the core of the tool:

    {v component schemas × attribute equivalences × assertions
       -> integrated schema × provenance × mappings v}

    It accepts {e n} schemas at once — the paper's methodology is n-ary
    even though the interactive screens collect assertions pairwise.
    The binary use (two schemas) is the common case; iterated binary
    integration is provided by {!Strategy}. *)

type input = {
  schemas : Ecr.Schema.t list;  (** the component schemas, in order *)
  equivalence : Equivalence.t;  (** the ACS partition from Phase 2 *)
  object_assertions : Assertions.t;
      (** closed matrix over object classes (Phase 3) *)
  relationship_assertions : Assertions.t;
      (** closed matrix over relationship sets (Phase 3) *)
  naming : Naming.t;  (** name-generation policy for merged constructs *)
  integrated_name : Ecr.Name.t;  (** name of the integrated schema *)
}
(** Everything Phase 4 consumes.  Build with {!val-input} rather than by
    hand so the defaults stay in one place. *)

val input :
  ?naming:Naming.t ->
  ?name:string ->
  Ecr.Schema.t list ->
  Equivalence.t ->
  Assertions.t ->
  Assertions.t ->
  input
(** [input schemas eq objs rels] packs pipeline input; [name] defaults
    to ["INTEGRATED"]. *)

val integrate : input -> Result.t
(** Performs Phase 4.  The assertion matrices must already be closed and
    consistent (they are, by construction of {!Assertions.add}). *)

val quick :
  ?naming:Naming.t ->
  ?name:string ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  equivalences:(Ecr.Qname.Attr.t * Ecr.Qname.Attr.t) list ->
  object_assertions:(Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list ->
  ?relationship_assertions:(Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list ->
  unit ->
  (Result.t, Assertions.conflict) result
(** Convenience wrapper for the common two-schema case: registers both
    schemas, declares the equivalences, enters the assertions in order
    (failing fast on the first conflict) and integrates. *)
