(** Bounded selection: the first [k] elements of a stable sort, without
    sorting the whole list.

    The OCS ranking produces O(|O₁|·|O₂|) rows but an interactive DDA
    only reviews a screenful at a time, so fully sorting the matrix is
    wasted work.  [select] keeps a size-[k] max-heap over the candidates
    and returns exactly what [List.stable_sort compare l |> take k]
    would — including the order among ties, which follows the input
    (declaration) order — in O(n log k) instead of O(n log n). *)

val select : compare:('a -> 'a -> int) -> int -> 'a list -> 'a list
(** [select ~compare k l] is the [k]-prefix of [List.stable_sort compare
    l] (the whole list, sorted, when [k >= List.length l]; [[]] when
    [k <= 0]).  Ties under [compare] are broken by input position, so
    the result is element-for-element equal to the stable-sort prefix. *)
