type token =
  | Ident of string
  | Int of int
  | Kw_schema
  | Kw_entity
  | Kw_category
  | Kw_relationship
  | Kw_of
  | Kw_key
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Colon
  | Semi
  | Comma
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int

let keyword = function
  | "schema" -> Some Kw_schema
  | "entity" -> Some Kw_entity
  | "category" -> Some Kw_category
  | "relationship" -> Some Kw_relationship
  | "of" -> Some Kw_of
  | "key" -> Some Kw_key
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_body c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  let rec scan i =
    if i >= n then emit Eof !line !col
    else
      let c = src.[i] in
      let l = !line and co = !col in
      let advance k =
        for j = i to i + k - 1 do
          if src.[j] = '\n' then (incr line; col := 1) else incr col
        done;
        scan (i + k)
      in
      match c with
      | ' ' | '\t' | '\r' | '\n' -> advance 1
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
          (* line comment *)
          let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
          let j = eol i in
          col := !col + (j - i);
          scan j
      | '{' -> emit Lbrace l co; advance 1
      | '}' -> emit Rbrace l co; advance 1
      | '(' -> emit Lparen l co; advance 1
      | ')' -> emit Rparen l co; advance 1
      | ':' -> emit Colon l co; advance 1
      | ';' -> emit Semi l co; advance 1
      | ',' -> emit Comma l co; advance 1
      | c when is_digit c ->
          let rec forward j = if j < n && is_digit src.[j] then forward (j + 1) else j in
          let j = forward i in
          let word = String.sub src i (j - i) in
          (* a digit run can overflow int_of_string; keep the failure
             positioned instead of escaping as Failure *)
          (match int_of_string_opt word with
          | Some v -> emit (Int v) l co
          | None ->
              raise (Error (Printf.sprintf "integer literal %s out of range" word, l, co)));
          advance (j - i)
      | c when is_ident_start c ->
          let rec forward j =
            if j < n && is_ident_body src.[j] then forward (j + 1) else j
          in
          let j = forward i in
          let word = String.sub src i (j - i) in
          let token =
            match keyword word with Some kw -> kw | None -> Ident word
          in
          emit token l co;
          advance (j - i)
      | c ->
          raise (Error (Printf.sprintf "illegal character %C" c, l, co))
  in
  scan 0;
  List.rev !tokens

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Kw_schema -> "'schema'"
  | Kw_entity -> "'entity'"
  | Kw_category -> "'category'"
  | Kw_relationship -> "'relationship'"
  | Kw_of -> "'of'"
  | Kw_key -> "'key'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Colon -> "':'"
  | Semi -> "';'"
  | Comma -> "','"
  | Eof -> "end of input"
