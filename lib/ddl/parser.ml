open Ecr

exception Error of string * int * int

type state = { mutable rest : Lexer.located list }

let peek st =
  match st.rest with
  | [] -> { Lexer.token = Lexer.Eof; line = 0; col = 0 }
  | t :: _ -> t

let advance st = match st.rest with [] -> () | _ :: rest -> st.rest <- rest

let fail st expected =
  let t = peek st in
  raise
    (Error
       ( Printf.sprintf "expected %s but found %s" expected
           (Lexer.token_to_string t.Lexer.token),
         t.Lexer.line,
         t.Lexer.col ))

let expect st token expected =
  if (peek st).Lexer.token = token then advance st else fail st expected

let ident st =
  match (peek st).Lexer.token with
  | Lexer.Ident s ->
      advance st;
      s
  | _ -> fail st "an identifier"

let name st = Name.of_string (ident st)

(* cardinality ::= "(" INT "," (INT | "N") ")" *)
let cardinality st =
  let t = peek st in
  expect st Lexer.Lparen "'(' starting a cardinality";
  let min =
    match (peek st).Lexer.token with
    | Lexer.Int n ->
        advance st;
        n
    | _ -> fail st "an integer minimum cardinality"
  in
  expect st Lexer.Comma "',' in a cardinality";
  let max =
    match (peek st).Lexer.token with
    | Lexer.Int n ->
        advance st;
        Cardinality.Finite n
    | Lexer.Ident ("N" | "n" | "M" | "m") ->
        advance st;
        Cardinality.Many
    | _ -> fail st "an integer or N maximum cardinality"
  in
  expect st Lexer.Rparen "')' closing a cardinality";
  try Cardinality.make min max
  with Cardinality.Invalid msg -> raise (Error (msg, t.Lexer.line, t.Lexer.col))

(* domain ::= IDENT | IDENT "(" IDENT ("," IDENT)* ")" *)
let domain st =
  let t = peek st in
  let base = ident st in
  if (peek st).Lexer.token = Lexer.Lparen then begin
    advance st;
    let rec values acc =
      let v = ident st in
      if (peek st).Lexer.token = Lexer.Comma then begin
        advance st;
        values (v :: acc)
      end
      else List.rev (v :: acc)
    in
    let vs = values [] in
    expect st Lexer.Rparen "')' closing a domain value list";
    let text = base ^ "(" ^ String.concat "," vs ^ ")" in
    (* only enum takes a value list; anything else is not a domain name *)
    try Domain.of_string text
    with Name.Invalid _ ->
      raise
        (Error
           ( Printf.sprintf "unknown parameterised domain %s (only enum(...) \
                             takes values)"
               text,
             t.Lexer.line,
             t.Lexer.col ))
  end
  else Domain.of_string base

(* attribute ::= IDENT ":" domain ("key")? ";" *)
let attribute st =
  let n = name st in
  expect st Lexer.Colon "':' after an attribute name";
  let d = domain st in
  let key =
    if (peek st).Lexer.token = Lexer.Kw_key then begin
      advance st;
      true
    end
    else false
  in
  expect st Lexer.Semi "';' ending an attribute";
  Attribute.make ~key n d

(* body ::= "{" attribute* "}" | ";" *)
let body st =
  match (peek st).Lexer.token with
  | Lexer.Semi ->
      advance st;
      []
  | Lexer.Lbrace ->
      advance st;
      let rec attrs acc =
        if (peek st).Lexer.token = Lexer.Rbrace then begin
          advance st;
          List.rev acc
        end
        else attrs (attribute st :: acc)
      in
      attrs []
  | _ -> fail st "'{' or ';' after a structure header"

(* participant ::= (IDENT ":")? IDENT cardinality *)
let participant st =
  let first = name st in
  match (peek st).Lexer.token with
  | Lexer.Colon ->
      advance st;
      let obj = name st in
      let card = cardinality st in
      Relationship.participant ~role:first obj card
  | _ ->
      let card = cardinality st in
      Relationship.participant first card

let structure st =
  match (peek st).Lexer.token with
  | Lexer.Kw_entity ->
      advance st;
      let n = name st in
      let attrs = body st in
      Some (Schema.Obj (Object_class.entity ~attrs n))
  | Lexer.Kw_category ->
      advance st;
      let n = name st in
      expect st Lexer.Kw_of "'of' introducing category parents";
      let rec parents acc =
        let p = name st in
        if (peek st).Lexer.token = Lexer.Comma then begin
          advance st;
          parents (p :: acc)
        end
        else List.rev (p :: acc)
      in
      let ps = parents [] in
      let attrs = body st in
      Some (Schema.Obj (Object_class.category ~attrs ~parents:ps n))
  | Lexer.Kw_relationship ->
      advance st;
      let n = name st in
      expect st Lexer.Lparen "'(' starting the participant list";
      let rec participants acc =
        let p = participant st in
        if (peek st).Lexer.token = Lexer.Comma then begin
          advance st;
          participants (p :: acc)
        end
        else List.rev (p :: acc)
      in
      let ps = participants [] in
      expect st Lexer.Rparen "')' closing the participant list";
      let attrs = body st in
      Some (Schema.Rel (Relationship.make ~attrs n ps))
  | _ -> None

let schema st =
  let t = peek st in
  expect st Lexer.Kw_schema "'schema'";
  let n = name st in
  expect st Lexer.Lbrace "'{' opening the schema body";
  let rec structures acc =
    match structure st with
    | Some s -> structures (s :: acc)
    | None ->
        expect st Lexer.Rbrace "a structure or '}' closing the schema";
        List.rev acc
  in
  let ss = structures [] in
  let objects =
    List.filter_map (function Schema.Obj oc -> Some oc | Schema.Rel _ -> None) ss
  and relationships =
    List.filter_map (function Schema.Rel r -> Some r | Schema.Obj _ -> None) ss
  in
  try Schema.make n ~objects ~relationships
  with Invalid_argument msg -> raise (Error (msg, t.Lexer.line, t.Lexer.col))

let with_state src f =
  let st =
    try { rest = Lexer.tokenize src }
    with Lexer.Error (msg, line, col) -> raise (Error (msg, line, col))
  in
  f st

let schemas_of_string src =
  with_state src (fun st ->
      let rec loop acc =
        if (peek st).Lexer.token = Lexer.Eof then List.rev acc
        else loop (schema st :: acc)
      in
      loop [])

let schema_of_string src =
  match schemas_of_string src with
  | [ s ] -> s
  | ss ->
      raise
        (Error
           (Printf.sprintf "expected exactly one schema, found %d" (List.length ss), 0, 0))

let schemas_of_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  schemas_of_string content
