open Ecr

module Oid = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let to_int oid = oid
  let pp fmt oid = Format.fprintf fmt "#%d" oid

  module Set = Stdlib.Set.Make (Int)
  module Map = Stdlib.Map.Make (Int)
end

(* Internal layout is column-oriented and keyed by intern id: one
   [Value.t Oid.Map.t] column per attribute, membership sets per class
   id, link lists per relationship id.  [value] — the hot call of query
   evaluation — is then two int-keyed lookups with no string compares.
   Ids never leak through the interface: everything exposed still
   speaks [Name.t] / [tuple], and the few functions whose output order
   is observable ([classes_of], [tuple_of], [entities]) re-sort into the
   name order the row layout produced. *)
module Imap = Stdlib.Map.Make (Int)

type tuple = Value.t Name.Map.t

let tuple bindings =
  List.fold_left
    (fun m (k, v) -> Name.Map.add (Name.v k) v m)
    Name.Map.empty bindings

type link = { participants : Oid.t list; values : tuple }

type t = {
  schema : Schema.t;
  next_oid : int;
  (* Direct membership: class id -> oids placed in the class itself
     (extent queries add the members of descendants). *)
  members : Oid.Set.t Imap.t;
  present : Oid.Set.t;  (** every live entity, valued or not *)
  cols : Value.t Oid.Map.t Imap.t;  (** attribute id -> column *)
  links : link list Imap.t;
}

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let create schema =
  {
    schema;
    next_oid = 1;
    members = Imap.empty;
    present = Oid.Set.empty;
    cols = Imap.empty;
    links = Imap.empty;
  }

let schema store = store.schema

let require_class store cls =
  match Schema.find_object cls store.schema with
  | Some oc -> oc
  | None -> violation "unknown object class %s" (Name.to_string cls)

let direct_members store cls =
  Option.value ~default:Oid.Set.empty (Imap.find_opt (Name.id cls) store.members)

let add_member cls oid store =
  let set = Oid.Set.add oid (direct_members store cls) in
  { store with members = Imap.add (Name.id cls) set store.members }

(* Membership propagates up the IS-A chain: an entity placed in a
   category belongs to every ancestor class. *)
let place oid cls store =
  let ancestors = Schema.ancestors store.schema cls in
  List.fold_left (fun st c -> add_member c oid st) (add_member cls oid store)
    ancestors

let write_column oid attr v cols =
  let aid = Name.id attr in
  let col = Option.value ~default:Oid.Map.empty (Imap.find_opt aid cols) in
  Imap.add aid (Oid.Map.add oid v col) cols

let insert cls values store =
  ignore (require_class store cls);
  let oid = store.next_oid in
  let store = { store with next_oid = oid + 1 } in
  let store = place oid cls store in
  let cols = Name.Map.fold (write_column oid) values store.cols in
  ({ store with present = Oid.Set.add oid store.present; cols }, oid)

let classify oid cls store =
  ignore (require_class store cls);
  if not (Oid.Set.mem oid store.present) then violation "unknown entity #%d" oid
  else place oid cls store

let set_value oid attr v store =
  if not (Oid.Set.mem oid store.present) then violation "unknown entity #%d" oid
  else { store with cols = write_column oid attr v store.cols }

let relate rel oids values store =
  match Schema.find_relationship rel store.schema with
  | None -> violation "unknown relationship %s" (Name.to_string rel)
  | Some r ->
      let arity = Relationship.arity r in
      if List.length oids <> arity then
        violation "relationship %s expects %d participants, got %d"
          (Name.to_string rel) arity (List.length oids)
      else
        let rid = Name.id rel in
        let existing =
          Option.value ~default:[] (Imap.find_opt rid store.links)
        in
        let entry = { participants = oids; values } in
        { store with links = Imap.add rid (entry :: existing) store.links }

let remove_entity oid store =
  if not (Oid.Set.mem oid store.present) then store
  else
    {
      store with
      members = Imap.map (Oid.Set.remove oid) store.members;
      present = Oid.Set.remove oid store.present;
      cols = Imap.map (Oid.Map.remove oid) store.cols;
      links =
        Imap.map
          (List.filter (fun l -> not (List.exists (Oid.equal oid) l.participants)))
          store.links;
    }

let remove_links rel keep store =
  if Schema.find_relationship rel store.schema = None then
    violation "unknown relationship %s" (Name.to_string rel)
  else
    {
      store with
      links =
        Imap.update (Name.id rel)
          (Option.map (List.filter keep))
          store.links;
    }

let extent cls store =
  ignore (require_class store cls);
  let below = cls :: Schema.descendants store.schema cls in
  List.fold_left
    (fun acc c -> Oid.Set.union acc (direct_members store c))
    Oid.Set.empty below

let tuple_of oid store =
  (* Name.Map.add re-sorts the id-ordered columns into name order, so
     the rebuilt tuple iterates exactly as the row layout did. *)
  Imap.fold
    (fun aid col acc ->
      match Oid.Map.find_opt oid col with
      | None -> acc
      | Some v -> Name.Map.add (Name.of_id aid) v acc)
    store.cols Name.Map.empty

let value oid attr store =
  match Imap.find_opt (Name.id attr) store.cols with
  | None -> Value.Null
  | Some col -> Option.value ~default:Value.Null (Oid.Map.find_opt oid col)

let links rel store =
  if Schema.find_relationship rel store.schema = None then
    violation "unknown relationship %s" (Name.to_string rel)
  else List.rev (Option.value ~default:[] (Imap.find_opt (Name.id rel) store.links))

let entities store = Oid.Set.elements store.present

let classes_of oid store =
  Imap.fold
    (fun cid members acc ->
      if Oid.Set.mem oid members then Name.of_id cid :: acc else acc)
    store.members []
  |> List.sort Name.compare
let cardinality_of cls store = Oid.Set.cardinal (extent cls store)

type violation =
  | Bad_domain of Oid.t * Name.t * Value.t
  | Duplicate_key of Name.t * Name.t * Value.t
  | Not_in_parent of Oid.t * Name.t * Name.t
  | Cardinality_violation of Name.t * Name.t * Oid.t * int
  | Dangling_participant of Name.t * Oid.t

let check_domains store =
  List.concat_map
    (fun oc ->
      let cls = oc.Object_class.name in
      let attrs = Schema.all_attributes store.schema cls in
      Oid.Set.fold
        (fun oid acc ->
          List.fold_left
            (fun acc a ->
              let v = value oid a.Attribute.name store in
              if Value.conforms v a.Attribute.domain then acc
              else Bad_domain (oid, a.Attribute.name, v) :: acc)
            acc attrs)
        (direct_members store cls)
        [])
    (Schema.objects store.schema)

let check_keys store =
  List.concat_map
    (fun oc ->
      let cls = oc.Object_class.name in
      let keys = Attribute.keys (Schema.all_attributes store.schema cls) in
      List.concat_map
        (fun key ->
          let attr = key.Attribute.name in
          let seen = Hashtbl.create 16 in
          Oid.Set.fold
            (fun oid acc ->
              let v = value oid attr store in
              if Value.equal v Value.Null then acc
              else
                let repr = Value.to_string v in
                if Hashtbl.mem seen repr then
                  Duplicate_key (cls, attr, v) :: acc
                else begin
                  Hashtbl.add seen repr ();
                  acc
                end)
            (extent cls store) [])
        keys)
    (Schema.entities store.schema)

let check_category_subset store =
  List.concat_map
    (fun oc ->
      let cls = oc.Object_class.name in
      List.concat_map
        (fun parent ->
          match Schema.find_object parent store.schema with
          | None -> []
          | Some _ ->
              Oid.Set.fold
                (fun oid acc ->
                  if Oid.Set.mem oid (extent parent store) then acc
                  else Not_in_parent (oid, cls, parent) :: acc)
                (extent cls store) [])
        (Object_class.parents oc))
    (Schema.categories store.schema)

let check_links store =
  List.concat_map
    (fun r ->
      let rel = r.Relationship.name in
      let instances = links rel store in
      (* Dangling participants. *)
      let dangling =
        List.concat_map
          (fun { participants; _ } ->
            List.concat
              (List.map2
                 (fun p oid ->
                   if Oid.Set.mem oid (extent p.Relationship.obj store) then []
                   else [ Dangling_participant (rel, oid) ])
                 r.Relationship.participants participants))
          instances
      in
      (* Per-participant cardinality: every member of the class must
         appear in between min and max instances. *)
      let cardinality =
        List.concat
          (List.mapi
             (fun pos p ->
               let counts = Hashtbl.create 64 in
               List.iter
                 (fun { participants; _ } ->
                   let oid = List.nth participants pos in
                   Hashtbl.replace counts oid
                     (1 + Option.value ~default:0 (Hashtbl.find_opt counts oid)))
                 instances;
               Oid.Set.fold
                 (fun oid acc ->
                   let k = Option.value ~default:0 (Hashtbl.find_opt counts oid) in
                   if Cardinality.satisfied k p.Relationship.card then acc
                   else
                     Cardinality_violation (rel, p.Relationship.obj, oid, k)
                     :: acc)
                 (extent p.Relationship.obj store)
                 [])
             r.Relationship.participants)
      in
      dangling @ cardinality)
    (Schema.relationships store.schema)

let check store =
  check_domains store @ check_keys store @ check_category_subset store
  @ check_links store

let violation_to_string = function
  | Bad_domain (oid, attr, v) ->
      Printf.sprintf "entity #%d: value %s outside domain of %s"
        (Oid.to_int oid) (Value.to_string v) (Name.to_string attr)
  | Duplicate_key (cls, attr, v) ->
      Printf.sprintf "entity set %s: duplicate key %s = %s"
        (Name.to_string cls) (Name.to_string attr) (Value.to_string v)
  | Not_in_parent (oid, cat, parent) ->
      Printf.sprintf "entity #%d in category %s but not in parent %s"
        (Oid.to_int oid) (Name.to_string cat) (Name.to_string parent)
  | Cardinality_violation (rel, cls, oid, k) ->
      Printf.sprintf
        "relationship %s: entity #%d of %s participates %d times, outside its \
         structural constraint"
        (Name.to_string rel) (Oid.to_int oid) (Name.to_string cls) k
  | Dangling_participant (rel, oid) ->
      Printf.sprintf "relationship %s references #%d outside participant class"
        (Name.to_string rel) (Oid.to_int oid)
