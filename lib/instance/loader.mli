(** A textual format for instance data.

    Lets the command-line tools load the operational databases the paper
    assumes, so integration can be demonstrated end to end (schemas +
    data + session → integrated schema + migrated instance + translated
    queries) without writing OCaml.

    Format, one [instance] block per schema ([--] comments allowed):
    {v
    instance sc1 {
      Student { Name = "Ann", GPA = 3.9 } as ann
      Student { Name = "Ben", GPA = 2.5 } as ben
      Department { Name = "CS" } as cs
      in Grad_student: ann
      Majors (ann, cs) { Since = 2020-09-01 }
    }
    v}

    - [Class { attr = value, ... } as label] inserts an entity and binds
      a label for later reference;
    - [in Category: label] additionally classifies a bound entity;
    - [Rel (label, label, ...) { attr = value, ... }] adds a relationship
      instance (the attribute block may be omitted);
    - values are numbers, single/double-quoted strings, [true], [false],
      [null], or bare dates [YYYY-MM-DD]. *)

exception Error of { file : string; line : int; message : string }
(** Syntax errors, unknown labels, or references to structures the
    schema does not declare.  Every error carries the file, the 1-based
    line, and a message naming the offending token or value. *)

val error_to_string : exn -> string
(** ["file:line: message"] for an {!Error}; [Printexc.to_string] for
    anything else. *)

val load_string :
  ?file:string ->
  schemas:Ecr.Schema.t list ->
  string ->
  (Ecr.Schema.t * Store.t) list
(** Parses every [instance] block, resolving each against the named
    schema.  Schemas without a block get an empty store.  [?file]
    (default ["<instance>"]) positions error messages. *)

val load_file :
  schemas:Ecr.Schema.t list -> string -> (Ecr.Schema.t * Store.t) list
(** {!load_string} on a file's contents, with errors positioned at its
    path; the channel is closed on every exit path. *)

val to_string : Ecr.Schema.t -> Store.t -> string
(** Serialises a store back to the format (labels are synthesised as
    [e<oid>]); [load_string] of the output reproduces the store up to
    oid renumbering. *)
