open Ecr

exception Error of { file : string; line : int; message : string }

let error_to_string = function
  | Error { file; line; message } ->
      Printf.sprintf "%s:%d: %s" file line message
  | e -> Printexc.to_string e

let error ~file ~line fmt =
  Printf.ksprintf (fun message -> raise (Error { file; line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Tokens (with line numbers for error reporting).                     *)

type token =
  | Ident of string
  | Number of string
  | Str of string
  | DateTok of int * int * int
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Assign
  | Eof

type located = { token : token; line : int }

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Number s -> Printf.sprintf "number '%s'" s
  | Str s -> Printf.sprintf "string %S" s
  | DateTok (y, m, d) -> Printf.sprintf "date %04d-%02d-%02d" y m d
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Colon -> "':'"
  | Assign -> "'='"
  | Eof -> "end of input"

let tokenize ~file src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let emit token = out := { token; line = !line } :: !out in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c = is_ident_start c || (c >= '0' && c <= '9') in
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' in
  let rec scan i =
    if i >= n then emit Eof
    else
      match src.[i] with
      | '\n' ->
          incr line;
          scan (i + 1)
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
          let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
          scan (eol i)
      | '{' ->
          emit Lbrace;
          scan (i + 1)
      | '}' ->
          emit Rbrace;
          scan (i + 1)
      | '(' ->
          emit Lparen;
          scan (i + 1)
      | ')' ->
          emit Rparen;
          scan (i + 1)
      | ',' ->
          emit Comma;
          scan (i + 1)
      | ':' ->
          emit Colon;
          scan (i + 1)
      | '=' ->
          emit Assign;
          scan (i + 1)
      | ('\'' | '"') as quote ->
          let rec stop j =
            if j >= n then
              error ~file ~line:!line "unterminated string (opened with %c)"
                quote
            else if src.[j] = quote then j
            else stop (j + 1)
          in
          let j = stop (i + 1) in
          emit (Str (String.sub src (i + 1) (j - i - 1)));
          scan (j + 1)
      | c when (c >= '0' && c <= '9') || c = '-' ->
          let rec stop j = if j < n && is_num src.[j] then stop (j + 1) else j in
          let j = stop i in
          let word = String.sub src i (j - i) in
          (* a bare date looks like 2020-09-01 *)
          (match String.split_on_char '-' word with
          | [ y; m; d ]
            when String.length word = 10
                 && String.length y = 4
                 && int_of_string_opt y <> None
                 && int_of_string_opt m <> None
                 && int_of_string_opt d <> None ->
              emit
                (DateTok (int_of_string y, int_of_string m, int_of_string d))
          | _ -> emit (Number word));
          scan j
      | c when is_ident_start c ->
          let rec stop j = if j < n && is_ident src.[j] then stop (j + 1) else j in
          let j = stop i in
          emit (Ident (String.sub src i (j - i)));
          scan j
      | c -> error ~file ~line:!line "illegal character %C" c
  in
  scan 0;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

type state = { file : string; mutable rest : located list }

let peek st =
  match st.rest with [] -> { token = Eof; line = 0 } | t :: _ -> t

let fail_at st t fmt = error ~file:st.file ~line:t.line fmt

let advance st = match st.rest with [] -> () | _ :: r -> st.rest <- r

let ident st =
  let t = peek st in
  match t.token with
  | Ident s ->
      advance st;
      s
  | _ -> fail_at st t "expected an identifier, found %s" (token_to_string t.token)

let expect st token what =
  let t = peek st in
  if t.token = token then advance st
  else fail_at st t "expected %s, found %s" what (token_to_string t.token)

let value st =
  let t = peek st in
  match t.token with
  | Number s -> (
      advance st;
      (* the tokenizer's number class also admits junk like "1.2.3" or
         a lone "-"; reject it here, positioned *)
      if String.contains s '.' then
        match float_of_string_opt s with
        | Some x -> Value.Real x
        | None -> fail_at st t "malformed number '%s'" s
      else
        match int_of_string_opt s with
        | Some n -> Value.Int n
        | None -> fail_at st t "malformed number '%s'" s)
  | Str s ->
      advance st;
      Value.Str s
  | DateTok (y, m, d) ->
      advance st;
      Value.Date (y, m, d)
  | Ident s when String.lowercase_ascii s = "true" ->
      advance st;
      Value.Bool true
  | Ident s when String.lowercase_ascii s = "false" ->
      advance st;
      Value.Bool false
  | Ident s when String.lowercase_ascii s = "null" ->
      advance st;
      Value.Null
  | _ -> fail_at st t "expected a value, found %s" (token_to_string t.token)

let tuple_block st =
  expect st Lbrace "'{'";
  if (peek st).token = Rbrace then begin
    advance st;
    Name.Map.empty
  end
  else begin
    let rec fields acc =
      let t = peek st in
      let field = ident st in
      let field_name =
        match Name.of_string_opt field with
        | Some n -> n
        | None -> fail_at st t "invalid attribute name '%s'" field
      in
      expect st Assign "'='";
      let v = value st in
      let acc = Name.Map.add field_name v acc in
      if (peek st).token = Comma then begin
        advance st;
        fields acc
      end
      else begin
        expect st Rbrace "'}'";
        acc
      end
    in
    fields Name.Map.empty
  end

let load_string ?(file = "<instance>") ~schemas src =
  let st = { file; rest = tokenize ~file src } in
  let stores = Hashtbl.create 4 in
  List.iter
    (fun s ->
      Hashtbl.replace stores (Name.to_string (Schema.name s)) (s, Store.create s))
    schemas;
  let rec blocks () =
    match (peek st).token with
    | Eof -> ()
    | _ ->
        let t = peek st in
        (match (peek st).token with
        | Ident s when String.lowercase_ascii s = "instance" -> advance st
        | tok ->
            fail_at st t "expected 'instance', found %s" (token_to_string tok));
        let sname = ident st in
        let schema, store =
          match Hashtbl.find_opt stores sname with
          | Some pair -> pair
          | None -> fail_at st t "unknown schema %s" sname
        in
        expect st Lbrace "'{'";
        let labels = Hashtbl.create 32 in
        let store = ref store in
        let rec entries () =
          match (peek st).token with
          | Rbrace -> advance st
          | Ident "in" ->
              (* in Category: label *)
              advance st;
              let t = peek st in
              let cat = ident st in
              expect st Colon "':'";
              let label = ident st in
              let cat_name =
                match Name.of_string_opt cat with
                | Some n when Schema.find_object n schema <> None -> n
                | _ -> fail_at st t "unknown class %s" cat
              in
              let oid =
                match Hashtbl.find_opt labels label with
                | Some oid -> oid
                | None -> fail_at st t "unknown label %s" label
              in
              store := Store.classify oid cat_name !store;
              entries ()
          | Ident _ -> (
              let t = peek st in
              let structure = ident st in
              let sname_n =
                match Name.of_string_opt structure with
                | Some n -> n
                | None -> fail_at st t "invalid name '%s'" structure
              in
              match Schema.find_structure sname_n schema with
              | Some (Schema.Obj _) ->
                  let tuple = tuple_block st in
                  let label =
                    match (peek st).token with
                    | Ident "as" ->
                        advance st;
                        Some (ident st)
                    | _ -> None
                  in
                  let st', oid = Store.insert sname_n tuple !store in
                  store := st';
                  Option.iter (fun l -> Hashtbl.replace labels l oid) label;
                  entries ()
              | Some (Schema.Rel _) ->
                  expect st Lparen "'('";
                  let rec participants acc =
                    let t = peek st in
                    let label = ident st in
                    let oid =
                      match Hashtbl.find_opt labels label with
                      | Some oid -> oid
                      | None -> fail_at st t "unknown label %s" label
                    in
                    if (peek st).token = Comma then begin
                      advance st;
                      participants (oid :: acc)
                    end
                    else begin
                      expect st Rparen "')'";
                      List.rev (oid :: acc)
                    end
                  in
                  let oids = participants [] in
                  let values =
                    if (peek st).token = Lbrace then tuple_block st
                    else Name.Map.empty
                  in
                  (try store := Store.relate sname_n oids values !store
                   with Store.Violation msg -> fail_at st t "%s" msg);
                  entries ()
              | None -> fail_at st t "unknown structure %s" structure)
          | _ ->
              let t = peek st in
              fail_at st t "expected an entry or '}', found %s"
                (token_to_string t.token)
        in
        entries ();
        Hashtbl.replace stores sname (schema, !store);
        blocks ()
  in
  blocks ();
  List.map
    (fun s -> Hashtbl.find stores (Name.to_string (Schema.name s)))
    schemas

let load_file ~schemas path =
  let ic = open_in_bin path in
  (* [Fun.protect] so an [Error] raised mid-parse cannot leak the
     channel *)
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string ~file:path ~schemas text

(* ------------------------------------------------------------------ *)
(* Serialisation.                                                      *)

let value_to_syntax = function
  | Value.Str s -> "\"" ^ s ^ "\""
  | Value.Int n -> string_of_int n
  | Value.Real x ->
      let s = Printf.sprintf "%g" x in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Value.Bool b -> string_of_bool b
  | Value.Date (y, m, d) -> Printf.sprintf "%04d-%02d-%02d" y m d
  | Value.Null -> "null"

let tuple_to_syntax tuple =
  let fields =
    Name.Map.bindings tuple
    |> List.filter (fun (_, v) -> not (Value.equal v Value.Null))
    |> List.map (fun (k, v) -> Name.to_string k ^ " = " ^ value_to_syntax v)
  in
  "{ " ^ String.concat ", " fields ^ " }"

let to_string schema store =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "instance %s {\n" (Name.to_string (Schema.name schema));
  let label oid = Printf.sprintf "e%d" (Store.Oid.to_int oid) in
  (* entities at their most specific placements, then extra classifies *)
  List.iter
    (fun oid ->
      let classes = Store.classes_of oid store in
      let specific =
        List.filter
          (fun c ->
            not
              (List.exists
                 (fun c' ->
                   (not (Name.equal c c'))
                   && Schema.is_ancestor schema ~ancestor:c c')
                 classes))
          classes
      in
      match specific with
      | [] -> ()
      | first :: others ->
          out "  %s %s as %s\n" (Name.to_string first)
            (tuple_to_syntax (Store.tuple_of oid store))
            (label oid);
          List.iter
            (fun c -> out "  in %s: %s\n" (Name.to_string c) (label oid))
            others)
    (Store.entities store);
  List.iter
    (fun r ->
      let rel = r.Relationship.name in
      List.iter
        (fun { Store.participants; values } ->
          out "  %s (%s)%s\n" (Name.to_string rel)
            (String.concat ", " (List.map label participants))
            (if Name.Map.is_empty values then ""
             else " " ^ tuple_to_syntax values))
        (Store.links rel store))
    (Schema.relationships schema);
  out "}\n";
  Buffer.contents buf
