(** Mapping-driven query translation — the operational payoff of
    integration.

    Two directions, matching the paper's two contexts:

    - {e logical database design}: a query against a component view is
      rewritten {e to} the integrated (logical) schema
      ({!to_integrated});
    - {e global schema design}: a query against the integrated (global)
      schema is unfolded {e to} the component schemas
      ({!to_components}, {!run_global}).

    Both directions return post-processors that restore the caller's
    column names, so answers are directly comparable — the property the
    test suite and experiment E16 check on migrated instances. *)

exception Unmapped of string
(** The mapping has no entry for a structure the query mentions. *)

val rename_for_view :
  Integrate.Mapping.t -> Ecr.Schema.t -> Ecr.Name.t -> Ecr.Name.t -> Ecr.Name.t
(** [rename_for_view m view cls attr] is the integrated name of a (possibly
    inherited) attribute of the view class [cls]; identity when no mapping
    is recorded.  Shared by query and update translation. *)

val to_integrated :
  Integrate.Mapping.t ->
  view:Ecr.Schema.t ->
  Ast.t ->
  Ast.t * (Eval.row list -> Eval.row list)
(** [to_integrated m ~view q] rewrites a query against [view] into a
    query against the integrated schema.  Empty selects are expanded to
    the view class's attribute list first, so the answer shape is the
    view's.  The returned function renames answer columns back to the
    view's attribute names.
    @raise Unmapped when the view class or relationship has no mapping
    entry. *)

type component_query = {
  component : Ecr.Name.t;  (** the component schema's name *)
  query : Ast.t;
  post : Eval.row list -> Eval.row list;
      (** renames columns to the integrated names and pads attributes
          the component lacks with [Null] *)
}

val to_components :
  Integrate.Mapping.t ->
  integrated:Ecr.Schema.t ->
  Ast.t ->
  component_query list
(** [to_components m ~integrated q] unfolds a query against the
    integrated schema into one query per component class whose extent
    contributes to the queried class (including classes mapped to its
    descendants).  Joined queries keep only components where both the
    relationship and the target class are mapped. *)

val run_components :
  component_query list ->
  stores:(Ecr.Name.t * Instance.Store.t) list ->
  Eval.row list
(** The evaluation half of {!run_global}: runs an already-unfolded plan
    against the component stores (skipping components whose extent a
    broader contributing class of the same schema already covers) and
    outer-unions the answers.  Lets a caller cache the unfolding and
    still share this exact evaluation path. *)

val run_global :
  Integrate.Mapping.t ->
  integrated:Ecr.Schema.t ->
  stores:(Ecr.Name.t * Instance.Store.t) list ->
  Ast.t ->
  Eval.row list
(** Unfolds, evaluates each component query on its store, and returns
    the outer-union of the answers (exact duplicate rows removed — the
    same real-world entity reported by two components appears once when
    the components agree on the projected attributes). *)

val covers : Eval.row list -> Eval.row list -> bool
(** [covers supers subs]: every row of [subs] is matched by some row of
    [supers] agreeing on all non-[Null] columns — the containment check
    used when outer-union answers are compared with integrated-store
    answers. *)
