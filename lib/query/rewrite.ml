open Ecr

exception Unmapped of string

let unmapped fmt = Printf.ksprintf (fun s -> raise (Unmapped s)) fmt

(* ------------------------------------------------------------------ *)
(* View -> integrated.                                                 *)

let expand_select schema cls = function
  | [] -> Attribute.names (Schema.all_attributes schema cls)
  | names -> names

let object_entry_exn mapping q =
  match Integrate.Mapping.object_entry q mapping with
  | Some e -> e
  | None -> unmapped "object class %s has no mapping entry" (Qname.to_string q)

let rel_entry_exn mapping q =
  match Integrate.Mapping.relationship_entry q mapping with
  | Some e -> e
  | None ->
      unmapped "relationship set %s has no mapping entry" (Qname.to_string q)

(* A view class may inherit attributes from its view ancestors; those
   are recorded on the ancestor's mapping entry, so renaming walks the
   view's IS-A chain to the declaring class. *)
let rename_for_view mapping view cls a =
  let declares c =
    match Schema.find_object c view with
    | Some oc -> Attribute.find a oc.Object_class.attributes <> None
    | None -> false
  in
  let chain = cls :: Schema.ancestors view cls in
  match List.find_opt declares chain with
  | Some owner -> (
      match
        Integrate.Mapping.attr_target (Qname.make (Schema.name view) owner) a
          mapping
      with
      | Some t -> t.Integrate.Mapping.as_attr
      | None -> a)
  | None -> a

let h_rewrite = Obs.Histogram.make "query.rewrite_seconds"
let h_unfold = Obs.Histogram.make "query.unfold_seconds"
let c_rewrites = Obs.Counter.make "query.rewrites"
let c_unfolds = Obs.Counter.make "query.unfolds"
let c_global = Obs.Counter.make "query.global_queries"

let to_integrated mapping ~view q =
  Obs.Span.run "query.rewrite" @@ fun () ->
  Obs.Histogram.time h_rewrite @@ fun () ->
  Obs.Counter.incr c_rewrites;
  let schema_name = Schema.name view in
  let from_q = Qname.make schema_name q.Ast.from_class in
  let entry = object_entry_exn mapping from_q in
  let rename = rename_for_view mapping view q.Ast.from_class in
  let select = expand_select view q.Ast.from_class q.Ast.select in
  let select' = List.map rename select in
  let where' = Option.map (Ast.rename_pred rename) q.Ast.where in
  let via', back_target =
    match q.Ast.via with
    | None -> (None, fun _ -> None)
    | Some j ->
        let rel_entry = rel_entry_exn mapping (Qname.make schema_name j.Ast.rel) in
        let target_entry =
          object_entry_exn mapping (Qname.make schema_name j.Ast.target)
        in
        let trename = rename_for_view mapping view j.Ast.target in
        let tselect = expand_select view j.Ast.target j.Ast.target_select in
        let tselect' = List.map trename tselect in
        let rel_rename a =
          match
            Integrate.Mapping.relationship_attr_target
              (Qname.make schema_name j.Ast.rel) a mapping
          with
          | Some t -> t.Integrate.Mapping.as_attr
          | None -> a
        in
        let rel_select' = List.map rel_rename j.Ast.rel_select in
        let old_prefix a =
          Name.v (Name.to_string j.Ast.target ^ "_" ^ Name.to_string a)
        in
        let new_prefix a =
          Name.v
            (Name.to_string target_entry.Integrate.Mapping.target
            ^ "_" ^ Name.to_string a)
        in
        let old_rel_prefix a =
          Name.v (Name.to_string j.Ast.rel ^ "_" ^ Name.to_string a)
        in
        let new_rel_prefix a =
          Name.v
            (Name.to_string rel_entry.Integrate.Mapping.target
            ^ "_" ^ Name.to_string a)
        in
        let back =
          List.fold_left
            (fun acc a ->
              Name.Map.add (new_prefix (trename a)) (old_prefix a) acc)
            Name.Map.empty tselect
        in
        let back =
          List.fold_left
            (fun acc a ->
              Name.Map.add (new_rel_prefix (rel_rename a)) (old_rel_prefix a) acc)
            back j.Ast.rel_select
        in
        ( Some
            {
              Ast.rel = rel_entry.Integrate.Mapping.target;
              rel_select = rel_select';
              target = target_entry.Integrate.Mapping.target;
              target_where =
                Option.map (Ast.rename_pred trename) j.Ast.target_where;
              target_select = tselect';
            },
          fun n -> Name.Map.find_opt n back )
  in
  let back_map =
    List.fold_left2
      (fun acc original renamed -> Name.Map.add renamed original acc)
      Name.Map.empty select select'
  in
  let back n =
    match Name.Map.find_opt n back_map with
    | Some o -> o
    | None -> ( match back_target n with Some o -> o | None -> n)
  in
  let q' =
    {
      Ast.from_class = entry.Integrate.Mapping.target;
      where = where';
      select = select';
      via = via';
    }
  in
  (q', Eval.rename_columns back)

(* ------------------------------------------------------------------ *)
(* Integrated -> components.                                           *)

type component_query = {
  component : Name.t;
  query : Ast.t;
  post : Eval.row list -> Eval.row list;
}

(* Component object classes whose extent contributes to [cls]: mapped to
   [cls] itself or to any of its descendants in the integrated schema. *)
let contributing_entries mapping integrated cls =
  let targets = cls :: Schema.descendants integrated cls in
  List.concat_map
    (fun t -> Integrate.Mapping.objects_into t mapping)
    targets

(* integrated attribute name -> component attribute name, for an entry *)
let reverse_attr_map (e : Integrate.Mapping.entry) =
  Name.Map.fold
    (fun comp_attr target acc ->
      Name.Map.add target.Integrate.Mapping.as_attr comp_attr acc)
    e.Integrate.Mapping.attrs Name.Map.empty

let rewrite_pred_back reverse p =
  let rec walk = function
    | Ast.Atom (a, cmp, v) -> (
        match Name.Map.find_opt a reverse with
        | Some comp -> Ast.Atom (comp, cmp, v)
        | None ->
            (* attribute absent in this component: its value there is
               Null, and Null comparisons are false *)
            Ast.Const false)
    | Ast.And (p, q) -> Ast.And (walk p, walk q)
    | Ast.Or (p, q) -> Ast.Or (walk p, walk q)
    | Ast.Not p -> Ast.Not (walk p)
    | Ast.Const b -> Ast.Const b
  in
  walk p

let to_components mapping ~integrated q =
  Obs.Span.run "query.unfold" @@ fun () ->
  Obs.Histogram.time h_unfold @@ fun () ->
  Obs.Counter.incr c_unfolds;
  let wanted = expand_select integrated q.Ast.from_class q.Ast.select in
  let entries = contributing_entries mapping integrated q.Ast.from_class in
  List.filter_map
    (fun (entry : Integrate.Mapping.entry) ->
      let reverse = reverse_attr_map entry in
      let available, missing =
        List.partition (fun a -> Name.Map.mem a reverse) wanted
      in
      let comp_select =
        List.map (fun a -> Name.Map.find a reverse) available
      in
      let comp_where = Option.map (rewrite_pred_back reverse) q.Ast.where in
      let via_result =
        match q.Ast.via with
        | None -> Some (None, fun rows -> rows)
        | Some j -> (
            (* both the relationship and the target class must be mapped
               from this same component schema *)
            let schema_name = entry.Integrate.Mapping.source.Qname.schema in
            let rel_sources =
              Integrate.Mapping.relationships_into j.Ast.rel mapping
              |> List.filter (fun (e : Integrate.Mapping.entry) ->
                     Name.equal e.Integrate.Mapping.source.Qname.schema
                       schema_name)
            in
            let target_sources =
              contributing_entries mapping integrated j.Ast.target
              |> List.filter (fun (e : Integrate.Mapping.entry) ->
                     Name.equal e.Integrate.Mapping.source.Qname.schema
                       schema_name)
            in
            match (rel_sources, target_sources) with
            | rel_e :: _, tgt_e :: _ ->
                let treverse = reverse_attr_map tgt_e in
                let twanted =
                  expand_select integrated j.Ast.target j.Ast.target_select
                in
                let tavailable, tmissing =
                  List.partition (fun a -> Name.Map.mem a treverse) twanted
                in
                let tselect =
                  List.map (fun a -> Name.Map.find a treverse) tavailable
                in
                let comp_target = tgt_e.Integrate.Mapping.source.Qname.obj in
                let int_prefix a =
                  Name.v
                    (Name.to_string j.Ast.target ^ "_" ^ Name.to_string a)
                in
                let comp_prefix a =
                  Name.v (Name.to_string comp_target ^ "_" ^ Name.to_string a)
                in
                let rename_back =
                  List.fold_left2
                    (fun acc int_a comp_a ->
                      Name.Map.add (comp_prefix comp_a) (int_prefix int_a) acc)
                    Name.Map.empty tavailable tselect
                in
                let post rows =
                  rows
                  |> Eval.rename_columns (fun n ->
                         Option.value ~default:n (Name.Map.find_opt n rename_back))
                  |> List.map (fun r ->
                         List.fold_left
                           (fun r a ->
                             Name.Map.add (int_prefix a) Instance.Value.Null r)
                           r tmissing)
                in
                let rreverse = reverse_attr_map rel_e in
                let ravailable, rmissing =
                  List.partition
                    (fun a -> Name.Map.mem a rreverse)
                    j.Ast.rel_select
                in
                let rselect =
                  List.map (fun a -> Name.Map.find a rreverse) ravailable
                in
                let int_rel_prefix a =
                  Name.v (Name.to_string j.Ast.rel ^ "_" ^ Name.to_string a)
                in
                let comp_rel_prefix a =
                  Name.v
                    (Name.to_string rel_e.Integrate.Mapping.source.Qname.obj
                    ^ "_" ^ Name.to_string a)
                in
                let rel_rename_back =
                  List.fold_left2
                    (fun acc int_a comp_a ->
                      Name.Map.add (comp_rel_prefix comp_a)
                        (int_rel_prefix int_a) acc)
                    Name.Map.empty ravailable rselect
                in
                let post rows =
                  rows |> post
                  |> Eval.rename_columns (fun n ->
                         Option.value ~default:n
                           (Name.Map.find_opt n rel_rename_back))
                  |> List.map (fun r ->
                         List.fold_left
                           (fun r a ->
                             Name.Map.add (int_rel_prefix a)
                               Instance.Value.Null r)
                           r rmissing)
                in
                Some
                  ( Some
                      {
                        Ast.rel = rel_e.Integrate.Mapping.source.Qname.obj;
                        rel_select = rselect;
                        target = comp_target;
                        target_where =
                          Option.map (rewrite_pred_back treverse)
                            j.Ast.target_where;
                        target_select = tselect;
                      },
                    post )
            | _ -> None)
      in
      match via_result with
      | None -> None
      | Some (via, via_post) ->
          let rename_back =
            List.fold_left2
              (fun acc int_a comp_a -> Name.Map.add comp_a int_a acc)
              Name.Map.empty available comp_select
          in
          (* the columns the caller expects: the wanted attributes plus,
             for joined queries, the prefixed target/relationship ones *)
          let expected =
            wanted
            @ (match q.Ast.via with
              | None -> []
              | Some j ->
                  let twanted =
                    expand_select integrated j.Ast.target j.Ast.target_select
                  in
                  List.map
                    (fun a ->
                      Name.v (Name.to_string j.Ast.target ^ "_" ^ Name.to_string a))
                    twanted
                  @ List.map
                      (fun a ->
                        Name.v (Name.to_string j.Ast.rel ^ "_" ^ Name.to_string a))
                      j.Ast.rel_select)
          in
          let post rows =
            rows |> via_post
            |> Eval.rename_columns (fun n ->
                   Option.value ~default:n (Name.Map.find_opt n rename_back))
            |> List.map (fun r ->
                   List.fold_left
                     (fun r a -> Name.Map.add a Instance.Value.Null r)
                     r missing)
            |> Eval.project_rows expected
          in
          Some
            {
              component = entry.Integrate.Mapping.source.Qname.schema;
              query =
                {
                  Ast.from_class = entry.Integrate.Mapping.source.Qname.obj;
                  where = comp_where;
                  select = comp_select;
                  via;
                };
              post;
            })
    entries

let run_components parts ~stores =
  (* Within one component, a class whose extent is already covered by a
     broader contributing class of the same schema (e.g. a category under
     an entity set that also contributes) would only duplicate answers:
     the ECR extent of the broader class includes its descendants. *)
  let redundant part =
    match List.assoc_opt part.component stores with
    | None -> true
    | Some store ->
        let schema = Instance.Store.schema store in
        List.exists
          (fun other ->
            Name.equal other.component part.component
            && (not (Name.equal other.query.Ast.from_class part.query.Ast.from_class))
            && Schema.is_ancestor schema
                 ~ancestor:other.query.Ast.from_class
                 part.query.Ast.from_class)
          parts
  in
  let all =
    List.concat_map
      (fun part ->
        if redundant part then []
        else
          match List.assoc_opt part.component stores with
          | None -> []
          | Some store -> part.post (Eval.run part.query store))
      parts
  in
  (* outer-union: exact duplicates collapse *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let key = Eval.row_to_string r in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    all

let run_global mapping ~integrated ~stores q =
  Obs.Counter.incr c_global;
  run_components (to_components mapping ~integrated q) ~stores

let covers supers subs =
  let matches sub super =
    Name.Map.for_all
      (fun k v ->
        Instance.Value.equal v Instance.Value.Null
        ||
        match Name.Map.find_opt k super with
        | Some v' ->
            Instance.Value.equal v v'
            || Instance.Value.equal v' Instance.Value.Null
        | None -> false)
      sub
  in
  List.for_all (fun sub -> List.exists (matches sub) supers) subs
