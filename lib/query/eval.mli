(** Query evaluation over an instance store.

    Rows are attribute-name-to-value maps.  For joined queries, target
    columns are prefixed with the target class name
    ([Department_Name]), so a row never has colliding keys.  Answers
    are multisets: {!same_answers} compares them order-insensitively
    but multiplicity-sensitively. *)

type row = Instance.Value.t Ecr.Name.Map.t

exception Error of string
(** Unknown class/relationship/attribute, or a join whose relationship
    does not connect the two classes. *)

val run : Ast.t -> Instance.Store.t -> row list
(** Evaluates against the store's schema.  The from-class extent
    includes members of its descendants (ECR category semantics).
    Join-free answers are in ascending entity-id order, joined answers
    in relationship-instance order — deterministic, which is what makes
    incremental maintenance of materialized extents ([lib/view]) able
    to promise byte-identity with from-scratch evaluation.
    @raise Error on ill-typed queries. *)

val matches : (Ecr.Name.t -> Instance.Value.t) -> Ast.pred -> bool
(** [matches lookup p] is the predicate semantics {!run} uses ([Null]
    compares false except [Null = Null]), over any value source.
    Exported so [lib/view]'s delta maintenance decides membership of a
    new entity with {e exactly} the evaluator's semantics. *)

val project_entity :
  Ecr.Schema.t ->
  Ecr.Name.t ->
  Instance.Store.Oid.t ->
  Instance.Store.t ->
  Ecr.Name.t list ->
  row
(** [project_entity schema cls oid store select] builds one answer row
    exactly as {!run} does — an empty [select] expands to the class's
    full (inherited-first) attribute list, missing values are [Null].
    The other half of the [lib/view] byte-identity contract. *)

val row : (string * Instance.Value.t) list -> row

val row_to_string : row -> string
val pp_row : Format.formatter -> row -> unit

val same_answers : row list -> row list -> bool
(** Multiset equality of answers. *)

val project_rows : Ecr.Name.t list -> row list -> row list
(** Keeps only the given columns in each row. *)

val rename_columns : (Ecr.Name.t -> Ecr.Name.t) -> row list -> row list
