open Ecr

type row = Instance.Value.t Name.Map.t

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let compare_values cmp a b =
  let open Instance.Value in
  match (a, b) with
  | Null, Null -> cmp = Ast.Eq
  | Null, _ | _, Null -> false
  | _ ->
      let c = compare a b in
      (match cmp with
      | Ast.Eq -> c = 0
      | Ast.Ne -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0)

let rec eval_pred lookup = function
  | Ast.Atom (a, cmp, v) -> compare_values cmp (lookup a) v
  | Ast.And (p, q) -> eval_pred lookup p && eval_pred lookup q
  | Ast.Or (p, q) -> eval_pred lookup p || eval_pred lookup q
  | Ast.Not p -> not (eval_pred lookup p)
  | Ast.Const b -> b

let check_attrs schema cls names context =
  let attrs = Attribute.names (Schema.all_attributes schema cls) in
  List.iter
    (fun n ->
      if not (List.exists (Name.equal n) attrs) then
        error "%s: class %s has no attribute %s" context (Name.to_string cls)
          (Name.to_string n))
    names

let require_class schema cls =
  match Schema.find_object cls schema with
  | Some _ -> ()
  | None -> error "unknown object class %s" (Name.to_string cls)

(* The participant position a class can play in a relationship: the
   class itself, an ancestor (its entities participate via the broader
   class) or a descendant. *)
let position_for schema rel cls ~exclude =
  let viable i p =
    (not (List.mem i exclude))
    && (Name.equal p.Relationship.obj cls
       || Schema.is_ancestor schema ~ancestor:p.Relationship.obj cls
       || Schema.is_ancestor schema ~ancestor:cls p.Relationship.obj)
  in
  let rec look i = function
    | [] -> None
    | p :: rest -> if viable i p then Some i else look (i + 1) rest
  in
  look 0 rel.Relationship.participants

let project schema cls oid store select =
  let attrs =
    match select with
    | [] -> Attribute.names (Schema.all_attributes schema cls)
    | names -> names
  in
  List.fold_left
    (fun row a -> Name.Map.add a (Instance.Store.value oid a store) row)
    Name.Map.empty attrs

(* Observability: per-query latency and answer volume — the numbers a
   serving deployment watches first. *)
let h_eval = Obs.Histogram.make "query.eval_seconds"
let c_evaluated = Obs.Counter.make "query.evaluated"
let c_rows = Obs.Counter.make "query.rows_returned"

let run_unobserved q store =
  let schema = Instance.Store.schema store in
  require_class schema q.Ast.from_class;
  check_attrs schema q.Ast.from_class q.Ast.select "select";
  Option.iter
    (fun p -> check_attrs schema q.Ast.from_class (Ast.attrs_of_pred p) "where")
    q.Ast.where;
  let extent = Instance.Store.extent q.Ast.from_class store in
  let passes cls oid pred =
    match pred with
    | None -> true
    | Some p ->
        ignore cls;
        eval_pred (fun a -> Instance.Store.value oid a store) p
  in
  match q.Ast.via with
  | None ->
      Instance.Store.Oid.Set.fold
        (fun oid acc ->
          if passes q.Ast.from_class oid q.Ast.where then
            project schema q.Ast.from_class oid store q.Ast.select :: acc
          else acc)
        extent []
      |> List.rev
  | Some j ->
      let rel =
        match Schema.find_relationship j.Ast.rel schema with
        | Some r -> r
        | None -> error "unknown relationship %s" (Name.to_string j.Ast.rel)
      in
      require_class schema j.Ast.target;
      check_attrs schema j.Ast.target j.Ast.target_select "target select";
      Option.iter
        (fun p -> check_attrs schema j.Ast.target (Ast.attrs_of_pred p) "target where")
        j.Ast.target_where;
      let from_pos =
        match position_for schema rel q.Ast.from_class ~exclude:[] with
        | Some i -> i
        | None ->
            error "class %s does not participate in %s"
              (Name.to_string q.Ast.from_class)
              (Name.to_string j.Ast.rel)
      in
      let target_pos =
        match position_for schema rel j.Ast.target ~exclude:[ from_pos ] with
        | Some i -> i
        | None ->
            error "class %s does not participate in %s"
              (Name.to_string j.Ast.target)
              (Name.to_string j.Ast.rel)
      in
      (* relationship attributes must exist on the relationship set *)
      List.iter
        (fun n ->
          if Attribute.find n rel.Relationship.attributes = None then
            error "relationship %s has no attribute %s"
              (Name.to_string j.Ast.rel) (Name.to_string n))
        j.Ast.rel_select;
      let target_extent = Instance.Store.extent j.Ast.target store in
      let prefix a =
        Name.v (Name.to_string j.Ast.target ^ "_" ^ Name.to_string a)
      in
      let rel_prefix a =
        Name.v (Name.to_string j.Ast.rel ^ "_" ^ Name.to_string a)
      in
      List.filter_map
        (fun { Instance.Store.participants; values } ->
          let oid_f = List.nth participants from_pos
          and oid_t = List.nth participants target_pos in
          if
            Instance.Store.Oid.Set.mem oid_f extent
            && Instance.Store.Oid.Set.mem oid_t target_extent
            && passes q.Ast.from_class oid_f q.Ast.where
            && passes j.Ast.target oid_t j.Ast.target_where
          then begin
            let base = project schema q.Ast.from_class oid_f store q.Ast.select in
            let trow =
              project schema j.Ast.target oid_t store j.Ast.target_select
            in
            let with_target =
              Name.Map.fold
                (fun a v acc -> Name.Map.add (prefix a) v acc)
                trow base
            in
            Some
              (List.fold_left
                 (fun acc a ->
                   Name.Map.add (rel_prefix a)
                     (Option.value ~default:Instance.Value.Null
                        (Name.Map.find_opt a values))
                     acc)
                 with_target j.Ast.rel_select)
          end
          else None)
        (Instance.Store.links j.Ast.rel store)

let run q store =
  Obs.Span.run "query.eval" @@ fun () ->
  Obs.Histogram.time h_eval @@ fun () ->
  Obs.Counter.incr c_evaluated;
  let rows = run_unobserved q store in
  Obs.Counter.add c_rows (List.length rows);
  rows

let row bindings =
  List.fold_left
    (fun m (k, v) -> Name.Map.add (Name.v k) v m)
    Name.Map.empty bindings

let row_to_string r =
  Name.Map.bindings r
  |> List.map (fun (k, v) ->
         Name.to_string k ^ "=" ^ Instance.Value.to_string v)
  |> String.concat ", "
  |> fun s -> "{" ^ s ^ "}"

let pp_row fmt r = Format.pp_print_string fmt (row_to_string r)

let same_answers a b =
  let sort rows = List.sort compare (List.map Name.Map.bindings rows) in
  sort a = sort b

let project_rows cols rows =
  List.map
    (fun r ->
      Name.Map.filter (fun k _ -> List.exists (Name.equal k) cols) r)
    rows

let matches = eval_pred
let project_entity = project

let rename_columns f rows =
  List.map
    (fun r -> Name.Map.fold (fun k v acc -> Name.Map.add (f k) v acc) r Name.Map.empty)
    rows
