(** The interactive driver: the glue between the screens, the
    {!Integrate.Workspace} bookkeeping, and an input/output channel.

    The driver is fully deterministic over its {!io} abstraction, so the
    same code path serves three masters: the real terminal
    ([bin/sit.exe]), scripted golden tests, and demonstration scripts in
    the examples.  Screens are re-rendered after every action, exactly
    like the original curses tool repainted its windows. *)

type io = {
  input : unit -> string option;  (** one line, without the newline *)
  output : string -> unit;
}

val stdio : io

val scripted : string list -> io * Buffer.t
(** [scripted lines] — an [io] that reads from [lines] and appends all
    output to the returned buffer.  Reading past the script yields
    [None], which every prompt treats as "exit". *)

val run :
  ?workspace:Integrate.Workspace.t ->
  ?record:(Integrate.Op.t -> Integrate.Workspace.t -> unit) ->
  io ->
  Integrate.Workspace.t
(** The main-menu loop.  Returns the final workspace (so callers can
    save schemas, inspect assertions, integrate offline...).

    [record op ws] is called after every workspace mutation with the
    op just performed and the resulting state — the hook [bin/sit]
    uses to journal the live session (see lib/journal). *)

val view_result :
  io -> schemas:Ecr.Schema.t list -> Integrate.Result.t -> unit
(** Just the result-viewing loop (main-menu task 6), following the
    Figure 6 screen flow. *)
