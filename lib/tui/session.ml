open Ecr

type io = { input : unit -> string option; output : string -> unit }

let stdio =
  {
    input =
      (fun () ->
        try Some (input_line Stdlib.stdin) with End_of_file -> None);
    output = (fun s -> print_string s; flush Stdlib.stdout);
  }

let scripted lines =
  let remaining = ref lines in
  let buf = Buffer.create 4096 in
  let io =
    {
      input =
        (fun () ->
          match !remaining with
          | [] -> None
          | l :: rest ->
              remaining := rest;
              Some l);
      output = Buffer.add_string buf;
    }
  in
  (io, buf)

(* ------------------------------------------------------------------ *)

let show io canvas = io.output (Canvas.to_string canvas)

let prompt io label =
  io.output (label ^ " ");
  match io.input () with
  | None -> ""
  | Some line ->
      io.output (line ^ "\n");
      String.trim line

let prompt_nonempty io label =
  match prompt io label with "" -> None | s -> Some s

let is_exit s =
  match String.lowercase_ascii s with
  | "" | "e" | "x" | "q" | "exit" | "quit" -> true
  | _ -> false

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let message io fmt = Printf.ksprintf (fun s -> io.output (s ^ "\n")) fmt

(* ------------------------------------------------------------------ *)
(* Task 1: schema collection.                                          *)

let parse_attribute line =
  (* "Name : char key" or "Name char key" *)
  let parts =
    String.split_on_char ':' line |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let name, rest =
    match parts with
    | [ n; r ] -> (n, r)
    | [ single ] -> (
        match String.index_opt single ' ' with
        | Some i ->
            ( String.sub single 0 i,
              String.trim (String.sub single (i + 1) (String.length single - i - 1)) )
        | None -> (single, "char"))
    | _ -> (line, "char")
  in
  let words = String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") in
  let key = List.exists (fun w -> String.lowercase_ascii w = "key") words in
  let domain =
    match List.filter (fun w -> String.lowercase_ascii w <> "key") words with
    | d :: _ -> d
    | [] -> "char"
  in
  try Some (Attribute.v ~key name domain) with Name.Invalid _ -> None

let collect_attributes io structure_name =
  let rec loop schema =
    show io (Screens.attribute_information schema structure_name);
    match prompt io "Choose: (A)dd (D)elete (E)xit =>" with
    | s when is_exit s -> schema
    | choice -> (
        let update f =
          match Schema.find_structure structure_name schema with
          | Some (Schema.Obj oc) ->
              Schema.replace_object
                { oc with Object_class.attributes = f oc.Object_class.attributes }
                schema
          | Some (Schema.Rel r) ->
              Schema.replace_relationship
                { r with Relationship.attributes = f r.Relationship.attributes }
                schema
          | None -> schema
        in
        match String.lowercase_ascii choice with
        | "a" -> (
            match prompt_nonempty io "Attribute (name : domain [key]):" with
            | Some line -> (
                match parse_attribute line with
                | Some a -> loop (update (fun attrs -> attrs @ [ a ]))
                | None ->
                    message io "Malformed attribute.";
                    loop schema)
            | None -> loop schema)
        | "d" -> (
            match prompt_nonempty io "Attribute name to delete:" with
            | Some n ->
                loop
                  (update
                     (List.filter (fun a ->
                          not (String.equal (Name.to_string a.Attribute.name) n))))
            | None -> loop schema)
        | _ -> loop schema)
  in
  loop

let parse_participant word =
  (* "Student(1,1)" or "Student (1,1)" or "role:Student(0,N)" *)
  match String.index_opt word '(' with
  | None -> (
      try Some (Relationship.participant (Name.v (String.trim word)) Cardinality.any)
      with Name.Invalid _ -> None)
  | Some i -> (
      let head = String.trim (String.sub word 0 i) in
      let card = String.sub word i (String.length word - i) in
      try
        let card = Cardinality.of_string card in
        match String.split_on_char ':' head with
        | [ role; obj ] ->
            Some
              (Relationship.participant
                 ~role:(Name.v (String.trim role))
                 (Name.v (String.trim obj))
                 card)
        | _ -> Some (Relationship.participant (Name.v head) card)
      with Name.Invalid _ | Cardinality.Invalid _ -> None)

let collect_structures io schema =
  let page = 12 in
  let rec loop ?(offset = 0) schema =
    let loop ?(offset = offset) schema = loop ~offset schema in
    show io (Screens.structure_information ~offset schema);
    match prompt io "Choose: (S)croll (A)dd (D)elete attributes-(O)f (E)xit =>" with
    | s when is_exit s -> schema
    | choice -> (
        match String.lowercase_ascii choice with
        | "s" ->
            let total = Schema.size schema in
            let offset = if offset + page >= total then 0 else offset + page in
            loop ~offset schema
        | "a" -> (
            match prompt_nonempty io "Structure name:" with
            | None -> loop schema
            | Some raw_name -> (
                match Name.of_string_opt raw_name with
                | None ->
                    message io "Invalid name.";
                    loop schema
                | Some name -> (
                    match
                      String.lowercase_ascii (prompt io "Type (e/c/r):")
                    with
                    | "e" ->
                        let schema = Schema.add_object (Object_class.entity name) schema in
                        loop (collect_attributes io name schema)
                    | "c" -> (
                        let parents_line =
                          prompt io "Parent object classes (comma-separated):"
                        in
                        match
                          List.filter_map Name.of_string_opt (split_commas parents_line)
                        with
                        | [] ->
                            message io "A category needs at least one parent.";
                            loop schema
                        | parents ->
                            let schema =
                              Schema.add_object
                                (Object_class.category ~parents name)
                                schema
                            in
                            show io (Screens.category_information schema name);
                            loop (collect_attributes io name schema))
                    | "r" -> (
                        let line =
                          prompt io
                            "Participants, e.g. Student(1,1), Department(0,N):"
                        in
                        match List.filter_map parse_participant (split_commas line) with
                        | [] | [ _ ] ->
                            message io "A relationship needs two participants.";
                            loop schema
                        | participants ->
                            let schema =
                              Schema.add_relationship
                                (Relationship.make name participants)
                                schema
                            in
                            show io (Screens.relationship_information schema name);
                            loop (collect_attributes io name schema))
                    | _ ->
                        message io "Unknown structure type.";
                        loop schema)))
        | "d" -> (
            match prompt_nonempty io "Structure name to delete:" with
            | Some n -> (
                match Name.of_string_opt n with
                | Some name -> loop (Schema.remove_structure name schema)
                | None -> loop schema)
            | None -> loop schema)
        | "o" -> (
            match prompt_nonempty io "Structure name:" with
            | Some n -> (
                match Name.of_string_opt n with
                | Some name when Schema.mem name schema ->
                    loop (collect_attributes io name schema)
                | _ ->
                    message io "No such structure.";
                    loop schema)
            | None -> loop schema)
        | _ -> loop schema)
  in
  loop schema

let schema_collection ~record io ws =
  let rec loop ws =
    let names =
      List.map (fun s -> Name.to_string (Schema.name s)) (Integrate.Workspace.schemas ws)
    in
    show io (Screens.schema_name_collection ~names);
    match prompt io "Choose: (A)dd (D)elete (U)pdate (E)xit =>" with
    | s when is_exit s -> ws
    | choice -> (
        match String.lowercase_ascii choice with
        | "a" | "u" -> (
            match prompt_nonempty io "Schema name:" with
            | None -> loop ws
            | Some raw -> (
                match Name.of_string_opt raw with
                | None ->
                    message io "Invalid name.";
                    loop ws
                | Some name ->
                    let base =
                      match Integrate.Workspace.find_schema name ws with
                      | Some s -> s
                      | None -> Schema.empty name
                    in
                    let edited = collect_structures io base in
                    let errors = Schema.validate edited in
                    List.iter
                      (fun e -> message io "warning: %s" (Schema.error_to_string e))
                      errors;
                    let ws = Integrate.Workspace.add_schema edited ws in
                    record (Integrate.Op.Add_schema edited) ws;
                    loop ws))
        | "d" -> (
            match prompt_nonempty io "Schema name to delete:" with
            | Some raw -> (
                match Name.of_string_opt raw with
                | Some name ->
                    let ws = Integrate.Workspace.remove_schema name ws in
                    record (Integrate.Op.Remove_schema name) ws;
                    loop ws
                | None -> loop ws)
            | None -> loop ws)
        | _ -> loop ws)
  in
  loop ws

(* ------------------------------------------------------------------ *)
(* Tasks 2 and 4: equivalence specification.                           *)

let pick_two_schemas io ws =
  let names =
    List.map (fun s -> Name.to_string (Schema.name s)) (Integrate.Workspace.schemas ws)
  in
  message io "Schemas: %s" (String.concat ", " names);
  match
    ( prompt_nonempty io "First schema:",
      prompt_nonempty io "Second schema:" )
  with
  | Some a, Some b -> (
      match (Name.of_string_opt a, Name.of_string_opt b) with
      | Some na, Some nb -> (
          match
            ( Integrate.Workspace.find_schema na ws,
              Integrate.Workspace.find_schema nb ws )
          with
          | Some s1, Some s2 -> Some (s1, s2)
          | _ ->
              message io "Unknown schema.";
              None)
      | _ -> None)
  | _ -> None

let parse_qattr line =
  match String.split_on_char '.' (String.trim line) with
  | [ s; o; a ] -> ( try Some (Qname.Attr.v s o a) with Name.Invalid _ -> None)
  | _ -> None

let equivalence_task ~record io ws ~relationships =
  match pick_two_schemas io ws with
  | None -> ws
  | Some (s1, s2) ->
      if not relationships then show io (Screens.object_selection s1 s2);
      let pick_structure schema label =
        Option.bind (prompt_nonempty io label) Name.of_string_opt
        |> Fun.flip Option.bind (fun n ->
               if Schema.mem n schema then Some n else None)
      in
      let rec edit ws o1 o2 =
        show io
          (Screens.equivalence_classes
             (Integrate.Workspace.equivalence ws)
             (s1, o1) (s2, o2));
        match
          prompt io "(A)dd pair (D)elete member (E)xit =>"
        with
        | s when is_exit s -> ws
        | choice -> (
            match String.lowercase_ascii choice with
            | "a" -> (
                let q1 =
                  Printf.sprintf "%s.%s." (Name.to_string (Schema.name s1))
                    (Name.to_string o1)
                in
                let q2 =
                  Printf.sprintf "%s.%s." (Name.to_string (Schema.name s2))
                    (Name.to_string o2)
                in
                match
                  ( prompt_nonempty io ("Attribute of " ^ q1),
                    prompt_nonempty io ("Attribute of " ^ q2) )
                with
                | Some a1, Some a2 -> (
                    match
                      ( parse_qattr (q1 ^ a1),
                        parse_qattr (q2 ^ a2) )
                    with
                    | Some qa1, Some qa2 ->
                        let ws = Integrate.Workspace.declare_equivalent qa1 qa2 ws in
                        record (Integrate.Op.Declare_equivalent (qa1, qa2)) ws;
                        edit ws o1 o2
                    | _ ->
                        message io "Malformed attribute name.";
                        edit ws o1 o2)
                | _ -> edit ws o1 o2)
            | "d" -> (
                match
                  Option.bind
                    (prompt_nonempty io "Full attribute (schema.object.attr):")
                    parse_qattr
                with
                | Some qa ->
                    let ws = Integrate.Workspace.separate_attribute qa ws in
                    record (Integrate.Op.Separate_attribute qa) ws;
                    edit ws o1 o2
                | None -> edit ws o1 o2)
            | _ -> edit ws o1 o2)
      in
      let rec pick_pair ws =
        match
          ( pick_structure s1 "Object of first schema:",
            pick_structure s2 "Object of second schema:" )
        with
        | Some o1, Some o2 ->
            let ws = edit ws o1 o2 in
            if String.lowercase_ascii (prompt io "Another pair? (y/n)") = "y"
            then pick_pair ws
            else ws
        | _ -> ws
      in
      pick_pair ws

(* ------------------------------------------------------------------ *)
(* Tasks 3 and 5: assertion specification.                             *)

let assertion_task ~record io ws ~relationships =
  match pick_two_schemas io ws with
  | None -> ws
  | Some (s1, s2) ->
      let n1 = Schema.name s1 and n2 = Schema.name s2 in
      let ranked ws =
        if relationships then
          Integrate.Workspace.ranked_relationship_pairs n1 n2 ws
        else Integrate.Workspace.ranked_pairs n1 n2 ws
      in
      let answered ws =
        (if relationships then Integrate.Workspace.relationship_facts ws
         else Integrate.Workspace.object_facts ws)
        |> List.map (fun (l, a, r) -> (l, r, a))
      in
      let assert_in ws l a r =
        if relationships then Integrate.Workspace.assert_relationship l a r ws
        else Integrate.Workspace.assert_object l a r ws
      in
      let page = 7 in
      let rec loop ?(offset = 0) ws =
        let loop ?(offset = offset) ws = loop ~offset ws in
        let pairs = ranked ws in
        show io
          (Screens.assertion_collection ~offset ~answered:(answered ws) pairs);
        match
          prompt io
            "Enter: <pair#> <code>, (S)croll, (R)etract <pair#>, or (E)xit =>"
        with
        | s when is_exit s -> ws
        | "s" | "S" ->
            let total = List.length pairs in
            let offset = if offset + page >= total then 0 else offset + page in
            loop ~offset ws
        | line -> (
            match
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            with
            | [ ("r" | "R"); idx ] -> (
                (* "review and modify any assertion": retract the pair so
                   a different assertion can be entered *)
                match int_of_string_opt idx with
                | Some i when i >= 1 && i <= List.length pairs ->
                    let rk = List.nth pairs (i - 1) in
                    let l = rk.Integrate.Similarity.left
                    and r = rk.Integrate.Similarity.right in
                    let ws =
                      if relationships then
                        Integrate.Workspace.retract_relationship l r ws
                      else Integrate.Workspace.retract_object l r ws
                    in
                    record
                      (if relationships then
                         Integrate.Op.Retract_relationship (l, r)
                       else Integrate.Op.Retract_object (l, r))
                      ws;
                    loop ws
                | _ ->
                    message io "Bad pair number.";
                    loop ws)
            | [ idx; code ] -> (
                match
                  ( int_of_string_opt idx,
                    Option.bind (int_of_string_opt code) Integrate.Assertion.of_code )
                with
                | Some i, Some assertion when i >= 1 && i <= List.length pairs
                  -> (
                    let rk = List.nth pairs (i - 1) in
                    match
                      assert_in ws rk.Integrate.Similarity.left assertion
                        rk.Integrate.Similarity.right
                    with
                    | Ok ws ->
                        record
                          (if relationships then
                             Integrate.Op.Assert_relationship
                               ( rk.Integrate.Similarity.left,
                                 assertion,
                                 rk.Integrate.Similarity.right )
                           else
                             Integrate.Op.Assert_object
                               ( rk.Integrate.Similarity.left,
                                 assertion,
                                 rk.Integrate.Similarity.right ))
                          ws;
                        loop ws
                    | Error conflict ->
                        show io (Screens.conflict_resolution conflict);
                        let _ =
                          prompt io "Press return to continue (assertion withdrawn) =>"
                        in
                        loop ws)
                | _ ->
                    message io "Bad pair number or assertion code.";
                    loop ws)
            | _ ->
                message io "Expected: <pair#> <code>.";
                loop ws)
      in
      loop ws

(* ------------------------------------------------------------------ *)
(* Task 6: result viewing, following the Figure 6 flow.                *)

let view_result io ~schemas result =
  let rec at screen ctx =
    match screen with
    | Flow.Object_class -> (
        show io (Screens.object_class_screen result);
        match prompt io "Choice (A/C/E/R <name>, or x) =>" with
        | s when is_exit s -> ()
        | line -> (
            match
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            with
            | [ choice; raw ] -> (
                match (String.uppercase_ascii choice, Name.of_string_opt raw) with
                | "A", Some n -> at Flow.Attribute (`Cls n)
                | "C", Some n -> at Flow.Category (`Cls n)
                | "E", Some n -> at Flow.Entity (`Cls n)
                | "R", Some n -> at Flow.Relationship (`Cls n)
                | _ ->
                    message io "Unknown choice.";
                    at Flow.Object_class ctx)
            | _ ->
                message io "Enter a letter and a structure name.";
                at Flow.Object_class ctx))
    | Flow.Entity -> (
        let (`Cls n | `Attr (n, _)) = ctx in
        show io (Screens.entity_screen result n);
        match String.lowercase_ascii (prompt io "(e/q) =>") with
        | "e" -> at Flow.Equivalent (`Cls n)
        | _ -> at Flow.Object_class (`Cls n))
    | Flow.Category -> (
        let (`Cls n | `Attr (n, _)) = ctx in
        show io (Screens.category_screen result n);
        match String.lowercase_ascii (prompt io "(e/q) =>") with
        | "e" -> at Flow.Equivalent (`Cls n)
        | _ -> at Flow.Object_class (`Cls n))
    | Flow.Relationship -> (
        let (`Cls n | `Attr (n, _)) = ctx in
        show io (Screens.relationship_screen result n);
        match String.lowercase_ascii (prompt io "(e/p/q) =>") with
        | "e" -> at Flow.Equivalent (`Cls n)
        | "p" -> at Flow.Participating (`Cls n)
        | _ -> at Flow.Object_class (`Cls n))
    | Flow.Attribute -> (
        let (`Cls n | `Attr (n, _)) = ctx in
        show io (Screens.attribute_screen result n);
        match prompt io "Attribute name for components, or q =>" with
        | s when is_exit s -> at Flow.Object_class (`Cls n)
        | raw -> (
            match Name.of_string_opt raw with
            | Some attr -> at Flow.Component_attribute (`Attr (n, attr))
            | None ->
                message io "Invalid attribute name.";
                at Flow.Attribute (`Cls n)))
    | Flow.Component_attribute -> (
        match ctx with
        | `Attr (n, attr) ->
            let comps =
              let own = Integrate.Result.components_of_attribute result n attr in
              if own <> [] then own
              else
                List.fold_left
                  (fun acc anc ->
                    if acc <> [] then acc
                    else Integrate.Result.components_of_attribute result anc attr)
                  []
                  (Schema.ancestors result.Integrate.Result.schema n)
            in
            let rec pages i =
              if i >= List.length comps then ()
              else begin
                show io
                  (Screens.component_attribute_screen ~schemas result n attr
                     ~index:i);
                match prompt io "Press return for next component, q to stop =>" with
                | "q" -> ()
                | _ -> pages (i + 1)
              end
            in
            if comps = [] then message io "No components recorded.";
            pages 0;
            at Flow.Attribute (`Cls n)
        | `Cls n -> at Flow.Attribute (`Cls n))
    | Flow.Equivalent ->
        let (`Cls n | `Attr (n, _)) = ctx in
        show io (Screens.equivalent_screen result n);
        let _ = prompt io "(q) =>" in
        at Flow.Object_class (`Cls n)
    | Flow.Participating ->
        let (`Cls n | `Attr (n, _)) = ctx in
        show io (Screens.participating_objects_screen result n);
        let _ = prompt io "(q) =>" in
        at Flow.Relationship (`Cls n)
  in
  at Flow.Object_class (`Cls (Name.v "none"))

(* ------------------------------------------------------------------ *)

let run ?(workspace = Integrate.Workspace.empty) ?(record = fun _ _ -> ()) io =
  let rec loop ws =
    show io (Screens.main_menu ());
    match prompt io "Choose a task, or (E)xit =>" with
    | s when is_exit s -> ws
    | "1" -> loop (schema_collection ~record io ws)
    | "2" -> loop (equivalence_task ~record io ws ~relationships:false)
    | "3" -> loop (assertion_task ~record io ws ~relationships:false)
    | "4" -> loop (equivalence_task ~record io ws ~relationships:true)
    | "5" -> loop (assertion_task ~record io ws ~relationships:true)
    | "6" ->
        let schemas = Integrate.Workspace.schemas ws in
        if List.length schemas < 2 then begin
          message io "Define at least two schemas first.";
          loop ws
        end
        else begin
          (* the paper integrates two schemas at a time; integrating the
             result with further schemas is the n-ary composition *)
          let result =
            if List.length schemas = 2 then Some (Integrate.Workspace.integrate ws)
            else
              match
                String.lowercase_ascii
                  (prompt io "Integrate (A)ll schemas or a (P)air? =>")
              with
              | "p" -> (
                  match pick_two_schemas io ws with
                  | Some (s1, s2) ->
                      Some
                        (Integrate.Workspace.integrate_pair
                           (Ecr.Schema.name s1) (Ecr.Schema.name s2) ws)
                  | None -> None)
              | _ -> Some (Integrate.Workspace.integrate ws)
          in
          match result with
          | None -> loop ws
          | Some result ->
              List.iter (fun w -> message io "warning: %s" w)
                result.Integrate.Result.warnings;
              view_result io ~schemas result;
              loop ws
        end
    | "a" | "A" ->
        (* extension: the Phase 2 incompatibility report *)
        let issues = Integrate.Analysis.analyse ws in
        if issues = [] then message io "No schema-analysis issues."
        else
          List.iter
            (fun issue -> message io "analysis: %s" (Integrate.Analysis.to_string issue))
            issues;
        loop ws
    | _ ->
        message io "Unknown choice.";
        loop ws
  in
  loop workspace
