open Ecr

let score weighted s1 s2 =
  let objs1 = Schema.objects s1 and objs2 = Schema.objects s2 in
  let n1 = List.length objs1 and n2 = List.length objs2 in
  let small, n_small, large = if n1 <= n2 then (objs1, n1, objs2) else (objs2, n2, objs1) in
  match small with
  | [] -> 0.0
  | _ ->
      let best oc =
        List.fold_left
          (fun acc other -> Float.max acc (Resemblance.object_score weighted oc other))
          0.0 large
      in
      List.fold_left (fun acc oc -> acc +. best oc) 0.0 small
      /. float_of_int n_small

(* All unordered schema pairs, each scored exactly once — the shared
   enumeration behind every entry point below. *)
let scored_pairs weighted schemas =
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s', score weighted s s')) rest @ pairs rest
  in
  pairs schemas

let rank_pairs weighted schemas =
  scored_pairs weighted schemas
  |> List.map (fun (a, b, sc) -> (Schema.name a, Schema.name b, sc))
  |> List.sort (fun (_, _, x) (_, _, y) -> Float.compare y x)

let top_pairs ~k weighted schemas =
  (* bounded insertion keeps the best k without sorting all pairs; pair
     counts are quadratic in the schema count, k is a screenful *)
  if k <= 0 then []
  else
    let insert best ((_, _, sc) as p) =
      let rec go = function
        | [] -> [ p ]
        | ((_, _, sc') as q) :: rest ->
            if sc > sc' then p :: q :: rest else q :: go rest
      in
      let best = go best in
      if List.length best > k then List.filteri (fun i _ -> i < k) best else best
    in
    List.fold_left insert [] (scored_pairs weighted schemas)
    |> List.map (fun (a, b, sc) -> (Schema.name a, Schema.name b, sc))

let best_of = function
  | [] -> None
  | scored ->
      let best =
        List.fold_left
          (fun (bp, bs) (a, b, sc) -> if sc > bs then (Some (a, b), sc) else (bp, bs))
          (None, -1.0) scored
      in
      fst best

let most_similar_pair weighted schemas = best_of (scored_pairs weighted schemas)

let merge_pool weighted ~merged ~replacing scored pool =
  let gone s = List.memq s replacing in
  let survivors = List.filter (fun s -> not (gone s)) pool in
  let kept = List.filter (fun (a, b, _) -> not (gone a || gone b)) scored in
  let fresh = List.map (fun s -> (merged, s, score weighted merged s)) survivors in
  (fresh @ kept, merged :: survivors)
