(** Schema-level resemblance.

    The paper's section 4: "The resemblance function among objects could
    possibly be extended to derive a resemblance function [between]
    schemas, which could be particularly useful in picking similar
    schemas for integration in a binary approach."  Used by the binary
    integration strategies in the benchmark harness to pick the next
    pair of schemas to merge.

    Every entry point shares one enumeration that scores each unordered
    schema pair exactly once; {!merge_pool} lets a binary strategy carry
    those scores across rounds, re-scoring only the pairs the freshly
    merged schema introduces. *)

val score : Resemblance.weighted -> Ecr.Schema.t -> Ecr.Schema.t -> float
(** Mean of the best object-level resemblance of every object class of
    the smaller schema against the other schema's classes; in [0, 1]. *)

val scored_pairs :
  Resemblance.weighted ->
  Ecr.Schema.t list ->
  (Ecr.Schema.t * Ecr.Schema.t * float) list
(** All unordered schema pairs with their scores, each pair scored
    once.  Unsorted (enumeration order). *)

val rank_pairs :
  Resemblance.weighted ->
  Ecr.Schema.t list ->
  (Ecr.Name.t * Ecr.Name.t * float) list
(** All unordered schema pairs ordered by decreasing resemblance. *)

val top_pairs :
  k:int ->
  Resemblance.weighted ->
  Ecr.Schema.t list ->
  (Ecr.Name.t * Ecr.Name.t * float) list
(** The [k] highest-scoring pairs in decreasing order, selected by
    bounded insertion — the prefix of {!rank_pairs} up to the order of
    equal scores. *)

val most_similar_pair :
  Resemblance.weighted -> Ecr.Schema.t list -> (Ecr.Schema.t * Ecr.Schema.t) option
(** The pair a similarity-guided binary strategy should integrate
    next; [None] when fewer than two schemas remain.  A single max scan,
    no sort. *)

val best_of :
  (Ecr.Schema.t * Ecr.Schema.t * float) list ->
  (Ecr.Schema.t * Ecr.Schema.t) option
(** The highest-scoring pair of an already-scored list (as produced by
    {!scored_pairs} or {!merge_pool}). *)

val merge_pool :
  Resemblance.weighted ->
  merged:Ecr.Schema.t ->
  replacing:Ecr.Schema.t list ->
  (Ecr.Schema.t * Ecr.Schema.t * float) list ->
  Ecr.Schema.t list ->
  (Ecr.Schema.t * Ecr.Schema.t * float) list * Ecr.Schema.t list
(** [merge_pool w ~merged ~replacing scored pool] updates a binary
    strategy's round state after [replacing] (compared physically) were
    integrated into [merged]: surviving pair scores are kept, and only
    [merged] × survivors are scored afresh — O(pool) new scores per
    round instead of O(pool²).  Returns the new scored list and pool. *)
