(** A small LRU map for the rewrite-plan cache.

    Plain imperative structure — O(1) find/add via a hash table over an
    intrusive doubly-linked recency list.  {b Not} thread-safe: the
    server serialises access under its own cache mutex, so the
    structure stays free of locking policy. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity <= 0] creates a disabled cache: {!add} is a no-op and
    {!find} always misses. *)

val capacity : ('k, 'v) t -> int
val size : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** On a hit the entry becomes most-recently used. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Inserts (or replaces) the binding as most-recently used and returns
    the evicted least-recently-used binding, if the insertion pushed
    the cache over capacity. *)

val clear : ('k, 'v) t -> unit
