module Json = Obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  proto : Wire.proto;
}

let connect ?(proto = Wire.Json) addr =
  let fd =
    match addr with
    | Wire.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
    | Wire.Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
            | { Unix.h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found ->
                raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (inet, port))
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
  in
  let c =
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; proto }
  in
  (match proto with
  | Wire.Json -> ()
  | Wire.Bin -> (
      (* negotiate: send the magic, require it echoed back *)
      output_string c.oc Wire.magic;
      flush c.oc;
      match really_input_string c.ic (String.length Wire.magic) with
      | ack when String.equal ack Wire.magic -> ()
      | _ | (exception End_of_file) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          failwith "server did not acknowledge the binary protocol"));
  c

let close c =
  (* flushing then closing the fd once; the channels share it *)
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* The [line] in and the string out are canonical JSON whatever the
   connection's protocol: a binary connection re-frames the request
   value and renders the response value back, so callers (and the
   driver's byte-identity check) are protocol-independent. *)
let roundtrip c line =
  match c.proto with
  | Wire.Json ->
      output_string c.oc line;
      output_char c.oc '\n';
      flush c.oc;
      input_line c.ic
  | Wire.Bin -> (
      let v =
        match Json.of_string line with
        | Ok v -> v
        | Error e -> failwith (Printf.sprintf "frame is not valid JSON: %s" e)
      in
      output_string c.oc (Wire.encode_bin Wire.Request v);
      flush c.oc;
      let hdr = really_input_string c.ic 4 in
      match Wire.bin_length hdr with
      | Error e -> failwith ("bad response frame: " ^ e)
      | Ok n -> (
          let body = really_input_string c.ic n in
          match Wire.decode_bin (hdr ^ body) with
          | Ok (Wire.Response, v) -> Json.to_string v
          | Ok (Wire.Request, _) -> failwith "server sent a request frame"
          | Error e -> failwith ("bad response frame: " ^ e)))

let request c ?id ?view ?text ?base ?policy ?deadline_ms op =
  let line =
    roundtrip c (Wire.request_to_line ?id ?view ?text ?base ?policy ?deadline_ms op)
  in
  match Json.of_string line with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "unparseable response %S: %s" line e)

let is_ok resp = match Json.member "ok" resp with Some (Json.Bool b) -> b | _ -> false

let error_code resp =
  match Json.find [ "error"; "code" ] resp with
  | Some (Json.String c) -> Some c
  | _ -> None

type drive_stats = {
  sent : int;
  ok : int;
  failed : int;
  by_code : (string * int) list;
  mismatches : int;
  wall_s : float;
}

let drive ?proto ~addr ~conns ~frames () =
  let conns = max 1 conns in
  let n = Array.length frames in
  let mu = Mutex.create () in
  let first = Hashtbl.create 997 in
  let codes = Hashtbl.create 16 in
  let ok = ref 0 and failed = ref 0 and mismatches = ref 0 in
  let record frame resp =
    Mutex.protect mu (fun () ->
        (match Hashtbl.find_opt first frame with
        | None -> Hashtbl.add first frame resp
        | Some r -> if not (String.equal r resp) then incr mismatches);
        match Json.of_string resp with
        | Ok v when is_ok v -> incr ok
        | Ok v ->
            incr failed;
            let code = Option.value ~default:"?" (error_code v) in
            Hashtbl.replace codes code
              (1 + Option.value ~default:0 (Hashtbl.find_opt codes code))
        | Error _ ->
            incr failed;
            Hashtbl.replace codes "unparseable"
              (1 + Option.value ~default:0 (Hashtbl.find_opt codes "unparseable")))
  in
  let worker k () =
    let c = connect ?proto addr in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () ->
        let i = ref k in
        while !i < n do
          record frames.(!i) (roundtrip c frames.(!i));
          i := !i + conns
        done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init (min conns (max 1 n)) (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    sent = n;
    ok = !ok;
    failed = !failed;
    by_code =
      Hashtbl.fold (fun c k acc -> (c, k) :: acc) codes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    mismatches = !mismatches;
    wall_s;
  }

(* Responses in frame order, workers striding by connection as [drive]
   does — each index is written by exactly one worker, so no lock is
   needed around [out].  With [conns = 1] this is a plain sequential
   replay on a single connection. *)
let play ?proto ~addr ~conns frames =
  let conns = max 1 conns in
  let n = Array.length frames in
  let out = Array.make n "" in
  let worker k () =
    let c = connect ?proto addr in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () ->
        let i = ref k in
        while !i < n do
          out.(!i) <- roundtrip c frames.(!i);
          i := !i + conns
        done)
  in
  let threads =
    List.init (min conns (max 1 n)) (fun k -> Thread.create (worker k) ())
  in
  List.iter Thread.join threads;
  out

let pp_drive_stats ppf s =
  Format.fprintf ppf
    "sent %d: %d ok, %d errors%s; %d mismatch(es); %.3fs wall (%.0f req/s)"
    s.sent s.ok s.failed
    (match s.by_code with
    | [] -> ""
    | codes ->
        " ("
        ^ String.concat ", "
            (List.map (fun (c, k) -> Printf.sprintf "%s: %d" c k) codes)
        ^ ")")
    s.mismatches s.wall_s
    (if s.wall_s > 0. then float s.sent /. s.wall_s else 0.)
