module Json = Obs.Json

exception Connection_error of string
(* Every transport-layer failure — refused, reset, EOF mid-roundtrip,
   per-attempt timeout — maps to this one retryable exception; protocol
   failures stay [Failure] (fatal: retrying cannot help). *)

let conn_fail fmt = Printf.ksprintf (fun s -> raise (Connection_error s)) fmt

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  proto : Wire.proto;
}

let connect ?(proto = Wire.Json) ?timeout_ms addr =
  let pretty = Wire.addr_to_string addr in
  let connect_fd fd sockaddr =
    try Unix.connect fd sockaddr
    with e -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match e with
      | Unix.Unix_error (err, _, _) ->
          conn_fail "cannot connect to %s: %s" pretty (Unix.error_message err)
      | e -> raise e)
  in
  let fd =
    match addr with
    | Wire.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        connect_fd fd (Unix.ADDR_UNIX path);
        fd
    | Wire.Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                conn_fail "cannot connect to %s: cannot resolve %s" pretty host
            | { Unix.h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found ->
                conn_fail "cannot connect to %s: cannot resolve %s" pretty host)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        connect_fd fd (Unix.ADDR_INET (inet, port));
        fd
  in
  (* per-attempt timeout: a read or write that stalls past the budget
     fails the roundtrip as a [Connection_error] instead of hanging the
     caller on a dead peer *)
  (match timeout_ms with
  | Some ms when ms > 0 ->
      let s = float ms /. 1000. in
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
       with Unix.Unix_error _ -> ())
  | _ -> ());
  let c =
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; proto }
  in
  (match proto with
  | Wire.Json -> ()
  | Wire.Bin -> (
      (* negotiate: send the magic, require it echoed back *)
      match
        output_string c.oc Wire.magic;
        flush c.oc;
        really_input_string c.ic (String.length Wire.magic)
      with
      | ack when String.equal ack Wire.magic -> ()
      | _ | (exception (End_of_file | Sys_error _ | Unix.Unix_error _)) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          conn_fail "%s did not acknowledge the binary protocol" pretty));
  c

let close c =
  (* flushing then closing the fd once; the channels share it *)
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* The [line] in and the string out are canonical JSON whatever the
   connection's protocol: a binary connection re-frames the request
   value and renders the response value back, so callers (and the
   driver's byte-identity check) are protocol-independent. *)
let roundtrip_raw c line =
  match c.proto with
  | Wire.Json ->
      output_string c.oc line;
      output_char c.oc '\n';
      flush c.oc;
      input_line c.ic
  | Wire.Bin -> (
      let v =
        match Json.of_string line with
        | Ok v -> v
        | Error e -> failwith (Printf.sprintf "frame is not valid JSON: %s" e)
      in
      output_string c.oc (Wire.encode_bin Wire.Request v);
      flush c.oc;
      let hdr = really_input_string c.ic 4 in
      match Wire.bin_length hdr with
      | Error e -> failwith ("bad response frame: " ^ e)
      | Ok n -> (
          let body = really_input_string c.ic n in
          match Wire.decode_bin (hdr ^ body) with
          | Ok (Wire.Response, v) -> Json.to_string v
          | Ok (Wire.Request, _) -> failwith "server sent a request frame"
          | Error e -> failwith ("bad response frame: " ^ e)))

let roundtrip c line =
  try roundtrip_raw c line with
  | End_of_file -> conn_fail "connection closed by server mid-roundtrip"
  | Sys_error e -> conn_fail "connection error: %s" e
  | Unix.Unix_error (err, fn, _) ->
      conn_fail "connection error: %s (%s)" (Unix.error_message err) fn

let request c ?id ?view ?text ?base ?policy ?deadline_ms op =
  let line =
    roundtrip c (Wire.request_to_line ?id ?view ?text ?base ?policy ?deadline_ms op)
  in
  match Json.of_string line with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "unparseable response %S: %s" line e)

let is_ok resp = match Json.member "ok" resp with Some (Json.Bool b) -> b | _ -> false

let error_code resp =
  match Json.find [ "error"; "code" ] resp with
  | Some (Json.String c) -> Some c
  | _ -> None

(* {1 Failover} *)

type failover = {
  eps : Wire.addr array;
  fo_proto : Wire.proto;
  retry : Replicate.Backoff.policy;
  timeout_ms : int option;
  mutable conn : t option;
  mutable cur : int;  (** index into [eps] of the endpoint [conn] is to *)
  mutable failovers : int;
  mutable redirects : int;
}

(* The default retry policy takes a fresh jitter seed per handle:
   optional-argument defaults are evaluated at every call, so two clients
   built at the same instant still back off on different schedules
   instead of hammering a recovering leader in lockstep.  Tests that
   need reproducible delays pass [Replicate.Backoff.default]
   explicitly. *)
let failover ?(proto = Wire.Json) ?(retry = Replicate.Backoff.fresh ())
    ?timeout_ms endpoints =
  if endpoints = [] then invalid_arg "Client.failover: no endpoints";
  {
    eps = Array.of_list endpoints;
    fo_proto = proto;
    retry;
    timeout_ms;
    conn = None;
    cur = 0;
    failovers = 0;
    redirects = 0;
  }

let fo_drop f =
  (match f.conn with Some c -> (try close c with _ -> ()) | None -> ());
  f.conn <- None

let failover_close = fo_drop
let failover_stats f = (f.failovers, f.redirects)

(* Where a [not_leader] response points; [None] when the advertised
   address is absent or unparseable. *)
let advertised_leader resp =
  match Json.find [ "error"; "leader" ] resp with
  | Some (Json.String s) -> (
      match Wire.addr_of_string s with Ok a -> Some a | Error _ -> None)
  | _ -> None

let index_of_addr eps a =
  let n = Array.length eps in
  let rec go i = if i >= n then None else if eps.(i) = a then Some i else go (i + 1) in
  go 0

(* One logical roundtrip against whichever endpoint answers.  Transport
   failures ([Connection_error]) advance to the next endpoint under the
   backoff budget; a [not_leader] response jumps straight to the
   advertised leader (no sleep — the redirect is information, not a
   fault) but still consumes an attempt so a redirect loop terminates.
   When the budget runs out, the last response (or the transport error)
   is what the caller sees. *)
let failover_roundtrip f line =
  let delays = Array.of_list (Replicate.Backoff.delays f.retry) in
  let attempts = max 1 f.retry.Replicate.Backoff.attempts in
  let rec attempt k last_resp =
    let next_endpoint () =
      fo_drop f;
      f.cur <- (f.cur + 1) mod Array.length f.eps;
      f.failovers <- f.failovers + 1
    in
    let sleep_before_retry () =
      if k < attempts - 1 && k < Array.length delays then
        let d = delays.(k) in
        if d > 0. then Thread.delay (d /. 1000.)
    in
    if k >= attempts then
      match last_resp with
      | Some resp -> resp
      | None ->
          conn_fail "no endpoint answered after %d attempt(s) (tried %d failover(s))"
            attempts f.failovers
    else
      match
        let c =
          match f.conn with
          | Some c -> c
          | None ->
              let c =
                connect ~proto:f.fo_proto ?timeout_ms:f.timeout_ms f.eps.(f.cur)
              in
              f.conn <- Some c;
              c
        in
        roundtrip c line
      with
      | exception Connection_error _ ->
          next_endpoint ();
          sleep_before_retry ();
          attempt (k + 1) last_resp
      | resp -> (
          match Json.of_string resp with
          | Ok v when error_code v = Some "not_leader" ->
              f.redirects <- f.redirects + 1;
              fo_drop f;
              (match advertised_leader v with
              | Some a -> (
                  match index_of_addr f.eps a with
                  | Some i -> f.cur <- i
                  | None -> f.cur <- (f.cur + 1) mod Array.length f.eps)
              | None -> f.cur <- (f.cur + 1) mod Array.length f.eps);
              attempt (k + 1) (Some resp)
          | _ -> resp)
  in
  attempt 0 None

type drive_stats = {
  sent : int;
  ok : int;
  failed : int;
  by_code : (string * int) list;
  mismatches : int;
  wall_s : float;
}

(* Per-worker transport: a plain connection to [addr], or — when
   [endpoints] is given — a failover handle walking the endpoint list,
   so the whole load harness (and every scenario leg built on it)
   tolerates a dying server without changing what it asserts. *)
let worker_transport ?proto ?endpoints ?retry ?timeout_ms addr =
  match endpoints with
  | Some (_ :: _ as eps) ->
      let f = failover ?proto ?retry ?timeout_ms eps in
      (failover_roundtrip f, fun () -> failover_close f)
  | Some [] | None ->
      let c = connect ?proto ?timeout_ms addr in
      (roundtrip c, fun () -> close c)

let drive ?proto ?endpoints ?retry ?timeout_ms ~addr ~conns ~frames () =
  let conns = max 1 conns in
  let n = Array.length frames in
  let mu = Mutex.create () in
  let first = Hashtbl.create 997 in
  let codes = Hashtbl.create 16 in
  let ok = ref 0 and failed = ref 0 and mismatches = ref 0 in
  let record frame resp =
    Mutex.protect mu (fun () ->
        (match Hashtbl.find_opt first frame with
        | None -> Hashtbl.add first frame resp
        | Some r -> if not (String.equal r resp) then incr mismatches);
        match Json.of_string resp with
        | Ok v when is_ok v -> incr ok
        | Ok v ->
            incr failed;
            let code = Option.value ~default:"?" (error_code v) in
            Hashtbl.replace codes code
              (1 + Option.value ~default:0 (Hashtbl.find_opt codes code))
        | Error _ ->
            incr failed;
            Hashtbl.replace codes "unparseable"
              (1 + Option.value ~default:0 (Hashtbl.find_opt codes "unparseable")))
  in
  let worker k () =
    let rt, fin = worker_transport ?proto ?endpoints ?retry ?timeout_ms addr in
    Fun.protect ~finally:fin (fun () ->
        let i = ref k in
        while !i < n do
          record frames.(!i) (rt frames.(!i));
          i := !i + conns
        done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init (min conns (max 1 n)) (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    sent = n;
    ok = !ok;
    failed = !failed;
    by_code =
      Hashtbl.fold (fun c k acc -> (c, k) :: acc) codes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    mismatches = !mismatches;
    wall_s;
  }

(* Responses in frame order, workers striding by connection as [drive]
   does — each index is written by exactly one worker, so no lock is
   needed around [out].  With [conns = 1] this is a plain sequential
   replay on a single connection. *)
let play ?proto ?endpoints ?retry ?timeout_ms ~addr ~conns frames =
  let conns = max 1 conns in
  let n = Array.length frames in
  let out = Array.make n "" in
  let worker k () =
    let rt, fin = worker_transport ?proto ?endpoints ?retry ?timeout_ms addr in
    Fun.protect ~finally:fin (fun () ->
        let i = ref k in
        while !i < n do
          out.(!i) <- rt frames.(!i);
          i := !i + conns
        done)
  in
  let threads =
    List.init (min conns (max 1 n)) (fun k -> Thread.create (worker k) ())
  in
  List.iter Thread.join threads;
  out

let pp_drive_stats ppf s =
  Format.fprintf ppf
    "sent %d: %d ok, %d errors%s; %d mismatch(es); %.3fs wall (%.0f req/s)"
    s.sent s.ok s.failed
    (match s.by_code with
    | [] -> ""
    | codes ->
        " ("
        ^ String.concat ", "
            (List.map (fun (c, k) -> Printf.sprintf "%s: %d" c k) codes)
        ^ ")")
    s.mismatches s.wall_s
    (if s.wall_s > 0. then float s.sent /. s.wall_s else 0.)
