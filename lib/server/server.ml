(* The daemon core.  One thread per connection; data operations are
   executed on a shared Par pool behind a bounded in-flight counter.
   See server.mli for the full model and docs/SERVING.md for the wire
   protocol. *)

module Wire = Wire
module Lru = Lru
module Client = Client
module View = View
module Json = Obs.Json

(* ---- observability ------------------------------------------------ *)
(* Mirrored into plain atomics (see [stats]) so `health` can report
   them even while lib/obs is disabled. *)

let c_requests = Obs.Counter.make "server.requests"
let c_ok = Obs.Counter.make "server.responses_ok"
let c_err = Obs.Counter.make "server.responses_err"
let c_overloaded = Obs.Counter.make "server.overloaded"
let c_deadline = Obs.Counter.make "server.deadline_exceeded"
let c_cache_hits = Obs.Counter.make "server.cache_hits"
let c_cache_misses = Obs.Counter.make "server.cache_misses"
let c_cache_evictions = Obs.Counter.make "server.cache_evictions"
let c_connections = Obs.Counter.make "server.connections"

let op_histograms =
  List.map
    (fun op -> (op, Obs.Histogram.make (Printf.sprintf "server.%s_ms" op)))
    [ "query"; "rewrite"; "update"; "migrate" ]

let observe_op op ms =
  match List.assoc_opt op op_histograms with
  | Some h -> Obs.Histogram.observe h ms
  | None -> ()

(* ---- session ------------------------------------------------------ *)

type session = {
  schemas : Ecr.Schema.t list;
  result : Integrate.Result.t;
  component_stores : (Ecr.Schema.t * Instance.Store.t) list;
  initial_merged : Instance.Store.t;
  migration : Query.Migrate.report;
  journal_dir : string option;
}

let make_session ?journal_dir ~result ~stores () =
  let merged, migration =
    Query.Migrate.run result.Integrate.Result.mapping
      ~integrated:result.Integrate.Result.schema stores
  in
  {
    schemas = List.map fst stores;
    result;
    component_stores = stores;
    initial_merged = merged;
    migration;
    journal_dir;
  }

type setup = {
  schema_files : string list;
  script : string option;
  data : string option;
  journal : string option;
  name : string option;
}

exception Setup of string

let setup_fail fmt = Printf.ksprintf (fun s -> raise (Setup s)) fmt

let load_session setup =
  try
    let schemas =
      match setup.schema_files with
      | [] -> setup_fail "no schema files given"
      | files ->
          List.concat_map
            (fun file ->
              try Ddl.Parser.schemas_of_file file
              with Ddl.Parser.Error (msg, line, col) ->
                setup_fail "%s:%d:%d: %s" file line col msg)
            files
    in
    List.iter
      (fun s ->
        match Ecr.Schema.validate s with
        | [] -> ()
        | errors ->
            setup_fail "%s"
              (String.concat "\n" (List.map Ecr.Schema.error_to_string errors)))
      schemas;
    let directives =
      match setup.script with
      | None -> []
      | Some path -> (
          try Integrate.Script.parse_file path
          with Integrate.Script.Parse_error _ as e ->
            setup_fail "%s" (Integrate.Script.parse_error_to_string e))
    in
    let items =
      List.map (fun s -> `Schema s) schemas
      @ List.map (fun d -> `Directive d) directives
    in
    let start, base, jopt =
      match setup.journal with
      | None -> (0, Integrate.Workspace.empty, None)
      | Some dir ->
          (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
           with Unix.Unix_error (e, _, _) ->
             setup_fail "cannot create journal directory %s: %s" dir
               (Unix.error_message e));
          let recovery, j = Journal.open_ (Filename.concat dir "serve.journal") in
          if recovery.Journal.seq > List.length items then
            setup_fail
              "journal records %d operations but the inputs only define %d — \
               did the DDL files or the script change?"
              recovery.Journal.seq (List.length items);
          (recovery.Journal.seq, recovery.Journal.workspace, Some j)
    in
    let ws, _ =
      List.fold_left
        (fun (ws, i) item ->
          if i < start then (ws, i + 1) (* recovered from the journal *)
          else begin
            let ws =
              match item with
              | `Schema s -> Integrate.Workspace.add_schema s ws
              | `Directive d -> (
                  match Integrate.Script.apply_one d ws with
                  | Ok ws -> ws
                  | Error e ->
                      setup_fail "%s" (Integrate.Script.apply_error_to_string e))
            in
            (match jopt with
            | Some j ->
                let op =
                  match item with
                  | `Schema s -> Integrate.Op.Add_schema s
                  | `Directive d -> Integrate.Op.of_directive d
                in
                Journal.append ~after:ws j op
            | None -> ());
            (ws, i + 1)
          end)
        (base, 0) items
    in
    (match jopt with
    | Some j ->
        (* setup complete: leave one compact snapshot for fast restart *)
        Journal.compact j ws;
        Journal.close j
    | None -> ());
    let result = Integrate.Workspace.integrate ?name:setup.name ws in
    let stores =
      match setup.data with
      | Some path -> (
          try Instance.Loader.load_file ~schemas path
          with Instance.Loader.Error _ as e ->
            setup_fail "%s" (Instance.Loader.error_to_string e))
      | None -> List.map (fun s -> (s, Instance.Store.create s)) schemas
    in
    Ok (make_session ?journal_dir:setup.journal ~result ~stores ())
  with Setup msg -> Error msg

(* ---- server state ------------------------------------------------- *)

type role = Leader | Follower of Wire.addr

type repl_config = {
  role : role;
  ack_replicas : int;
  ack_timeout_ms : int;
  batch : int;
  wait_ms : int;
  throttle_ms : int;
  compact_every : int;
  liveness_s : float;
}

let default_repl =
  {
    role = Leader;
    ack_replicas = 0;
    ack_timeout_ms = 10_000;
    batch = 64;
    wait_ms = 200;
    throttle_ms = 0;
    compact_every = 0;
    liveness_s = 30.;
  }

type config = {
  listen : Wire.addr;
  jobs : int;
  queue : int;
  deadline_ms : int option;
  cache : int;
  debug : bool;
  repl : repl_config;
}

let default_config listen =
  {
    listen;
    jobs = Par.default_jobs ();
    queue = 64;
    deadline_ms = None;
    cache = 128;
    debug = false;
    repl = default_repl;
  }

type stats = {
  requests : int;
  ok : int;
  errors : int;
  overloaded : int;
  deadline_exceeded : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  connections : int;
}

type plan =
  | View_plan of Query.Ast.t * (Query.Eval.row list -> Query.Eval.row list)
  | Global_plan of Query.Rewrite.component_query list

type t = {
  cfg : config;
  session : session;
  listen_fd : Unix.file_descr;
  bound_port : int option;
  pool : Par.pool;
  mutable merged : Instance.Store.t;  (** under [state_mu] *)
  state_mu : Mutex.t;
  cache : (string, plan) Lru.t;  (** under [cache_mu] *)
  cache_mu : Mutex.t;
  cache_epoch : int Atomic.t;
      (** bumped by every mutation; part of every plan key, so cached
          plans from before a state change can never be served after it *)
  views : View.t;  (** under [state_mu], like the store they index *)
  mutable viewlog : Journal.Frames.t option;  (** under [state_mu] *)
  repl_log : Replicate.Log.t option;  (** [Some] iff this node leads *)
  repl_mu : Mutex.t;
      (** serializes mutating ops end to end (execute, then append to
          [repl_log] on success), so log order is application order;
          compaction runs under it too, so a snapshot never interleaves
          with a mutation *)
  node_id : string;
      (** this node's stable replication identity: read from (or first
          written to) DIR/node_id when journalled, generated per process
          otherwise.  Sent in [repl_handshake]; the leader keys acks by
          it, never by a transport address *)
  snap_mu : Mutex.t;
  mutable snapshot : (int * string) option;
      (** the latest state snapshot (seq, payload) a leader serves to
          catching-up followers; under [snap_mu] *)
  repl_progress : Replicate.Follower.progress;  (** follower tail state *)
  mutable follower_thread : Thread.t option;  (** under [conns_mu] *)
  inflight : int Atomic.t;
  stop_requested : bool Atomic.t;  (** accept loop should wind down *)
  stopping : bool Atomic.t;  (** drain started: reject new data ops *)
  conns_mu : Mutex.t;
  live_conns : (int, Unix.file_descr) Hashtbl.t;  (** under [conns_mu] *)
  mutable live_threads : (int * Thread.t) list;  (** under [conns_mu] *)
  mutable finished_threads : Thread.t list;  (** under [conns_mu] *)
  mutable next_conn : int;
  t0 : float;
  (* the server's own counters, live even when lib/obs is off *)
  s_requests : int Atomic.t;
  s_ok : int Atomic.t;
  s_err : int Atomic.t;
  s_overloaded : int Atomic.t;
  s_deadline : int Atomic.t;
  s_hits : int Atomic.t;
  s_misses : int Atomic.t;
  s_evictions : int Atomic.t;
  s_conns : int Atomic.t;
  mutable serve_thread : Thread.t option;
  mutable drained : bool;  (** under [conns_mu] *)
}

let stats t =
  {
    requests = Atomic.get t.s_requests;
    ok = Atomic.get t.s_ok;
    errors = Atomic.get t.s_err;
    overloaded = Atomic.get t.s_overloaded;
    deadline_exceeded = Atomic.get t.s_deadline;
    cache_hits = Atomic.get t.s_hits;
    cache_misses = Atomic.get t.s_misses;
    cache_evictions = Atomic.get t.s_evictions;
    connections = Atomic.get t.s_conns;
  }

let port t = t.bound_port

(* ---- socket setup ------------------------------------------------- *)

let bind_listen addr =
  match addr with
  | Wire.Unix_path path ->
      (* a stale socket file from a crashed run would fail the bind *)
      (match (Unix.lstat path).Unix.st_kind with
      | Unix.S_SOCK -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> setup_fail "listen path %s exists and is not a socket" path
      | exception Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      (fd, None)
  | Wire.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> setup_fail "cannot resolve %s" host
          | { Unix.h_addr_list; _ } -> h_addr_list.(0)
          | exception Not_found -> setup_fail "cannot resolve %s" host)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 128;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Some p
        | _ -> None
      in
      (fd, bound)

(* The node's replication identity.  It must be stable across restarts
   of the same data directory (so a rejoining follower re-registers as
   itself instead of double-counting toward an ack quorum) and must NOT
   be a transport address (two nodes can advertise the same address
   through NAT/containers, and a restart can change an ephemeral port).
   With a journal directory the id lives in DIR/node_id; without one
   the node is ephemeral by construction, so a per-process id is the
   correct lifetime. *)
let fresh_node_id () =
  let host = try Unix.gethostname () with _ -> "unknown" in
  let pid = try Unix.getpid () with _ -> 0 in
  let now = Unix.gettimeofday () in
  Printf.sprintf "n-%08x"
    (Hashtbl.hash (host, pid, now, Unix.times ()) land 0xffffffff)

let load_node_id journal_dir =
  match journal_dir with
  | None -> fresh_node_id ()
  | Some dir -> (
      let path = Filename.concat dir "node_id" in
      match
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
            String.trim (input_line ic))
      with
      | id when id <> "" -> id
      | _ | (exception Sys_error _) | (exception End_of_file) -> (
          let id = fresh_node_id () in
          match
            (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
             with Unix.Unix_error _ -> ());
            let oc = open_out path in
            Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
                output_string oc (id ^ "\n"))
          with
          | () -> id
          | exception Sys_error _ -> id))

(* Binds the socket and builds the record; the view catalog is replayed
   by [create] below, which needs the plan helpers defined after this. *)
let create_bound session cfg =
  match bind_listen cfg.listen with
  | exception Setup msg -> Error msg
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s (%s %s)"
           (Wire.addr_to_string cfg.listen)
           (Unix.error_message e) fn arg)
  | listen_fd, bound_port ->
      Ok
        {
          cfg = { cfg with jobs = max 1 cfg.jobs; queue = max 1 cfg.queue };
          session;
          listen_fd;
          bound_port;
          pool = Par.create ~jobs:(max 1 cfg.jobs);
          merged = session.initial_merged;
          state_mu = Mutex.create ();
          cache = Lru.create ~capacity:(max 0 cfg.cache);
          cache_mu = Mutex.create ();
          cache_epoch = Atomic.make 0;
          views = View.create ();
          viewlog = None;
          repl_log =
            (match cfg.repl.role with
            | Follower _ -> None
            | Leader ->
                let persist =
                  Option.map
                    (fun dir -> Filename.concat dir "repl.journal")
                    session.journal_dir
                in
                Some
                  (Replicate.Log.create ?persist
                     ~liveness_s:cfg.repl.liveness_s ()));
          repl_mu = Mutex.create ();
          node_id = load_node_id session.journal_dir;
          snap_mu = Mutex.create ();
          snapshot = None;
          repl_progress = Replicate.Follower.make_progress ();
          follower_thread = None;
          inflight = Atomic.make 0;
          stop_requested = Atomic.make false;
          stopping = Atomic.make false;
          conns_mu = Mutex.create ();
          live_conns = Hashtbl.create 64;
          live_threads = [];
          finished_threads = [];
          next_conn = 0;
          t0 = Unix.gettimeofday ();
          s_requests = Atomic.make 0;
          s_ok = Atomic.make 0;
          s_err = Atomic.make 0;
          s_overloaded = Atomic.make 0;
          s_deadline = Atomic.make 0;
          s_hits = Atomic.make 0;
          s_misses = Atomic.make 0;
          s_evictions = Atomic.make 0;
          s_conns = Atomic.make 0;
          serve_thread = None;
          drained = false;
        }

(* ---- request execution -------------------------------------------- *)

exception Deadline

let check_deadline ~t_start ~deadline =
  match deadline with
  | Some ms when (Unix.gettimeofday () -. t_start) *. 1000. > float ms ->
      raise Deadline
  | _ -> ()

let find_view t name =
  List.find_opt
    (fun s -> String.equal (Ecr.Name.to_string (Ecr.Schema.name s)) name)
    t.session.schemas

let require_view t req =
  match req.Wire.view with
  | None -> None
  | Some name -> (
      match find_view t name with
      | Some s -> Some s
      | None -> setup_fail "unknown view %s" name (* remapped below *))

let require_text op req =
  match req.Wire.text with
  | Some text -> text
  | None ->
      raise
        (Invalid_argument
           (Printf.sprintf "op %S needs a \"%s\" field" op
              (if op = "update" then "u" else "q")))

let cached_plan t key compute =
  if Lru.capacity t.cache = 0 then compute ()
  else
    let hit = Mutex.protect t.cache_mu (fun () -> Lru.find t.cache key) in
    match hit with
    | Some plan ->
        Atomic.incr t.s_hits;
        Obs.Counter.incr c_cache_hits;
        plan
    | None ->
        Atomic.incr t.s_misses;
        Obs.Counter.incr c_cache_misses;
        let plan = compute () in
        let evicted =
          Mutex.protect t.cache_mu (fun () -> Lru.add t.cache key plan)
        in
        (match evicted with
        | Some _ ->
            Atomic.incr t.s_evictions;
            Obs.Counter.incr c_cache_evictions
        | None -> ());
        plan

(* Plans are keyed by (cache epoch, view class, query shape), the shape
   being the canonical printing of the parsed query.  Printing
   normalises whitespace, keyword case and predicate parenthesisation,
   so textually different spellings of one query share a plan.  The
   epoch is bumped by every mutation ([update], [migrate] and the
   view-catalog ops — on a follower too, via the replicated-apply
   path), which structurally prevents a plan computed against
   pre-mutation state from being served afterwards: entries from an
   older epoch can never be looked up again and simply age out of the
   LRU.  Today's plans happen to depend only on the session mapping,
   but that is an accident of the current rewrite engine, not a
   contract — a stale-plan bug here surfaces as silently wrong answer
   bytes after [migrate], which is the worst possible failure mode for
   a differential tool. *)
let plan_epoch t = Atomic.get t.cache_epoch

let view_plan t view q =
  let key =
    Printf.sprintf "e%d:view:%s\x00%s" (plan_epoch t)
      (Ecr.Name.to_string (Ecr.Schema.name view))
      (Query.Ast.to_string q)
  in
  match
    cached_plan t key (fun () ->
        let q', back =
          Query.Rewrite.to_integrated t.session.result.Integrate.Result.mapping
            ~view q
        in
        View_plan (q', back))
  with
  | View_plan (q', back) -> (q', back)
  | Global_plan _ -> assert false (* keys are namespaced by "view:"/"global:" *)

let global_plan t q =
  let key =
    Printf.sprintf "e%d:global:\x00%s" (plan_epoch t) (Query.Ast.to_string q)
  in
  match
    cached_plan t key (fun () ->
        Global_plan
          (Query.Rewrite.to_components t.session.result.Integrate.Result.mapping
             ~integrated:t.session.result.Integrate.Result.schema q))
  with
  | Global_plan parts -> parts
  | View_plan _ -> assert false

(* ---- the view catalog --------------------------------------------- *)

exception Op_error of Wire.error_code * string
(* Internal to request execution: a typed failure raised where a
   payload would otherwise be built; [execute] maps it to an error
   response. *)

let op_fail code fmt = Printf.ksprintf (fun s -> raise (Op_error (code, s))) fmt

(* The catalog is persisted as its own framed log (DIR/views.journal,
   next to the setup journal): one JSON payload per define/drop,
   replayed on restart and compacted to the live definitions. *)
let viewlog_magic = "SITVCAT1"

let view_define_payload ~name ~base ~policy ~source =
  Json.to_string
    (Json.Obj
       ([ ("a", Json.String "define"); ("name", Json.String name) ]
       @ (match base with
         | Some b -> [ ("base", Json.String b) ]
         | None -> [])
       @ [
           ("policy", Json.String (View.policy_to_string policy));
           ("q", Json.String source);
         ]))

let view_drop_payload name =
  Json.to_string
    (Json.Obj [ ("a", Json.String "drop"); ("name", Json.String name) ])

let view_payload_valid p =
  match Json.of_string p with
  | Ok (Json.Obj _ as o) -> (
      match (Json.member "a" o, Json.member "name" o) with
      | Some (Json.String ("define" | "drop")), Some (Json.String _) -> true
      | _ -> false)
  | _ -> false

let log_view_payload t payload =
  match t.viewlog with
  | None -> ()
  | Some frames -> Journal.Frames.append frames payload

(* Parse, rewrite (through [base] if given) and register one view
   definition.  [log:false] only while replaying the catalog log. *)
let define_view_core t ~log ~name ~base ~policy ~source =
  if find_view t name <> None then
    Error
      ( Wire.Bad_request,
        Printf.sprintf "view name %s collides with a component schema" name )
  else
    match Query.Parser.query_of_string source with
    | exception Query.Parser.Error msg -> Error (Wire.Parse_error, msg)
    | q -> (
        let plan =
          match base with
          | None -> Ok (q, fun rows -> rows)
          | Some b -> (
              match find_view t b with
              | None ->
                  Error (Wire.Unknown_view, Printf.sprintf "unknown view %s" b)
              | Some view -> (
                  match view_plan t view q with
                  | plan -> Ok plan
                  | exception Query.Rewrite.Unmapped msg ->
                      Error (Wire.Unmapped, msg)))
        in
        match plan with
        | Error _ as e -> e
        | Ok (q', post) ->
            Mutex.protect t.state_mu (fun () ->
                match
                  View.define t.views ~name ?base ~policy ~source ~query:q'
                    ~post t.merged
                with
                | Error msg -> Error (Wire.Bad_request, msg)
                | Ok () ->
                    if log then
                      log_view_payload t
                        (view_define_payload ~name ~base ~policy ~source);
                    Ok ()))

let define_view t ~name ?base ?(policy = View.Lazy) source =
  match define_view_core t ~log:true ~name ~base ~policy ~source with
  | Ok () -> Ok ()
  | Error (_, msg) -> Error msg

(* Rewrite the catalog log down to one define payload per live view. *)
let compact_viewlog t =
  match t.viewlog with
  | None -> ()
  | Some frames ->
      let payloads =
        Mutex.protect t.state_mu (fun () ->
            List.map
              (fun (i : View.info) ->
                view_define_payload ~name:i.View.name ~base:i.View.base
                  ~policy:i.View.policy ~source:i.View.source)
              (View.infos t.views))
      in
      Journal.Frames.rewrite frames payloads

let replay_view_payload t payload =
  match Json.of_string payload with
  | Error _ -> ()
  | Ok o -> (
      let str k =
        match Json.member k o with Some (Json.String s) -> Some s | _ -> None
      in
      match (str "a", str "name") with
      | Some "define", Some name ->
          let source = Option.value ~default:"" (str "q") in
          let policy =
            Option.value ~default:View.Lazy
              (Option.bind (str "policy") View.policy_of_string)
          in
          (* a definition the current session can no longer satisfy
             (changed schemas, changed mappings) is dropped, same as a
             view whose query stops typechecking across a reset *)
          ignore
            (define_view_core t ~log:false ~name ~base:(str "base") ~policy
               ~source)
      | Some "drop", Some name ->
          ignore (Mutex.protect t.state_mu (fun () -> View.drop t.views name))
      | _ -> ())

let load_views t =
  match t.session.journal_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir "views.journal" in
      let recovery, frames =
        Journal.Frames.open_ ~fsync:Journal.Frames.Always
          ~validate:view_payload_valid ~magic:viewlog_magic path
      in
      List.iter (replay_view_payload t) recovery.Journal.Frames.payloads;
      t.viewlog <- Some frames;
      compact_viewlog t

(* [create] itself is defined after [run_op]: a restarted leader must
   replay its recovered replication log through the op dispatch. *)

let view_info_json (i : View.info) =
  Json.Obj
    [
      ("name", Json.String i.View.name);
      ( "base",
        match i.View.base with Some b -> Json.String b | None -> Json.Null );
      ("policy", Json.String (View.policy_to_string i.View.policy));
      ("q", Json.String i.View.source);
      ("fresh", Json.Bool i.View.fresh);
      ("rows", Json.Int i.View.rows);
      ("hits", Json.Int i.View.hits);
      ("stale_marks", Json.Int i.View.stale_marks);
      ("refreshes", Json.Int i.View.refreshes);
      ("delta_appends", Json.Int i.View.delta_appends);
      ("last_refresh_ms", Json.Float i.View.last_refresh_ms);
    ]

let views_payload t =
  let infos = Mutex.protect t.state_mu (fun () -> View.infos t.views) in
  [
    ("views", Json.List (List.map view_info_json infos));
    ("count", Json.Int (List.length infos));
  ]

let migration_report_json (r : Query.Migrate.report) =
  Json.Obj
    [
      ("entities_in", Json.Int r.Query.Migrate.entities_in);
      ("entities_out", Json.Int r.Query.Migrate.entities_out);
      ("fused", Json.Int r.Query.Migrate.fused);
      ("links_in", Json.Int r.Query.Migrate.links_in);
      ("links_out", Json.Int r.Query.Migrate.links_out);
    ]

let named_stores t =
  List.map
    (fun (s, st) -> (Ecr.Schema.name s, st))
    t.session.component_stores

(* The payload of one data operation; runs on a pool domain.  Raises
   only the typed query-layer exceptions (mapped to error responses by
   [execute]) — anything else is a bug answered as [internal]. *)
let run_op_inner t (req : Wire.request) =
  match req.Wire.op with
  | "query" -> (
      match (req.Wire.view, req.Wire.text) with
      | Some name, None when find_view t name = None ->
          (* a materialized read: the view name addresses the extent *)
          Mutex.protect t.state_mu (fun () ->
              match View.read t.views name t.merged with
              | Error msg -> op_fail Wire.Unknown_view "%s" msg
              | Ok (rows, fresh) ->
                  [
                    ("rows", Wire.rows_to_json rows);
                    ("count", Json.Int (List.length rows));
                    ("fresh", Json.Bool fresh);
                  ])
      | _ -> (
          let text = require_text "query" req in
          let q = Query.Parser.query_of_string text in
          match require_view t req with
          | Some view -> (
              let q', back = view_plan t view q in
              (* an ad-hoc query whose shape matches a registered view is
                 served from the materialized extent when that cannot be
                 told apart from evaluating (fresh, or freshened here) *)
              let served =
                Mutex.protect t.state_mu (fun () ->
                    match View.lookup_shape t.views q' t.merged with
                    | Some raw -> Ok (back raw)
                    | None -> Error t.merged)
              in
              let rows =
                match served with
                | Ok rows -> rows
                | Error store -> back (Query.Eval.run q' store)
              in
              [
                ("rows", Wire.rows_to_json rows);
                ("count", Json.Int (List.length rows));
              ])
          | None ->
              let parts = global_plan t q in
              let rows =
                Query.Rewrite.run_components parts ~stores:(named_stores t)
              in
              [
                ("rows", Wire.rows_to_json rows);
                ("count", Json.Int (List.length rows));
              ]))
  | "rewrite" -> (
      let text = require_text "rewrite" req in
      let q = Query.Parser.query_of_string text in
      match require_view t req with
      | Some view ->
          let q', _ = view_plan t view q in
          [ ("query", Json.String (Query.Ast.to_string q')) ]
      | None ->
          let parts = global_plan t q in
          [
            ( "components",
              Json.List
                (List.map
                   (fun part ->
                     Json.Obj
                       [
                         ( "component",
                           Json.String
                             (Ecr.Name.to_string part.Query.Rewrite.component) );
                         ( "query",
                           Json.String
                             (Query.Ast.to_string part.Query.Rewrite.query) );
                       ])
                   parts) );
          ])
  | "update" -> (
      let text = require_text "update" req in
      match require_view t req with
      | None ->
          raise (Invalid_argument "op \"update\" needs a \"view\" field")
      | Some view ->
          let op = Query.Parser.update_of_string text in
          let op' =
            Query.Update.to_integrated t.session.result.Integrate.Result.mapping
              ~view op
          in
          let affected =
            Mutex.protect t.state_mu (fun () ->
                let merged', n = Query.Update.apply op' t.merged in
                t.merged <- merged';
                (* maintain the materialized extents against the store
                   they were computed over, before the lock is released *)
                View.notify_update t.views op' merged';
                n)
          in
          [
            ("translated", Json.String (Query.Update.to_string op'));
            ("affected", Json.Int affected);
          ])
  | "migrate" ->
      (* re-derive the integrated instance from the component stores,
         discarding every update applied since the last migration *)
      let merged, report =
        Query.Migrate.run t.session.result.Integrate.Result.mapping
          ~integrated:t.session.result.Integrate.Result.schema
          t.session.component_stores
      in
      let dropped =
        Mutex.protect t.state_mu (fun () ->
            t.merged <- merged;
            View.notify_reset t.views merged)
      in
      if dropped <> [] then compact_viewlog t;
      [
        ("report", migration_report_json report);
        ("views_dropped", Json.List (List.map (fun n -> Json.String n) dropped));
      ]
  | "define_view" -> (
      let name =
        match req.Wire.view with
        | Some v -> v
        | None ->
            raise (Invalid_argument "op \"define_view\" needs a \"view\" field")
      in
      let source = require_text "define_view" req in
      let policy =
        match req.Wire.policy with
        | None -> View.Lazy
        | Some p -> (
            match View.policy_of_string p with
            | Some p -> p
            | None ->
                raise
                  (Invalid_argument
                     (Printf.sprintf
                        "bad policy %S (expected eager, lazy or manual)" p)))
      in
      match
        define_view_core t ~log:true ~name ~base:req.Wire.base ~policy ~source
      with
      | Error (code, msg) -> raise (Op_error (code, msg))
      | Ok () ->
          let rows =
            Mutex.protect t.state_mu (fun () ->
                match View.info t.views name with
                | Some i -> i.View.rows
                | None -> 0)
          in
          [
            ("defined", Json.String name);
            ("policy", Json.String (View.policy_to_string policy));
            ("rows", Json.Int rows);
          ])
  | "drop_view" -> (
      let name =
        match req.Wire.view with
        | Some v -> v
        | None ->
            raise (Invalid_argument "op \"drop_view\" needs a \"view\" field")
      in
      Mutex.protect t.state_mu (fun () ->
          if View.drop t.views name then begin
            log_view_payload t (view_drop_payload name);
            [ ("dropped", Json.String name) ]
          end
          else op_fail Wire.Unknown_view "unknown view %s" name))
  | "refresh_view" -> (
      let name =
        match req.Wire.view with
        | Some v -> v
        | None ->
            raise (Invalid_argument "op \"refresh_view\" needs a \"view\" field")
      in
      Mutex.protect t.state_mu (fun () ->
          match View.refresh t.views name t.merged with
          | Error msg -> op_fail Wire.Unknown_view "%s" msg
          | Ok ms ->
              [ ("refreshed", Json.String name); ("ms", Json.Float ms) ]))
  | "sleep" ->
      (* test-only (config.debug): hold a queue slot for a chosen time *)
      let ms =
        match req.Wire.text with
        | Some s -> Option.value ~default:0 (int_of_string_opt (String.trim s))
        | None -> 0
      in
      Unix.sleepf (float ms /. 1000.);
      [ ("slept_ms", Json.Int ms) ]
  | op -> raise (Invalid_argument (Printf.sprintf "no such field op %S" op))

(* Every mutation that completes opens a new cache epoch — whether it
   ran on the leader's write path or through the follower's
   replicated-apply path, both of which land here. *)
let run_op t (req : Wire.request) =
  let payload = run_op_inner t req in
  if Wire.mutating req.Wire.op then Atomic.incr t.cache_epoch;
  payload

(* ---- replication -------------------------------------------------- *)

(* The replication log stores the canonical request line of every
   acknowledged mutation, stripped of client-only fields (id,
   deadline_ms) so identical mutations replicate as identical bytes. *)
let repl_line (req : Wire.request) =
  Wire.request_to_line ?view:req.Wire.view ?text:req.Wire.text
    ?base:req.Wire.base ?policy:req.Wire.policy req.Wire.op

(* Apply one replicated frame to local state — the follower tail path
   and the leader's restart self-replay.  Bypasses the queue and the
   follower write gate by design: the stream is already serialized and
   already acknowledged by the leader. *)
let apply_repl t _seq line =
  match Wire.request_of_line line with
  | Error (_, e) -> Error e
  | Ok req -> (
      match run_op t req with
      | (_ : (string * Json.t) list) -> Ok ()
      | exception e -> Error (Printexc.to_string e))

(* A leader restarting over a journal directory rebuilds its runtime
   state by replaying the recovered replication log over the setup
   snapshot — the same snapshot + log-shipping a follower does over the
   wire.  Frames that no longer apply (a define_view already recovered
   from views.journal) are skipped: the catalog replay and the history
   replay converge on the same live set. *)
let replay_repl_log t ~from =
  match t.repl_log with
  | None -> ()
  | Some log ->
      for s = from to Replicate.Log.seq log do
        match Replicate.Log.get log s with
        | None -> ()
        | Some line -> ignore (apply_repl t s line)
      done

(* ---- state snapshots ---------------------------------------------- *)

(* A snapshot is the full serving state at a log seq: the merged store
   (as Instance.Loader text, whose round-trip preserves query-answer
   bytes) plus the view catalog with each materialized extent and
   freshness flag carried {e verbatim} — a Manual view legitimately
   serves a stale extent, and its [fresh] flag is part of read-response
   bytes, so re-deriving extents on the installing node would change
   what its clients see.  Component stores are not included: they are
   immutable at runtime, and every node rebuilds them from its own
   session inputs.

   Values inside view rows use a tagged encoding ([{"s":..}] / ["i"] /
   ["r"] / ["b"] / ["d"] / [null]) rather than [Wire.value_to_json],
   which flattens [Date] and [Str] into the same JSON string and could
   not be decoded back. *)

let tagged_of_value = function
  | Instance.Value.Null -> Json.Null
  | Instance.Value.Str s -> Json.Obj [ ("s", Json.String s) ]
  | Instance.Value.Int i -> Json.Obj [ ("i", Json.Int i) ]
  | Instance.Value.Real r -> Json.Obj [ ("r", Json.Float r) ]
  | Instance.Value.Bool b -> Json.Obj [ ("b", Json.Bool b) ]
  | Instance.Value.Date (y, m, d) ->
      Json.Obj [ ("d", Json.List [ Json.Int y; Json.Int m; Json.Int d ]) ]

let value_of_tagged = function
  | Json.Null -> Some Instance.Value.Null
  | Json.Obj [ ("s", Json.String s) ] -> Some (Instance.Value.Str s)
  | Json.Obj [ ("i", Json.Int i) ] -> Some (Instance.Value.Int i)
  | Json.Obj [ ("r", Json.Float r) ] -> Some (Instance.Value.Real r)
  | Json.Obj [ ("r", Json.Int r) ] -> Some (Instance.Value.Real (float_of_int r))
  | Json.Obj [ ("b", Json.Bool b) ] -> Some (Instance.Value.Bool b)
  | Json.Obj [ ("d", Json.List [ Json.Int y; Json.Int m; Json.Int d ]) ] ->
      Some (Instance.Value.Date (y, m, d))
  | _ -> None

let snap_row_to_json (row : Query.Eval.row) =
  Json.Obj
    (List.map
       (fun (k, v) -> (Ecr.Name.to_string k, tagged_of_value v))
       (Ecr.Name.Map.bindings row))

let snap_row_of_json = function
  | Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          match (acc, Ecr.Name.of_string_opt k, value_of_tagged v) with
          | Some m, Some name, Some value ->
              Some (Ecr.Name.Map.add name value m)
          | _ -> None)
        (Some Ecr.Name.Map.empty) fields
  | _ -> None

let snapshot_payload t =
  Mutex.protect t.state_mu (fun () ->
      let schema = t.session.result.Integrate.Result.schema in
      let store = Instance.Loader.to_string schema t.merged in
      let views =
        List.map
          (fun ((i : View.info), rows) ->
            Json.Obj
              ([ ("name", Json.String i.View.name) ]
              @ (match i.View.base with
                | Some b -> [ ("base", Json.String b) ]
                | None -> [])
              @ [
                  ("policy", Json.String (View.policy_to_string i.View.policy));
                  ("q", Json.String i.View.source);
                  ("fresh", Json.Bool i.View.fresh);
                  ("rows", Json.List (List.map snap_row_to_json rows));
                ]))
          (View.dump t.views)
      in
      Json.to_string
        (Json.Obj
           [
             ("v", Json.Int 1);
             ("store", Json.String store);
             ("views", Json.List views);
           ]))

(* Install a snapshot payload as this node's serving state: decode
   everything first (store text through the loader, every view's plan
   and rows), then swap under [state_mu] — a snapshot that fails to
   decode never half-installs.  Runs on the follower's tail thread and
   on a restarting leader before it serves. *)
let install_snapshot t seq payload =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match Json.of_string payload with
  | Error e -> fail "snapshot %d does not parse: %s" seq e
  | Ok o ->
      let schema = t.session.result.Integrate.Result.schema in
      let* store =
        match Json.member "store" o with
        | Some (Json.String text) -> (
            match Instance.Loader.load_string ~schemas:[ schema ] text with
            | [ (_, st) ] -> Ok st
            | _ -> fail "snapshot %d: store text loaded to no store" seq
            | exception (Instance.Loader.Error _ as e) ->
                fail "snapshot %d: %s" seq (Instance.Loader.error_to_string e))
        | _ -> fail "snapshot %d has no store" seq
      in
      let* decoded =
        match Json.member "views" o with
        | None -> Ok []
        | Some (Json.List objs) ->
            let* rev =
              List.fold_left
                (fun acc vo ->
                  let* acc = acc in
                  let str k =
                    match Json.member k vo with
                    | Some (Json.String s) -> Some s
                    | _ -> None
                  in
                  match (str "name", str "q") with
                  | Some name, Some source ->
                      let base = str "base" in
                      let policy =
                        Option.value ~default:View.Lazy
                          (Option.bind (str "policy") View.policy_of_string)
                      in
                      let fresh =
                        match Json.member "fresh" vo with
                        | Some (Json.Bool b) -> b
                        | _ -> true
                      in
                      let* rows =
                        match Json.member "rows" vo with
                        | Some (Json.List rs) ->
                            List.fold_left
                              (fun acc r ->
                                let* acc = acc in
                                match snap_row_of_json r with
                                | Some row -> Ok (row :: acc)
                                | None ->
                                    fail "snapshot %d: view %s has a bad row"
                                      seq name)
                              (Ok []) rs
                            |> Result.map List.rev
                        | _ -> fail "snapshot %d: view %s has no rows" seq name
                      in
                      (* rebuild the plan exactly as define_view would *)
                      let* query, post =
                        match Query.Parser.query_of_string source with
                        | exception Query.Parser.Error msg ->
                            fail "snapshot %d: view %s: %s" seq name msg
                        | q -> (
                            match base with
                            | None -> Ok (q, fun rows -> rows)
                            | Some b -> (
                                match find_view t b with
                                | None ->
                                    fail "snapshot %d: view %s: unknown base %s"
                                      seq name b
                                | Some view -> (
                                    match view_plan t view q with
                                    | plan -> Ok plan
                                    | exception Query.Rewrite.Unmapped msg ->
                                        fail "snapshot %d: view %s: %s" seq
                                          name msg)))
                      in
                      Ok ((name, base, policy, source, fresh, rows, query, post)
                          :: acc)
                  | _ -> fail "snapshot %d: malformed view entry" seq)
                (Ok []) objs
            in
            Ok (List.rev rev)
        | Some _ -> fail "snapshot %d: malformed views field" seq
      in
      let* () =
        Mutex.protect t.state_mu (fun () ->
            t.merged <- store;
            List.iter
              (fun n -> ignore (View.drop t.views n))
              (View.names t.views);
            List.fold_left
              (fun acc (name, base, policy, source, fresh, rows, query, post) ->
                let* () = acc in
                View.install t.views ~name ?base ~policy ~source ~query ~post
                  ~rows ~fresh ())
              (Ok ()) decoded)
      in
      Atomic.incr t.cache_epoch;
      compact_viewlog t;
      Ok ()

(* ---- compaction ---------------------------------------------------- *)

let snapshot_seq t =
  Mutex.protect t.snap_mu (fun () ->
      match t.snapshot with Some (s, _) -> s | None -> 0)

(* Take a snapshot at the current log seq, persist it (journalled
   leaders), and truncate the prefix nothing still needs.  The caller
   holds [repl_mu], so the snapshot never interleaves with a mutation
   and the lock order (repl_mu, then state_mu inside
   [snapshot_payload]) matches the write path.

   The truncation bound is the minimum of three floors:
   - the seq the snapshot covers (frames above it are not yet covered);
   - the oldest {e retained} snapshot on disk — a restart that finds
     the newest snapshot torn falls back to the previous one and must
     still find the frames after it;
   - the lowest live follower ack, so no tailing follower has its
     next frame truncated out from under it (a dead follower's ack
     expires with the log's liveness window rather than pinning the
     bound forever). *)
let compact_locked t log =
  let seq = Replicate.Log.seq log in
  let cur = snapshot_seq t in
  let sseq, keep_floor =
    if seq > cur then begin
      let payload = snapshot_payload t in
      let floor =
        match t.session.journal_dir with
        | Some dir ->
            let retained = Replicate.Snapshot.save ~dir ~seq payload in
            List.fold_left min seq retained
        | None -> seq
      in
      Mutex.protect t.snap_mu (fun () -> t.snapshot <- Some (seq, payload));
      (seq, floor)
    end
    else
      ( cur,
        match t.session.journal_dir with
        | Some dir -> (
            match Replicate.Snapshot.retained ~dir with
            | [] -> cur
            | l -> List.fold_left min cur l)
        | None -> cur )
  in
  let ack_floor =
    match Replicate.Log.lowest_live_ack log with Some a -> a | None -> sseq
  in
  let dropped = Replicate.Log.truncate log (min keep_floor ack_floor) in
  (sseq, dropped)

let maybe_compact_locked t log =
  let n = t.cfg.repl.compact_every in
  if n > 0 && Replicate.Log.seq log - snapshot_seq t >= n then
    ignore (compact_locked t log)

let create session cfg =
  match create_bound session cfg with
  | Error _ as e -> e
  | Ok t -> (
      load_views t;
      match (t.repl_log, session.journal_dir) with
      | Some log, Some dir -> (
          let base = Replicate.Log.base_seq log in
          match Replicate.Snapshot.load ~dir with
          | Some (sseq, payload) when sseq >= base -> (
              (* restart = snapshot + suffix, never a full-history
                 replay: install the newest readable snapshot, then
                 replay only the frames after it *)
              match install_snapshot t sseq payload with
              | Ok () ->
                  Mutex.protect t.snap_mu (fun () ->
                      t.snapshot <- Some (sseq, payload));
                  replay_repl_log t ~from:(sseq + 1);
                  Ok t
              | Error msg ->
                  Error (Printf.sprintf "cannot restart from snapshot: %s" msg)
              )
          | Some _ | None ->
              if base = 0 then begin
                replay_repl_log t ~from:1;
                Ok t
              end
              else
                Error
                  (Printf.sprintf
                     "the replication log is truncated to seq %d but no \
                      valid snapshot could be read from %s"
                     base dir))
      | _ ->
          replay_repl_log t ~from:1;
          Ok t)

(* Responses are built as values and rendered per-connection: the same
   [Json.t] goes out as a JSON line or a binary frame depending on what
   the connection negotiated. *)
let respond_ok t id payload =
  Atomic.incr t.s_ok;
  Obs.Counter.incr c_ok;
  Wire.ok_response ?id payload

let respond_err ?data t id code msg =
  (match code with
  | Wire.Overloaded ->
      Atomic.incr t.s_overloaded;
      Obs.Counter.incr c_overloaded
  | Wire.Deadline_exceeded ->
      Atomic.incr t.s_deadline;
      Obs.Counter.incr c_deadline
  | _ -> ());
  Atomic.incr t.s_err;
  Obs.Counter.incr c_err;
  Wire.error_response ?id ?data code msg

(* Test hook: artificial latency between [run_op] returning and the
   post-execution deadline check, so "the op finished after its
   deadline" is reachable deterministically from a test. *)
let test_delay_after_op_ms = Atomic.make 0

(* Runs on a pool domain; must never let an exception escape.

   The post-execution deadline check applies to read ops only.  A
   mutating op that [run_op] completed HAS changed state, and the [ok]
   field of its response is what the leader uses to decide whether the
   op joins the replication log — reporting [deadline_exceeded] after
   the fact would skip the append and silently diverge every follower
   (and the leader's own restart replay) from the applied state.  So
   once a mutation is applied, the response says so; the deadline can
   only reject a mutation before it runs. *)
let execute t (req : Wire.request) ~t_start ~deadline =
  let id = req.Wire.id in
  try
    check_deadline ~t_start ~deadline;
    let payload = run_op t req in
    (let d = Atomic.get test_delay_after_op_ms in
     if d > 0 then Thread.delay (float d /. 1000.));
    if not (Wire.mutating req.Wire.op) then check_deadline ~t_start ~deadline;
    respond_ok t id payload
  with
  | Deadline ->
      respond_err t id Wire.Deadline_exceeded
        (Printf.sprintf "deadline of %d ms exceeded"
           (Option.value ~default:0 deadline))
  | Op_error (code, msg) -> respond_err t id code msg
  | Query.Parser.Error msg -> respond_err t id Wire.Parse_error msg
  | Query.Rewrite.Unmapped msg -> respond_err t id Wire.Unmapped msg
  | Query.Eval.Error msg -> respond_err t id Wire.Eval_error msg
  | Query.Update.Error msg -> respond_err t id Wire.Update_error msg
  | Setup msg -> respond_err t id Wire.Unknown_view msg
  | Invalid_argument msg -> respond_err t id Wire.Bad_request msg
  | e -> respond_err t id Wire.Internal (Printexc.to_string e)

let health_payload t =
  let s = stats t in
  [
    ("status", Json.String (if Atomic.get t.stopping then "draining" else "ok"));
    ("uptime_s", Json.Float (Unix.gettimeofday () -. t.t0));
    ("jobs", Json.Int (Par.jobs t.pool));
    ("inflight", Json.Int (Atomic.get t.inflight));
    ("queue_limit", Json.Int t.cfg.queue);
    ("requests", Json.Int s.requests);
    ("responses_ok", Json.Int s.ok);
    ("responses_err", Json.Int s.errors);
    ("overloaded", Json.Int s.overloaded);
    ("deadline_exceeded", Json.Int s.deadline_exceeded);
    ( "cache",
      Json.Obj
        [
          ("capacity", Json.Int (Lru.capacity t.cache));
          ("size", Json.Int (Mutex.protect t.cache_mu (fun () -> Lru.size t.cache)));
          ("hits", Json.Int s.cache_hits);
          ("misses", Json.Int s.cache_misses);
          ("evictions", Json.Int s.cache_evictions);
        ] );
    ("connections", Json.Int s.connections);
    ("migration", migration_report_json t.session.migration);
    ( "views",
      let infos = Mutex.protect t.state_mu (fun () -> View.infos t.views) in
      Json.Obj
        [
          ("count", Json.Int (List.length infos));
          ( "stale",
            Json.Int
              (List.length
                 (List.filter (fun (i : View.info) -> not i.View.fresh) infos))
          );
        ] );
  ]
  @
  match (t.cfg.repl.role, t.repl_log) with
  | Leader, Some log ->
      [
        ("role", Json.String "leader");
        ("repl_seq", Json.Int (Replicate.Log.seq log));
        ("base_seq", Json.Int (Replicate.Log.base_seq log));
        ("snapshot_seq", Json.Int (snapshot_seq t));
      ]
  | Leader, None -> [ ("role", Json.String "leader") ]
  | Follower _, _ ->
      let p = t.repl_progress in
      [
        ("role", Json.String "follower");
        ("applied_seq", Json.Int (Atomic.get p.Replicate.Follower.applied));
        ("staleness_seq", Json.Int (Replicate.Follower.staleness p));
        ("repl_connected", Json.Bool (Atomic.get p.Replicate.Follower.connected));
        ( "repl_apply_errors",
          Json.Int (Atomic.get p.Replicate.Follower.apply_errors) );
        ( "snapshot_installs",
          Json.Int (Atomic.get p.Replicate.Follower.snapshots) );
        ("repl_last_error", Json.String (Replicate.Follower.last_error p));
      ]

(* ---- replication operations (inline, never queued) ---------------- *)

let not_leader_response t id =
  match t.cfg.repl.role with
  | Follower leader ->
      respond_err t id
        ~data:[ ("leader", Json.String (Wire.addr_to_string leader)) ]
        Wire.Not_leader "this node is a follower; send writes to the leader"
  | Leader ->
      (* a leader without a log never exists; belt and braces *)
      respond_err t id Wire.Internal "replication log unavailable"

let repl_handshake t (req : Wire.request) =
  let id = req.Wire.id in
  match t.repl_log with
  | None -> not_leader_response t id
  | Some log ->
      (match req.Wire.node with
      | Some node -> Replicate.Log.ack log ~node 0 (* register the node *)
      | None -> ());
      respond_ok t id
        [
          ("role", Json.String "leader");
          ("repl_seq", Json.Int (Replicate.Log.seq log));
          ("base_seq", Json.Int (Replicate.Log.base_seq log));
        ]

let repl_pull t (req : Wire.request) =
  let id = req.Wire.id in
  match t.repl_log with
  | None -> not_leader_response t id
  | Some log -> (
      match req.Wire.seq with
      | None ->
          respond_err t id Wire.Bad_request
            "op \"repl_pull\" needs a \"seq\" field"
      | Some from when from < 1 ->
          respond_err t id Wire.Bad_request "\"seq\" must be >= 1"
      | Some from ->
          (* pulling from [from] acknowledges everything before it *)
          (match req.Wire.node with
          | Some node -> Replicate.Log.ack log ~node (from - 1)
          | None -> ());
          let batch = min 1024 (max 1 (Option.value ~default:64 req.Wire.max)) in
          let wait_ms =
            min 10_000 (max 0 (Option.value ~default:0 req.Wire.wait_ms))
          in
          let read () = Replicate.Log.from log from ~max:batch in
          let frames = read () in
          let frames =
            (* long poll: block this connection thread until new frames
               arrive or the budget runs out (a closing log returns
               early, which is what lets drain finish) *)
            if frames = [] && wait_ms > 0 && not (Atomic.get t.stopping)
            then begin
              ignore
                (Replicate.Log.wait log ~from
                   ~timeout_s:(float wait_ms /. 1000.));
              read ()
            end
            else frames
          in
          respond_ok t id
            [
              ("repl_seq", Json.Int (Replicate.Log.seq log));
              ("base_seq", Json.Int (Replicate.Log.base_seq log));
              ( "frames",
                Json.List
                  (List.map
                     (fun (s, f) ->
                       Json.Obj
                         [ ("seq", Json.Int s); ("frame", Json.String f) ])
                     frames) );
            ])

let repl_frame t (req : Wire.request) =
  let id = req.Wire.id in
  match t.repl_log with
  | None -> not_leader_response t id
  | Some log -> (
      match req.Wire.seq with
      | None ->
          respond_err t id Wire.Bad_request
            "op \"repl_frame\" needs a \"seq\" field"
      | Some s -> (
          match Replicate.Log.get log s with
          | Some f ->
              respond_ok t id [ ("seq", Json.Int s); ("frame", Json.String f) ]
          | None ->
              respond_err t id Wire.Bad_request
                (Printf.sprintf "no replicated frame %d (log is at %d)" s
                   (Replicate.Log.seq log))))

(* Snapshot transfer, one bounded chunk per round-trip so a frame never
   outgrows the binary protocol's frame cap.  The chunk index rides the
   request's [seq] field; every chunk repeats the covered seq and the
   chunk count, so a follower detects a snapshot replaced mid-transfer
   and restarts the fetch.  A pulling follower's liveness is refreshed
   (ack at 0) so the transfer itself keeps the node registered. *)
let snap_chunk_bytes = 1 lsl 20

let repl_snapshot t (req : Wire.request) =
  let id = req.Wire.id in
  match t.repl_log with
  | None -> not_leader_response t id
  | Some log -> (
      (match req.Wire.node with
      | Some node -> Replicate.Log.ack log ~node 0
      | None -> ());
      match Mutex.protect t.snap_mu (fun () -> t.snapshot) with
      | None ->
          respond_err t id Wire.Bad_request
            "no snapshot available (the log has never been compacted)"
      | Some (sseq, payload) ->
          let len = String.length payload in
          let total = max 1 ((len + snap_chunk_bytes - 1) / snap_chunk_bytes) in
          let i = Option.value ~default:0 req.Wire.seq in
          if i < 0 || i >= total then
            respond_err t id Wire.Bad_request
              (Printf.sprintf "snapshot chunk %d out of range (0..%d)" i
                 (total - 1))
          else
            let chunk =
              String.sub payload (i * snap_chunk_bytes)
                (min snap_chunk_bytes (len - (i * snap_chunk_bytes)))
            in
            respond_ok t id
              [
                ("snapshot_seq", Json.Int sseq);
                ("chunks", Json.Int total);
                ("chunk", Json.String chunk);
                ("base_seq", Json.Int (Replicate.Log.base_seq log));
                ("repl_seq", Json.Int (Replicate.Log.seq log));
              ])

let repl_compact t (req : Wire.request) =
  let id = req.Wire.id in
  match t.repl_log with
  | None -> not_leader_response t id
  | Some log ->
      let sseq, dropped =
        Mutex.protect t.repl_mu (fun () -> compact_locked t log)
      in
      respond_ok t id
        [
          ("snapshot_seq", Json.Int sseq);
          ("base_seq", Json.Int (Replicate.Log.base_seq log));
          ("dropped", Json.Int dropped);
        ]

let repl_status t (req : Wire.request) =
  let id = req.Wire.id in
  match (t.cfg.repl.role, t.repl_log) with
  | Leader, Some log ->
      respond_ok t id
        [
          ("role", Json.String "leader");
          ("repl_seq", Json.Int (Replicate.Log.seq log));
          ("base_seq", Json.Int (Replicate.Log.base_seq log));
          ("snapshot_seq", Json.Int (snapshot_seq t));
          ("ack_replicas", Json.Int t.cfg.repl.ack_replicas);
          ( "followers",
            Json.List
              (List.map
                 (fun (node, acked) ->
                   Json.Obj
                     [
                       ("node", Json.String node); ("acked", Json.Int acked);
                     ])
                 (Replicate.Log.acks log)) );
        ]
  | Leader, None ->
      respond_ok t id [ ("role", Json.String "leader"); ("repl_seq", Json.Int 0) ]
  | Follower leader, _ ->
      let p = t.repl_progress in
      respond_ok t id
        [
          ("role", Json.String "follower");
          ("leader", Json.String (Wire.addr_to_string leader));
          ("applied_seq", Json.Int (Atomic.get p.Replicate.Follower.applied));
          ("leader_seq", Json.Int (Atomic.get p.Replicate.Follower.leader_seq));
          ("staleness_seq", Json.Int (Replicate.Follower.staleness p));
          ("connected", Json.Bool (Atomic.get p.Replicate.Follower.connected));
          ( "apply_errors",
            Json.Int (Atomic.get p.Replicate.Follower.apply_errors) );
          ( "snapshot_installs",
            Json.Int (Atomic.get p.Replicate.Follower.snapshots) );
          ("last_error", Json.String (Replicate.Follower.last_error p));
          ("node", Json.String t.node_id);
        ]

let handle_request t decoded =
  Atomic.incr t.s_requests;
  Obs.Counter.incr c_requests;
  match (decoded : (Wire.request, Wire.error_code * string) result) with
  | Error (code, msg) -> respond_err t None code msg
  | Ok req -> (
      let id = req.Wire.id in
      match req.Wire.op with
      (* control operations: answered inline, never queued, so the
         daemon stays observable under load and during drain *)
      | "health" -> respond_ok t id (health_payload t)
      | "metrics" ->
          let meta = [ ("tool", Json.String "sit_serve") ] in
          respond_ok t id [ ("report", Obs.Report.to_json ~meta ()) ]
      | "view_stats" -> respond_ok t id (views_payload t)
      | "repl_handshake" -> repl_handshake t req
      | "repl_pull" -> repl_pull t req
      | "repl_frame" -> repl_frame t req
      | "repl_status" -> repl_status t req
      | "repl_snapshot" -> repl_snapshot t req
      | "repl_compact" -> repl_compact t req
      | "sleep" when not t.cfg.debug ->
          respond_err t id Wire.Unknown_op "unknown op \"sleep\""
      | op
        when Wire.mutating op
             && (match t.cfg.repl.role with
                | Follower _ -> true
                | Leader -> false) ->
          (* the follower write gate: a typed redirect, not an error the
             client has to guess about *)
          not_leader_response t id
      | "query" | "rewrite" | "update" | "migrate" | "define_view"
      | "drop_view" | "refresh_view" | "sleep" ->
          if Atomic.get t.stopping then
            respond_err t id Wire.Shutting_down "server is draining"
          else begin
            (* bounded queue: admission is one atomic increment *)
            let before = Atomic.fetch_and_add t.inflight 1 in
            if before >= t.cfg.queue then begin
              Atomic.decr t.inflight;
              respond_err t id Wire.Overloaded
                (Printf.sprintf "request queue is full (%d in flight)" before)
            end
            else
              Fun.protect
                ~finally:(fun () -> Atomic.decr t.inflight)
                (fun () ->
                  let t_start = Unix.gettimeofday () in
                  let deadline =
                    match req.Wire.deadline_ms with
                    | Some _ as d -> d
                    | None -> t.cfg.deadline_ms
                  in
                  let run () =
                    let p =
                      Par.async t.pool (fun () ->
                          execute t req ~t_start ~deadline)
                    in
                    Par.await t.pool p
                  in
                  let resp =
                    match t.repl_log with
                    | Some log when Wire.mutating req.Wire.op -> (
                        (* serialize mutations end to end so the log
                           order is exactly the application order *)
                        let resp, seq =
                          Mutex.protect t.repl_mu (fun () ->
                              let resp = run () in
                              match Json.member "ok" resp with
                              | Some (Json.Bool true) ->
                                  let s =
                                    Replicate.Log.append log (repl_line req)
                                  in
                                  (* compaction rides the write path,
                                     still under [repl_mu]: every
                                     [compact_every] acknowledged writes
                                     the log re-snapshots and sheds its
                                     covered prefix *)
                                  maybe_compact_locked t log;
                                  (resp, Some s)
                              | _ -> (resp, None))
                        in
                        match seq with
                        | Some s when t.cfg.repl.ack_replicas > 0 ->
                            (* semi-sync: hold the ack until enough
                               followers have applied this seq *)
                            if
                              Replicate.Log.wait_acked log ~seq:s
                                ~replicas:t.cfg.repl.ack_replicas
                                ~timeout_s:
                                  (float t.cfg.repl.ack_timeout_ms /. 1000.)
                            then resp
                            else
                              respond_err t id Wire.Internal
                                (Printf.sprintf
                                   "write %d applied locally but fewer than \
                                    %d replicas acknowledged it within %d ms \
                                    — outcome is replicated-unknown"
                                   s t.cfg.repl.ack_replicas
                                   t.cfg.repl.ack_timeout_ms)
                        | _ -> resp)
                    | _ -> run ()
                  in
                  observe_op req.Wire.op
                    ((Unix.gettimeofday () -. t_start) *. 1000.);
                  resp)
          end
      | op ->
          respond_err t id Wire.Unknown_op (Printf.sprintf "unknown op %S" op))

(* In-process execution: one JSON request line in, one canonical JSON
   response line out, through exactly the dispatch a connection uses —
   the offline leg of the scenario differential harness. *)
let exec t line = Json.to_string (handle_request t (Wire.request_of_line line))

module For_testing = struct
  let with_state t f = Mutex.protect t.state_mu (fun () -> f t.merged t.views)
  let set_delay_after_op_ms ms = Atomic.set test_delay_after_op_ms (max 0 ms)
end

(* ---- connections and lifecycle ------------------------------------ *)

(* A connection announces its protocol with its first byte: JSON lines
   start with a printable character (in practice '{'), a binary
   connection with the 0xB5 of [Wire.magic] — which no JSON line can
   ever start with.  Framing errors that leave the stream positioned at
   a frame boundary are answered and the connection continues; an
   unusable length prefix or a bad magic is answered once and the
   connection closed, since resynchronisation is impossible. *)
let handle_conn t conn_id fd =
  Atomic.incr t.s_conns;
  Obs.Counter.incr c_connections;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let write s = match output_string oc s; flush oc with
    | () -> true
    | exception Sys_error _ -> false
  in
  let write_json v = write (Obs.Json.to_string v ^ "\n") in
  let write_bin v = write (Wire.encode_bin Wire.Response v) in
  let rec json_loop line =
    if write_json (handle_request t (Wire.request_of_line line)) then
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> ()
      | line -> json_loop line
  in
  let rec bin_loop () =
    match really_input_string ic 4 with
    | exception (End_of_file | Sys_error _) -> ()
    | hdr -> (
        match Wire.bin_length hdr with
        | Error e ->
            (* cannot trust the stream position any more: answer, close *)
            ignore (write_bin (respond_err t None Wire.Bad_frame e))
        | Ok n -> (
            match really_input_string ic n with
            | exception (End_of_file | Sys_error _) -> ()
            | body ->
                (* the frame was fully consumed, so decode errors keep
                   the stream in sync and the connection alive *)
                let decoded =
                  match Wire.decode_bin (hdr ^ body) with
                  | Error e -> Error (Wire.Bad_frame, e)
                  | Ok (Wire.Response, _) ->
                      Error (Wire.Bad_frame, "expected a request frame (0x01)")
                  | Ok (Wire.Request, v) -> Wire.request_of_json v
                in
                if write_bin (handle_request t decoded) then bin_loop ()))
  in
  (match input_char ic with
  | exception (End_of_file | Sys_error _) -> ()
  | '\xb5' -> (
      match really_input_string ic (String.length Wire.magic - 1) with
      | exception (End_of_file | Sys_error _) -> ()
      | rest ->
          if String.equal ("\xb5" ^ rest) Wire.magic then begin
            (* ack: echo the magic so the client knows this version of
               the protocol is spoken here *)
            if write Wire.magic then bin_loop ()
          end
          else
            ignore
              (write_bin
                 (respond_err t None Wire.Bad_frame
                    "unsupported binary magic/version")))
  | '\n' -> json_loop ""
  | c -> (
      match input_line ic with
      | exception (End_of_file | Sys_error _) ->
          ignore (write_json (handle_request t (Wire.request_of_line (String.make 1 c))))
      | line -> json_loop (String.make 1 c ^ line)));
  Mutex.protect t.conns_mu (fun () ->
      Hashtbl.remove t.live_conns conn_id;
      let self, live =
        List.partition (fun (id, _) -> id = conn_id) t.live_threads
      in
      t.live_threads <- live;
      t.finished_threads <- List.map snd self @ t.finished_threads);
  try Unix.close fd with Unix.Unix_error _ -> ()

let reap_finished t =
  let finished =
    Mutex.protect t.conns_mu (fun () ->
        let f = t.finished_threads in
        t.finished_threads <- [];
        f)
  in
  List.iter Thread.join finished

let drain t =
  let already =
    Mutex.protect t.conns_mu (fun () ->
        let d = t.drained in
        t.drained <- true;
        d)
  in
  if not already then begin
    Atomic.set t.stopping true;
    (* wake long-polling repl_pull waiters and stop the follower tail *)
    (match t.repl_log with
    | Some log -> Replicate.Log.close log
    | None -> ());
    Replicate.Follower.request_stop t.repl_progress;
    (* stop accepting *)
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.cfg.listen with
    | Wire.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> ());
    (* wake idle readers: they see EOF after the response they are
       currently computing/writing, which drains in-flight requests *)
    Mutex.protect t.conns_mu (fun () ->
        Hashtbl.iter
          (fun _ fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
          t.live_conns);
    let rec join_live () =
      let live =
        Mutex.protect t.conns_mu (fun () -> List.map snd t.live_threads)
      in
      match live with
      | [] -> ()
      | threads ->
          List.iter Thread.join threads;
          join_live ()
    in
    join_live ();
    reap_finished t;
    (let tail =
       Mutex.protect t.conns_mu (fun () ->
           let th = t.follower_thread in
           t.follower_thread <- None;
           th)
     in
     match tail with Some th -> Thread.join th | None -> ());
    Par.shutdown t.pool;
    match t.viewlog with
    | Some frames ->
        (try Journal.Frames.close frames with _ -> ());
        t.viewlog <- None
    | None -> ()
  end

let request_stop t = Atomic.set t.stop_requested true

(* Start the follower tail thread (idempotent; no-op on a leader).
   The transport is the ordinary client, so the stream rides the same
   wire — and the same error paths — every other consumer uses.  The
   node identifies itself by its stable [node_id], never its listen
   address: the leader keys quorum acks by this name, and an address
   can be shared, reassigned, or change across restarts. *)
let start_follower t =
  match t.cfg.repl.role with
  | Leader -> ()
  | Follower leader ->
      Mutex.protect t.conns_mu (fun () ->
          if t.follower_thread = None then begin
            let node = t.node_id in
            let r = t.cfg.repl in
            t.follower_thread <-
              Some
                (Thread.create
                   (fun () ->
                     Replicate.Follower.run ~node
                       ~connect:(fun () -> Client.connect leader)
                       ~close:Client.close ~roundtrip:Client.roundtrip
                       ~apply:(fun seq frame -> apply_repl t seq frame)
                       ~progress:t.repl_progress ~batch:r.batch
                       ~wait_ms:r.wait_ms ~throttle_ms:r.throttle_ms
                       ~install:(fun seq payload ->
                         install_snapshot t seq payload)
                       ~log:(fun msg ->
                         Printf.eprintf "sit_serve: repl[%s]: %s\n%!" node msg)
                       ())
                   ())
          end)

let serve t =
  (* a client that disconnects mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  start_follower t;
  let rec loop () =
    if Atomic.get t.stop_requested then ()
    else begin
      reap_finished t;
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              loop ()
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
          | fd, _ ->
              let conn_id =
                Mutex.protect t.conns_mu (fun () ->
                    let id = t.next_conn in
                    t.next_conn <- id + 1;
                    Hashtbl.replace t.live_conns id fd;
                    id)
              in
              let th = Thread.create (fun () -> handle_conn t conn_id fd) () in
              Mutex.protect t.conns_mu (fun () ->
                  if Hashtbl.mem t.live_conns conn_id then
                    t.live_threads <- (conn_id, th) :: t.live_threads
                  else
                    (* the connection already finished *)
                    t.finished_threads <- th :: t.finished_threads);
              loop ())
    end
  in
  loop ();
  drain t

let start session cfg =
  match create session cfg with
  | Error _ as e -> e
  | Ok t ->
      t.serve_thread <- Some (Thread.create (fun () -> serve t) ());
      Ok t

let stop t =
  request_stop t;
  match t.serve_thread with
  | Some th ->
      Thread.join th;
      t.serve_thread <- None
  | None ->
      (* serve ran (or will not run) on the caller's thread: make the
         drain happen here if the loop is not around to do it *)
      drain t
