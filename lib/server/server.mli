(** A long-lived query-serving daemon over one integrated-schema
    session.

    The operational payoff of integration (paper sections 1 and 5) as a
    network service: component schemas plus a recorded integration
    session are loaded once, the integrated schema and mappings are
    built, component instances are migrated, and then view/global
    queries, updates and re-migrations are served over a line-delimited
    JSON protocol ({!Wire}, reference in [docs/SERVING.md]) on a Unix
    or TCP socket.

    Concurrency model: one lightweight thread per connection reads
    frames and writes responses in order; each data operation is
    submitted to a shared [lib/par] domain pool ({!Par.async}) behind a
    {e bounded} in-flight counter — when the bound is hit the request
    is answered [overloaded] immediately instead of buffering without
    limit.  [health] and [metrics] bypass the bound so the daemon stays
    observable under load.  Per-request deadlines are checked when the
    request reaches a domain and, for read ops, again after evaluation;
    either miss answers [deadline_exceeded].  Mutating ops skip the
    second check: once applied, a mutation is acknowledged (and, on a
    leader, replicated) — the deadline can only reject it before it
    runs, never misreport it after.

    Rewrite plans (view and global unfoldings) are cached in an LRU
    keyed by (view class, query shape) — the canonical printing of the
    parsed query — with hits/misses/evictions on [server.cache_*]
    counters and in {!stats}.

    Every protocol failure is a typed error {e response}; no exception
    of the query layer ([Query.Parser.Error], [Query.Rewrite.Unmapped],
    [Query.Eval.Error], [Query.Update.Error]) ever kills the daemon or
    a worker domain.  Shutdown ({!stop}, or SIGTERM in [bin/sit_serve])
    stops accepting, answers every in-flight request, wakes idle
    connections, joins every thread and shuts the pool down. *)

module Wire = Wire
module Lru = Lru
module Client = Client
module View = View
(** The materialized-view catalog the daemon serves from; re-exported
    so client code can name policies and decode {!View.info}. *)

(** {1 Session} *)

type session = {
  schemas : Ecr.Schema.t list;  (** the component schemas *)
  result : Integrate.Result.t;
  component_stores : (Ecr.Schema.t * Instance.Store.t) list;
  initial_merged : Instance.Store.t;  (** the migrated instance *)
  migration : Query.Migrate.report;
  journal_dir : string option;
      (** when set, the server persists its view catalog to
          [DIR/views.journal] (framed log, {!Journal.Frames}) and
          replays it on {!create} *)
}

val make_session :
  ?journal_dir:string ->
  result:Integrate.Result.t ->
  stores:(Ecr.Schema.t * Instance.Store.t) list ->
  unit ->
  session
(** Builds the serving state from an in-memory integration result and
    component stores (migrates immediately).  The test suite's entry
    point. *)

type setup = {
  schema_files : string list;  (** ECR DDL files *)
  script : string option;  (** session script ({!Integrate.Script}) *)
  data : string option;  (** instance file ({!Instance.Loader}) *)
  journal : string option;
      (** journal directory: the setup session is write-ahead logged to
          [DIR/serve.journal] and a restart resumes from it
          automatically (then compacts) *)
  name : string option;  (** name of the integrated schema *)
}

val load_session : setup -> (session, string) result
(** The [bin/sit_serve] entry point: everything from files, every
    failure (DDL/script/instance syntax, assertion conflicts, journal
    mismatches) as a printable [Error]. *)

(** {1 Server} *)

(** Replication role (docs/ROBUSTNESS.md).  A [Leader] appends every
    acknowledged mutation to its replication log and serves the
    [repl_*] stream; a [Follower] tails the given leader address,
    applies the stream to its own state, serves reads, and answers
    every write with a typed [not_leader] redirect. *)
type role = Leader | Follower of Wire.addr

type repl_config = {
  role : role;
  ack_replicas : int;
      (** leader only: hold each mutation's response until this many
          followers have acknowledged its seq ([0] = asynchronous) *)
  ack_timeout_ms : int;
      (** bound on that wait; on expiry the mutation — already applied
          locally — is answered [internal] ("replicated-unknown") *)
  batch : int;  (** follower only: frames per [repl_pull] *)
  wait_ms : int;  (** follower only: long-poll budget per pull *)
  throttle_ms : int;
      (** follower only, test hook: sleep between pulls so a catch-up
          window is observable *)
  compact_every : int;
      (** leader only: snapshot the serving state and truncate the
          covered replication-log prefix every this many acknowledged
          writes ([0] disables automatic compaction; the [repl_compact]
          wire op always works).  Bounds leader memory, disk and
          restart time by the compaction window instead of total write
          count (docs/ROBUSTNESS.md "Log growth"). *)
  liveness_s : float;
      (** leader only: a follower that has not pulled for this long is
          considered gone — its ack stops counting toward quorums and
          stops pinning the compaction bound *)
}

val default_repl : repl_config
(** [Leader], asynchronous (ack 0, timeout 10 s), batch 64, 200 ms
    long-poll, no throttle, no automatic compaction, 30 s follower
    liveness. *)

type config = {
  listen : Wire.addr;
  jobs : int;  (** domain-pool size for request execution *)
  queue : int;  (** max in-flight data requests before [overloaded] *)
  deadline_ms : int option;  (** default per-request deadline *)
  cache : int;  (** rewrite-plan LRU capacity; [0] disables *)
  debug : bool;
      (** accept the test-only [sleep] op (a data operation of a chosen
          duration), used to pin down backpressure and drain behaviour
          deterministically; [false] everywhere but the test suite *)
  repl : repl_config;
}

val default_config : Wire.addr -> config
(** jobs [Par.default_jobs ()], queue 64, no deadline, cache 128,
    replication {!default_repl}. *)

type stats = {
  requests : int;
  ok : int;
  errors : int;
  overloaded : int;
  deadline_exceeded : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  connections : int;
}

type t

val create : session -> config -> (t, string) result
(** Binds and listens (for [Tcp] with port [0], the kernel picks the
    port — see {!port}); no thread is started yet.  When the session
    has a [journal_dir], the view catalog logged to [views.journal] is
    replayed here (definitions the current session can no longer
    satisfy are dropped) and the log compacted.  A [Leader] with a
    [journal_dir] also recovers [DIR/repl.journal] (longest valid
    prefix) and replays it into its runtime state, so a restarted
    leader serves exactly what it last acknowledged.  When compaction
    has run, recovery is snapshot + suffix: the newest readable
    [DIR/repl.snap.<seq>] is installed and only frames after its seq
    replay — a torn snapshot tail falls back to the previous retained
    snapshot.  [Error] when the log is truncated past every readable
    snapshot (state would be unreconstructible). *)

val start_follower : t -> unit
(** Starts the follower tail thread (no-op on a leader; idempotent).
    {!serve} calls this itself — it is exposed for tests that drive a
    follower without an accept loop. *)

val define_view :
  t ->
  name:string ->
  ?base:string ->
  ?policy:View.policy ->
  string ->
  (unit, string) result
(** Registers and materializes a named view from its query text, as the
    wire [define_view] operation does — the entry point for definitions
    given on the [sit_serve] command line before serving starts.  With
    [base], the text is a component-view query rewritten through the
    mapping; without, it must already be in integrated-schema terms.
    [policy] defaults to [Lazy].  The definition is appended to the
    catalog log when the session has one. *)

val port : t -> int option
(** The bound TCP port, [None] for Unix sockets. *)

val serve : t -> unit
(** The accept loop, on the calling thread.  Returns only after a
    {!request_stop} (or {!stop} from another thread) has been honoured
    and the server fully drained. *)

val start : session -> config -> (t, string) result
(** {!create} + {!serve} on a background thread — the in-process mode
    the tests and the bench harness use. *)

val request_stop : t -> unit
(** Flags the server to stop; safe to call from a signal handler.  The
    accept loop notices within its polling interval and drains. *)

val stop : t -> unit
(** {!request_stop}, then waits for the drain to complete (joins the
    background thread when the server was {!start}ed).  Idempotent. *)

val stats : t -> stats
(** A consistent-enough snapshot of the server's own counters (kept
    independently of [lib/obs], which may be disabled). *)

val exec : t -> string -> string
(** One JSON request line to one canonical JSON response line, through
    exactly the dispatch a connection uses (queue admission, worker
    pool, deadlines) but with no socket — the offline leg of the
    scenario differential harness ([Workload.Scenario]), which must be
    byte-identical to what a wire client observes. *)

(** Test hooks; not part of the serving surface. *)
module For_testing : sig
  val with_state : t -> (Instance.Store.t -> View.t -> 'a) -> 'a
  (** Runs [f merged views] under the state lock — lets the scenario
      harness compare materialized extents against recomputation at
      schedule barriers without going through the wire. *)

  val set_delay_after_op_ms : int -> unit
  (** Injects artificial latency (process-wide, [0] disables) between
      an op completing and the post-execution deadline check, making
      "finished after its deadline" deterministically reachable: reads
      must then answer [deadline_exceeded], while mutations must still
      answer [ok] and reach the replication log — an applied mutation
      is never reported (or replicated) as if it had not happened. *)
end
