module Json = Obs.Json

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  let s = String.trim s in
  if s = "" then Error "empty listen address"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "unix: address needs a socket path"
    else Ok (Unix_path path)
  end
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "expected unix:PATH or HOST:PORT, got %s" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 ->
            Ok (Tcp ((if host = "" then "0.0.0.0" else host), p))
        | _ -> Error (Printf.sprintf "bad port %S in listen address" port))

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type error_code =
  | Bad_frame
  | Bad_request
  | Unknown_op
  | Unknown_view
  | Parse_error
  | Unmapped
  | Eval_error
  | Update_error
  | Overloaded
  | Deadline_exceeded
  | Not_leader
  | Shutting_down
  | Internal

let code_to_string = function
  | Bad_frame -> "bad_frame"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Unknown_view -> "unknown_view"
  | Parse_error -> "parse_error"
  | Unmapped -> "unmapped"
  | Eval_error -> "eval_error"
  | Update_error -> "update_error"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Not_leader -> "not_leader"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let all_codes =
  [
    Bad_frame; Bad_request; Unknown_op; Unknown_view; Parse_error; Unmapped;
    Eval_error; Update_error; Overloaded; Deadline_exceeded; Not_leader;
    Shutting_down; Internal;
  ]

let code_of_string s = List.find_opt (fun c -> code_to_string c = s) all_codes

(* Every request "op" the daemon understands, data operations first,
   inline control operations last.  This list is the single source of
   truth for the operation table in docs/SERVING.md —
   scripts/docs_check.sh extracts the quoted names below and fails
   `make check` when the documentation drifts. *)
let ops =
  [
    "query"; "rewrite"; "update"; "migrate"; "define_view"; "drop_view";
    "refresh_view"; "sleep"; "view_stats"; "health"; "metrics";
    "repl_handshake"; "repl_pull"; "repl_frame"; "repl_status";
    "repl_snapshot"; "repl_compact";
  ]

let mutating = function
  | "update" | "migrate" | "define_view" | "drop_view" | "refresh_view" -> true
  | _ -> false

type request = {
  id : Json.t option;
  op : string;
  view : string option;
  text : string option;
  base : string option;
  policy : string option;
  deadline_ms : int option;
  seq : int option;
  max : int option;
  wait_ms : int option;
  node : string option;
}

let request_of_json = function
  | Json.Obj fields as obj -> (
      let id = Json.member "id" obj in
      let str_field name =
        match List.assoc_opt name fields with
        | None -> Ok None
        | Some (Json.String s) -> Ok (Some s)
        | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
      in
      let int_field name =
        match List.assoc_opt name fields with
        | None -> Ok None
        | Some (Json.Int i) -> Ok (Some i)
        | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
      in
      let ( let* ) r k =
        match r with Error e -> Error (Bad_request, e) | Ok v -> k v
      in
      let* op = str_field "op" in
      let* view = str_field "view" in
      let* q = str_field "q" in
      let* u = str_field "u" in
      let* base = str_field "base" in
      let* policy = str_field "policy" in
      let* deadline_ms = int_field "deadline_ms" in
      let* seq = int_field "seq" in
      let* max = int_field "max" in
      let* wait_ms = int_field "wait_ms" in
      let* node = str_field "node" in
      match op with
      | None -> Error (Bad_request, "frame has no \"op\" field")
      | Some op ->
          let text = match q with Some _ -> q | None -> u in
          Ok { id; op; view; text; base; policy; deadline_ms; seq; max; wait_ms; node })
  | _ -> Error (Bad_frame, "frame must be a JSON object")

let request_of_line line =
  match Json.of_string line with
  | Error e -> Error (Bad_frame, "frame is not valid JSON: " ^ e)
  | Ok v -> request_of_json v

let request_to_json ?id ?view ?text ?base ?policy ?deadline_ms ?seq ?max
    ?wait_ms ?node op =
  let int_opt name = function
    | Some i -> [ (name, Json.Int i) ]
    | None -> []
  in
  let str_opt name = function
    | Some s -> [ (name, Json.String s) ]
    | None -> []
  in
  let fields =
    (match id with Some v -> [ ("id", v) ] | None -> [])
    @ [ ("op", Json.String op) ]
    @ str_opt "view" view
    @ (match text with
      | Some t ->
          (* updates travel in "u", everything else in "q" *)
          [ ((if op = "update" then "u" else "q"), Json.String t) ]
      | None -> [])
    @ str_opt "base" base
    @ str_opt "policy" policy
    @ int_opt "deadline_ms" deadline_ms
    @ int_opt "seq" seq
    @ int_opt "max" max
    @ int_opt "wait_ms" wait_ms
    @ str_opt "node" node
  in
  Json.Obj fields

let request_to_line ?id ?view ?text ?base ?policy ?deadline_ms ?seq ?max
    ?wait_ms ?node op =
  Json.to_string
    (request_to_json ?id ?view ?text ?base ?policy ?deadline_ms ?seq ?max
       ?wait_ms ?node op)

let with_id id fields =
  match id with Some v -> ("id", v) :: fields | None -> fields

let ok_response ?id payload =
  Json.Obj (with_id id (("ok", Json.Bool true) :: payload))

let error_response ?id ?(data = []) code message =
  Json.Obj
    (with_id id
       [
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             ([
                ("code", Json.String (code_to_string code));
                ("message", Json.String message);
              ]
             @ data) );
       ])

let ok_line ?id payload = Json.to_string (ok_response ?id payload)

let error_line ?id ?data code message =
  Json.to_string (error_response ?id ?data code message)

(* --- binary framing ------------------------------------------------
   The normative description of everything below is docs/WIRE.md; keep
   the two in lockstep.  A binary connection opens with an 8-byte magic
   (version-carrying, echoed by the server as the acceptance ack), then
   exchanges length-prefixed frames: u32 big-endian body length, one
   frame-type byte, one tagged value.  The value encoding is a direct
   image of [Json.t], so both protocols share every request/response
   constructor above — only the bytes on the wire differ. *)

type proto = Json | Bin

let proto_to_string = function Json -> "json" | Bin -> "bin"

let proto_of_string = function
  | "json" -> Some Json
  | "bin" -> Some Bin
  | _ -> None

(* 0xB5 is deliberately outside printable ASCII — no JSON line can ever
   start with it, which is what makes first-byte sniffing unambiguous.
   The last two bytes are the protocol version, major.minor. *)
let magic = "\xb5SITB1\x00\x01"
let max_frame = 16 * 1024 * 1024
let max_depth = 512

type frame_kind = Request | Response

let kind_byte = function Request -> '\x01' | Response -> '\x02'

let add_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let add_i64 b (n : int64) =
  for shift = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical n (shift * 8)) land 0xff))
  done

let rec add_value b = function
  | Json.Null -> Buffer.add_char b '\x00'
  | Json.Bool false -> Buffer.add_char b '\x01'
  | Json.Bool true -> Buffer.add_char b '\x02'
  | Json.Int i ->
      Buffer.add_char b '\x03';
      add_i64 b (Int64.of_int i)
  | Json.Float f ->
      Buffer.add_char b '\x04';
      add_i64 b (Int64.bits_of_float f)
  | Json.String s ->
      Buffer.add_char b '\x05';
      add_u32 b (String.length s);
      Buffer.add_string b s
  | Json.List items ->
      Buffer.add_char b '\x06';
      add_u32 b (List.length items);
      List.iter (add_value b) items
  | Json.Obj fields ->
      Buffer.add_char b '\x07';
      add_u32 b (List.length fields);
      List.iter
        (fun (k, v) ->
          add_u32 b (String.length k);
          Buffer.add_string b k;
          add_value b v)
        fields

let encode_bin kind v =
  let body = Buffer.create 256 in
  Buffer.add_char body (kind_byte kind);
  add_value body v;
  let frame = Buffer.create (Buffer.length body + 4) in
  add_u32 frame (Buffer.length body);
  Buffer.add_buffer frame body;
  Buffer.contents frame

exception Bin_error of string

let bin_fail fmt = Printf.ksprintf (fun s -> raise (Bin_error s)) fmt

let get_byte s pos =
  if !pos >= String.length s then bin_fail "truncated frame at byte %d" !pos;
  let c = Char.code s.[!pos] in
  incr pos;
  c

let get_u32 s pos =
  if !pos + 4 > String.length s then
    bin_fail "truncated length at byte %d" !pos;
  let n =
    (Char.code s.[!pos] lsl 24)
    lor (Char.code s.[!pos + 1] lsl 16)
    lor (Char.code s.[!pos + 2] lsl 8)
    lor Char.code s.[!pos + 3]
  in
  pos := !pos + 4;
  n

let get_i64 s pos =
  if !pos + 8 > String.length s then
    bin_fail "truncated 64-bit value at byte %d" !pos;
  let n = ref 0L in
  for k = 0 to 7 do
    n := Int64.logor (Int64.shift_left !n 8) (Int64.of_int (Char.code s.[!pos + k]))
  done;
  pos := !pos + 8;
  !n

let get_string s pos =
  let n = get_u32 s pos in
  if n > String.length s - !pos then
    bin_fail "string length %d exceeds frame at byte %d" n (!pos - 4);
  let out = String.sub s !pos n in
  pos := !pos + n;
  out

let rec get_value s pos depth =
  if depth > max_depth then bin_fail "value nested deeper than %d" max_depth;
  let at = !pos in
  match get_byte s pos with
  | 0x00 -> Json.Null
  | 0x01 -> Json.Bool false
  | 0x02 -> Json.Bool true
  | 0x03 ->
      let n64 = get_i64 s pos in
      let n = Int64.to_int n64 in
      (* OCaml ints are 63-bit: reject rather than silently wrap, so
         every accepted frame re-encodes to its own bytes *)
      if not (Int64.equal (Int64.of_int n) n64) then
        bin_fail "integer %Ld does not fit a 63-bit int" n64;
      Json.Int n
  | 0x04 -> Json.Float (Int64.float_of_bits (get_i64 s pos))
  | 0x05 -> Json.String (get_string s pos)
  | 0x06 ->
      let n = get_u32 s pos in
      (* every element is at least one byte, so a count beyond the
         remaining bytes is corrupt — reject before allocating *)
      if n > String.length s - !pos then
        bin_fail "list count %d exceeds frame at byte %d" n at;
      Json.List (List.init n (fun _ -> get_value s pos (depth + 1)))
  | 0x07 ->
      let n = get_u32 s pos in
      if n > String.length s - !pos then
        bin_fail "object count %d exceeds frame at byte %d" n at;
      Json.Obj
        (List.init n (fun _ ->
             let k = get_string s pos in
             (k, get_value s pos (depth + 1))))
  | tag -> bin_fail "bad value tag 0x%02x at byte %d" tag at

(* [hdr] is the 4-byte length prefix alone; streaming readers call this
   before pulling the body off the socket so an adversarial length can
   never trigger the allocation. *)
let bin_length hdr =
  if String.length hdr <> 4 then Error "length prefix must be 4 bytes"
  else
    let pos = ref 0 in
    let n = get_u32 hdr pos in
    if n > max_frame then
      Error (Printf.sprintf "frame length %d exceeds the %d-byte limit" n max_frame)
    else if n < 1 then Error "empty frame (no frame-type byte)"
    else Ok n

let decode_bin s =
  try
    if String.length s < 4 then bin_fail "truncated length prefix";
    match bin_length (String.sub s 0 4) with
    | Error e -> Error e
    | Ok n ->
        if String.length s - 4 <> n then
          bin_fail "frame declares %d body bytes but carries %d" n
            (String.length s - 4);
        let pos = ref 4 in
        let kind =
          match get_byte s pos with
          | 0x01 -> Request
          | 0x02 -> Response
          | t -> bin_fail "bad frame type 0x%02x" t
        in
        let v = get_value s pos 0 in
        if !pos <> String.length s then
          bin_fail "%d trailing bytes after value" (String.length s - !pos);
        Ok (kind, v)
  with Bin_error e -> Error e

let value_to_json = function
  | Instance.Value.Str s -> Json.String s
  | Instance.Value.Int i -> Json.Int i
  | Instance.Value.Real r -> Json.Float r
  | Instance.Value.Bool b -> Json.Bool b
  | Instance.Value.Date (y, m, d) ->
      Json.String (Printf.sprintf "%04d-%02d-%02d" y m d)
  | Instance.Value.Null -> Json.Null

let row_to_json row =
  Json.Obj
    (Ecr.Name.Map.fold
       (fun name v acc -> (Ecr.Name.to_string name, value_to_json v) :: acc)
       row []
    |> List.rev)

let rows_to_json rows = Json.List (List.map row_to_json rows)
