module Json = Obs.Json

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  let s = String.trim s in
  if s = "" then Error "empty listen address"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "unix: address needs a socket path"
    else Ok (Unix_path path)
  end
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "expected unix:PATH or HOST:PORT, got %s" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 ->
            Ok (Tcp ((if host = "" then "0.0.0.0" else host), p))
        | _ -> Error (Printf.sprintf "bad port %S in listen address" port))

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type error_code =
  | Bad_frame
  | Bad_request
  | Unknown_op
  | Unknown_view
  | Parse_error
  | Unmapped
  | Eval_error
  | Update_error
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal

let code_to_string = function
  | Bad_frame -> "bad_frame"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Unknown_view -> "unknown_view"
  | Parse_error -> "parse_error"
  | Unmapped -> "unmapped"
  | Eval_error -> "eval_error"
  | Update_error -> "update_error"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let all_codes =
  [
    Bad_frame; Bad_request; Unknown_op; Unknown_view; Parse_error; Unmapped;
    Eval_error; Update_error; Overloaded; Deadline_exceeded; Shutting_down;
    Internal;
  ]

let code_of_string s = List.find_opt (fun c -> code_to_string c = s) all_codes

(* Every request "op" the daemon understands, data operations first,
   inline control operations last.  This list is the single source of
   truth for the operation table in docs/SERVING.md —
   scripts/docs_check.sh extracts the quoted names below and fails
   `make check` when the documentation drifts. *)
let ops =
  [
    "query"; "rewrite"; "update"; "migrate"; "define_view"; "drop_view";
    "refresh_view"; "sleep"; "view_stats"; "health"; "metrics";
  ]

type request = {
  id : Json.t option;
  op : string;
  view : string option;
  text : string option;
  base : string option;
  policy : string option;
  deadline_ms : int option;
}

let request_of_line line =
  match Json.of_string line with
  | Error e -> Error (Bad_frame, "frame is not valid JSON: " ^ e)
  | Ok (Json.Obj fields as obj) -> (
      let id = Json.member "id" obj in
      let str_field name =
        match List.assoc_opt name fields with
        | None -> Ok None
        | Some (Json.String s) -> Ok (Some s)
        | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
      in
      let int_field name =
        match List.assoc_opt name fields with
        | None -> Ok None
        | Some (Json.Int i) -> Ok (Some i)
        | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
      in
      let ( let* ) r k =
        match r with Error e -> Error (Bad_request, e) | Ok v -> k v
      in
      let* op = str_field "op" in
      let* view = str_field "view" in
      let* q = str_field "q" in
      let* u = str_field "u" in
      let* base = str_field "base" in
      let* policy = str_field "policy" in
      let* deadline_ms = int_field "deadline_ms" in
      match op with
      | None -> Error (Bad_request, "frame has no \"op\" field")
      | Some op ->
          let text = match q with Some _ -> q | None -> u in
          Ok { id; op; view; text; base; policy; deadline_ms })
  | Ok _ -> Error (Bad_frame, "frame must be a JSON object")

let request_to_line ?id ?view ?text ?base ?policy ?deadline_ms op =
  let fields =
    (match id with Some v -> [ ("id", v) ] | None -> [])
    @ [ ("op", Json.String op) ]
    @ (match view with Some v -> [ ("view", Json.String v) ] | None -> [])
    @ (match text with
      | Some t ->
          (* updates travel in "u", everything else in "q" *)
          [ ((if op = "update" then "u" else "q"), Json.String t) ]
      | None -> [])
    @ (match base with Some b -> [ ("base", Json.String b) ] | None -> [])
    @ (match policy with Some p -> [ ("policy", Json.String p) ] | None -> [])
    @
    match deadline_ms with
    | Some d -> [ ("deadline_ms", Json.Int d) ]
    | None -> []
  in
  Json.to_string (Json.Obj fields)

let with_id id fields =
  match id with Some v -> ("id", v) :: fields | None -> fields

let ok_line ?id payload =
  Json.to_string (Json.Obj (with_id id (("ok", Json.Bool true) :: payload)))

let error_line ?id code message =
  Json.to_string
    (Json.Obj
       (with_id id
          [
            ("ok", Json.Bool false);
            ( "error",
              Json.Obj
                [
                  ("code", Json.String (code_to_string code));
                  ("message", Json.String message);
                ] );
          ]))

let value_to_json = function
  | Instance.Value.Str s -> Json.String s
  | Instance.Value.Int i -> Json.Int i
  | Instance.Value.Real r -> Json.Float r
  | Instance.Value.Bool b -> Json.Bool b
  | Instance.Value.Date (y, m, d) ->
      Json.String (Printf.sprintf "%04d-%02d-%02d" y m d)
  | Instance.Value.Null -> Json.Null

let row_to_json row =
  Json.Obj
    (Ecr.Name.Map.fold
       (fun name v acc -> (Ecr.Name.to_string name, value_to_json v) :: acc)
       row []
    |> List.rev)

let rows_to_json rows = Json.List (List.map row_to_json rows)
