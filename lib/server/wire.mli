(** The serving protocol: line-delimited JSON frames.

    One request per line, one response line per request, in order.  The
    full operation and error-code reference lives in [docs/SERVING.md];
    this module owns the framing so the daemon and the client cannot
    drift apart. *)

(** Where a server listens / a client connects. *)
type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:/path/to.sock"], ["host:port"] or [":port"] (binds
    0.0.0.0; port [0] asks the kernel for an ephemeral port). *)

val addr_to_string : addr -> string

(** Typed protocol errors.  Every failure a request can hit maps to one
    of these; the daemon never answers a frame with anything else (and
    never dies on one). *)
type error_code =
  | Bad_frame  (** not JSON, or not a JSON object *)
  | Bad_request  (** missing/ill-typed fields for the operation *)
  | Unknown_op
  | Unknown_view
  | Parse_error  (** query/update text rejected by [Query.Parser] *)
  | Unmapped  (** [Query.Rewrite.Unmapped]: mapping has no entry *)
  | Eval_error  (** [Query.Eval.Error]: ill-typed against the schema *)
  | Update_error  (** [Query.Update.Error] *)
  | Overloaded  (** bounded request queue is full — retry later *)
  | Deadline_exceeded
  | Shutting_down
  | Internal

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

val ops : string list
(** Every request operation the daemon understands, data operations
    first.  The single source of truth for the operation table in
    [docs/SERVING.md]: [scripts/docs_check.sh] compares the two and
    fails [make check] on drift. *)

type request = {
  id : Obs.Json.t option;  (** echoed verbatim in the response *)
  op : string;
  view : string option;
      (** a component schema for [query]/[rewrite]/[update]; the view
          name for [define_view]/[drop_view]/[refresh_view] and for a
          materialized read ([query] with no ["q"]) *)
  text : string option;  (** the ["q"] / ["u"] payload *)
  base : string option;
      (** [define_view] only: component schema the defining query is
          written against (the definition is rewritten through it) *)
  policy : string option;
      (** [define_view] only: ["eager"], ["lazy"] (default), ["manual"] *)
  deadline_ms : int option;
}

val request_of_line : string -> (request, error_code * string) result
(** Decodes one frame.  [Error] carries the code and a human message;
    no id is available for a frame that does not decode to an object,
    so the error response echoes [id] only when one was recoverable. *)

val request_to_line :
  ?id:Obs.Json.t ->
  ?view:string ->
  ?text:string ->
  ?base:string ->
  ?policy:string ->
  ?deadline_ms:int ->
  string ->
  string
(** [request_to_line op] builds the client-side frame (no trailing
    newline). *)

val ok_line : ?id:Obs.Json.t -> (string * Obs.Json.t) list -> string
(** [{"id":..,"ok":true,<payload fields>}] (no trailing newline). *)

val error_line : ?id:Obs.Json.t -> error_code -> string -> string
(** [{"id":..,"ok":false,"error":{"code":..,"message":..}}]. *)

val value_to_json : Instance.Value.t -> Obs.Json.t
(** [Str]/[Int]/[Real]/[Bool] map to their JSON counterparts, [Date] to
    ["YYYY-MM-DD"], [Null] to [null]. *)

val row_to_json : Query.Eval.row -> Obs.Json.t
(** Object with one field per column, in [Ecr.Name] order —
    deterministic, so equal answers render byte-identically. *)

val rows_to_json : Query.Eval.row list -> Obs.Json.t
