(** The serving protocol: line-delimited JSON frames, or the equivalent
    length-prefixed binary frames.

    One request per frame, one response frame per request, in order.
    Both protocols carry the same request/response values; a connection
    picks one at accept time (a binary connection announces itself with
    {!magic}, anything else is JSON lines).  The operation and
    error-code reference lives in [docs/SERVING.md]; the normative
    byte-level description of both framings is [docs/WIRE.md].  This
    module owns the framing so the daemon and the client cannot drift
    apart. *)

(** Where a server listens / a client connects. *)
type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:/path/to.sock"], ["host:port"] or [":port"] (binds
    0.0.0.0; port [0] asks the kernel for an ephemeral port). *)

val addr_to_string : addr -> string

(** Typed protocol errors.  Every failure a request can hit maps to one
    of these; the daemon never answers a frame with anything else (and
    never dies on one). *)
type error_code =
  | Bad_frame  (** not JSON, or not a JSON object *)
  | Bad_request  (** missing/ill-typed fields for the operation *)
  | Unknown_op
  | Unknown_view
  | Parse_error  (** query/update text rejected by [Query.Parser] *)
  | Unmapped  (** [Query.Rewrite.Unmapped]: mapping has no entry *)
  | Eval_error  (** [Query.Eval.Error]: ill-typed against the schema *)
  | Update_error  (** [Query.Update.Error] *)
  | Overloaded  (** bounded request queue is full — retry later *)
  | Deadline_exceeded
  | Not_leader
      (** a mutation reached a follower; the error payload carries a
          ["leader"] field with the address to redirect to *)
  | Shutting_down
  | Internal

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

val ops : string list
(** Every request operation the daemon understands, data operations
    first.  The single source of truth for the operation table in
    [docs/SERVING.md]: [scripts/docs_check.sh] compares the two and
    fails [make check] on drift. *)

val mutating : string -> bool
(** Whether an operation changes server state ([update], [migrate] and
    the view-catalog operations).  Exactly these are appended to the
    replication log on a leader and redirected with {!Not_leader} on a
    follower (docs/ROBUSTNESS.md). *)

type request = {
  id : Obs.Json.t option;  (** echoed verbatim in the response *)
  op : string;
  view : string option;
      (** a component schema for [query]/[rewrite]/[update]; the view
          name for [define_view]/[drop_view]/[refresh_view] and for a
          materialized read ([query] with no ["q"]) *)
  text : string option;  (** the ["q"] / ["u"] payload *)
  base : string option;
      (** [define_view] only: component schema the defining query is
          written against (the definition is rewritten through it) *)
  policy : string option;
      (** [define_view] only: ["eager"], ["lazy"] (default), ["manual"] *)
  deadline_ms : int option;
  seq : int option;
      (** [repl_pull]: first seq wanted; [repl_frame]: the seq wanted;
          [repl_snapshot]: the chunk index wanted (0-based) *)
  max : int option;  (** [repl_pull] only: frames-per-pull cap *)
  wait_ms : int option;
      (** [repl_pull] only: long-poll budget when no frame is ready *)
  node : string option;  (** the follower's identity on [repl_*] ops *)
}

val request_of_line : string -> (request, error_code * string) result
(** Decodes one frame.  [Error] carries the code and a human message;
    no id is available for a frame that does not decode to an object,
    so the error response echoes [id] only when one was recoverable. *)

val request_of_json : Obs.Json.t -> (request, error_code * string) result
(** Field validation shared by both protocols: what {!request_of_line}
    does after parsing, and what the binary path does after
    {!decode_bin}. *)

val request_to_line :
  ?id:Obs.Json.t ->
  ?view:string ->
  ?text:string ->
  ?base:string ->
  ?policy:string ->
  ?deadline_ms:int ->
  ?seq:int ->
  ?max:int ->
  ?wait_ms:int ->
  ?node:string ->
  string ->
  string
(** [request_to_line op] builds the client-side frame (no trailing
    newline). *)

val request_to_json :
  ?id:Obs.Json.t ->
  ?view:string ->
  ?text:string ->
  ?base:string ->
  ?policy:string ->
  ?deadline_ms:int ->
  ?seq:int ->
  ?max:int ->
  ?wait_ms:int ->
  ?node:string ->
  string ->
  Obs.Json.t
(** The request value itself, for clients that frame it as binary. *)

val ok_response : ?id:Obs.Json.t -> (string * Obs.Json.t) list -> Obs.Json.t
(** The response value behind {!ok_line}, for binary framing. *)

val error_response :
  ?id:Obs.Json.t ->
  ?data:(string * Obs.Json.t) list ->
  error_code ->
  string ->
  Obs.Json.t
(** The response value behind {!error_line}, for binary framing.
    [data] fields are appended inside the ["error"] object after
    ["code"] and ["message"] — {!Not_leader} carries its ["leader"]
    address this way. *)

val ok_line : ?id:Obs.Json.t -> (string * Obs.Json.t) list -> string
(** [{"id":..,"ok":true,<payload fields>}] (no trailing newline). *)

val error_line :
  ?id:Obs.Json.t ->
  ?data:(string * Obs.Json.t) list ->
  error_code ->
  string ->
  string
(** [{"id":..,"ok":false,"error":{"code":..,"message":..}}]. *)

(** {1 Binary framing}

    Byte-level spec: [docs/WIRE.md].  Frames are a u32 big-endian body
    length, one frame-type byte ([0x01] request, [0x02] response), one
    tagged value mirroring [Obs.Json.t].  A binary connection starts
    with the client sending {!magic}; the server echoes it back as the
    acceptance ack. *)

type proto = Json | Bin

val proto_to_string : proto -> string
val proto_of_string : string -> proto option

val magic : string
(** 8 bytes: [0xB5 "SITB1"] then the two version bytes (major, minor).
    The leading byte is outside printable ASCII, so no JSON-lines frame
    can ever be mistaken for it — that is the whole negotiation. *)

val max_frame : int
(** Largest accepted frame body (16 MiB).  Receivers reject the length
    prefix before reading the body. *)

type frame_kind = Request | Response

val encode_bin : frame_kind -> Obs.Json.t -> string
(** The complete frame: length prefix, frame-type byte, encoded value.
    Write it verbatim; no trailing delimiter. *)

val decode_bin : string -> (frame_kind * Obs.Json.t, string) result
(** Decodes one complete frame (prefix included).  Rejects truncated
    and oversized frames, bad frame types, bad value tags, counts that
    exceed the frame, nesting beyond an internal depth limit, and
    trailing bytes — the error is a human-readable reason. *)

val bin_length : string -> (int, string) result
(** [bin_length hdr] validates a 4-byte length prefix and returns the
    body length.  Streaming readers call this before allocating or
    reading the body, so a hostile length can never balloon memory. *)

val value_to_json : Instance.Value.t -> Obs.Json.t
(** [Str]/[Int]/[Real]/[Bool] map to their JSON counterparts, [Date] to
    ["YYYY-MM-DD"], [Null] to [null]. *)

val row_to_json : Query.Eval.row -> Obs.Json.t
(** Object with one field per column, in [Ecr.Name] order —
    deterministic, so equal answers render byte-identically. *)

val rows_to_json : Query.Eval.row list -> Obs.Json.t
