(** Protocol client: one blocking connection, plus the multi-connection
    load driver the bench harness and [make serve-test] use, plus the
    failover handle the chaos harness drives through a dying leader.

    Transport failures — connection refused, reset, EOF mid-roundtrip,
    a per-attempt timeout — raise the typed {!Connection_error}; those
    are exactly the failures a retry can fix.  Protocol failures
    (malformed frames, a server answering nonsense) raise [Failure] and
    retrying cannot help.  Typed {e error responses} are ordinary
    decoded responses, not exceptions. *)

exception Connection_error of string
(** A transport-layer failure: retryable by reconnecting (possibly to
    another endpoint).  The payload says which endpoint and why. *)

type t

val connect : ?proto:Wire.proto -> ?timeout_ms:int -> Wire.addr -> t
(** Default protocol is [Json] (line-delimited).  [~proto:Wire.Bin]
    performs the magic exchange of [docs/WIRE.md] on connect and frames
    every exchange as binary.  [timeout_ms] bounds each subsequent send
    and receive ([SO_SNDTIMEO]/[SO_RCVTIMEO]); a stalled peer then
    fails the roundtrip with {!Connection_error} instead of hanging.
    Raises {!Connection_error} when the endpoint cannot be reached or
    does not acknowledge the binary magic. *)

val close : t -> unit

val roundtrip : t -> string -> string
(** Sends one frame and reads one response.  The input line and the
    returned string are canonical JSON on {e both} protocols — a binary
    connection re-frames the request and renders the response value
    back — so callers that compare responses byte-for-byte work
    unchanged over either.  Raises {!Connection_error} if the transport
    fails mid-roundtrip. *)

val request :
  t ->
  ?id:Obs.Json.t ->
  ?view:string ->
  ?text:string ->
  ?base:string ->
  ?policy:string ->
  ?deadline_ms:int ->
  string ->
  Obs.Json.t
(** [request c op] builds the frame, roundtrips it and decodes the
    response.  Raises [Failure] only if the response line is not valid
    JSON (a server bug by construction). *)

val is_ok : Obs.Json.t -> bool
val error_code : Obs.Json.t -> string option

(** {1 Failover}

    A {!failover} handle holds at most one live connection to one of a
    fixed endpoint list.  {!failover_roundtrip} retries transport
    failures against the next endpoint under a {!Replicate.Backoff}
    budget, and chases [not_leader] redirects to the advertised leader
    — the read-failover side of docs/ROBUSTNESS.md. *)

type failover

val failover :
  ?proto:Wire.proto ->
  ?retry:Replicate.Backoff.policy ->
  ?timeout_ms:int ->
  Wire.addr list ->
  failover
(** Connections are opened lazily, starting from the first endpoint.
    [retry] defaults to {!Replicate.Backoff.fresh}[ ()] — a fresh
    random jitter seed per handle, so concurrently-created clients do
    not back off in lockstep; pass {!Replicate.Backoff.default}
    explicitly for deterministic delays in tests.  [timeout_ms] is
    applied per connection as in {!connect}.  Raises [Invalid_argument]
    on an empty endpoint list. *)

val failover_roundtrip : failover -> string -> string
(** Like {!roundtrip} with retries: a {!Connection_error} drops the
    connection, advances to the next endpoint (round-robin), sleeps the
    policy's next backoff delay and tries again; a [not_leader]
    response jumps to the advertised leader without sleeping.  Each
    hop consumes one attempt from the policy so redirect loops
    terminate.  When the budget is exhausted, the last [not_leader]
    response is returned as-is (the caller sees the typed error), or
    {!Connection_error} is raised when no endpoint ever answered. *)

val failover_close : failover -> unit
(** Drops the current connection if any; the handle stays usable. *)

val failover_stats : failover -> int * int
(** [(failovers, redirects)]: endpoint advances forced by transport
    failures, and [not_leader] redirects chased. *)

(** {1 Load driver} *)

type drive_stats = {
  sent : int;
  ok : int;
  failed : int;  (** responses with [ok=false] *)
  by_code : (string * int) list;  (** error responses per code *)
  mismatches : int;
      (** identical frames answered with different bytes — must be 0
          for a deterministic workload *)
  wall_s : float;
}

val drive :
  ?proto:Wire.proto ->
  ?endpoints:Wire.addr list ->
  ?retry:Replicate.Backoff.policy ->
  ?timeout_ms:int ->
  addr:Wire.addr ->
  conns:int ->
  frames:string array ->
  unit ->
  drive_stats
(** Plays [frames] (canonical JSON lines, whatever the protocol) over
    [conns] concurrent connections (frame [i] goes to connection
    [i mod conns]; each connection sends its frames in order, one at a
    time).  Identical frame lines are checked to receive identical
    response bytes regardless of schedule.  With a non-empty
    [endpoints], each worker drives a {!failover} handle over that list
    instead of a plain connection to [addr] — the chaos harness's way
    of surviving a leader kill mid-load. *)

val play :
  ?proto:Wire.proto ->
  ?endpoints:Wire.addr list ->
  ?retry:Replicate.Backoff.policy ->
  ?timeout_ms:int ->
  addr:Wire.addr ->
  conns:int ->
  string array ->
  string array
(** Like {!drive}, but returns the responses {e in frame order} (frame
    [i] goes to connection [i mod conns]; response [i] is what it got
    back).  [conns:1] is a sequential replay on a single connection —
    the serial phases of a scenario schedule; larger values fan a storm
    phase out while keeping the response array deterministic for
    order-independent phases.  Canonical JSON on both protocols, like
    {!roundtrip}.  [endpoints] adds failover exactly as in {!drive}. *)

val pp_drive_stats : Format.formatter -> drive_stats -> unit
