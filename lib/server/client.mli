(** Protocol client: one blocking connection, plus the multi-connection
    load driver the bench harness and [make serve-test] use.

    Connection functions raise [Unix.Unix_error] on transport failures
    and [End_of_file] when the server closes mid-roundtrip; protocol
    errors are ordinary decoded responses. *)

type t

val connect : ?proto:Wire.proto -> Wire.addr -> t
(** Default protocol is [Json] (line-delimited).  [~proto:Wire.Bin]
    performs the magic exchange of [docs/WIRE.md] on connect and frames
    every exchange as binary; raises [Failure] when the server does not
    echo the magic. *)

val close : t -> unit

val roundtrip : t -> string -> string
(** Sends one frame and reads one response.  The input line and the
    returned string are canonical JSON on {e both} protocols — a binary
    connection re-frames the request and renders the response value
    back — so callers that compare responses byte-for-byte work
    unchanged over either. *)

val request :
  t ->
  ?id:Obs.Json.t ->
  ?view:string ->
  ?text:string ->
  ?base:string ->
  ?policy:string ->
  ?deadline_ms:int ->
  string ->
  Obs.Json.t
(** [request c op] builds the frame, roundtrips it and decodes the
    response.  Raises [Failure] only if the response line is not valid
    JSON (a server bug by construction). *)

val is_ok : Obs.Json.t -> bool
val error_code : Obs.Json.t -> string option

(** {1 Load driver} *)

type drive_stats = {
  sent : int;
  ok : int;
  failed : int;  (** responses with [ok=false] *)
  by_code : (string * int) list;  (** error responses per code *)
  mismatches : int;
      (** identical frames answered with different bytes — must be 0
          for a deterministic workload *)
  wall_s : float;
}

val drive :
  ?proto:Wire.proto ->
  addr:Wire.addr ->
  conns:int ->
  frames:string array ->
  unit ->
  drive_stats
(** Plays [frames] (canonical JSON lines, whatever the protocol) over
    [conns] concurrent connections (frame [i] goes to connection
    [i mod conns]; each connection sends its frames in order, one at a
    time).  Identical frame lines are checked to receive identical
    response bytes regardless of schedule. *)

val play :
  ?proto:Wire.proto -> addr:Wire.addr -> conns:int -> string array -> string array
(** Like {!drive}, but returns the responses {e in frame order} (frame
    [i] goes to connection [i mod conns]; response [i] is what it got
    back).  [conns:1] is a sequential replay on a single connection —
    the serial phases of a scenario schedule; larger values fan a storm
    phase out while keeping the response array deterministic for
    order-independent phases.  Canonical JSON on both protocols, like
    {!roundtrip}. *)

val pp_drive_stats : Format.formatter -> drive_stats -> unit
