(* Hash table over an intrusive doubly-linked recency list.  The list
   has a permanent sentinel node; [sentinel.next] is the most recently
   used entry and [sentinel.prev] the least. *)

type ('k, 'v) node = {
  mutable key : 'k option;  (* [None] only on the sentinel *)
  mutable value : 'v option;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  sentinel : ('k, 'v) node;
}

let create ~capacity =
  let rec sentinel =
    { key = None; value = None; prev = sentinel; next = sentinel }
  in
  { cap = capacity; table = Hashtbl.create 64; sentinel }

let capacity t = t.cap
let size t = Hashtbl.length t.table

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      unlink n;
      push_front t n;
      n.value

let add t k v =
  if t.cap <= 0 then None
  else begin
    (match Hashtbl.find_opt t.table k with
    | Some n ->
        unlink n;
        Hashtbl.remove t.table k
    | None -> ());
    let n = { key = Some k; value = Some v; prev = t.sentinel; next = t.sentinel } in
    push_front t n;
    Hashtbl.replace t.table k n;
    if Hashtbl.length t.table <= t.cap then None
    else begin
      let lru = t.sentinel.prev in
      unlink lru;
      match (lru.key, lru.value) with
      | Some k, Some v ->
          Hashtbl.remove t.table k;
          Some (k, v)
      | _ -> None (* sentinel: impossible while the table is non-empty *)
    end
  end

let clear t =
  Hashtbl.reset t.table;
  t.sentinel.next <- t.sentinel;
  t.sentinel.prev <- t.sentinel
