(* A fixed set of worker domains around one FIFO queue.  Submission
   ([map]) enqueues one closure per element and then the submitting
   domain joins the drain loop, so a pool of [jobs = n] runs at most
   [n] tasks concurrently ([n - 1] workers + the submitter) and nested
   [map]s on one pool always make progress: a parked submitter only
   parks when the queue is empty, and a nested submitter executes
   whatever is at the head of the queue — possibly its parent batch's
   tasks — until its own are done. *)

let c_workers = Obs.Counter.make "par.workers"
let c_tasks = Obs.Counter.make "par.tasks"
let h_pool_ms = Obs.Histogram.make "par.pool_ms"

type pool = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (** a task was enqueued, or [stop] was raised *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

(* Tasks never raise: [map] wraps each element in its own
   capture-into-slot closure. *)
let worker pool =
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work pool.mutex
    done;
    match Queue.take_opt pool.queue with
    | Some task ->
        Mutex.unlock pool.mutex;
        task ()
    | None ->
        (* empty and stopping *)
        Mutex.unlock pool.mutex;
        running := false
  done

let create ~jobs =
  let jobs = if jobs < 1 then 1 else jobs in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  let workers = jobs - 1 in
  if workers > 0 then begin
    pool.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker pool));
    Obs.Counter.add c_workers workers
  end;
  pool

let jobs pool = pool.jobs
let worker_count pool = List.length pool.domains

let shutdown pool =
  let domains =
    Mutex.protect pool.mutex (fun () ->
        pool.stop <- true;
        Condition.broadcast pool.work;
        let d = pool.domains in
        pool.domains <- [];
        d)
  in
  List.iter Domain.join domains

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map_array pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.jobs <= 1 || n <= 1 then Array.map f arr
  else begin
    Obs.Counter.add c_tasks n;
    let t0 = Unix.gettimeofday () in
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let finished = Condition.create () in
    let run_task i =
      let r =
        try Ok (f arr.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      (* the atomic decrement publishes the slot write; the submitter
         reads the slots only after it has observed zero *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock pool.mutex;
        Condition.broadcast finished;
        Mutex.unlock pool.mutex
      end
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.add (fun () -> run_task i) pool.queue
    done;
    Condition.broadcast pool.work;
    (* help drain; park only while the queue is empty but tasks (of
       this or any concurrent batch) are still in flight on workers *)
    while Atomic.get remaining > 0 do
      match Queue.take_opt pool.queue with
      | Some task ->
          Mutex.unlock pool.mutex;
          task ();
          Mutex.lock pool.mutex
      | None -> if Atomic.get remaining > 0 then Condition.wait finished pool.mutex
    done;
    Mutex.unlock pool.mutex;
    Obs.Histogram.observe h_pool_ms ((Unix.gettimeofday () -. t0) *. 1000.0);
    (* every slot has settled; Array.map visits slots in index order,
       so the lowest-index failure re-raises deterministically *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

(* ---- single-task submission (the request-serving path) ----------- *)

type 'a state = Pending | Done of ('a, exn * Printexc.raw_backtrace) result

type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;  (** signalled exactly once, on fulfilment *)
  mutable p_state : 'a state;
}

let fulfil p r =
  Mutex.lock p.p_mutex;
  p.p_state <- Done r;
  Condition.broadcast p.p_cond;
  Mutex.unlock p.p_mutex

let async pool f =
  let p =
    { p_mutex = Mutex.create (); p_cond = Condition.create (); p_state = Pending }
  in
  let task () =
    let r =
      try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    fulfil p r
  in
  if pool.jobs <= 1 then task ()
    (* no worker domains: run on the submitter, exactly like the
       [map] bypass — [await] then returns without blocking *)
  else begin
    Obs.Counter.incr c_tasks;
    Mutex.lock pool.mutex;
    Queue.add task pool.queue;
    Condition.signal pool.work;
    Mutex.unlock pool.mutex
  end;
  p

let await pool p =
  (* Help drain the pool while the promise is pending, so a submitting
     thread counts towards the pool's parallelism degree exactly like a
     [map] submitter; park on the promise only when the queue is empty.
     Helping also guarantees progress when every worker is busy (or the
     pool was shut down with tasks still queued): the oldest queued
     task — possibly this promise's own — runs on this thread. *)
  let rec loop () =
    match p.p_state with
    | Done r -> r
    | Pending -> (
        let task =
          Mutex.protect pool.mutex (fun () -> Queue.take_opt pool.queue)
        in
        match task with
        | Some task ->
            task ();
            loop ()
        | None ->
            Mutex.lock p.p_mutex;
            (match p.p_state with
            | Pending -> Condition.wait p.p_cond p.p_mutex
            | Done _ -> ());
            Mutex.unlock p.p_mutex;
            loop ())
  in
  match loop () with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when pool.jobs <= 1 -> List.map f xs
  | _ -> Array.to_list (map_array pool f (Array.of_list xs))

let iter pool f xs = ignore (map pool (fun x -> f x) xs)

let default_jobs () =
  match Sys.getenv_opt "SIT_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
