(** A deterministic fixed-size domain pool for the embarrassingly
    parallel stages of the pipeline.

    The contract that makes parallelism safe to wire through the
    integration protocol is {e ordered reduction}: {!map}[ pool f xs]
    returns the results {b in input order}, so any consumer that folds
    over them is bit-identical to the sequential [List.map f xs] — the
    property pinned by the parallel==sequential differential tests.
    Only the {e schedule} of the [f] calls is nondeterministic; [f]
    must therefore be pure up to commutative effects (atomic
    {!Obs.Counter} increments qualify, interactive DDA questions do
    not — the protocol keeps those on the submitting domain).

    A pool of [jobs = n] runs at most [n] tasks concurrently: [n - 1]
    worker domains plus the submitting domain, which participates in
    draining the queue while it waits.  Because the submitter always
    helps, calling {!map} from inside a task of the same pool cannot
    deadlock — the nested call drains its own sub-tasks.  [~jobs:1]
    spawns no domains at all and every [map] degrades to [List.map] on
    the caller's domain.

    Exceptions raised by tasks are captured per task and re-raised at
    the await point, after every task of the batch has settled; when
    several tasks fail, the exception of the {e lowest input index}
    wins, so failure behaviour is deterministic too.

    Observability: ["par.workers"] counts domains spawned,
    ["par.tasks"] counts tasks submitted to a pool (zero on the
    [~jobs:1] bypass), and the ["par.pool_ms"] histogram records
    per-batch wall-clock milliseconds. *)

type pool

val create : jobs:int -> pool
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains.  [jobs]
    below 1 behaves as 1.  Pools are lightweight but hold OS threads:
    {!shutdown} them (or use {!with_pool}). *)

val jobs : pool -> int
(** The parallelism degree the pool was created with (>= 1). *)

val worker_count : pool -> int
(** Worker domains actually spawned: [jobs - 1], or 0 for a sequential
    pool — the [~jobs:1] bypass never spawns a domain. *)

val shutdown : pool -> unit
(** Signals the workers to exit and joins them.  Idempotent.  Any
    {!map} still in flight on another domain is completed by the
    submitting domain.  *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val map : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map: same results as [List.map f xs], any
    schedule.  Reentrant on the same pool (see above). *)

val map_array : pool -> ('a -> 'b) -> 'a array -> 'b array
(** As {!map}, over arrays. *)

val iter : pool -> ('a -> unit) -> 'a list -> unit
(** [iter pool f xs] runs every [f x] to completion, in any order.
    Exceptions: as {!map}. *)

type 'a promise
(** The result of one asynchronously submitted task. *)

val async : pool -> (unit -> 'a) -> 'a promise
(** [async pool f] submits the single task [f] to the pool and returns
    immediately; some worker domain eventually runs it.  On a [~jobs:1]
    pool the task runs synchronously on the caller before [async]
    returns (the same bypass as {!map}).  This is the request-serving
    path: unlike {!map}, tasks from many submitting threads interleave
    in one FIFO.  [f] must be pure up to commutative effects, as for
    {!map}. *)

val await : pool -> 'a promise -> 'a
(** Blocks until the promise settles and returns the task's result, or
    re-raises its exception (with its backtrace).  While the promise is
    pending the awaiting thread {e helps drain} the pool's queue — so
    the submitter counts towards the parallelism degree, and progress
    is guaranteed even when every worker is busy.  Can be called at
    most meaningfully once per promise, from any thread. *)

val default_jobs : unit -> int
(** The parallelism requested by the environment: [SIT_JOBS] when set
    to a positive integer, else 1.  Entry points that take a [?jobs]
    argument default to this, so [SIT_JOBS=8 dune runtest] drives the
    whole suite through the pool while the default stays sequential. *)
