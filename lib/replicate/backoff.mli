(** Deterministic exponential backoff with jitter.

    Every retry loop in the replication tier (client failover, follower
    reconnect) draws its delays from one of these policies.  The jitter
    source is a seeded SplitMix64 stream, so a pinned seed produces a
    pinned delay sequence — the chaos harness can assert "fails over
    within the retry budget" without a race on wall-clock randomness. *)

type policy = {
  attempts : int;  (** total tries, including the first (>= 1) *)
  base_ms : float;  (** nominal delay before the second try *)
  factor : float;  (** multiplier per subsequent try *)
  max_ms : float;  (** nominal delay cap *)
  jitter : float;
      (** fraction of each delay that is randomized: a delay lands
          uniformly in [[nominal*(1-jitter), nominal]].  [0.] disables
          jitter entirely. *)
  seed : int;  (** jitter stream seed — same seed, same delays *)
}

val default : policy
(** 5 attempts, 25 ms doubling to a 2 s cap, 50% jitter, seed 0.
    Deterministic by construction — two loops built from [default]
    retry in lockstep, which is exactly what a fleet must NOT do
    against a recovering leader.  Use it (or a pinned [seed]) in tests;
    production retry loops should default to {!fresh}. *)

val fresh_seed : unit -> int
(** A per-process, per-call seed: pid ⊕ first-use wall clock ⊕ an
    atomic counter, so every call yields a distinct value and two
    processes started together still diverge. *)

val fresh : unit -> policy
(** [{ default with seed = fresh_seed () }] — the default policy of
    every client/follower retry loop in the serving tier, so no two
    default-configured loops share a jitter stream. *)

val delays : policy -> float list
(** The inter-attempt delays in milliseconds ([attempts - 1] of them),
    fully determined by the policy.  Retry loops that outlive the
    policy's attempt budget (a follower tailing a dead leader) keep
    re-using the final — capped — delay. *)

type 'e failure = { tried : int; last : 'e }

val run :
  ?sleep:(float -> unit) -> policy -> (int -> ('a, 'e) result) -> ('a, 'e failure) result
(** [run policy f] calls [f 0], [f 1], ... until one succeeds or the
    attempt budget runs out, sleeping the policy's delay (milliseconds)
    between tries.  [sleep] is injectable so tests run at full speed. *)
