(* State snapshots for log compaction: an opaque payload (the serving
   tier's serialized runtime state) stamped with the log seq it covers,
   persisted one file per snapshot as DIR/repl.snap.<seq>.

   Each file is a Journal.Frames log with its own magic: a header
   record naming the seq and chunk count, the payload in bounded
   chunks, and an explicit "end" trailer.  Frames recovery returns the
   longest valid record prefix, so a torn tail simply loses the
   trailer and the whole file reads as invalid — which is what lets
   [load] fall back to the previous retained snapshot instead of
   installing half a state.  Files are written to a temp path and
   renamed into place, so a crash mid-write never shadows a good
   snapshot. *)

module Frames = Journal.Frames

let magic = "SITSNAP1"
let retain = 2
let chunk_bytes = 1 lsl 20

let header ~seq ~chunks = Printf.sprintf "snapshot %d %d" seq chunks
let trailer = "end"

let parse_header p = Scanf.sscanf_opt p "snapshot %d %d%!" (fun s n -> (s, n))

let file_name seq = Printf.sprintf "repl.snap.%d" seq
let prefix = "repl.snap."

(* Retained snapshot seqs in [dir], newest first. *)
let retained ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             if
               String.length n > String.length prefix
               && String.sub n 0 (String.length prefix) = prefix
               && Filename.extension n <> ".tmp"
             then
               int_of_string_opt
                 (String.sub n (String.length prefix)
                    (String.length n - String.length prefix))
             else None)
      |> List.sort (fun a b -> compare b a)

let split_chunks payload =
  let len = String.length payload in
  if len = 0 then [ "" ]
  else
    List.init
      ((len + chunk_bytes - 1) / chunk_bytes)
      (fun i ->
        String.sub payload (i * chunk_bytes) (min chunk_bytes (len - (i * chunk_bytes))))

let save ~dir ~seq payload =
  let final = Filename.concat dir (file_name seq) in
  let tmp = final ^ ".tmp" in
  (try Sys.remove tmp with Sys_error _ -> ());
  let chunks = split_chunks payload in
  let _, f = Frames.open_ ~fsync:Frames.Always ~magic tmp in
  Frames.append f (header ~seq ~chunks:(List.length chunks));
  List.iter (Frames.append f) chunks;
  Frames.append f trailer;
  Frames.close f;
  Sys.rename tmp final;
  (* keep the newest [retain] snapshots: the previous one is the
     restart fallback when this one's tail turns out torn *)
  let keep = retained ~dir in
  let rec drop i = function
    | [] -> ()
    | s :: rest ->
        if i >= retain then
          (try Sys.remove (Filename.concat dir (file_name s))
           with Sys_error _ -> ());
        drop (i + 1) rest
  in
  drop 0 keep;
  List.filteri (fun i _ -> i < retain) keep

let read_one ~dir seq =
  let path = Filename.concat dir (file_name seq) in
  let r = Frames.recover ~magic path in
  match r.Frames.payloads with
  | h :: rest -> (
      match parse_header h with
      | Some (sseq, chunks)
        when List.length rest = chunks + 1
             && List.nth rest chunks = trailer ->
          Some (sseq, String.concat "" (List.filteri (fun i _ -> i < chunks) rest))
      | _ -> None)
  | [] -> None

let load ~dir =
  let rec go = function
    | [] -> None
    | seq :: rest -> (
        match read_one ~dir seq with
        | Some _ as ok -> ok
        | None -> go rest)
  in
  go (retained ~dir)
