module Json = Obs.Json

type progress = {
  applied : int Atomic.t;
  leader_seq : int Atomic.t;
  connected : bool Atomic.t;
  attempts : int Atomic.t;
  apply_errors : int Atomic.t;
  snapshots : int Atomic.t;
  last_error : string Atomic.t;
  stop : bool Atomic.t;
}

let make_progress () =
  {
    applied = Atomic.make 0;
    leader_seq = Atomic.make 0;
    connected = Atomic.make false;
    attempts = Atomic.make 0;
    apply_errors = Atomic.make 0;
    snapshots = Atomic.make 0;
    last_error = Atomic.make "";
    stop = Atomic.make false;
  }

let staleness p = max 0 (Atomic.get p.leader_seq - Atomic.get p.applied)
let last_error p = Atomic.get p.last_error
let request_stop p = Atomic.set p.stop true

(* Frames are built and parsed with Obs.Json directly: this module sits
   below lib/server, so it speaks the protocol by its documented shape
   rather than through Wire. *)
let handshake_line ~node =
  Json.to_string
    (Json.Obj [ ("op", Json.String "repl_handshake"); ("node", Json.String node) ])

let pull_line ~node ~from ~batch ~wait_ms =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "repl_pull");
         ("node", Json.String node);
         ("seq", Json.Int from);
         ("max", Json.Int batch);
         ("wait_ms", Json.Int wait_ms);
       ])

let snapshot_line ~node ~chunk =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "repl_snapshot");
         ("node", Json.String node);
         ("seq", Json.Int chunk);
       ])

let is_ok v = match Json.member "ok" v with Some (Json.Bool b) -> b | _ -> false

exception Retry of string

let retry fmt = Printf.ksprintf (fun s -> raise (Retry s)) fmt

let parse line =
  match Json.of_string line with
  | Ok v -> v
  | Error e -> retry "unparseable response: %s" e

let error_field name resp =
  match Json.member "error" resp with
  | Some err -> (
      match Json.member name err with Some (Json.String s) -> Some s | _ -> None)
  | None -> None

let note_leader_seq progress resp =
  match Json.member "repl_seq" resp with
  | Some (Json.Int s) -> Atomic.set progress.leader_seq s
  | _ -> ()

let run ~node ~connect ~close ~roundtrip ~apply ~progress
    ?(backoff = Backoff.fresh ()) ?(batch = 64) ?(wait_ms = 200)
    ?(throttle_ms = 0)
    ?(install = fun _ _ -> Error "this follower cannot install snapshots")
    ?(log = fun (_ : string) -> ()) () =
  let delays = Array.of_list (Backoff.delays backoff) in
  let delay_idx = ref 0 in
  (* sleep in small slices so request_stop stays responsive *)
  let sleep_ms ms =
    let until = Unix.gettimeofday () +. (ms /. 1000.) in
    while (not (Atomic.get progress.stop)) && Unix.gettimeofday () < until do
      Thread.delay 0.005
    done
  in
  let backoff_sleep () =
    Atomic.incr progress.attempts;
    if Array.length delays > 0 then begin
      sleep_ms delays.(min !delay_idx (Array.length delays - 1));
      incr delay_idx
    end
  in
  (* A refusal from a node that answers [not_leader] is not an outage:
     the follower is (mis)configured to tail a non-leader.  Surface it
     distinctly — named error, warning with the advertised leader — so
     it is diagnosable from health/repl_status instead of looking like
     "leader briefly down" forever. *)
  let refused what resp =
    match error_field "code" resp with
    | Some "not_leader" ->
        let where =
          match error_field "leader" resp with
          | Some addr -> Printf.sprintf " (it advertises leader %s)" addr
          | None -> ""
        in
        log
          (Printf.sprintf
             "%s refused: the configured leader is itself a follower%s — \
              check --follow"
             what where);
        retry "%s refused: peer is not a leader%s" what where
    | _ -> retry "%s refused" what
  in
  (* The leader's truncation point, updated from every handshake/pull
     response.  When [applied] falls at or below it, the frames this
     node needs are gone — switch to the snapshot-transfer leg. *)
  let base = ref 0 in
  let note resp =
    note_leader_seq progress resp;
    match Json.member "base_seq" resp with
    | Some (Json.Int b) -> base := b
    | _ -> ()
  in
  let apply_batch items =
    List.iter
      (fun item ->
        let next = Atomic.get progress.applied + 1 in
        match (Json.member "seq" item, Json.member "frame" item) with
        | Some (Json.Int s), Some (Json.String _) when s < next ->
            () (* already applied: a duplicate after a reconnect *)
        | Some (Json.Int s), Some (Json.String frame) when s = next -> (
            match apply s frame with
            | Ok () -> Atomic.set progress.applied s
            | Error e ->
                (* do NOT advance [applied]: the next pull's [from]
                   acks everything before it, and a frame this node
                   failed to apply must never count toward the
                   leader's semi-sync quorum.  Stop the tail instead;
                   the reconnect loop re-pulls from this exact seq, so
                   the node wedges here — visibly (staleness grows,
                   apply_errors counts, last_error names the frame) —
                   rather than acking past a divergence. *)
                Atomic.incr progress.apply_errors;
                log (Printf.sprintf "frame %d failed to apply: %s" s e);
                retry "frame %d failed to apply: %s" s e)
        | _ -> retry "gap or malformed frame in repl_pull response")
      items
  in
  (* Snapshot transfer: pull every chunk of the leader's current
     snapshot (the chunk index rides the [seq] field), install the
     reassembled payload, and resume the tail from its seq.  A failed
     install wedges exactly like a failed frame apply: [applied] stays
     put, the error is counted and named, and the reconnect loop
     retries — the node never acks state it does not hold. *)
  let fetch_snapshot conn =
    let fetch i =
      let resp = parse (roundtrip conn (snapshot_line ~node ~chunk:i)) in
      if not (is_ok resp) then refused "snapshot" resp;
      note resp;
      match
        ( Json.member "snapshot_seq" resp,
          Json.member "chunks" resp,
          Json.member "chunk" resp )
      with
      | Some (Json.Int sseq), Some (Json.Int total), Some (Json.String c)
        when total >= 1 ->
          (sseq, total, c)
      | _ -> retry "malformed repl_snapshot response"
    in
    let sseq, total, c0 = fetch 0 in
    let buf = Buffer.create (String.length c0 * total) in
    Buffer.add_string buf c0;
    for i = 1 to total - 1 do
      let s, _, c = fetch i in
      if s <> sseq then
        retry "snapshot changed mid-transfer (seq %d became %d)" sseq s;
      Buffer.add_string buf c
    done;
    match install sseq (Buffer.contents buf) with
    | Ok () ->
        Atomic.set progress.applied sseq;
        Atomic.incr progress.snapshots;
        log (Printf.sprintf "installed leader snapshot at seq %d" sseq)
    | Error e ->
        Atomic.incr progress.apply_errors;
        log (Printf.sprintf "snapshot at seq %d failed to install: %s" sseq e);
        retry "snapshot at seq %d failed to install: %s" sseq e
  in
  let tail conn =
    let resp = parse (roundtrip conn (handshake_line ~node)) in
    if not (is_ok resp) then refused "handshake" resp;
    note resp;
    Atomic.set progress.connected true;
    delay_idx := 0;
    while not (Atomic.get progress.stop) do
      if Atomic.get progress.applied < !base then fetch_snapshot conn;
      let from = Atomic.get progress.applied + 1 in
      let resp = parse (roundtrip conn (pull_line ~node ~from ~batch ~wait_ms)) in
      if not (is_ok resp) then refused "pull" resp;
      note resp;
      (match Json.member "frames" resp with
      | Some (Json.List items) -> apply_batch items
      | _ -> retry "repl_pull response has no frames");
      if throttle_ms > 0 then sleep_ms (float throttle_ms)
    done
  in
  let note_error e =
    Atomic.set progress.last_error
      (match e with Retry msg -> msg | e -> Printexc.to_string e)
  in
  while not (Atomic.get progress.stop) do
    match connect () with
    | exception e ->
        note_error e;
        Atomic.set progress.connected false;
        backoff_sleep ()
    | conn -> (
        match tail conn with
        | () -> ( try close conn with _ -> ())
        | exception e ->
            (* the transport is opaque (the caller's connect/roundtrip
               raise their own exception types), so every failure is a
               disconnect: mark, back off, reconnect *)
            note_error e;
            (try close conn with _ -> ());
            Atomic.set progress.connected false;
            backoff_sleep ())
  done;
  Atomic.set progress.connected false
