(** Persisted state snapshots for replication-log compaction.

    A snapshot is an opaque payload (the serving tier serializes its
    runtime state — store and view catalog — through it) stamped with
    the log seq it covers.  Each one is its own {!Journal.Frames} file,
    [DIR/repl.snap.<seq>], with magic ["SITSNAP1"]: a header record
    ([snapshot <seq> <chunks>]), the payload in bounded chunks, and an
    explicit [end] trailer.  Files are written to a temp path and
    renamed into place (atomic like report writes), and the newest two
    are retained: a torn tail on the newest — recovery loses the
    trailer, the file reads invalid — makes {!load} fall back to the
    previous one, which is why {!Log.truncate} must never pass the
    oldest retained snapshot's seq. *)

val magic : string
(** The frames-file magic ("SITSNAP1"). *)

val retain : int
(** How many snapshots {!save} keeps on disk (2: newest + fallback). *)

val save : dir:string -> seq:int -> string -> int list
(** Writes [DIR/repl.snap.<seq>] atomically, prunes older snapshots
    down to {!retain} files, and returns the retained seqs, newest
    first.  The oldest returned seq is the caller's truncation bound:
    frames above it are still needed if the newer snapshot turns out
    unreadable.
    @raise Sys_error when the directory is not writable. *)

val load : dir:string -> (int * string) option
(** The newest retained snapshot that reads back complete (header,
    every chunk, trailer), as [(seq, payload)] — falling back to older
    files when a newer one is torn or corrupt; [None] when no valid
    snapshot exists.  Never raises on corruption. *)

val retained : dir:string -> int list
(** Retained snapshot seqs on disk, newest first (no validation). *)
