(** The follower tailer: a loop that connects to a leader, catches up
    from its last applied seq and tails live appends, applying each
    replicated frame through a caller-supplied callback.

    The loop is parameterized over its transport ([connect] /
    [roundtrip] / [close] on an abstract connection), so this module
    depends on nothing above [lib/journal] — [lib/server] injects its
    [Client] and its own apply path.  It speaks the `repl_handshake` /
    `repl_pull` operations by their documented JSON shape
    (docs/SERVING.md); the pull's [from] seq doubles as the ack for
    everything before it, which is how the leader tracks this node.

    The loop never gives up: every transport failure (refused, reset,
    EOF, a draining leader) marks the node disconnected and retries
    under the backoff policy, capped at the policy's final delay.  The
    node keeps serving reads from its last-applied state throughout —
    that is the graceful-degradation contract `staleness_seq`
    reports on. *)

type progress = {
  applied : int Atomic.t;  (** highest seq applied locally *)
  leader_seq : int Atomic.t;  (** highest seq the leader reported *)
  connected : bool Atomic.t;
  attempts : int Atomic.t;  (** (re)connect attempts that failed *)
  apply_errors : int Atomic.t;
      (** replicated frames (or snapshots) that failed to apply *)
  snapshots : int Atomic.t;
      (** snapshot transfers installed (catch-up past a truncation) *)
  last_error : string Atomic.t;
      (** the most recent tail failure ([""] if none yet): transport
          errors, a refused handshake/pull — distinguishing a peer
          that answered [not_leader], i.e. a misconfigured [--follow]
          — or a frame that failed to apply.  Sticky across
          reconnects, so a wedged or flapping node stays diagnosable
          from `health`/`repl_status`. *)
  stop : bool Atomic.t;
}

val make_progress : unit -> progress

val staleness : progress -> int
(** [max 0 (leader_seq - applied)] — the `staleness_seq` of `health`. *)

val last_error : progress -> string
(** [Atomic.get last_error] — the `repl_last_error` of `health`. *)

val request_stop : progress -> unit
(** Makes {!run} return within roughly one pull round-trip. *)

val run :
  node:string ->
  connect:(unit -> 'c) ->
  close:('c -> unit) ->
  roundtrip:('c -> string -> string) ->
  apply:(int -> string -> (unit, string) result) ->
  progress:progress ->
  ?backoff:Backoff.policy ->
  ?batch:int ->
  ?wait_ms:int ->
  ?throttle_ms:int ->
  ?install:(int -> string -> (unit, string) result) ->
  ?log:(string -> unit) ->
  unit ->
  unit
(** Runs the tail loop on the calling thread until {!request_stop}.
    [apply seq frame] must apply frames sequentially (they arrive in
    seq order, each exactly once — duplicates after a reconnect are
    skipped by seq).  When [apply] returns [Error], [applied] is NOT
    advanced: the tail disconnects and the reconnect loop re-pulls
    from the failed seq, so a frame this node could not apply is never
    acked to the leader (and never counts toward an [--ack-replicas]
    quorum) — the node wedges at the failure point, visibly, instead
    of silently diverging.

    When the leader reports a [base_seq] above this node's [applied],
    the needed frames have been compacted away: the loop fetches the
    leader's snapshot chunk by chunk (`repl_snapshot`), hands the
    reassembled payload to [install seq payload], and on [Ok] resumes
    tailing from that seq ([snapshots] counts each install).  The
    default [install] refuses, wedging visibly like a failed apply.
    An [Error] from [install] is counted under [apply_errors] and
    retried via the reconnect loop.

    [backoff] defaults to {!Backoff.fresh}[ ()] — a per-call random
    seed, so a fleet of followers restarting together does not retry
    in lockstep; pass an explicit policy (e.g. {!Backoff.default}) for
    deterministic tests.  [batch] caps frames per pull, [wait_ms] is
    the long-poll budget sent to the leader, [throttle_ms] (test hook)
    sleeps between pulls so a catch-up window is observable.  [log]
    (default: drop) receives warnings worth an operator's attention —
    a peer answering [not_leader] to the handshake (a misconfigured
    leader address), frames that failed to apply, and snapshot
    installs. *)
