(** The follower tailer: a loop that connects to a leader, catches up
    from its last applied seq and tails live appends, applying each
    replicated frame through a caller-supplied callback.

    The loop is parameterized over its transport ([connect] /
    [roundtrip] / [close] on an abstract connection), so this module
    depends on nothing above [lib/journal] — [lib/server] injects its
    [Client] and its own apply path.  It speaks the `repl_handshake` /
    `repl_pull` operations by their documented JSON shape
    (docs/SERVING.md); the pull's [from] seq doubles as the ack for
    everything before it, which is how the leader tracks this node.

    The loop never gives up: every transport failure (refused, reset,
    EOF, a draining leader) marks the node disconnected and retries
    under the backoff policy, capped at the policy's final delay.  The
    node keeps serving reads from its last-applied state throughout —
    that is the graceful-degradation contract `staleness_seq`
    reports on. *)

type progress = {
  applied : int Atomic.t;  (** highest seq applied locally *)
  leader_seq : int Atomic.t;  (** highest seq the leader reported *)
  connected : bool Atomic.t;
  attempts : int Atomic.t;  (** (re)connect attempts that failed *)
  apply_errors : int Atomic.t;  (** replicated frames that failed to apply *)
  stop : bool Atomic.t;
}

val make_progress : unit -> progress

val staleness : progress -> int
(** [max 0 (leader_seq - applied)] — the `staleness_seq` of `health`. *)

val request_stop : progress -> unit
(** Makes {!run} return within roughly one pull round-trip. *)

val run :
  node:string ->
  connect:(unit -> 'c) ->
  close:('c -> unit) ->
  roundtrip:('c -> string -> string) ->
  apply:(int -> string -> (unit, string) result) ->
  progress:progress ->
  ?backoff:Backoff.policy ->
  ?batch:int ->
  ?wait_ms:int ->
  ?throttle_ms:int ->
  unit ->
  unit
(** Runs the tail loop on the calling thread until {!request_stop}.
    [apply seq frame] must apply frames sequentially (they arrive in
    seq order, each exactly once — duplicates after a reconnect are
    skipped by seq).  [batch] caps frames per pull, [wait_ms] is the
    long-poll budget sent to the leader, [throttle_ms] (test hook)
    sleeps between pulls so a catch-up window is observable. *)
