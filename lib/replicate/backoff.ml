type policy = {
  attempts : int;
  base_ms : float;
  factor : float;
  max_ms : float;
  jitter : float;
  seed : int;
}

let default =
  {
    attempts = 5;
    base_ms = 25.;
    factor = 2.;
    max_ms = 2000.;
    jitter = 0.5;
    seed = 0;
  }

(* Per-process seed source for the [fresh] policies real clients and
   followers default to.  A pinned seed 0 everywhere meant every
   default-configured retry loop in a fleet drew the SAME jitter
   sequence and hammered a recovering leader in lockstep; mixing the
   pid, the wall clock at first use and a per-call counter gives every
   connection its own stream while staying explicit (and overridable:
   tests that need determinism pin [seed] themselves). *)
let seed_counter = Atomic.make 0

let fresh_seed () =
  let n = Atomic.fetch_and_add seed_counter 1 in
  let pid = try Unix.getpid () with _ -> 0 in
  let now_us = int_of_float (Unix.gettimeofday () *. 1_000_000.) in
  (now_us lxor (pid * 0x9E3779B9) lxor (n * 0x85EBCA6B)) land max_int

let fresh () = { default with seed = fresh_seed () }

(* SplitMix64: one multiply-xorshift pass per draw.  Self-contained so
   the delay sequence depends on nothing but the policy. *)
let splitmix state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  (state, Int64.logxor z (Int64.shift_right_logical z 31))

(* a uniform draw in [0, 1) from the top 53 bits *)
let unit_float z = Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let delays p =
  let state = ref (Int64.of_int p.seed) in
  let draw () =
    let state', z = splitmix !state in
    state := state';
    unit_float z
  in
  let jitter = Float.max 0. (Float.min 1. p.jitter) in
  List.init
    (max 0 (p.attempts - 1))
    (fun i ->
      let nominal = Float.min p.max_ms (p.base_ms *. (p.factor ** float i)) in
      if jitter = 0. then nominal
      else nominal *. (1. -. jitter +. (jitter *. draw ())))

type 'e failure = { tried : int; last : 'e }

let run ?(sleep = fun ms -> Unix.sleepf (ms /. 1000.)) policy f =
  let ds = Array.of_list (delays policy) in
  let attempts = max 1 policy.attempts in
  let rec go i =
    match f i with
    | Ok _ as ok -> ok
    | Error e ->
        if i + 1 >= attempts then Error { tried = i + 1; last = e }
        else begin
          if Array.length ds > 0 then sleep ds.(min i (Array.length ds - 1));
          go (i + 1)
        end
  in
  go 0
