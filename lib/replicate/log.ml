module Frames = Journal.Frames

let magic = "SITREPL1"

type t = {
  mu : Mutex.t;
  mutable frames : string array;  (* seq s lives at index s-1 *)
  mutable len : int;
  mutable file : Frames.t option;
  mutable closed : bool;
  truncated : int;
  acks : (string, int) Hashtbl.t;  (* node -> highest applied seq *)
}

let create ?persist () =
  let payloads, truncated, file =
    match persist with
    | None -> ([], 0, None)
    | Some path ->
        (* fsync every record: an acknowledged write must be on disk *)
        let recovery, f = Frames.open_ ~fsync:Frames.Always ~magic path in
        (recovery.Frames.payloads, recovery.Frames.truncated_bytes, Some f)
  in
  let len = List.length payloads in
  let frames = Array.make (max 64 len) "" in
  List.iteri (fun i p -> frames.(i) <- p) payloads;
  {
    mu = Mutex.create ();
    frames;
    len;
    file;
    closed = false;
    truncated;
    acks = Hashtbl.create 8;
  }

let truncated_bytes t = t.truncated
let seq t = Mutex.protect t.mu (fun () -> t.len)

let append t frame =
  Mutex.protect t.mu (fun () ->
      if t.closed then invalid_arg "Replicate.Log.append: log is closed";
      if t.len = Array.length t.frames then begin
        let bigger = Array.make (2 * Array.length t.frames) "" in
        Array.blit t.frames 0 bigger 0 t.len;
        t.frames <- bigger
      end;
      (* disk first: a crash between the two leaves the frame
         recoverable, never acknowledged-but-lost *)
      (match t.file with Some f -> Frames.append f frame | None -> ());
      t.frames.(t.len) <- frame;
      t.len <- t.len + 1;
      t.len)

let get t s =
  Mutex.protect t.mu (fun () ->
      if s >= 1 && s <= t.len then Some t.frames.(s - 1) else None)

let from t s ~max:m =
  Mutex.protect t.mu (fun () ->
      let lo = max 1 s in
      let hi = min t.len (lo + max 0 m - 1) in
      if hi < lo then []
      else List.init (hi - lo + 1) (fun i -> (lo + i, t.frames.(lo + i - 1))))

(* Waiters poll under a small sleep instead of a condition variable:
   the stdlib [Condition] has no timed wait, and a few milliseconds of
   granularity is far below every timeout used here. *)
let poll_until ~timeout_s f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    match f () with
    | Some v -> v
    | None ->
        if Unix.gettimeofday () >= deadline then false
        else begin
          Thread.delay 0.003;
          loop ()
        end
  in
  loop ()

let wait t ~from ~timeout_s =
  poll_until ~timeout_s (fun () ->
      Mutex.protect t.mu (fun () ->
          if t.len >= from then Some true
          else if t.closed then Some false
          else None))

let ack t ~node s =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.acks node with
      | Some prev when prev >= s -> ()
      | _ -> Hashtbl.replace t.acks node s)

let acks t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun n s acc -> (n, s) :: acc) t.acks []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let acked_by t s =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun _ applied n -> if applied >= s then n + 1 else n) t.acks 0)

let wait_acked t ~seq ~replicas ~timeout_s =
  if replicas <= 0 then true
  else
    poll_until ~timeout_s (fun () ->
        Mutex.protect t.mu (fun () ->
            let n =
              Hashtbl.fold
                (fun _ applied n -> if applied >= seq then n + 1 else n)
                t.acks 0
            in
            if n >= replicas then Some true
            else if t.closed then Some false
            else None))

let close t =
  Mutex.protect t.mu (fun () ->
      if not t.closed then begin
        t.closed <- true;
        match t.file with
        | Some f ->
            (try Frames.close f with Sys_error _ -> ());
            t.file <- None
        | None -> ()
      end)
